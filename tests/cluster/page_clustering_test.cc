#include "cluster/page_clustering.h"

#include <gtest/gtest.h>

#include <set>

#include "dom/html_parser.h"
#include "util/string_util.h"

namespace ceres {
namespace {

DomDocument Parse(const std::string& html) {
  Result<DomDocument> doc = ParseHtml(html);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

std::string FilmPage(int lists) {
  std::string html = "<body><div class=a><h1>Title</h1>";
  for (int i = 0; i < lists; ++i) {
    html += "<div class=sec><h3>L</h3><ul><li>x</li><li>y</li></ul></div>";
  }
  html += "</div></body>";
  return html;
}

std::string PersonPage() {
  return "<body><table><tr><td>Born</td><td>1950</td></tr>"
         "<tr><td>Place</td><td>Rome</td></tr></table>"
         "<section><p>bio text</p></section></body>";
}

TEST(PageSignatureTest, IndexFreeAndStable) {
  DomDocument a = Parse(FilmPage(2));
  DomDocument b = Parse(FilmPage(5));  // More lists, same tag paths.
  auto sig_a = PageSignature(a, 1000);
  auto sig_b = PageSignature(b, 1000);
  EXPECT_DOUBLE_EQ(SignatureSimilarity(sig_a, sig_b), 1.0);
}

TEST(PageSignatureTest, DifferentTemplatesDiffer) {
  DomDocument a = Parse(FilmPage(2));
  DomDocument b = Parse(PersonPage());
  EXPECT_LT(SignatureSimilarity(PageSignature(a, 1000),
                                PageSignature(b, 1000)),
            0.5);
}

TEST(PageSignatureTest, CapRespected) {
  DomDocument a = Parse(FilmPage(30));
  EXPECT_LE(PageSignature(a, 10).size(), 10u);
}

TEST(ClusterPagesTest, SeparatesTwoTemplates) {
  std::vector<DomDocument> pages;
  for (int i = 0; i < 6; ++i) pages.push_back(Parse(FilmPage(2 + i % 3)));
  for (int i = 0; i < 3; ++i) pages.push_back(Parse(PersonPage()));
  std::vector<int> labels = ClusterPages(pages);
  ASSERT_EQ(labels.size(), 9u);
  // Film pages together, person pages together, and distinct.
  for (int i = 1; i < 6; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 7; i < 9; ++i) EXPECT_EQ(labels[i], labels[6]);
  EXPECT_NE(labels[0], labels[6]);
  // Largest cluster gets id 0.
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[6], 1);
}

TEST(ClusterPagesTest, EmptyInput) {
  EXPECT_TRUE(ClusterPages({}).empty());
}

TEST(ClusterPagesTest, ThresholdOneSplitsEverythingDifferent) {
  std::vector<DomDocument> pages;
  pages.push_back(Parse(FilmPage(1)));
  pages.push_back(Parse(PersonPage()));
  PageClusteringConfig config;
  config.similarity_threshold = 0.999;
  std::vector<int> labels = ClusterPages(pages, config);
  EXPECT_NE(labels[0], labels[1]);
}

TEST(ClusterPagesTest, ThresholdZeroMergesEverything) {
  std::vector<DomDocument> pages;
  pages.push_back(Parse(FilmPage(1)));
  pages.push_back(Parse(PersonPage()));
  PageClusteringConfig config;
  config.similarity_threshold = 0.0;
  std::vector<int> labels = ClusterPages(pages, config);
  EXPECT_EQ(labels[0], labels[1]);
}

TEST(ClusterPagesTest, SharedSkeletonCanMergeDistinctTemplates) {
  // The documented Vertex failure (§5.5.1): boilerplate-heavy pages whose
  // chrome dominates the signature land in one cluster.
  std::string chrome =
      "<header><a>h</a><span>s</span><b>b</b></header>"
      "<nav><a>n</a><i>i</i><em>e</em></nav>"
      "<aside><p>p</p><u>u</u><small>m</small></aside>"
      "<footer><a>f</a><span>c</span><strong>g</strong></footer>";
  std::vector<DomDocument> pages;
  pages.push_back(Parse("<body>" + chrome + "<ul><li>x</li></ul></body>"));
  pages.push_back(Parse("<body>" + chrome + "<table><tr><td>y</td></tr>"
                        "</table></body>"));
  std::vector<int> labels = ClusterPages(pages);
  EXPECT_EQ(labels[0], labels[1]);
}

}  // namespace
}  // namespace ceres
