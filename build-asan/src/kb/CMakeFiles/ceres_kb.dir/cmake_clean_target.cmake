file(REMOVE_RECURSE
  "libceres_kb.a"
)
