#include "core/relation_annotator.h"

#include <gtest/gtest.h>

#include <set>

#include "core/entity_matcher.h"
#include "testing/fixtures.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;
using testing::TinyMovieKb;

struct AnnotatorHarness {
  explicit AnnotatorHarness(TinyMovieKb* fixture) : fixture(fixture) {}

  void AddPage(const std::string& html, EntityId topic) {
    docs.push_back(ParseOrDie(html));
    topics_in.push_back(topic);
  }

  AnnotationResult Run(const AnnotatorConfig& config = {}) {
    ptrs.clear();
    mentions.clear();
    for (const DomDocument& doc : docs) {
      ptrs.push_back(&doc);
      mentions.push_back(MatchPageMentions(doc, fixture->kb));
    }
    TopicResult topics;
    topics.topic = topics_in;
    topics.topic_node.assign(docs.size(), kInvalidNode);
    topics.score.assign(docs.size(), 1.0);
    // Topic node: first field whose text equals the topic name.
    for (size_t i = 0; i < docs.size(); ++i) {
      if (topics_in[i] == kInvalidEntity) continue;
      auto it = mentions[i].mentions_of.find(topics_in[i]);
      if (it != mentions[i].mentions_of.end()) {
        topics.topic_node[i] = it->second.front();
      }
    }
    return AnnotateRelations(ptrs, mentions, topics, fixture->kb, config);
  }

  // All (page, predicate) annotations for an object.
  std::vector<Annotation> Of(const AnnotationResult& result,
                             PredicateId predicate) {
    std::vector<Annotation> out;
    for (const Annotation& a : result.annotations) {
      if (a.predicate == predicate) out.push_back(a);
    }
    return out;
  }

  TinyMovieKb* fixture;
  std::vector<DomDocument> docs;
  std::vector<EntityId> topics_in;
  std::vector<const DomDocument*> ptrs;
  std::vector<PageMentions> mentions;
};

// The Example 3.1 scenario: Spike Lee appears in director, writer, and cast
// sections; his "hasCastMember" annotation must land in the cast list where
// the other cast mentions live.
TEST(RelationAnnotatorTest, LocalEvidencePicksCastListMention) {
  TinyMovieKb fixture;
  AnnotatorHarness harness(&fixture);
  harness.AddPage(
      FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                   {"Spike Lee", "Danny Aiello", "John Turturro"},
                   {"Comedy", "Dramedy"}),
      fixture.right_thing);
  AnnotationResult result = harness.Run();

  std::vector<Annotation> cast_annotations =
      harness.Of(result, fixture.cast);
  // Lee + Aiello + Turturro, one each.
  EXPECT_EQ(cast_annotations.size(), 3u);
  // Lee's cast annotation is an <li> in the cast list.
  bool found_li = false;
  for (const Annotation& a : cast_annotations) {
    if (a.object == fixture.lee) {
      EXPECT_EQ(harness.docs[0].node(a.node).tag, "li");
      found_li = true;
    }
  }
  EXPECT_TRUE(found_li);
}

TEST(RelationAnnotatorTest, AtMostOneMentionPerObjectPerPredicate) {
  TinyMovieKb fixture;
  AnnotatorHarness harness(&fixture);
  harness.AddPage(
      FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                   {"Spike Lee", "Danny Aiello"}, {"Comedy"}),
      fixture.right_thing);
  AnnotationResult result = harness.Run();
  std::set<std::pair<PredicateId, EntityId>> seen;
  for (const Annotation& a : result.annotations) {
    if (a.predicate == kNamePredicate) continue;
    EXPECT_TRUE(seen.emplace(a.predicate, a.object).second)
        << "object annotated twice for one predicate";
  }
}

// Example 3.2: genres duplicated in a recommendation block tie on local
// evidence; clustering across pages must prefer the main genre list.
TEST(RelationAnnotatorTest, GlobalClusteringResolvesGenreTie) {
  TinyMovieKb fixture;
  AnnotatorHarness harness(&fixture);
  // Both pages duplicate genres in the rec block, creating local ties; but
  // as on real sites the rec block only *sometimes* repeats the true
  // genres, so across pages the main list forms the larger cluster.
  harness.AddPage(
      FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                   {"Danny Aiello"}, {"Comedy", "Dramedy"},
                   {"Comedy", "Dramedy"}),
      fixture.right_thing);
  harness.AddPage(FilmPageHtml("Crooklyn", "Spike Lee", "x",
                               {"Zelda Harris"}, {"Comedy"},
                               {"Dramedy"}),
                  fixture.crooklyn);
  AnnotationResult result = harness.Run();
  std::vector<Annotation> genre_annotations =
      harness.Of(result, fixture.genre);
  EXPECT_FALSE(genre_annotations.empty());
  for (const Annotation& a : genre_annotations) {
    // Annotated node must be inside the main genres list, not recgenres.
    NodeId parent = harness.docs[static_cast<size_t>(a.page)]
                        .node(a.node)
                        .parent;
    EXPECT_EQ(harness.docs[static_cast<size_t>(a.page)]
                  .Attribute(parent, "class"),
              "genres");
  }
}

// When clustering cannot break the tie either (all clusters equal), no
// annotation is made — precision over recall (§3).
TEST(RelationAnnotatorTest, FullySymmetricTieYieldsNoAnnotation) {
  TinyMovieKb fixture;
  AnnotatorHarness harness(&fixture);
  harness.AddPage(
      FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                   {"Danny Aiello"}, {"Comedy", "Dramedy"},
                   {"Comedy", "Dramedy"}),
      fixture.right_thing);
  AnnotationResult result = harness.Run();
  // One page only: main and rec clusters tie at one occurrence per path;
  // every genre task is ambiguous and dropped.
  EXPECT_TRUE(harness.Of(result, fixture.genre).empty());
}

TEST(RelationAnnotatorTest, TopicOnlyModeAnnotatesEveryMention) {
  TinyMovieKb fixture;
  AnnotatorHarness harness(&fixture);
  harness.AddPage(
      FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                   {"Spike Lee", "Danny Aiello"}, {"Comedy"}),
      fixture.right_thing);
  AnnotatorConfig config;
  config.use_relation_filtering = false;
  AnnotationResult result = harness.Run(config);
  // Lee has 3 mentions × 3 predicates (directed/wrote/cast) = 9 labels.
  int lee_labels = 0;
  for (const Annotation& a : result.annotations) {
    if (a.object == fixture.lee) ++lee_labels;
  }
  EXPECT_EQ(lee_labels, 9);
}

TEST(RelationAnnotatorTest, FullModeMakesFewerAnnotationsThanTopicOnly) {
  TinyMovieKb fixture;
  AnnotatorHarness full_harness(&fixture);
  AnnotatorHarness topic_harness(&fixture);
  const std::string html = FilmPageHtml(
      "Do the Right Thing", "Spike Lee", "Spike Lee",
      {"Spike Lee", "Danny Aiello", "John Turturro"}, {"Comedy", "Dramedy"},
      {"Comedy"});
  full_harness.AddPage(html, fixture.right_thing);
  topic_harness.AddPage(html, fixture.right_thing);
  AnnotatorConfig topic_config;
  topic_config.use_relation_filtering = false;
  size_t full_count = full_harness.Run().annotations.size();
  size_t topic_count = topic_harness.Run(topic_config).annotations.size();
  EXPECT_LT(full_count, topic_count);
}

// The informativeness guard (§3.2.2 case 2): a value recurring on most
// pages (search-box "Comedy" on every page here) is only annotated when
// it sits in the predicate's dominant XPath cluster.
TEST(RelationAnnotatorTest, SuspiciousValueGuardUsesClustering) {
  TinyMovieKb fixture;
  AnnotatorHarness harness(&fixture);
  // Four pages; every film has genre Comedy in the KB and on the page
  // twice: once in the main genre list (consistent position) and once in
  // a rec block. The object value recurs on ALL annotated pages, so the
  // guard kicks in; the dominant cluster is the main list.
  harness.AddPage(FilmPageHtml("Do the Right Thing", "Spike Lee",
                               "Spike Lee", {"Danny Aiello"},
                               {"Comedy", "Dramedy"}, {"Comedy"}),
                  fixture.right_thing);
  harness.AddPage(FilmPageHtml("Crooklyn", "Spike Lee", "x",
                               {"Zelda Harris"}, {"Comedy"}, {"Comedy"}),
                  fixture.crooklyn);
  AnnotationResult result = harness.Run();
  for (const Annotation& a : harness.Of(result, fixture.genre)) {
    NodeId parent =
        harness.docs[static_cast<size_t>(a.page)].node(a.node).parent;
    EXPECT_EQ(harness.docs[static_cast<size_t>(a.page)]
                  .Attribute(parent, "class"),
              "genres")
        << "suspicious value annotated outside the dominant cluster";
  }
}

TEST(RelationAnnotatorTest, PagesWithoutTopicIgnored) {
  TinyMovieKb fixture;
  AnnotatorHarness harness(&fixture);
  harness.AddPage(
      FilmPageHtml("Mystery", "Spike Lee", "x", {"Danny Aiello"},
                   {"Comedy"}),
      kInvalidEntity);
  AnnotationResult result = harness.Run();
  EXPECT_TRUE(result.annotations.empty());
  EXPECT_TRUE(result.annotated_pages.empty());
}

TEST(RelationAnnotatorTest, NameAnnotationEmittedPerAnnotatedPage) {
  TinyMovieKb fixture;
  AnnotatorHarness harness(&fixture);
  harness.AddPage(
      FilmPageHtml("Do the Right Thing", "Spike Lee", "Spike Lee",
                   {"Danny Aiello"}, {"Comedy"}),
      fixture.right_thing);
  AnnotationResult result = harness.Run();
  int name_count = 0;
  for (const Annotation& a : result.annotations) {
    if (a.predicate == kNamePredicate) {
      ++name_count;
      EXPECT_EQ(a.object, fixture.right_thing);
    }
  }
  EXPECT_EQ(name_count, 1);
  EXPECT_EQ(result.annotated_pages.size(), 1u);
}

}  // namespace
}  // namespace ceres
