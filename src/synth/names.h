#ifndef CERES_SYNTH_NAMES_H_
#define CERES_SYNTH_NAMES_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"

namespace ceres::synth {

/// Locale flavor for generated names and labels. Long-tail corpus sites use
/// non-English locales, mirroring the paper's multi-lingual CommonCrawl set.
enum class Locale {
  kEnglish,
  kItalian,
  kCzech,
  kDanish,
  kIcelandic,
  kIndonesian,
  kSlovak,
};

/// Deterministic person name ("Marcus Ellery"); locale flavors the syllable
/// bank.
std::string PersonName(Rng* rng, Locale locale = Locale::kEnglish);

/// Deterministic film title ("The Silent Harbor", "Crimson Road").
std::string FilmTitle(Rng* rng, Locale locale = Locale::kEnglish);

/// Book title.
std::string BookTitle(Rng* rng);

/// Publisher name ("Northgate Press").
std::string PublisherName(Rng* rng);

/// University name ("University of Ashford").
std::string UniversityName(Rng* rng);

/// NBA-style team name ("Riverton Hawks").
std::string TeamName(Rng* rng);

/// City / place name.
std::string PlaceName(Rng* rng, Locale locale = Locale::kEnglish);

/// Date string like "12 June 1989" (English month names).
std::string DateString(Rng* rng, int year_lo = 1950, int year_hi = 2017);

/// Height like 6'8" and weight like "240 lbs".
std::string HeightString(Rng* rng);
std::string WeightString(Rng* rng);

/// Phone "(415) 555-0137", website "www.ashford.edu", ISBN-13.
std::string PhoneString(Rng* rng);
std::string WebsiteString(Rng* rng, std::string_view base);
std::string IsbnString(Rng* rng);

/// The fixed genre vocabulary shared by all movie worlds.
const std::vector<std::string>& GenreNames();

/// Common TV-episode titles that collide with ordinary page strings
/// ("Pilot", "Biography", "Help") — the ambiguity source of §2.2.
const std::vector<std::string>& AmbiguousEpisodeTitles();

/// Localized UI label for a template slot ("Director:", "Regista:", ...).
/// `key` is one of: director, writer, cast, genre, release_date, year,
/// producer, music, born, birthplace, alias, title, author, publisher,
/// publication_date, isbn, team, height, weight, phone, website, type,
/// known_for, recommendations, filmography, home, search, help, login.
std::string UiLabel(const std::string& key, Locale locale);

/// Lower-case slug of a string for URLs and CSS classes.
std::string Slugify(std::string_view text);

}  // namespace ceres::synth

#endif  // CERES_SYNTH_NAMES_H_
