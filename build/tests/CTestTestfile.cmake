# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/dom_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
