# Empty dependencies file for ceres_util.
# This may be replaced when dependencies are built.
