#ifndef CERES_DOM_DOM_UTILS_H_
#define CERES_DOM_DOM_UTILS_H_

#include <vector>

#include "dom/dom_tree.h"

namespace ceres {

/// Lowest common ancestor of two nodes; both must belong to `doc`.
NodeId LowestCommonAncestor(const DomDocument& doc, NodeId a, NodeId b);

/// The chain of ancestors of `id` from its parent up to the root,
/// nearest first.
std::vector<NodeId> AncestorChain(const DomDocument& doc, NodeId id);

/// Siblings of `id` within `width` positions on either side (excluding `id`
/// itself), ordered left-to-right. Used by the §4.2 structural feature
/// window.
std::vector<NodeId> SiblingWindow(const DomDocument& doc, NodeId id,
                                  int width);

/// The highest ancestor of `mention` whose subtree contains `mention` but
/// none of `others` (Algorithm 2 line 5). Returns `mention` itself when even
/// its parent's subtree contains another mention.
NodeId HighestExclusiveAncestor(const DomDocument& doc, NodeId mention,
                                const std::vector<NodeId>& others);

/// All nodes of the subtree rooted at `id` (inclusive), preorder.
std::vector<NodeId> Subtree(const DomDocument& doc, NodeId id);

/// Count of nodes from `candidates` that lie in the subtree rooted at
/// `root` (inclusive).
int CountInSubtree(const DomDocument& doc, NodeId root,
                   const std::vector<NodeId>& candidates);

}  // namespace ceres

#endif  // CERES_DOM_DOM_UTILS_H_
