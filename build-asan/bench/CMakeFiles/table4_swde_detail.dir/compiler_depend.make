# Empty compiler generated dependencies file for table4_swde_detail.
# This may be replaced when dependencies are built.
