// Corpus: a temporary std::string built only to probe a string-keyed map
// (the test lints this content under a src/ml/ path). Exactly one
// hot-alloc violation — the find(std::string(name)) probe; the transparent
// heterogeneous lookup and the probe with an existing string are compliant
// shapes the rule must not confuse with the temporary. Never compiled —
// linted by tests/lint/ceres_lint_test.cc.

#include <string>
#include <string_view>
#include <unordered_map>

namespace ceres {

struct Dictionary {
  std::unordered_map<std::string, int> index;

  int Lookup(std::string_view name) const {
    auto it = index.find(std::string(name));  // BAD: allocates per probe
    return it == index.end() ? -1 : it->second;
  }

  int LookupOwned(const std::string& name) const {
    auto it = index.find(name);  // existing string, no temporary
    return it == index.end() ? -1 : it->second;
  }
};

}  // namespace ceres
