#ifndef CERES_SERVE_SHARDED_SERVICE_H_
#define CERES_SERVE_SHARDED_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "kb/ontology.h"
#include "serve/extraction_service.h"
#include "serve/model_registry.h"
#include "serve/page_cache.h"
#include "util/status.h"

namespace ceres::serve {

struct ShardedServiceConfig {
  /// Shard count; each shard is an independent ModelRegistry +
  /// ExtractionService pair. Must be >= 1.
  int num_shards = 2;
  /// Per-shard service configuration (worker pool, queue bounds, batching).
  ExtractionServiceConfig service;
  /// Per-shard model registry configuration. `root_dir` is the base path;
  /// shard i stores models under `<root_dir>/shard-<i>`.
  ModelRegistryConfig registry;
  /// The near-duplicate page cache fronting all shards.
  PageCacheConfig cache;
};

/// Aggregated view across shards, plus the shared page cache.
struct ShardedServiceStats {
  std::vector<ServiceStats> per_shard;
  PageCacheStats cache;
  /// Requests answered from the near-duplicate cache (never reached a
  /// shard). Equals cache.hits; surfaced here for one-stop reporting.
  int64_t near_dup_served = 0;
};

/// The service tier behind the HTTP front-end: N independent
/// ModelRegistry + ExtractionService pairs, partitioned by site.
///
/// Partitioning uses the same stable site hash as the offline distributed
/// runner (`dist::ShardOfSite`: FNV-1a of the site name modulo shard
/// count — reimplemented here so the serving tier does not link the
/// process-spawning dist library). All requests for one site land on one
/// shard, so each shard's registry warms exactly the models its sites
/// need and per-site batching keeps its locality; distinct shards share
/// nothing and never contend.
///
/// In front of the shards sits a NearDupCache: Submit fingerprints the
/// page and a near-duplicate hit resolves immediately with the cached
/// triples (`diagnostics.near_dup_hit`), skipping parse and inference.
/// Misses are forwarded to the owning shard; the completed result is
/// inserted into the cache by the shard's completion hook, on the worker
/// thread that resolved it, before the future becomes ready. Publishing
/// or invalidating a site's model drops the site's cached extractions in
/// the same call, so a hot-swap is never served stale results.
class ShardedExtractionService {
 public:
  ShardedExtractionService(Ontology ontology, ShardedServiceConfig config);
  ~ShardedExtractionService();

  ShardedExtractionService(const ShardedExtractionService&) = delete;
  ShardedExtractionService& operator=(const ShardedExtractionService&) =
      delete;

  /// Starts every shard's worker pool.
  Status Start();
  /// Stops every shard (queued work is shed with kShutdown).
  void Stop();

  /// The shard owning `site`: Fnv1a64(site) % num_shards, stable across
  /// runs and processes (matches dist::ShardOfSite).
  size_t ShardOf(std::string_view site) const;

  /// Cache-fronted submit. The returned future resolves immediately for a
  /// near-duplicate hit; otherwise it is the shard's own promise-backed
  /// future (poll-safe: wait_for eventually reports ready) with a
  /// cache-insert completion hook that runs before it becomes ready.
  std::future<ServeResult> Submit(ServeRequest request);

  /// Publishes `model` as the next version for `site` on its owning
  /// shard's registry and invalidates the site's cached extractions.
  Result<int64_t> Publish(const std::string& site,
                          const TrainedModel& model);

  /// Drops the site's warm model and cached extractions; the next request
  /// reloads from the store.
  void Invalidate(const std::string& site);

  int num_shards() const { return config_.num_shards; }
  ModelRegistry* registry(size_t shard) { return shards_[shard]->registry.get(); }
  NearDupCache& cache() { return cache_; }

  ShardedServiceStats stats() const;

 private:
  struct Shard {
    std::unique_ptr<ModelRegistry> registry;
    std::unique_ptr<ExtractionService> service;
  };

  const ShardedServiceConfig config_;
  NearDupCache cache_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
};

}  // namespace ceres::serve

#endif  // CERES_SERVE_SHARDED_SERVICE_H_
