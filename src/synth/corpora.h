#ifndef CERES_SYNTH_CORPORA_H_
#define CERES_SYNTH_CORPORA_H_

#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "synth/site_generator.h"
#include "synth/world.h"

namespace ceres::synth {

/// One generated website of a corpus.
struct SyntheticSite {
  std::string name;
  /// Table 8 style focus description.
  std::string focus;
  std::vector<GeneratedPage> pages;
};

/// A full experimental corpus: the ground-truth world, the (incomplete)
/// seed KB handed to the extractors, and the generated sites.
struct Corpus {
  Corpus(World world_in, KnowledgeBase seed)
      : world(std::move(world_in)), seed_kb(std::move(seed)) {}
  Corpus(Corpus&&) = default;

  World world;
  KnowledgeBase seed_kb;
  std::vector<SyntheticSite> sites;
  /// Predicate names evaluated for this corpus (the vertical's SWDE
  /// attributes, or all predicates for IMDb / long-tail).
  std::vector<std::string> eval_predicates;
};

/// The four SWDE verticals used in §5.3 (Table 1).
enum class SwdeVertical { kMovie, kBook, kNbaPlayer, kUniversity };

/// Human-readable vertical name ("Movie", ...).
std::string SwdeVerticalName(SwdeVertical vertical);

/// Builds a 10-site SWDE-style corpus for one vertical. `scale` multiplies
/// world sizes and pages per site (1.0 ≈ 120 pages/site — laptop-scale
/// stand-in for SWDE's 200–2000). Seed-KB protocol follows §5.1.1: the
/// Movie vertical uses a large IMDb-like KB; the other verticals use the
/// ground truth of the first site.
Corpus MakeSwdeCorpus(SwdeVertical vertical, double scale = 1.0,
                      uint64_t seed = 100);

/// Builds the IMDb-style corpus of §5.1.2: one complex site with film,
/// person, and TV-episode detail pages, rich trap sections, and a
/// popularity-biased seed KB (footnote 10 coverage profile).
Corpus MakeImdbCorpus(double scale = 1.0, uint64_t seed = 200);

/// Per-site outcome knobs of the long-tail corpus (used by tests).
struct LongTailSiteInfo {
  std::string name;
  std::string focus;
};

/// Builds the 33-site multi-lingual long-tail movie corpus of §5.1.3
/// (CommonCrawl stand-in), including the documented degenerate sites:
/// chart-only (no detail pages), near-zero KB overlap, merged-role
/// filmographies, all-genres navigation, and template shuffling.
Corpus MakeLongTailCorpus(double scale = 1.0, uint64_t seed = 300);

/// Reads the CERES_SCALE environment variable (default 1.0) used by the
/// benches to size every corpus.
double EnvScale();

}  // namespace ceres::synth

#endif  // CERES_SYNTH_CORPORA_H_
