// Ablation tests for the pipeline's configuration switches (the design
// choices DESIGN.md calls out): each filter must move metrics in its
// documented direction on a corpus engineered to exercise it.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "eval/metrics.h"
#include "synth/corpora.h"
#include "synth/kb_builder.h"
#include "synth/truth.h"

namespace ceres {
namespace {

struct ParsedSiteFixture {
  std::vector<DomDocument> pages;
  eval::SiteTruth truth;
};

ParsedSiteFixture ParseSite(const std::vector<synth::GeneratedPage>& pages) {
  ParsedSiteFixture out;
  for (const synth::GeneratedPage& page : pages) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    EXPECT_TRUE(parsed.ok());
    out.pages.push_back(std::move(parsed).value());
  }
  out.truth = synth::BuildSiteTruth(pages, out.pages);
  return out;
}

class PipelineAblationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new synth::Corpus(synth::MakeImdbCorpus(0.12));
    fixture_ = new ParsedSiteFixture(ParseSite(corpus_->sites[0].pages));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    delete corpus_;
    fixture_ = nullptr;
    corpus_ = nullptr;
  }

  PipelineResult Run(const PipelineConfig& config) {
    Result<PipelineResult> result =
        RunPipeline(fixture_->pages, corpus_->seed_kb, config);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  static synth::Corpus* corpus_;
  static ParsedSiteFixture* fixture_;
};

synth::Corpus* PipelineAblationTest::corpus_ = nullptr;
ParsedSiteFixture* PipelineAblationTest::fixture_ = nullptr;

TEST_F(PipelineAblationTest, InformativenessFilterTradesPagesForPrecision) {
  PipelineConfig with;
  PipelineConfig without;
  without.topic.apply_informativeness_filter = false;
  PipelineResult result_with = Run(with);
  PipelineResult result_without = Run(without);
  // Dropping the filter can only keep equal or more annotated pages.
  EXPECT_GE(result_without.annotated_pages.size(),
            result_with.annotated_pages.size());
}

TEST_F(PipelineAblationTest, RelationFilteringRaisesAnnotationPrecision) {
  PipelineConfig full;
  PipelineConfig topic_only;
  topic_only.annotator.use_relation_filtering = false;
  eval::Prf full_prf = eval::ScoreAnnotations(
      Run(full).annotations, fixture_->truth, corpus_->seed_kb);
  eval::Prf topic_prf = eval::ScoreAnnotations(
      Run(topic_only).annotations, fixture_->truth, corpus_->seed_kb);
  EXPECT_GT(full_prf.precision(), topic_prf.precision());
  // And pays with (at most equal) recall — the §3.2 trade.
  EXPECT_LE(full_prf.recall(), topic_prf.recall() + 1e-9);
}

TEST_F(PipelineAblationTest, TopicOnlyProducesMoreAnnotations) {
  PipelineConfig full;
  PipelineConfig topic_only;
  topic_only.annotator.use_relation_filtering = false;
  EXPECT_LT(Run(full).annotations.size(),
            Run(topic_only).annotations.size());
}

TEST_F(PipelineAblationTest, ClusteringOffStillRuns) {
  PipelineConfig config;
  config.cluster_pages = false;
  PipelineResult result = Run(config);
  // One merged template cluster: everything trains together. Extraction
  // still happens (quality may differ; that's Table 5's business).
  EXPECT_GT(result.extractions.size(), 0u);
  for (int cluster : result.cluster_of_page) EXPECT_EQ(cluster, 0);
}

TEST_F(PipelineAblationTest, DominantXPathAblationChangesTopicChoice) {
  PipelineConfig with;
  PipelineConfig without;
  without.topic.apply_dominant_xpath = false;
  PipelineResult result_with = Run(with);
  PipelineResult result_without = Run(without);
  eval::Prf prf_with = eval::ScoreTopics(result_with.topic_of_page,
                                         fixture_->truth, corpus_->seed_kb);
  eval::Prf prf_without = eval::ScoreTopics(
      result_without.topic_of_page, fixture_->truth, corpus_->seed_kb);
  // The global step never hurts topic precision on template sites.
  EXPECT_GE(prf_with.precision() + 1e-9, prf_without.precision());
}

TEST_F(PipelineAblationTest, DetailFilterKeepsDetailClusters) {
  PipelineConfig config;
  config.filter_non_detail_clusters = true;
  PipelineResult filtered = Run(config);
  // The IMDb-like site is all detail pages: the filter must not reject it.
  EXPECT_GT(filtered.extractions.size(), 0u);
}

TEST(PipelineDetailFilterTest, ChartOnlySiteSkippedEntirely) {
  synth::Corpus corpus = synth::MakeLongTailCorpus(0.15);
  for (const synth::SyntheticSite& site : corpus.sites) {
    if (site.name != "boxofficemojo.com") continue;
    std::vector<DomDocument> pages;
    for (const synth::GeneratedPage& page : site.pages) {
      pages.push_back(std::move(ParseHtml(page.html)).value());
    }
    PipelineConfig config;
    config.filter_non_detail_clusters = true;
    Result<PipelineResult> result =
        RunPipeline(pages, corpus.seed_kb, config);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->extractions.empty());
    EXPECT_TRUE(result->annotations.empty());
  }
}

TEST_F(PipelineAblationTest, HigherExtractionThresholdNeverAddsVolume) {
  PipelineConfig low;
  low.extraction.confidence_threshold = 0.3;
  PipelineConfig high;
  high.extraction.confidence_threshold = 0.9;
  EXPECT_GE(Run(low).extractions.size(), Run(high).extractions.size());
}

}  // namespace
}  // namespace ceres
