file(REMOVE_RECURSE
  "CMakeFiles/table3_swde_f1.dir/table3_swde_f1.cc.o"
  "CMakeFiles/table3_swde_f1.dir/table3_swde_f1.cc.o.d"
  "table3_swde_f1"
  "table3_swde_f1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_swde_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
