#include "core/training.h"

#include <gtest/gtest.h>

#include <set>

#include "core/entity_matcher.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "testing/fixtures.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;
using testing::TinyMovieKb;

// Builds annotations for a small two-page site via the real annotator.
struct TrainingFixture {
  TrainingFixture() {
    docs.push_back(ParseOrDie(FilmPageHtml(
        "Do the Right Thing", "Spike Lee", "Spike Lee",
        {"Spike Lee", "Danny Aiello", "John Turturro"},
        {"Comedy", "Dramedy"})));
    docs.push_back(ParseOrDie(FilmPageHtml(
        "Crooklyn", "Spike Lee", "Nobody", {"Zelda Harris"}, {"Comedy"})));
    for (const DomDocument& doc : docs) {
      ptrs.push_back(&doc);
      mentions.push_back(MatchPageMentions(doc, kb.kb));
    }
    TopicConfig config;
    config.min_annotations_per_page = 2;
    config.common_string_min_count = 100;
    topics = IdentifyTopics(ptrs, mentions, kb.kb, config);
    annotations = AnnotateRelations(ptrs, mentions, topics, kb.kb, {});
  }

  TinyMovieKb kb;
  std::vector<DomDocument> docs;
  std::vector<const DomDocument*> ptrs;
  std::vector<PageMentions> mentions;
  TopicResult topics;
  AnnotationResult annotations;
};

TEST(TrainingTest, TrainsAModelFromAnnotations) {
  TrainingFixture fixture;
  ASSERT_FALSE(fixture.annotations.annotations.empty());
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  Result<TrainedModel> model =
      TrainExtractor(fixture.ptrs, fixture.annotations.annotations,
                     featurizer, fixture.kb.kb.ontology(), TrainingConfig{});
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->model.trained());
  EXPECT_TRUE(model->features.frozen());
  EXPECT_EQ(model->classes.num_classes(),
            2 + fixture.kb.kb.ontology().num_predicates());
}

TEST(TrainingTest, FailsWithoutAnnotations) {
  TrainingFixture fixture;
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  Result<TrainedModel> model = TrainExtractor(
      fixture.ptrs, {}, featurizer, fixture.kb.kb.ontology(), {});
  EXPECT_EQ(model.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TrainingTest, TrainedModelClassifiesAnnotatedNodesCorrectly) {
  TrainingFixture fixture;
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  Result<TrainedModel> model =
      TrainExtractor(fixture.ptrs, fixture.annotations.annotations,
                     featurizer, fixture.kb.kb.ontology(), TrainingConfig{});
  ASSERT_TRUE(model.ok());
  int correct = 0;
  int total = 0;
  for (const Annotation& annotation : fixture.annotations.annotations) {
    SparseVector v = featurizer.Extract(
        *fixture.ptrs[static_cast<size_t>(annotation.page)], annotation.node,
        &model->features);
    auto [cls, confidence] = model->model.Predict(v);
    if (cls == model->classes.ClassOf(annotation.predicate)) ++correct;
    ++total;
  }
  // Training data itself should be classified nearly perfectly.
  EXPECT_GE(correct, total - 1);
}

TEST(TrainingTest, ListExclusionSkipsUnlabeledListMembers) {
  // Page with 3 cast members but only 2 in the KB: the third <li> must not
  // be sampled as a negative when exclusion is on.
  TinyMovieKb kb;
  std::vector<DomDocument> docs;
  docs.push_back(ParseOrDie(FilmPageHtml(
      "Do the Right Thing", "Spike Lee", "Spike Lee",
      {"Danny Aiello", "John Turturro", "Unknown Extra"}, {"Comedy"})));
  std::vector<const DomDocument*> ptrs{&docs[0]};

  // Hand-build annotations: cast labels for the two known actors.
  NodeId aiello = kInvalidNode;
  NodeId turturro = kInvalidNode;
  NodeId extra = kInvalidNode;
  for (NodeId id = 0; id < docs[0].size(); ++id) {
    if (docs[0].node(id).text == "Danny Aiello") aiello = id;
    if (docs[0].node(id).text == "John Turturro") turturro = id;
    if (docs[0].node(id).text == "Unknown Extra") extra = id;
  }
  ASSERT_NE(extra, kInvalidNode);
  std::vector<Annotation> annotations{
      Annotation{0, aiello, kb.cast, kb.aiello},
      Annotation{0, turturro, kb.cast, kb.turturro},
  };

  FeatureExtractor featurizer(ptrs, FeatureConfig{});
  // Run training many times with different seeds; the excluded node must
  // never enter the negative pool. We detect sampling via a whitebox trick:
  // negatives_per_positive high enough to exhaust all candidates.
  TrainingConfig config;
  config.negatives_per_positive = 100;
  config.min_annotated_pages = 1;

  // With exclusion enabled the extra <li> is skipped: the number of
  // negative examples equals all text fields minus positives minus 1.
  const size_t text_fields = docs[0].TextFields().size();
  Result<TrainedModel> model = TrainExtractor(ptrs, annotations, featurizer,
                                              kb.kb.ontology(), config);
  ASSERT_TRUE(model.ok());
  // Count examples indirectly: retrain with exclusion off and compare the
  // achievable negative pool sizes through model behaviour on `extra`.
  SparseVector extra_features =
      featurizer.Extract(docs[0], extra, &model->features);
  auto [cls_with_exclusion, conf1] = model->model.Predict(extra_features);
  // The unlabeled list member looks exactly like the positives, so with
  // exclusion it must be classified as cast, not OTHER.
  EXPECT_EQ(cls_with_exclusion, model->classes.ClassOf(kb.cast));

  config.exclude_list_negatives = false;
  FeatureExtractor featurizer2(ptrs, FeatureConfig{});
  Result<TrainedModel> model2 = TrainExtractor(
      ptrs, annotations, featurizer2, kb.kb.ontology(), config);
  ASSERT_TRUE(model2.ok());
  SparseVector extra_features2 =
      featurizer2.Extract(docs[0], extra, &model2->features);
  auto [cls_without_exclusion, conf2] =
      model2->model.Predict(extra_features2);
  // Without exclusion the extra is a guaranteed negative example (pool
  // exhausted), pulling it toward OTHER.
  EXPECT_EQ(cls_without_exclusion, ClassMap::kOtherClass);
  (void)text_fields;
}

TEST(TrainingTest, MinAnnotatedPagesGuard) {
  TrainingFixture fixture;
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  TrainingConfig config;
  config.min_annotated_pages = 50;  // More pages than the fixture has.
  Result<TrainedModel> model =
      TrainExtractor(fixture.ptrs, fixture.annotations.annotations,
                     featurizer, fixture.kb.kb.ontology(), config);
  EXPECT_EQ(model.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TrainingTest, MaxAnnotatedPagesCapsTraining) {
  TrainingFixture fixture;
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  TrainingConfig config;
  config.max_annotated_pages = 1;
  config.min_annotated_pages = 1;
  Result<TrainedModel> model =
      TrainExtractor(fixture.ptrs, fixture.annotations.annotations,
                     featurizer, fixture.kb.kb.ontology(), config);
  ASSERT_TRUE(model.ok());  // Still trains with one page.
}

TEST(TrainingTest, DeterministicAcrossRuns) {
  TrainingFixture fixture;
  FeatureExtractor featurizer(fixture.ptrs, FeatureConfig{});
  Result<TrainedModel> a =
      TrainExtractor(fixture.ptrs, fixture.annotations.annotations,
                     featurizer, fixture.kb.kb.ontology(), TrainingConfig{});
  Result<TrainedModel> b =
      TrainExtractor(fixture.ptrs, fixture.annotations.annotations,
                     featurizer, fixture.kb.kb.ontology(), TrainingConfig{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->features.size(), b->features.size());
  for (int32_t cls = 0; cls < a->classes.num_classes(); ++cls) {
    EXPECT_DOUBLE_EQ(a->model.BiasAt(cls), b->model.BiasAt(cls));
  }
}

}  // namespace
}  // namespace ceres
