// Ablation (beyond the paper): Knowledge-Vault-style fusion over the
// long-tail corpus — the §5.5.1 future-work pointer ("investigate how many
// of these mistakes can be solved by applying knowledge fusion on the
// extraction results"). Compares triple-level precision of the raw
// extraction pool against the fused, reliability-weighted triple set, and
// prints the learned per-site reliabilities (the quirky sites should sink).

#include <cstdio>
#include <set>
#include <tuple>

#include "bench/longtail_common.h"
#include "fusion/knowledge_fusion.h"
#include "text/fuzzy_matcher.h"
#include "text/normalize.h"

namespace {

using namespace ceres;         // NOLINT(build/namespaces)
using namespace ceres::bench;  // NOLINT(build/namespaces)

using SemanticTriple = std::tuple<std::string, PredicateId, std::string>;

SemanticTriple Canonical(const std::string& subject, PredicateId predicate,
                         const std::string& object) {
  return {StripTrailingYear(NormalizeText(subject)), predicate,
          NormalizeText(object)};
}

}  // namespace

int main() {
  const double scale = synth::EnvScale();
  std::printf(
      "Fusion ablation: raw vs fused triple precision on the long-tail "
      "corpus (scale=%.2f)\n\n",
      scale);

  ParsedCorpus corpus = ParseCorpus(synth::MakeLongTailCorpus(scale));
  std::vector<LongTailSiteRun> runs = RunLongTail(corpus);
  const Ontology& ontology = corpus.corpus.seed_kb.ontology();

  // Semantic truth: every (topic, predicate, object) asserted by any page.
  std::set<SemanticTriple> truth;
  for (const ParsedSite& site : corpus.sites) {
    for (const eval::PageTruth& page : site.truth.pages) {
      if (page.topic == kInvalidEntity) continue;
      for (const eval::PageTruth::Fact& fact : page.facts) {
        if (fact.predicate == kNamePredicate) continue;
        truth.insert(
            Canonical(page.topic_name, fact.predicate, fact.object_text));
      }
    }
  }

  // Raw pool: distinct semantic triples from extractions at 0.5.
  std::set<SemanticTriple> raw;
  std::vector<fusion::SiteExtractions> per_site;
  for (const LongTailSiteRun& run : runs) {
    fusion::SiteExtractions site;
    site.site = run.site->name;
    for (const Extraction& extraction : run.result.extractions) {
      if (extraction.predicate == kNamePredicate) continue;
      if (extraction.confidence < 0.5) continue;
      raw.insert(Canonical(extraction.subject, extraction.predicate,
                           extraction.object));
      site.extractions.push_back(extraction);
    }
    per_site.push_back(std::move(site));
  }
  int64_t raw_correct = 0;
  for (const SemanticTriple& triple : raw) {
    if (truth.count(triple) > 0) ++raw_correct;
  }

  fusion::FusionResult fused =
      fusion::FuseExtractions(per_site, ontology);

  eval::TableReport table({"Triple set", "#Triples", "Precision"});
  table.AddRow({"Raw extractions (deduped)", std::to_string(raw.size()),
                eval::FormatRatio(raw.empty() ? 0.0
                                              : static_cast<double>(
                                                    raw_correct) /
                                                    static_cast<double>(
                                                        raw.size()))});
  for (double floor : {0.0, 0.6, 0.8, 0.9}) {
    int64_t kept = 0;
    int64_t correct = 0;
    for (const fusion::FusedTriple& triple : fused.triples) {
      if (triple.score < floor) continue;
      ++kept;
      if (truth.count({triple.subject, triple.predicate, triple.object}) >
          0) {
        ++correct;
      }
    }
    table.AddRow({std::string("Fused, score >= ") + eval::FormatRatio(floor),
                  std::to_string(kept),
                  eval::FormatRatio(kept == 0 ? 0.0
                                              : static_cast<double>(correct) /
                                                    static_cast<double>(
                                                        kept))});
  }
  table.Print();

  // Reliability extremes.
  std::vector<fusion::SiteReliability> sites = fused.sites;
  std::sort(sites.begin(), sites.end(),
            [](const auto& a, const auto& b) {
              return a.reliability > b.reliability;
            });
  std::printf("\nLearned site reliabilities (top 3 / bottom 3):\n");
  for (size_t i = 0; i < sites.size(); ++i) {
    if (i == 3 && sites.size() > 6) {
      std::printf("  ...\n");
      i = sites.size() - 3;
    }
    std::printf("  %-30s %.2f  (%lld triples)\n", sites[i].site.c_str(),
                sites[i].reliability,
                static_cast<long long>(sites[i].triples));
  }
  std::printf(
      "\nNot a paper table: the paper defers fusion to future work; this "
      "bench quantifies the uplift its pointer predicts (corroborated "
      "triples outrank singleton ones; unreliable sites sink).\n");
  return 0;
}
