#include "dom/html_parser.h"

#include <cctype>
#include <charconv>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace ceres {

namespace {

const std::unordered_set<std::string>& VoidElements() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "area", "base",  "br",    "col",  "embed", "hr",  "img", "input",
      "link", "meta",  "param", "source", "track", "wbr"};
  return *kSet;
}

// Tags that implicitly close an open element of the same (or listed) kind.
// Maps a start tag to the set of open tags it closes when found on top of
// the stack.
const std::unordered_map<std::string, std::unordered_set<std::string>>&
AutoCloseRules() {
  static const auto* kRules =
      new std::unordered_map<std::string, std::unordered_set<std::string>>{
          {"li", {"li"}},
          {"p", {"p"}},
          {"dt", {"dt", "dd"}},
          {"dd", {"dt", "dd"}},
          {"td", {"td", "th"}},
          {"th", {"td", "th"}},
          {"tr", {"td", "th", "tr"}},
          {"option", {"option"}},
      };
  return *kRules;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

// Appends a code point to `out` as UTF-8.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// Parses an attribute list between a tag name and '>' / '/>'.
void ParseAttributes(std::string_view body, std::vector<DomAttribute>* out) {
  size_t i = 0;
  while (i < body.size()) {
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    if (i >= body.size() || body[i] == '/') break;
    size_t name_start = i;
    while (i < body.size() && body[i] != '=' && body[i] != '/' &&
           !std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    std::string name = ToLower(body.substr(name_start, i - name_start));
    if (name.empty()) {
      ++i;
      continue;
    }
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    std::string value;
    if (i < body.size() && body[i] == '=') {
      ++i;
      while (i < body.size() &&
             std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      if (i < body.size() && (body[i] == '"' || body[i] == '\'')) {
        char quote = body[i++];
        size_t value_start = i;
        while (i < body.size() && body[i] != quote) ++i;
        value = DecodeEntities(body.substr(value_start, i - value_start));
        if (i < body.size()) ++i;  // Closing quote.
      } else {
        size_t value_start = i;
        while (i < body.size() && body[i] != '/' &&
               !std::isspace(static_cast<unsigned char>(body[i]))) {
          ++i;
        }
        value = DecodeEntities(body.substr(value_start, i - value_start));
      }
    }
    out->push_back(DomAttribute{std::move(name), std::move(value)});
  }
}

// Appends decoded, whitespace-collapsed character data to a node's text.
void AppendText(DomNode* node, std::string_view raw) {
  std::string decoded = DecodeEntities(raw);
  std::string_view trimmed = StripWhitespace(decoded);
  if (trimmed.empty()) return;
  std::string collapsed;
  collapsed.reserve(trimmed.size());
  bool last_space = false;
  for (char c : trimmed) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!last_space) collapsed.push_back(' ');
      last_space = true;
    } else {
      collapsed.push_back(c);
      last_space = false;
    }
  }
  if (!node->text.empty()) node->text.push_back(' ');
  node->text += collapsed;
}

}  // namespace

std::string DecodeEntities(std::string_view text) {
  static const auto* kNamed = new std::unordered_map<std::string, std::string>{
      {"amp", "&"},   {"lt", "<"},     {"gt", ">"},   {"quot", "\""},
      {"apos", "'"},  {"nbsp", " "},   {"copy", "©"}, {"reg", "®"},
      {"hellip", "…"}, {"mdash", "—"}, {"ndash", "–"}, {"rsquo", "’"},
      {"lsquo", "‘"}, {"rdquo", "”"},  {"ldquo", "“"}, {"times", "×"},
  };
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(text[i++]);
      continue;
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (!entity.empty() && entity[0] == '#') {
      uint32_t cp = 0;
      bool ok = false;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        auto [p, ec] = std::from_chars(entity.data() + 2,
                                       entity.data() + entity.size(), cp, 16);
        ok = ec == std::errc() && p == entity.data() + entity.size();
      } else {
        auto [p, ec] = std::from_chars(entity.data() + 1,
                                       entity.data() + entity.size(), cp, 10);
        ok = ec == std::errc() && p == entity.data() + entity.size();
      }
      if (ok && cp > 0 && cp <= 0x10FFFF) {
        AppendUtf8(cp, &out);
        i = semi + 1;
        continue;
      }
    } else {
      auto it = kNamed->find(std::string(entity));
      if (it != kNamed->end()) {
        out += it->second;
        i = semi + 1;
        continue;
      }
    }
    out.push_back(text[i++]);
  }
  return out;
}

Result<DomDocument> ParseHtml(std::string_view html,
                              const HtmlParseOptions& options) {
  DomDocument doc;
  std::vector<NodeId> stack{doc.root()};
  bool saw_explicit_html = false;

  size_t i = 0;
  const size_t n = html.size();
  while (i < n) {
    if (html[i] != '<') {
      size_t next = html.find('<', i);
      if (next == std::string_view::npos) next = n;
      AppendText(&doc.mutable_node(stack.back()), html.substr(i, next - i));
      i = next;
      continue;
    }
    // Comment.
    if (html.compare(i, 4, "<!--") == 0) {
      size_t end = html.find("-->", i + 4);
      i = end == std::string_view::npos ? n : end + 3;
      continue;
    }
    // Doctype or other declaration.
    if (i + 1 < n && (html[i + 1] == '!' || html[i + 1] == '?')) {
      size_t end = html.find('>', i);
      i = end == std::string_view::npos ? n : end + 1;
      continue;
    }
    size_t close = html.find('>', i);
    if (close == std::string_view::npos) {
      // Trailing junk; treat as text.
      AppendText(&doc.mutable_node(stack.back()), html.substr(i));
      break;
    }
    std::string_view tag_body = html.substr(i + 1, close - i - 1);
    i = close + 1;
    if (tag_body.empty()) continue;

    if (tag_body[0] == '/') {
      // End tag: pop to the matching open element, ignoring if absent.
      std::string tag = ToLower(StripWhitespace(tag_body.substr(1)));
      for (size_t depth = stack.size(); depth-- > 0;) {
        if (doc.node(stack[depth]).tag == tag) {
          if (depth == 0) break;  // Never pop the root.
          stack.resize(depth);
          break;
        }
      }
      continue;
    }

    // Start tag.
    size_t name_end = 0;
    while (name_end < tag_body.size() && tag_body[name_end] != '/' &&
           !std::isspace(static_cast<unsigned char>(tag_body[name_end]))) {
      ++name_end;
    }
    std::string tag = ToLower(tag_body.substr(0, name_end));
    if (tag.empty()) continue;
    bool self_closing = !tag_body.empty() && tag_body.back() == '/';
    std::vector<DomAttribute> attributes;
    ParseAttributes(tag_body.substr(name_end), &attributes);

    if (tag == "html" && !saw_explicit_html) {
      // Merge into the implicit root rather than nesting a second <html>.
      saw_explicit_html = true;
      doc.mutable_node(doc.root()).attributes = std::move(attributes);
      continue;
    }

    // Implicit closes (e.g. <li> after an unclosed <li>).
    auto rule = AutoCloseRules().find(tag);
    if (rule != AutoCloseRules().end()) {
      while (stack.size() > 1 &&
             rule->second.count(doc.node(stack.back()).tag) > 0) {
        stack.pop_back();
      }
    }

    if (doc.size() >= options.max_nodes) {
      return Status::ResourceExhausted(
          StrCat("page exceeds max_nodes=", options.max_nodes));
    }
    NodeId id = doc.AddChild(stack.back(), tag);
    doc.mutable_node(id).attributes = std::move(attributes);

    bool is_void = VoidElements().count(tag) > 0;
    if ((tag == "script" || tag == "style") && !self_closing) {
      // Raw-text element: consume to the matching close tag.
      std::string close_tag = StrCat("</", tag);
      size_t end = i;
      while (true) {
        end = html.find('<', end);
        if (end == std::string_view::npos) {
          end = n;
          break;
        }
        if (end + close_tag.size() <= n) {
          std::string candidate = ToLower(html.substr(end, close_tag.size()));
          if (candidate == close_tag) break;
        }
        ++end;
      }
      if (!options.skip_script_content) {
        AppendText(&doc.mutable_node(id), html.substr(i, end - i));
      }
      size_t tag_end = html.find('>', end);
      i = tag_end == std::string_view::npos ? n : tag_end + 1;
      continue;
    }
    if (!is_void && !self_closing) stack.push_back(id);
  }
  return doc;
}

}  // namespace ceres
