#include "serve/model_registry.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace ceres::serve {

namespace {

/// Approximate heap overhead of one string stored in a node-based
/// container (node, hash bucket, small-string buffer).
constexpr size_t kPerStringOverhead = 64;

void BumpRegistryCounter(const char* name, int64_t delta = 1) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Default().GetCounter(name)->Increment(delta);
}

}  // namespace

size_t EstimateModelBytes(const TrainedModel& model) {
  const size_t classes = static_cast<size_t>(model.model.num_classes());
  const size_t features = static_cast<size_t>(model.model.num_features());
  // Dense weight matrix incl. bias column.
  size_t bytes = classes * (features + 1) * sizeof(double);
  // Feature dictionary: flat id array plus open-addressing probe table.
  bytes += model.features.MemoryBytes();
  for (const std::string& entry : model.frequent_strings) {
    bytes += entry.size() + kPerStringOverhead;
  }
  return bytes;
}

SiteModel::SiteModel(std::string site_in, int64_t version_in,
                     TrainedModel model_in)
    : site(std::move(site_in)),
      version(version_in),
      model(std::move(model_in)),
      featurizer(MakeFeaturizer(model)) {
  bytes = EstimateModelBytes(model);
}

ModelRegistry::ModelRegistry(Ontology ontology, ModelRegistryConfig config)
    : ontology_(std::move(ontology)), config_(std::move(config)) {}

Result<std::shared_ptr<const SiteModel>> ModelRegistry::Get(
    const std::string& site, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  std::shared_ptr<InflightLoad> load;
  {
    UniqueMutexLock lock(mu_);
    auto it = cache_.find(site);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      ++stats_.hits;
      if (cache_hit != nullptr) *cache_hit = true;
      BumpRegistryCounter("ceres_registry_hits_total");
      return it->second.model;
    }
    ++stats_.misses;
    BumpRegistryCounter("ceres_registry_misses_total");
    auto in = inflight_.find(site);
    if (in != inflight_.end()) {
      // Another thread is already loading this site; ride its result.
      load = in->second;
      ++load->waiters;
      load->done.wait(lock, [&load] { return load->finished; });
      --load->waiters;
      return load->result;
    }
    load = std::make_shared<InflightLoad>();
    inflight_[site] = load;
  }

  // Disk load and featurizer rebuild happen outside the lock, so distinct
  // cold sites load concurrently and warm hits never wait on a load.
  int64_t version = -1;
  const obs::TimePoint load_start = obs::MonotonicNow();
  Result<TrainedModel> trained =
      LoadLatestModel(config_.root_dir, site, ontology_, &version);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetHistogram("ceres_registry_load_us")
        ->Record(obs::ElapsedMicros(load_start, obs::MonotonicNow()).count());
  }
  Result<std::shared_ptr<const SiteModel>> result =
      Status::Internal("unreachable");
  if (trained.ok()) {
    result = std::shared_ptr<const SiteModel>(std::make_shared<SiteModel>(
        site, version, std::move(trained).value()));
  } else {
    result = PrependContext(trained.status(), StrCat("loading model ", site));
  }

  {
    MutexLock lock(mu_);
    if (result.ok()) {
      ++stats_.loads;
      BumpRegistryCounter("ceres_registry_loads_total");
      InstallLocked(site, result.value());
    } else {
      ++stats_.load_failures;
      BumpRegistryCounter("ceres_registry_load_failures_total");
    }
    load->result = result;
    load->finished = true;
    inflight_.erase(site);
  }
  load->done.notify_all();
  return result;
}

Result<int64_t> ModelRegistry::Publish(const std::string& site,
                                       const TrainedModel& model) {
  CERES_ASSIGN_OR_RETURN(
      int64_t version,
      SaveModelVersion(config_.root_dir, site, model, ontology_),
      StrCat("publishing model ", site));
  auto site_model = std::make_shared<SiteModel>(site, version, model);
  MutexLock lock(mu_);
  if (cache_.count(site) > 0) {
    ++stats_.hot_swaps;
    BumpRegistryCounter("ceres_registry_hot_swaps_total");
  }
  InstallLocked(site, std::move(site_model));
  return version;
}

void ModelRegistry::Invalidate(const std::string& site) {
  MutexLock lock(mu_);
  auto it = cache_.find(site);
  if (it == cache_.end()) return;
  stats_.bytes_cached -= it->second.model->bytes;
  --stats_.models_cached;
  lru_.erase(it->second.lru_position);
  cache_.erase(it);
}

RegistryStats ModelRegistry::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void ModelRegistry::InstallLocked(const std::string& site,
                                  std::shared_ptr<const SiteModel> model) {
  auto it = cache_.find(site);
  if (it != cache_.end()) {
    // Never step a published entry backwards: a racing cold load must not
    // overwrite the newer model a concurrent Publish just installed.
    if (it->second.model->version >= model->version) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return;
    }
    stats_.bytes_cached -= it->second.model->bytes;
    stats_.bytes_cached += model->bytes;
    it->second.model = std::move(model);
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  } else {
    lru_.push_front(site);
    stats_.bytes_cached += model->bytes;
    ++stats_.models_cached;
    cache_.emplace(site, CacheEntry{std::move(model), lru_.begin()});
  }
  EvictOverBudgetLocked(site);
}

void ModelRegistry::EvictOverBudgetLocked(const std::string& keep) {
  while (stats_.bytes_cached > config_.byte_budget && !lru_.empty()) {
    const std::string& victim = lru_.back();
    if (victim == keep) break;  // the fresh entry survives its own insert
    auto it = cache_.find(victim);
    stats_.bytes_cached -= it->second.model->bytes;
    --stats_.models_cached;
    ++stats_.evictions;
    BumpRegistryCounter("ceres_registry_evictions_total");
    cache_.erase(it);
    lru_.pop_back();
  }
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Default();
    registry.GetGauge("ceres_registry_bytes_cached")
        ->Set(static_cast<int64_t>(stats_.bytes_cached));
    registry.GetGauge("ceres_registry_models_cached")
        ->Set(stats_.models_cached);
  }
}

}  // namespace ceres::serve
