
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/detail_page_detector.cc" "src/cluster/CMakeFiles/ceres_cluster.dir/detail_page_detector.cc.o" "gcc" "src/cluster/CMakeFiles/ceres_cluster.dir/detail_page_detector.cc.o.d"
  "/root/repo/src/cluster/page_clustering.cc" "src/cluster/CMakeFiles/ceres_cluster.dir/page_clustering.cc.o" "gcc" "src/cluster/CMakeFiles/ceres_cluster.dir/page_clustering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/dom/CMakeFiles/ceres_dom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/text/CMakeFiles/ceres_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
