#include "text/tokenizer.h"

#include "text/normalize.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {

std::vector<std::string> Tokenize(std::string_view text) {
  std::string norm = NormalizeText(text);
  if (norm.empty()) return {};
  return Split(norm, ' ');
}

std::vector<std::string> WordShingles(std::string_view text, size_t k) {
  CERES_CHECK(k >= 1);
  std::vector<std::string> tokens = Tokenize(text);
  if (tokens.empty()) return {};
  if (tokens.size() <= k) {
    return {Join(tokens, " ")};
  }
  std::vector<std::string> shingles;
  shingles.reserve(tokens.size() - k + 1);
  for (size_t i = 0; i + k <= tokens.size(); ++i) {
    std::string s = tokens[i];
    for (size_t j = 1; j < k; ++j) {
      s += ' ';
      s += tokens[i + j];
    }
    shingles.push_back(std::move(s));
  }
  return shingles;
}

}  // namespace ceres
