#include "core/doc_cache.h"

#include "text/normalize.h"

namespace ceres {

const std::string& NormalizedTextCache::Normalized(NodeId id) {
  if (entries_.empty()) {
    entries_.resize(static_cast<size_t>(doc_->size()));
  }
  Entry& entry = entries_[static_cast<size_t>(id)];
  if (!entry.filled) {
    NormalizeTextInto(doc_->node(id).text, &entry.text);
    entry.filled = true;
  }
  return entry.text;
}

}  // namespace ceres
