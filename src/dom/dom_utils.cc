#include "dom/dom_utils.h"

#include <algorithm>

namespace ceres {

NodeId LowestCommonAncestor(const DomDocument& doc, NodeId a, NodeId b) {
  int depth_a = doc.Depth(a);
  int depth_b = doc.Depth(b);
  while (depth_a > depth_b) {
    a = doc.node(a).parent;
    --depth_a;
  }
  while (depth_b > depth_a) {
    b = doc.node(b).parent;
    --depth_b;
  }
  while (a != b) {
    a = doc.node(a).parent;
    b = doc.node(b).parent;
  }
  return a;
}

std::vector<NodeId> AncestorChain(const DomDocument& doc, NodeId id) {
  std::vector<NodeId> chain;
  NodeId cur = doc.node(id).parent;
  while (cur != kInvalidNode) {
    chain.push_back(cur);
    cur = doc.node(cur).parent;
  }
  return chain;
}

std::vector<NodeId> SiblingWindow(const DomDocument& doc, NodeId id,
                                  int width) {
  const DomNode& node = doc.node(id);
  if (node.parent == kInvalidNode) return {};
  const std::vector<NodeId>& siblings = doc.node(node.parent).children;
  const int pos = node.child_position;
  const int lo = std::max(0, pos - width);
  const int hi = std::min(static_cast<int>(siblings.size()) - 1, pos + width);
  std::vector<NodeId> out;
  for (int i = lo; i <= hi; ++i) {
    if (i != pos) out.push_back(siblings[i]);
  }
  return out;
}

NodeId HighestExclusiveAncestor(const DomDocument& doc, NodeId mention,
                                const std::vector<NodeId>& others) {
  NodeId best = mention;
  NodeId cur = doc.node(mention).parent;
  while (cur != kInvalidNode) {
    for (NodeId other : others) {
      if (other != mention && doc.IsAncestorOrSelf(cur, other)) return best;
    }
    best = cur;
    cur = doc.node(cur).parent;
  }
  return best;
}

std::vector<NodeId> Subtree(const DomDocument& doc, NodeId id) {
  std::vector<NodeId> out;
  std::vector<NodeId> pending{id};
  while (!pending.empty()) {
    NodeId cur = pending.back();
    pending.pop_back();
    out.push_back(cur);
    const std::vector<NodeId>& children = doc.node(cur).children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      pending.push_back(*it);
    }
  }
  return out;
}

int CountInSubtree(const DomDocument& doc, NodeId root,
                   const std::vector<NodeId>& candidates) {
  int count = 0;
  for (NodeId candidate : candidates) {
    if (doc.IsAncestorOrSelf(root, candidate)) ++count;
  }
  return count;
}

}  // namespace ceres
