#ifndef CERES_DOM_DOM_UTILS_H_
#define CERES_DOM_DOM_UTILS_H_

#include <vector>

#include "dom/dom_tree.h"

namespace ceres {

/// Lowest common ancestor of two nodes; both must belong to `doc`.
NodeId LowestCommonAncestor(const DomDocument& doc, NodeId a, NodeId b);

/// The chain of ancestors of `id` from its parent up to the root,
/// nearest first.
std::vector<NodeId> AncestorChain(const DomDocument& doc, NodeId id);

/// Siblings of `id` within `width` positions on either side (excluding `id`
/// itself), ordered left-to-right. Used by the §4.2 structural feature
/// window.
std::vector<NodeId> SiblingWindow(const DomDocument& doc, NodeId id,
                                  int width);

/// Calls `fn(sibling)` for each node SiblingWindow would return, in the
/// same left-to-right order, without materializing a vector. This is the
/// hot-path form: the featurizer visits the window for every (node, level)
/// pair of every text field.
template <typename Fn>
void ForEachSiblingInWindow(const DomDocument& doc, NodeId id, int width,
                            Fn&& fn) {
  const DomNode& node = doc.node(id);
  if (node.parent == kInvalidNode) return;
  // Step back up to `width` siblings, then walk forward to `id` so the
  // left side comes out in ascending order.
  NodeId start = id;
  for (int i = 0; i < width; ++i) {
    const NodeId prev = doc.node(start).prev_sibling;
    if (prev == kInvalidNode) break;
    start = prev;
  }
  for (NodeId cur = start; cur != id; cur = doc.node(cur).next_sibling) {
    fn(cur);
  }
  NodeId cur = node.next_sibling;
  for (int i = 0; i < width && cur != kInvalidNode; ++i) {
    fn(cur);
    cur = doc.node(cur).next_sibling;
  }
}

/// The highest ancestor of `mention` whose subtree contains `mention` but
/// none of `others` (Algorithm 2 line 5). Returns `mention` itself when even
/// its parent's subtree contains another mention.
NodeId HighestExclusiveAncestor(const DomDocument& doc, NodeId mention,
                                const std::vector<NodeId>& others);

/// All nodes of the subtree rooted at `id` (inclusive), preorder.
std::vector<NodeId> Subtree(const DomDocument& doc, NodeId id);

/// Count of nodes from `candidates` that lie in the subtree rooted at
/// `root` (inclusive).
int CountInSubtree(const DomDocument& doc, NodeId root,
                   const std::vector<NodeId>& candidates);

}  // namespace ceres

#endif  // CERES_DOM_DOM_UTILS_H_
