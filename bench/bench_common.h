#ifndef CERES_BENCH_BENCH_COMMON_H_
#define CERES_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/vertex.h"
#include "core/pipeline.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "synth/corpora.h"

namespace ceres::bench {

/// One site of a corpus, parsed and paired with its resolved ground truth.
struct ParsedSite {
  std::string name;
  std::string focus;
  std::vector<DomDocument> pages;
  eval::SiteTruth truth;
};

/// A corpus ready for experimentation: the seed KB plus parsed sites.
struct ParsedCorpus {
  explicit ParsedCorpus(synth::Corpus corpus_in)
      : corpus(std::move(corpus_in)) {}
  synth::Corpus corpus;
  std::vector<ParsedSite> sites;
  /// Heap allocations performed by the ParseHtml calls alone (excludes
  /// ground-truth resolution); 0 when allocation counting is compiled out.
  uint64_t parse_allocs = 0;
};

/// Parses every page of every site and resolves ground truth. Aborts on
/// parse failures (generator output is trusted). `alloc_counter`, when
/// non-null, is read around each ParseHtml call to fill parse_allocs —
/// binaries that gate on allocation counts pass util::AllocationCount
/// (only they link ceres_alloc_count, so the symbol cannot be referenced
/// here unconditionally).
ParsedCorpus ParseCorpus(synth::Corpus corpus,
                         uint64_t (*alloc_counter)() = nullptr);

/// The paper's 50/50 annotation/evaluation split (§5.1.1): even page
/// indices train, odd evaluate.
struct Split {
  std::vector<PageIndex> train;
  std::vector<PageIndex> eval;
};
Split HalfSplit(size_t num_pages);

/// Extraction system selector for comparative tables.
enum class System { kCeresFull, kCeresTopic };

/// Paper-default pipeline configuration for the given system, with the
/// 50/50 split applied.
PipelineConfig MakeConfig(System system, const Split& split);

/// Runs the pipeline on one parsed site; aborts on configuration errors.
PipelineResult RunSite(const ParsedSite& site, const KnowledgeBase& seed_kb,
                       const PipelineConfig& config);

/// Builds the "manual annotations" for Vertex++ from the ground truth of
/// the first `num_pages` training pages that have a topic (the paper's
/// two-page wrapper-induction protocol; we default to three for robustness
/// to missing fields).
std::vector<Annotation> ManualAnnotations(const ParsedSite& site,
                                          const Split& split, int num_pages);

/// Learns and applies Vertex++ on one site; returns extractions over the
/// eval half (empty when learning fails).
std::vector<Extraction> RunVertex(const ParsedSite& site, const Split& split,
                                  int manual_pages = 4);

/// Resolves the vertical's evaluated predicate ids (plus NAME).
std::vector<PredicateId> EvalPredicates(const synth::Corpus& corpus,
                                        bool include_name);

/// Sums a per-predicate map into a single Prf.
eval::Prf SumPrf(const std::map<PredicateId, eval::Prf>& by_predicate);

/// Runs `body(site_index)` over all sites of the corpus in parallel
/// (per-site pipeline runs are independent and deterministic).
void ForEachSite(const ParsedCorpus& corpus,
                 const std::function<void(size_t)>& body);

/// Sink for the machine-readable BENCH lines a bench prints. Emit() writes
/// `BENCH <json>` to stdout and remembers the JSON object; Persist() (the
/// --persist flag) rewrites them to `BENCH_<name>.json` — one object per
/// line — so each run can leave a committed result trail at the repo root.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// `json_object` is a complete JSON object, no trailing newline.
  void Emit(const std::string& json_object);

  /// Writes the emitted objects to `path` (empty = "BENCH_<name>.json" in
  /// the current directory). Returns false (with a message on stderr) when
  /// the file cannot be written.
  bool Persist(const std::string& path = "") const;

 private:
  std::string name_;
  std::vector<std::string> lines_;
};

}  // namespace ceres::bench

#endif  // CERES_BENCH_BENCH_COMMON_H_
