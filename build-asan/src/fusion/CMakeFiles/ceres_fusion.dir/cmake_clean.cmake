file(REMOVE_RECURSE
  "CMakeFiles/ceres_fusion.dir/knowledge_fusion.cc.o"
  "CMakeFiles/ceres_fusion.dir/knowledge_fusion.cc.o.d"
  "libceres_fusion.a"
  "libceres_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
