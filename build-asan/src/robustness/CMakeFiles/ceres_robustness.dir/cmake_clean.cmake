file(REMOVE_RECURSE
  "CMakeFiles/ceres_robustness.dir/fault_injector.cc.o"
  "CMakeFiles/ceres_robustness.dir/fault_injector.cc.o.d"
  "CMakeFiles/ceres_robustness.dir/resilient_loader.cc.o"
  "CMakeFiles/ceres_robustness.dir/resilient_loader.cc.o.d"
  "libceres_robustness.a"
  "libceres_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
