#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace ceres {
namespace {

LabeledExample Example(std::vector<std::pair<int32_t, double>> entries,
                       int32_t label) {
  LabeledExample example;
  for (auto& [index, value] : entries) example.features.Add(index, value);
  example.features.Finalize();
  example.label = label;
  return example;
}

TEST(LogisticRegressionTest, SeparatesTwoClasses) {
  std::vector<LabeledExample> examples;
  for (int i = 0; i < 20; ++i) {
    examples.push_back(Example({{0, 1.0}}, 0));
    examples.push_back(Example({{1, 1.0}}, 1));
  }
  LogisticRegression model;
  Result<LbfgsResult> fit = model.Train(examples, 2, 2);
  ASSERT_TRUE(fit.ok());
  SparseVector a;
  a.Add(0, 1.0);
  a.Finalize();
  auto [cls_a, conf_a] = model.Predict(a);
  EXPECT_EQ(cls_a, 0);
  EXPECT_GT(conf_a, 0.8);
  SparseVector b;
  b.Add(1, 1.0);
  b.Finalize();
  EXPECT_EQ(model.Predict(b).first, 1);
}

TEST(LogisticRegressionTest, MultinomialThreeClasses) {
  std::vector<LabeledExample> examples;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    int cls = i % 3;
    // Each class fires its own feature plus a noisy shared one.
    std::vector<std::pair<int32_t, double>> entries{
        {cls, 1.0}, {3, rng.UniformDouble()}};
    examples.push_back(Example(entries, cls));
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Train(examples, 4, 3).ok());
  for (int cls = 0; cls < 3; ++cls) {
    SparseVector v;
    v.Add(cls, 1.0);
    v.Finalize();
    EXPECT_EQ(model.Predict(v).first, cls);
  }
}

TEST(LogisticRegressionTest, ProbabilitiesSumToOne) {
  std::vector<LabeledExample> examples{Example({{0, 1.0}}, 0),
                                       Example({{1, 1.0}}, 1),
                                       Example({{2, 1.0}}, 2)};
  LogisticRegression model;
  ASSERT_TRUE(model.Train(examples, 3, 3).ok());
  SparseVector v;
  v.Add(0, 0.5);
  v.Add(2, 0.5);
  v.Finalize();
  std::vector<double> probs = model.PredictProbabilities(v);
  double sum = 0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LogisticRegressionTest, RegularizationShrinksWeights) {
  std::vector<LabeledExample> examples;
  for (int i = 0; i < 10; ++i) {
    examples.push_back(Example({{0, 1.0}}, 0));
    examples.push_back(Example({{1, 1.0}}, 1));
  }
  LogisticRegression strong;
  LogRegConfig strong_config;
  strong_config.l2_c = 0.01;  // Strong penalty.
  ASSERT_TRUE(strong.Train(examples, 2, 2, strong_config).ok());
  LogisticRegression weak;
  LogRegConfig weak_config;
  weak_config.l2_c = 100.0;  // Weak penalty.
  ASSERT_TRUE(weak.Train(examples, 2, 2, weak_config).ok());
  EXPECT_LT(std::fabs(strong.WeightAt(0, 0)),
            std::fabs(weak.WeightAt(0, 0)));
}

TEST(LogisticRegressionTest, UnseenFeatureFallsBackToPrior) {
  // With an imbalanced training set, an all-unknown-feature example should
  // get the majority class (intercepts are unregularized).
  std::vector<LabeledExample> examples;
  for (int i = 0; i < 30; ++i) examples.push_back(Example({{0, 1.0}}, 0));
  for (int i = 0; i < 10; ++i) examples.push_back(Example({{1, 1.0}}, 1));
  LogisticRegression model;
  ASSERT_TRUE(model.Train(examples, 2, 2).ok());
  SparseVector empty;
  empty.Finalize();
  EXPECT_EQ(model.Predict(empty).first, 0);
}

TEST(LogisticRegressionTest, ErrorsOnBadInput) {
  LogisticRegression model;
  EXPECT_EQ(model.Train({}, 2, 2).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<LabeledExample> examples{Example({{0, 1.0}}, 5)};
  EXPECT_EQ(model.Train(examples, 2, 2).status().code(),
            StatusCode::kInvalidArgument);

  LabeledExample unfinalized;
  unfinalized.features.Add(0, 1.0);
  unfinalized.label = 0;
  std::vector<LabeledExample> bad;
  bad.push_back(std::move(unfinalized));
  EXPECT_EQ(model.Train(bad, 2, 2).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(model.Train({Example({{0, 1.0}}, 0)}, 2, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LogisticRegressionTest, ExampleWeightsMatter) {
  // One heavily weighted contrarian example should beat three normal ones
  // carrying the same feature.
  std::vector<LabeledExample> examples;
  for (int i = 0; i < 3; ++i) examples.push_back(Example({{0, 1.0}}, 0));
  LabeledExample heavy = Example({{0, 1.0}}, 1);
  heavy.weight = 30.0;
  examples.push_back(std::move(heavy));
  LogisticRegression model;
  ASSERT_TRUE(model.Train(examples, 1, 2).ok());
  SparseVector v;
  v.Add(0, 1.0);
  v.Finalize();
  EXPECT_EQ(model.Predict(v).first, 1);
}

TEST(LogisticRegressionTest, RecoversOnNoisyLinearlySeparableData) {
  Rng rng(11);
  std::vector<LabeledExample> examples;
  for (int i = 0; i < 400; ++i) {
    double x0 = rng.Gaussian(0, 1);
    double x1 = rng.Gaussian(0, 1);
    int label = x0 + 0.5 * x1 > 0 ? 1 : 0;
    if (rng.Bernoulli(0.05)) label = 1 - label;  // 5% label noise.
    LabeledExample example;
    example.features.Add(0, x0);
    example.features.Add(1, x1);
    example.features.Finalize();
    example.label = label;
    examples.push_back(std::move(example));
  }
  LogisticRegression model;
  ASSERT_TRUE(model.Train(examples, 2, 2).ok());
  int correct = 0;
  int total = 0;
  for (int i = 0; i < 200; ++i) {
    double x0 = rng.Gaussian(0, 1);
    double x1 = rng.Gaussian(0, 1);
    SparseVector v;
    v.Add(0, x0);
    v.Add(1, x1);
    v.Finalize();
    int truth = x0 + 0.5 * x1 > 0 ? 1 : 0;
    if (model.Predict(v).first == truth) ++correct;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

}  // namespace
}  // namespace ceres
