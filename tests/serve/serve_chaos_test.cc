// Chaos coverage for the online extraction service: model files and the
// request stream are corrupted through PR 1's fault injector, and the
// service must degrade into typed sheds — never crash, never hand back
// silently empty results.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "robustness/fault_injector.h"
#include "serve/extraction_service.h"
#include "serve/serve_test_util.h"
#include "util/random.h"

namespace ceres::serve {
namespace {

using ceres::testing::TrainedFilmSite;

constexpr char kSite[] = "films.example";

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/serve_chaos_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    registry_ = std::make_unique<ModelRegistry>(site_.kb.kb.ontology(),
                                                ModelRegistryConfig{root_});
    ASSERT_TRUE(registry_->Publish(kSite, *site_.model).ok());
  }

  /// Rewrites the site's current model file with injector-corrupted bytes
  /// and drops the warm cache entry so the next request pays a load.
  void CorruptModelFile(FaultType fault, uint64_t seed) {
    Result<int64_t> version = LatestModelVersion(root_, kSite);
    ASSERT_TRUE(version.ok());
    const std::string path = ModelVersionPath(root_, kSite, *version);
    std::ifstream in(path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty());
    FaultInjectionConfig config;
    Rng rng(seed);
    std::string corrupted = CorruptHtml(bytes, fault, config, &rng);
    std::ofstream out(path, std::ios::trunc);
    out << corrupted;
    out.close();
    registry_->Invalidate(kSite);
  }

  ServeRequest Request(int variant = 0) {
    ServeRequest request;
    request.site = kSite;
    request.html = TrainedFilmSite::UnseenPageHtml(variant);
    request.url = "http://films.example/fresh/" + std::to_string(variant);
    return request;
  }

  TrainedFilmSite site_;
  std::string root_;
  std::unique_ptr<ModelRegistry> registry_;
};

TEST_F(ServeChaosTest, TruncatedModelFileShedsTypedAndServiceRecovers) {
  CorruptModelFile(FaultType::kTruncate, 7);

  ExtractionService service(registry_.get());
  ASSERT_TRUE(service.Start().ok());
  ServeResult broken = service.Submit(Request()).get();
  EXPECT_FALSE(broken.status.ok());
  EXPECT_EQ(broken.diagnostics.shed_cause, ShedCause::kModelLoadFailed);
  EXPECT_EQ(broken.status.code(), StatusCode::kInvalidArgument)
      << broken.status.ToString();

  // The failure is not sticky: a retrain publishes a good version and the
  // same service instance serves again.
  ASSERT_TRUE(registry_->Publish(kSite, *site_.model).ok());
  ServeResult healed = service.Submit(Request()).get();
  ASSERT_TRUE(healed.status.ok()) << healed.status.ToString();
  EXPECT_FALSE(healed.triples.empty());
  EXPECT_EQ(
      service.stats().shed[static_cast<int>(ShedCause::kModelLoadFailed)],
      1);
}

TEST_F(ServeChaosTest, GarbledModelFileShedsInsteadOfCrashing) {
  // Garbling flips bytes all over the file; whatever line breaks first,
  // the load must come back as a typed error.
  CorruptModelFile(FaultType::kGarble, 11);
  ExtractionService service(registry_.get());
  ASSERT_TRUE(service.Start().ok());
  ServeResult result = service.Submit(Request()).get();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.diagnostics.shed_cause, ShedCause::kModelLoadFailed);
}

TEST_F(ServeChaosTest, CorruptedRequestStreamDegradesPerRequest) {
  ExtractionServiceConfig config;
  // A tight parse budget turns injected node bombs into per-request parse
  // failures (the service-side analogue of resilient-loader quarantine).
  config.parse.max_nodes = 3000;
  ExtractionService service(registry_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  // Build a request stream and corrupt half of it with page faults.
  std::vector<RawPage> raw;
  for (int i = 0; i < 24; ++i) {
    raw.push_back(RawPage{"http://films.example/fresh/" + std::to_string(i),
                          TrainedFilmSite::UnseenPageHtml(i)});
  }
  FaultInjectionConfig fault_config;
  fault_config.seed = 13;
  fault_config.page_fault_rate = 0.5;
  fault_config.node_bomb_weight = 2.0;
  fault_config.node_bomb_nodes = 1 << 13;  // above the parse budget
  FaultReport report;
  std::vector<RawPage> stream = InjectFaults(raw, fault_config, &report);

  std::vector<std::future<ServeResult>> futures;
  for (const RawPage& page : stream) {
    ServeRequest request;
    request.site = kSite;
    request.html = page.html;
    request.url = page.url;
    futures.push_back(service.Submit(std::move(request)));
  }

  int64_t ok_count = 0;
  int64_t typed_failures = 0;
  for (std::future<ServeResult>& future : futures) {
    ServeResult result = future.get();
    if (result.status.ok()) {
      ++ok_count;
    } else {
      // Every failure must be typed — a parse shed with a real cause.
      EXPECT_EQ(result.diagnostics.shed_cause, ShedCause::kParseFailed);
      EXPECT_NE(result.status.code(), StatusCode::kOk);
      ++typed_failures;
    }
  }
  // The injector's report gives ground truth: clean pages must be served.
  std::set<PageIndex> faulted;
  for (const InjectedFault& fault : report.faults) {
    faulted.insert(fault.source_page);
  }
  EXPECT_GE(ok_count,
            static_cast<int64_t>(raw.size() - faulted.size()))
      << "every uncorrupted page must extract";
  EXPECT_EQ(ok_count + typed_failures,
            static_cast<int64_t>(stream.size()));

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, ok_count);
  EXPECT_EQ(stats.completed + stats.total_shed(),
            static_cast<int64_t>(stream.size()));
}

TEST_F(ServeChaosTest, LoadFaultUnderConcurrentTrafficNeverCrashes) {
  // Repeatedly alternate a broken store and a healing publish while
  // traffic flows; the service must account for every request.
  ExtractionServiceConfig config;
  config.worker_threads = 4;
  ExtractionService service(registry_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  int64_t submitted = 0;
  std::vector<std::future<ServeResult>> futures;
  for (int round = 0; round < 4; ++round) {
    if (round % 2 == 1) {
      CorruptModelFile(FaultType::kTruncate,
                       static_cast<uint64_t>(100 + round));
    } else if (round > 0) {
      ASSERT_TRUE(registry_->Publish(kSite, *site_.model).ok());
    }
    for (int i = 0; i < 8; ++i) {
      futures.push_back(service.Submit(Request(round * 8 + i)));
      ++submitted;
    }
  }
  int64_t resolved = 0;
  for (std::future<ServeResult>& future : futures) {
    ServeResult result = future.get();
    if (!result.status.ok()) {
      EXPECT_EQ(result.diagnostics.shed_cause, ShedCause::kModelLoadFailed);
    }
    ++resolved;
  }
  EXPECT_EQ(resolved, submitted);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed + stats.total_shed(), submitted);
}

}  // namespace
}  // namespace ceres::serve
