#include "core/pipeline.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>

#include "core/entity_matcher.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {

namespace {

// Resolves the "empty means all" page-set convention.
std::vector<PageIndex> ResolvePageSet(const std::vector<PageIndex>& requested,
                                      size_t num_pages) {
  if (!requested.empty()) return requested;
  std::vector<PageIndex> all(num_pages);
  for (size_t i = 0; i < num_pages; ++i) all[i] = static_cast<PageIndex>(i);
  return all;
}

// Everything one cluster contributes to the merged PipelineResult. Workers
// fill disjoint, pre-sized slots; the merge below appends them in
// cluster-id order, so a parallel run reproduces the serial output byte
// for byte.
struct ClusterOutcome {
  StageCounts stages[kNumPipelineStages];
  std::vector<ClusterSkip> skips;
  bool run_deadline_expired = false;
  std::vector<Annotation> annotations;     // global page indices
  std::vector<PageIndex> annotated_pages;  // global page indices
  std::vector<Extraction> extractions;
  std::vector<ClusterModel> models;        // zero or one entry
};

Status ValidateConfig(const std::vector<DomDocument>& pages,
                      const KnowledgeBase& kb, const PipelineConfig& config) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("knowledge base must be frozen");
  }
  if (pages.empty()) {
    return Status::InvalidArgument("no pages given");
  }
  for (PageIndex page : config.annotation_pages) {
    if (page < 0 || static_cast<size_t>(page) >= pages.size()) {
      return Status::InvalidArgument(
          StrCat("annotation page out of range: ", page));
    }
  }
  for (PageIndex page : config.extraction_pages) {
    if (page < 0 || static_cast<size_t>(page) >= pages.size()) {
      return Status::InvalidArgument(
          StrCat("extraction page out of range: ", page));
    }
  }
  return Status::Ok();
}

}  // namespace

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kClustering:
      return "clustering";
    case PipelineStage::kTopicIdentification:
      return "topic identification";
    case PipelineStage::kAnnotation:
      return "annotation";
    case PipelineStage::kTraining:
      return "training";
    case PipelineStage::kExtraction:
      return "extraction";
  }
  return "unknown";
}

std::vector<ClusterSkip> PipelineDiagnostics::SkipsForCluster(
    int cluster) const {
  std::vector<ClusterSkip> out;
  for (const ClusterSkip& skip : skipped_clusters) {
    if (skip.cluster == cluster) out.push_back(skip);
  }
  return out;
}

std::string PipelineDiagnostics::Summary() const {
  std::string out = "pipeline diagnostics:\n";
  out += StrCat("  quarantined pages: ", quarantined_pages.size(), "\n");
  for (int s = 0; s < kNumPipelineStages; ++s) {
    const StageCounts& c = stages[s];
    if (c.attempted == 0 && c.skipped == 0) continue;
    out += StrCat("  ", PipelineStageName(static_cast<PipelineStage>(s)),
                  ": attempted ", c.attempted, ", completed ", c.completed,
                  ", skipped ", c.skipped, "\n");
  }
  if (run_deadline_expired) out += "  run deadline expired\n";
  for (const ClusterSkip& skip : skipped_clusters) {
    out += StrCat("  cluster ", skip.cluster, " skipped at ",
                  PipelineStageName(skip.stage), ": ",
                  skip.reason.ToString(), "\n");
  }
  return out;
}

Result<PipelineResult> RunPipeline(const std::vector<DomDocument>& pages,
                                   const KnowledgeBase& kb,
                                   const PipelineConfig& config) {
  CERES_RETURN_IF_ERROR(
      PrependContext(ValidateConfig(pages, kb, config), "pipeline config"));

  PipelineResult result;
  PipelineDiagnostics& diag = result.diagnostics;
  result.topic_of_page.assign(pages.size(), kInvalidEntity);
  result.topic_node_of_page.assign(pages.size(), kInvalidNode);

  obs::TraceSpan run_span(config.trace, "pipeline");
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("ceres_pipeline_runs_total")->Increment();
    registry.GetCounter("ceres_pipeline_pages_total")
        ->Increment(static_cast<int64_t>(pages.size()));
  }

  // 1. Template clustering (whole-run deadline only; the per-cluster
  // budget starts once clusters exist).
  diag.counts(PipelineStage::kClustering).attempted = 1;
  {
    obs::TraceSpan clustering_span(run_span, "clustering");
    if (config.cluster_pages) {
      PageClusteringConfig clustering_config = config.clustering;
      clustering_config.deadline = config.deadline;
      result.cluster_of_page = ClusterPages(pages, clustering_config);
    } else {
      result.cluster_of_page.assign(pages.size(), 0);
    }
  }
  if (config.deadline.expired()) {
    diag.run_deadline_expired = true;
    ++diag.counts(PipelineStage::kClustering).skipped;
  } else {
    ++diag.counts(PipelineStage::kClustering).completed;
  }
  int num_clusters = 0;
  for (int cluster : result.cluster_of_page) {
    num_clusters = std::max(num_clusters, cluster + 1);
  }

  const std::vector<PageIndex> annotation_pages =
      ResolvePageSet(config.annotation_pages, pages.size());
  const std::vector<PageIndex> extraction_pages =
      ResolvePageSet(config.extraction_pages, pages.size());

  // Bucket the annotation/extraction page sets per cluster in one pass
  // over each set (the serial loop used to rescan every page per cluster).
  std::vector<std::vector<PageIndex>> cluster_annotation(
      static_cast<size_t>(num_clusters));
  std::vector<std::vector<PageIndex>> cluster_extraction(
      static_cast<size_t>(num_clusters));
  for (PageIndex page : annotation_pages) {
    int cluster = result.cluster_of_page[static_cast<size_t>(page)];
    if (cluster >= 0) {
      cluster_annotation[static_cast<size_t>(cluster)].push_back(page);
    }
  }
  for (PageIndex page : extraction_pages) {
    int cluster = result.cluster_of_page[static_cast<size_t>(page)];
    if (cluster >= 0) {
      cluster_extraction[static_cast<size_t>(cluster)].push_back(page);
    }
  }

  // Thread-budget placement: with several clusters the fan-out is across
  // clusters (the inner per-page loops run inline in each worker); with a
  // single cluster the per-page loops get the budget instead. Nested
  // fan-out is never used — it would oversubscribe without speeding
  // anything up.
  const bool single_cluster = num_clusters <= 1;
  const ParallelConfig outer_parallel =
      single_cluster ? ParallelConfig::Sequential() : config.parallel;
  const ParallelConfig inner_parallel =
      single_cluster ? config.parallel : ParallelConfig::Sequential();

  std::vector<ClusterOutcome> outcomes(static_cast<size_t>(num_clusters));
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("ceres_pipeline_clusters_total")
        ->Increment(num_clusters);
  }
  obs::TraceSpan clusters_span(run_span, "clusters");
  ParallelFor(static_cast<size_t>(num_clusters), outer_parallel, [&](size_t c) {
    const int cluster = static_cast<int>(c);
    ClusterOutcome& out = outcomes[c];
    // Per-cluster spans from concurrent workers fold into shared
    // "clusters/cluster/<stage>" nodes (TraceTree is internally locked);
    // RAII ends them on every early return below.
    obs::TraceSpan cluster_span(clusters_span, "cluster");
    auto count = [&out](PipelineStage stage) -> StageCounts& {
      return out.stages[static_cast<int>(stage)];
    };
    auto skip_cluster = [&](PipelineStage stage, Status reason) {
      LogInfo(StrCat("cluster ", cluster, ": skipped at ",
                     PipelineStageName(stage), ": ", reason.ToString()));
      ++count(stage).skipped;
      if (obs::Enabled()) {
        obs::MetricsRegistry::Default()
            .GetCounter("ceres_pipeline_cluster_skips_total")
            ->Increment();
      }
      out.skips.push_back(ClusterSkip{cluster, stage, std::move(reason)});
    };
    // Every cluster runs under the earlier of the whole-run deadline and
    // its own fresh time budget (started when its worker picks it up).
    Deadline cluster_deadline = config.deadline;
    if (config.cluster_time_budget.count() > 0) {
      cluster_deadline =
          cluster_deadline.Earlier(Deadline::After(config.cluster_time_budget));
    }
    // A deadline observed as expired but returning OK from Check can only
    // happen through a stage's own flag; normalize to a typed status.
    auto expiry_reason = [&](const char* what) {
      Status reason =
          cluster_deadline.Check(StrCat("cluster ", cluster, " ", what));
      if (reason.ok()) {
        reason = Status::DeadlineExceeded(
            StrCat("cluster ", cluster, " ", what, ": deadline exceeded"));
      }
      if (config.deadline.expired()) out.run_deadline_expired = true;
      return reason;
    };

    const std::vector<PageIndex>& annotation_set = cluster_annotation[c];
    const std::vector<PageIndex>& extraction_set = cluster_extraction[c];
    if (annotation_set.size() < config.min_cluster_size) {
      skip_cluster(PipelineStage::kClustering,
                   Status::FailedPrecondition(
                       StrCat("only ", annotation_set.size(),
                              " annotation pages; min_cluster_size=",
                              config.min_cluster_size)));
      return;
    }
    LogInfo(StrCat("cluster ", cluster, ": ", annotation_set.size(),
                   " annotation pages, ", extraction_set.size(),
                   " extraction pages"));

    std::vector<const DomDocument*> annotation_docs;
    annotation_docs.reserve(annotation_set.size());
    for (PageIndex page : annotation_set) {
      annotation_docs.push_back(&pages[static_cast<size_t>(page)]);
    }

    // Optional pre-filter: skip clusters that do not look like detail
    // pages at all (chart/index clusters).
    if (config.filter_non_detail_clusters &&
        !LooksLikeDetailPages(annotation_docs, config.detail_detector)) {
      skip_cluster(
          PipelineStage::kClustering,
          Status::FailedPrecondition("does not look like detail pages"));
      return;
    }

    // 2. Entity matching + topic identification on annotation pages.
    obs::TraceSpan topic_span(cluster_span, "topic");
    ++count(PipelineStage::kTopicIdentification).attempted;
    {
      Status live = cluster_deadline.Check(
          StrCat("cluster ", cluster, " topic identification"));
      if (!live.ok()) {
        if (config.deadline.expired()) out.run_deadline_expired = true;
        skip_cluster(PipelineStage::kTopicIdentification, std::move(live));
        return;
      }
    }
    // Per-page matching is independent; each iteration fills its own slot.
    std::vector<PageMentions> mentions(annotation_docs.size());
    ParallelFor(annotation_docs.size(), inner_parallel, [&](size_t i) {
      mentions[i] = MatchPageMentions(*annotation_docs[i], kb);
    });
    TopicConfig topic_config = config.topic;
    topic_config.deadline = cluster_deadline;
    TopicResult topics =
        IdentifyTopics(annotation_docs, mentions, kb, topic_config);
    if (topics.deadline_expired) {
      skip_cluster(PipelineStage::kTopicIdentification,
                   expiry_reason("topic identification"));
      return;
    }
    ++count(PipelineStage::kTopicIdentification).completed;
    // Disjoint per-page writes: every page belongs to exactly one cluster.
    for (size_t i = 0; i < annotation_set.size(); ++i) {
      const size_t page = static_cast<size_t>(annotation_set[i]);
      result.topic_of_page[page] = topics.topic[i];
      result.topic_node_of_page[page] = topics.topic_node[i];
    }
    topic_span.End();

    // 3. Relation annotation (Algorithm 2). Local indices map 1:1 onto
    // annotation_docs; translate to global page indices afterwards.
    obs::TraceSpan annotate_span(cluster_span, "annotate");
    ++count(PipelineStage::kAnnotation).attempted;
    AnnotatorConfig annotator_config = config.annotator;
    annotator_config.deadline = cluster_deadline;
    AnnotationResult annotation = AnnotateRelations(
        annotation_docs, mentions, topics, kb, annotator_config);
    if (annotation.deadline_expired) {
      skip_cluster(PipelineStage::kAnnotation, expiry_reason("annotation"));
      return;
    }
    if (annotation.annotations.empty()) {
      skip_cluster(PipelineStage::kAnnotation,
                   Status::NotFound("no annotations produced"));
      return;
    }
    ++count(PipelineStage::kAnnotation).completed;
    std::vector<Annotation> local_annotations = annotation.annotations;
    for (Annotation& a : annotation.annotations) {
      a.page = annotation_set[static_cast<size_t>(a.page)];
      out.annotations.push_back(a);
    }
    for (PageIndex local : annotation.annotated_pages) {
      out.annotated_pages.push_back(
          annotation_set[static_cast<size_t>(local)]);
    }
    annotate_span.End();

    // 4. Training on the cluster's annotated pages. Lexicon mining may fan
    // out; featurization inside TrainExtractor stays serial because the
    // HashedFeatureMap interning order defines the dense feature indices.
    obs::TraceSpan train_span(cluster_span, "train");
    ++count(PipelineStage::kTraining).attempted;
    FeatureConfig feature_config = config.features;
    feature_config.parallel = inner_parallel;
    FeatureExtractor featurizer(annotation_docs, feature_config);
    TrainingConfig training_config = config.training;
    training_config.deadline = cluster_deadline;
    Result<TrainedModel> trained =
        TrainExtractor(annotation_docs, local_annotations, featurizer,
                       kb.ontology(), training_config);
    if (!trained.ok()) {
      if (config.deadline.expired()) out.run_deadline_expired = true;
      skip_cluster(PipelineStage::kTraining, trained.status());
      return;
    }
    ++count(PipelineStage::kTraining).completed;
    train_span.End();

    // 5. Extraction over the cluster's extraction pages.
    obs::TraceSpan extract_span(cluster_span, "extract");
    ++count(PipelineStage::kExtraction).attempted;
    {
      Status live =
          cluster_deadline.Check(StrCat("cluster ", cluster, " extraction"));
      if (!live.ok()) {
        if (config.deadline.expired()) out.run_deadline_expired = true;
        skip_cluster(PipelineStage::kExtraction, std::move(live));
        return;
      }
    }
    std::vector<const DomDocument*> extraction_docs;
    extraction_docs.reserve(extraction_set.size());
    for (PageIndex page : extraction_set) {
      extraction_docs.push_back(&pages[static_cast<size_t>(page)]);
    }
    ExtractionConfig extraction_config = config.extraction;
    extraction_config.parallel = inner_parallel;
    out.extractions =
        ExtractFromPages(extraction_docs, extraction_set, &trained.value(),
                         featurizer, extraction_config);
    out.models.push_back(ClusterModel{cluster, std::move(trained).value()});
    ++count(PipelineStage::kExtraction).completed;
  });
  clusters_span.End();

  // Deterministic merge in cluster-id order: the concatenation below is
  // exactly what the serial loop appended as it went.
  for (ClusterOutcome& out : outcomes) {
    for (int s = 0; s < kNumPipelineStages; ++s) {
      diag.stages[s].attempted += out.stages[s].attempted;
      diag.stages[s].completed += out.stages[s].completed;
      diag.stages[s].skipped += out.stages[s].skipped;
    }
    diag.run_deadline_expired |= out.run_deadline_expired;
    std::move(out.skips.begin(), out.skips.end(),
              std::back_inserter(diag.skipped_clusters));
    std::move(out.annotations.begin(), out.annotations.end(),
              std::back_inserter(result.annotations));
    std::move(out.annotated_pages.begin(), out.annotated_pages.end(),
              std::back_inserter(result.annotated_pages));
    std::move(out.extractions.begin(), out.extractions.end(),
              std::back_inserter(result.extractions));
    std::move(out.models.begin(), out.models.end(),
              std::back_inserter(result.models));
  }

  std::sort(result.annotated_pages.begin(), result.annotated_pages.end());
  return result;
}

}  // namespace ceres
