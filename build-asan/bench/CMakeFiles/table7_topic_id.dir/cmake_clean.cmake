file(REMOVE_RECURSE
  "CMakeFiles/table7_topic_id.dir/table7_topic_id.cc.o"
  "CMakeFiles/table7_topic_id.dir/table7_topic_id.cc.o.d"
  "table7_topic_id"
  "table7_topic_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_topic_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
