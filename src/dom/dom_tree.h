#ifndef CERES_DOM_DOM_TREE_H_
#define CERES_DOM_DOM_TREE_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/logging.h"

namespace ceres {

/// Index of a node within its owning DomDocument arena. Root is always 0.
using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// One HTML attribute. Attribute names are stored lower-cased.
struct DomAttribute {
  std::string name;
  std::string value;
};

/// An element node of a parsed page.
///
/// Text is modelled as the concatenated direct character data of the
/// element (`text`), following the paper's observation that entity names
/// correspond to the full text of a DOM node: a "text field" is an element
/// whose `text` is non-empty.
struct DomNode {
  /// Lower-cased tag name, e.g. "div".
  std::string tag;
  /// Attributes in document order.
  std::vector<DomAttribute> attributes;
  /// Direct character data of this element (children's text not included),
  /// whitespace-trimmed.
  std::string text;

  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
  /// 1-based position among same-tag siblings; the XPath step index.
  int sibling_index = 1;
  /// 0-based position among all siblings.
  int child_position = 0;

  /// Value of the attribute with the given lower-case name, or "" if absent.
  std::string_view Attribute(std::string_view name) const {
    for (const DomAttribute& attr : attributes) {
      if (attr.name == name) return attr.value;
    }
    return {};
  }

  bool HasText() const { return !text.empty(); }
};

/// A parsed page: an arena of DomNodes rooted at node 0.
///
/// Nodes are stored in document (preorder) order, so iterating ids 0..size-1
/// visits the tree top-down. Documents are movable but not copyable.
class DomDocument {
 public:
  DomDocument();
  DomDocument(DomDocument&&) = default;
  DomDocument& operator=(DomDocument&&) = default;
  DomDocument(const DomDocument&) = delete;
  DomDocument& operator=(const DomDocument&) = delete;

  /// Identifier of the page (URL or synthetic id); informational only.
  const std::string& url() const { return url_; }
  void set_url(std::string url) { url_ = std::move(url); }

  NodeId root() const { return 0; }
  int size() const { return static_cast<int>(nodes_.size()); }

  const DomNode& node(NodeId id) const {
    CERES_CHECK(id >= 0 && id < size());
    return nodes_[id];
  }
  DomNode& mutable_node(NodeId id) {
    CERES_CHECK(id >= 0 && id < size());
    return nodes_[id];
  }

  /// Appends a child element under `parent` (kInvalidNode only for the
  /// root, which exists already) and returns its id. Maintains sibling
  /// indices.
  NodeId AddChild(NodeId parent, std::string tag);

  /// Ids of all elements with non-empty direct text, in document order.
  std::vector<NodeId> TextFields() const;

  /// True if `ancestor` is `descendant` or one of its ancestors.
  bool IsAncestorOrSelf(NodeId ancestor, NodeId descendant) const;

  /// Depth of the node (root has depth 0).
  int Depth(NodeId id) const;

 private:
  std::string url_;
  std::vector<DomNode> nodes_;
};

}  // namespace ceres

#endif  // CERES_DOM_DOM_TREE_H_
