#include "dom/html_serializer.h"

#include <gtest/gtest.h>

#include "dom/html_parser.h"

namespace ceres {
namespace {

TEST(EscapeHtmlTest, EscapesSpecials) {
  EXPECT_EQ(EscapeHtml("a < b & c > d \"e\""),
            "a &lt; b &amp; c &gt; d &quot;e&quot;");
  EXPECT_EQ(EscapeHtml("plain"), "plain");
  EXPECT_EQ(EscapeHtml(""), "");
  EXPECT_EQ(EscapeHtml("&&"), "&amp;&amp;");
}

TEST(SerializeHtmlTest, EmitsDoctypeAndNesting) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  NodeId div = doc.AddChild(body, "div");
  doc.AddAttribute(div, "class", "x");
  doc.SetText(div, "Hello");
  std::string html = SerializeHtml(doc);
  EXPECT_EQ(html.find("<!DOCTYPE html>"), 0u);
  EXPECT_NE(html.find("<div class=\"x\">Hello</div>"), std::string::npos);
  EXPECT_NE(html.find("</body>"), std::string::npos);
}

TEST(SerializeHtmlTest, VoidElementsHaveNoCloseTag) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  doc.AddChild(body, "br");
  NodeId img = doc.AddChild(body, "img");
  doc.AddAttribute(img, "src", "a&b.png");
  std::string html = SerializeHtml(doc);
  EXPECT_NE(html.find("<br>"), std::string::npos);
  EXPECT_EQ(html.find("</br>"), std::string::npos);
  EXPECT_NE(html.find("<img src=\"a&amp;b.png\">"), std::string::npos);
  EXPECT_EQ(html.find("</img>"), std::string::npos);
}

TEST(SerializeHtmlTest, AttributeValueWithQuotesRoundTrips) {
  DomDocument doc;
  NodeId div = doc.AddChild(doc.root(), "div");
  doc.AddAttribute(div, "title", "say \"hi\" <now>");
  Result<DomDocument> reparsed = ParseHtml(SerializeHtml(doc));
  ASSERT_TRUE(reparsed.ok());
  bool found = false;
  for (NodeId id = 0; id < reparsed->size(); ++id) {
    if (reparsed->Attribute(id, "title") == "say \"hi\" <now>") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ceres
