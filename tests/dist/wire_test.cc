// Wire protocol unit tests: frame encode/decode through fds and the
// incremental FrameBuffer, corruption detection, and byte-exact payload
// codec roundtrips (doubles must survive bit-for-bit — the byte-identical
// merge guarantee rests on it).

#include "dist/wire.h"

#include <unistd.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace ceres::dist {
namespace {

TEST(Fnv1a64Test, PinnedReferenceValues) {
  // FNV-1a 64 reference vectors; pinned because checkpoints and shard
  // assignment persist these values across processes.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(FrameTest, RoundTripThroughPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteFrame(fds[1], FrameType::kProgress, "hello").ok());
  Result<Frame> frame = ReadFrame(fds[0]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kProgress);
  EXPECT_EQ(frame->payload, "hello");
  ::close(fds[1]);
  // Clean EOF at a frame boundary is kNotFound, not an error.
  Result<Frame> eof = ReadFrame(fds[0]);
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  ::close(fds[0]);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteFrame(fds[1], FrameType::kShutdown, "").ok());
  Result<Frame> frame = ReadFrame(fds[0]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, FrameType::kShutdown);
  EXPECT_TRUE(frame->payload.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FrameTest, TruncatedFrameIsInternal) {
  const std::string encoded = EncodeFrame(FrameType::kResult, "payload");
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Half the frame, then EOF: a worker that died mid-write.
  ASSERT_EQ(::write(fds[1], encoded.data(), encoded.size() / 2),
            static_cast<ssize_t>(encoded.size() / 2));
  ::close(fds[1]);
  Result<Frame> frame = ReadFrame(fds[0]);
  EXPECT_EQ(frame.status().code(), StatusCode::kInternal);
  ::close(fds[0]);
}

TEST(FrameTest, FlippedPayloadByteFailsChecksum) {
  std::string encoded = EncodeFrame(FrameType::kResult, "payload");
  encoded[7] = static_cast<char>(~encoded[7]);  // inside the payload
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], encoded.data(), encoded.size()),
            static_cast<ssize_t>(encoded.size()));
  ::close(fds[1]);
  Result<Frame> frame = ReadFrame(fds[0]);
  ASSERT_EQ(frame.status().code(), StatusCode::kInternal);
  EXPECT_NE(frame.status().message().find("checksum"), std::string::npos);
  ::close(fds[0]);
}

TEST(FrameTest, BadMagicIsInternal) {
  std::string encoded = EncodeFrame(FrameType::kHeartbeat, "x");
  encoded[0] = 'Z';
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], encoded.data(), encoded.size()),
            static_cast<ssize_t>(encoded.size()));
  ::close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0]).status().code(), StatusCode::kInternal);
  ::close(fds[0]);
}

TEST(FrameBufferTest, DeliversFramesAcrossArbitraryChunks) {
  const std::string a = EncodeFrame(FrameType::kHeartbeat, "one");
  const std::string b = EncodeFrame(FrameType::kResult, "two");
  const std::string stream = a + b;
  // Feed one byte at a time: every prefix must yield kNotFound until the
  // frame completes.
  FrameBuffer buffer;
  std::vector<Frame> frames;
  for (char c : stream) {
    buffer.Append(&c, 1);
    Frame frame;
    Status next = buffer.Next(&frame);
    if (next.ok()) {
      frames.push_back(std::move(frame));
    } else {
      ASSERT_EQ(next.code(), StatusCode::kNotFound);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHeartbeat);
  EXPECT_EQ(frames[0].payload, "one");
  EXPECT_EQ(frames[1].type, FrameType::kResult);
  EXPECT_EQ(frames[1].payload, "two");
  EXPECT_EQ(buffer.pending_bytes(), 0u);
}

TEST(FrameBufferTest, CorruptStreamIsInternal) {
  std::string encoded = EncodeFrame(FrameType::kResult, "data");
  encoded[encoded.size() - 1] ^= 0x01;  // corrupt the checksum itself
  FrameBuffer buffer;
  buffer.Append(encoded.data(), encoded.size());
  Frame frame;
  EXPECT_EQ(buffer.Next(&frame).code(), StatusCode::kInternal);
}

TEST(FrameBufferTest, OversizedLengthRejectedBeforeAllocation) {
  std::string header;
  header.push_back(static_cast<char>(0xCE));
  header.push_back(static_cast<char>(FrameType::kResult));
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  FrameBuffer buffer;
  buffer.Append(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(buffer.Next(&frame).code(), StatusCode::kInternal);
}

ShardTask MakeTask() {
  ShardTask task;
  task.shard = 7;
  task.attempt = 2;
  task.fault = ProcessFaultType::kWorkerCrash;
  task.options.cluster_pages = false;
  task.options.min_cluster_size = 9;
  task.options.max_quarantine_fraction = 0.25;
  task.options.shard_time_budget_ms = 1234;
  task.sites.push_back(
      ShardSite{"a.example",
                {RawPage{"http://a/1", "<html>1</html>"},
                 RawPage{"http://a/2", "<html>2</html>"}}});
  task.sites.push_back(ShardSite{"b.example", {}});
  return task;
}

TEST(PayloadTest, ShardTaskRoundTrips) {
  const ShardTask task = MakeTask();
  Result<ShardTask> decoded = DecodeShardTask(EncodeShardTask(task));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shard, 7);
  EXPECT_EQ(decoded->attempt, 2);
  EXPECT_EQ(decoded->fault, ProcessFaultType::kWorkerCrash);
  EXPECT_FALSE(decoded->options.cluster_pages);
  EXPECT_EQ(decoded->options.min_cluster_size, 9u);
  EXPECT_EQ(decoded->options.max_quarantine_fraction, 0.25);
  EXPECT_EQ(decoded->options.shard_time_budget_ms, 1234);
  ASSERT_EQ(decoded->sites.size(), 2u);
  EXPECT_EQ(decoded->sites[0].site, "a.example");
  ASSERT_EQ(decoded->sites[0].pages.size(), 2u);
  EXPECT_EQ(decoded->sites[0].pages[1].url, "http://a/2");
  EXPECT_EQ(decoded->sites[0].pages[1].html, "<html>2</html>");
  EXPECT_TRUE(decoded->sites[1].pages.empty());
}

TEST(PayloadTest, TruncatedShardTaskIsUnderrun) {
  const std::string encoded = EncodeShardTask(MakeTask());
  for (size_t cut : {size_t{0}, size_t{3}, encoded.size() / 2,
                     encoded.size() - 1}) {
    Result<ShardTask> decoded =
        DecodeShardTask(std::string_view(encoded).substr(0, cut));
    EXPECT_EQ(decoded.status().code(), StatusCode::kInternal)
        << "cut at " << cut;
  }
}

TEST(PayloadTest, ShardResultRoundTripsDoublesExactly) {
  ShardResult result;
  result.shard = 3;
  SiteResult site;
  site.site = "exact.example";
  site.pages = 5;
  site.quarantined_pages = 1;
  site.skipped_clusters = 2;
  // Confidences chosen to break any text round trip: only a bit-pattern
  // encoding reproduces them exactly.
  const double values[] = {0.1, 1.0 / 3.0, 0.7000000000000001,
                           std::nextafter(0.5, 1.0),
                           std::numeric_limits<double>::min(),
                           1e-300};
  for (double v : values) {
    Extraction e;
    e.page = 1;
    e.node = 2;
    e.predicate = 3;
    e.subject = "s";
    e.object = "o";
    e.confidence = v;
    site.extractions.push_back(e);
  }
  result.sites.push_back(site);

  Result<ShardResult> decoded = DecodeShardResult(EncodeShardResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->sites.size(), 1u);
  const SiteResult& got = decoded->sites[0];
  EXPECT_EQ(got.site, "exact.example");
  EXPECT_EQ(got.pages, 5);
  EXPECT_EQ(got.quarantined_pages, 1);
  EXPECT_EQ(got.skipped_clusters, 2);
  ASSERT_EQ(got.extractions.size(), std::size(values));
  for (size_t i = 0; i < std::size(values); ++i) {
    // Exact bit equality, not EXPECT_DOUBLE_EQ.
    EXPECT_EQ(got.extractions[i].confidence, values[i]) << i;
  }
}

TEST(PayloadTest, HeartbeatAndProgressRoundTrip) {
  HeartbeatMsg heartbeat;
  heartbeat.shard = 4;
  heartbeat.seq = 99;
  Result<HeartbeatMsg> h = DecodeHeartbeat(EncodeHeartbeat(heartbeat));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->shard, 4);
  EXPECT_EQ(h->seq, 99);

  ProgressMsg progress;
  progress.shard = 4;
  progress.sites_done = 2;
  progress.sites_total = 8;
  progress.site = "p.example";
  Result<ProgressMsg> p = DecodeProgress(EncodeProgress(progress));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->sites_done, 2);
  EXPECT_EQ(p->sites_total, 8);
  EXPECT_EQ(p->site, "p.example");
}

TEST(PayloadTest, TrailingBytesRejected) {
  std::string encoded = EncodeHeartbeat(HeartbeatMsg{1, 2});
  encoded.push_back('x');
  EXPECT_EQ(DecodeHeartbeat(encoded).status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ceres::dist
