#include "serve/extraction_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve_test_util.h"

namespace ceres::serve {
namespace {

using ceres::testing::ParseOrDie;
using ceres::testing::TrainedFilmSite;
using std::chrono::milliseconds;

constexpr char kSite[] = "films.example";

class ExtractionServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/service_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    registry_ = std::make_unique<ModelRegistry>(site_.kb.kb.ontology(),
                                                ModelRegistryConfig{root_});
    ASSERT_TRUE(registry_->Publish(kSite, *site_.model).ok());
  }

  ServeRequest Request(int variant = 0) {
    ServeRequest request;
    request.site = kSite;
    request.html = TrainedFilmSite::UnseenPageHtml(variant);
    request.url = "http://films.example/fresh/" + std::to_string(variant);
    return request;
  }

  TrainedFilmSite site_;
  std::string root_;
  std::unique_ptr<ModelRegistry> registry_;
};

TEST_F(ExtractionServiceTest, ServesSameTriplesAsTheOfflinePath) {
  ExtractionService service(registry_.get());
  ASSERT_TRUE(service.Start().ok());
  std::future<ServeResult> future = service.Submit(Request());
  ServeResult result = future.get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.diagnostics.shed_cause, ShedCause::kNone);
  EXPECT_EQ(result.diagnostics.model_version, 1);
  EXPECT_GE(result.diagnostics.batch_size, 1);

  // Reference: apply the published model directly.
  DomDocument unseen = ParseOrDie(TrainedFilmSite::UnseenPageHtml());
  FeatureExtractor featurizer = MakeFeaturizer(*site_.model);
  std::vector<Extraction> direct =
      ExtractFromPages({&unseen}, {0}, site_.model.get(), featurizer, {});
  ASSERT_EQ(result.triples.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(result.triples[i].predicate, direct[i].predicate);
    EXPECT_EQ(result.triples[i].object, direct[i].object);
    EXPECT_NEAR(result.triples[i].confidence, direct[i].confidence, 1e-12);
  }
  EXPECT_EQ(service.stats().completed, 1);
}

TEST_F(ExtractionServiceTest, MicroBatchesRequestsOfTheSameSite) {
  registry_->Invalidate(kSite);  // Publish pre-warmed the cache; start cold
  ExtractionServiceConfig config;
  config.worker_threads = 1;
  config.max_batch = 8;
  ExtractionService service(registry_.get(), config);

  // Submit-before-Start makes the first drain deterministic: all six
  // requests are pending when the single worker wakes.
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(service.Submit(Request(i)));
  ASSERT_TRUE(service.Start().ok());

  bool saw_cold_batch = false;
  for (std::future<ServeResult>& future : futures) {
    ServeResult result = future.get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.diagnostics.batch_size, 6);
    EXPECT_GE(result.diagnostics.queue_wait.count(), 0);
    if (!result.diagnostics.model_cache_hit) saw_cold_batch = true;
  }
  EXPECT_TRUE(saw_cold_batch) << "first batch pays the one cold load";
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.batched_requests, 6);
  EXPECT_EQ(registry_->stats().loads, 1);

  // A later lone request rides the now-warm cache.
  ServeResult warm = service.Submit(Request(7)).get();
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.diagnostics.model_cache_hit);
}

TEST_F(ExtractionServiceTest, RespectsMaxBatch) {
  ExtractionServiceConfig config;
  config.worker_threads = 1;
  config.max_batch = 4;
  ExtractionService service(registry_.get(), config);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(service.Submit(Request(i)));
  ASSERT_TRUE(service.Start().ok());
  for (std::future<ServeResult>& future : futures) {
    ServeResult result = future.get();
    ASSERT_TRUE(result.status.ok());
    EXPECT_LE(result.diagnostics.batch_size, 4);
  }
  EXPECT_GE(service.stats().batches, 3);
}

TEST_F(ExtractionServiceTest, QueueFullShedsWithResourceExhausted) {
  ExtractionServiceConfig config;
  config.max_queue = 2;
  ExtractionService service(registry_.get(), config);  // workers not started

  std::future<ServeResult> a = service.Submit(Request(0));
  std::future<ServeResult> b = service.Submit(Request(1));
  ServeResult shed = service.Submit(Request(2)).get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.diagnostics.shed_cause, ShedCause::kQueueFull);

  // The admitted two still complete once workers exist.
  ASSERT_TRUE(service.Start().ok());
  EXPECT_TRUE(a.get().status.ok());
  EXPECT_TRUE(b.get().status.ok());
  EXPECT_EQ(service.stats().shed[static_cast<int>(ShedCause::kQueueFull)],
            1);
}

TEST_F(ExtractionServiceTest, PreExpiredDeadlineIsShedAtAdmission) {
  ExtractionService service(registry_.get());
  ASSERT_TRUE(service.Start().ok());

  ServeRequest late = Request();
  late.deadline = Deadline::After(milliseconds(0));
  ServeResult result = service.Submit(std::move(late)).get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.diagnostics.shed_cause,
            ShedCause::kDeadlineBeforeAdmission);

  CancelToken token;
  token.Cancel();
  ServeRequest cancelled = Request();
  cancelled.deadline = Deadline().WithToken(token);
  result = service.Submit(std::move(cancelled)).get();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(result.diagnostics.shed_cause,
            ShedCause::kDeadlineBeforeAdmission);
}

TEST_F(ExtractionServiceTest, DeadlineExpiringInQueueShedsTyped) {
  ExtractionService service(registry_.get());  // not started: requests wait

  ServeRequest doomed = Request();
  doomed.deadline = Deadline::After(milliseconds(5));
  std::future<ServeResult> future = service.Submit(std::move(doomed));
  std::this_thread::sleep_for(milliseconds(30));
  ASSERT_TRUE(service.Start().ok());

  ServeResult result = future.get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.diagnostics.shed_cause, ShedCause::kTimedOutInQueue);
  EXPECT_GT(result.diagnostics.queue_wait.count(), 0);
}

TEST_F(ExtractionServiceTest, ParseFailureFailsOnlyItsOwnRequest) {
  ExtractionServiceConfig config;
  config.worker_threads = 1;
  config.parse.max_nodes = 200;
  ExtractionService service(registry_.get(), config);

  ServeRequest bomb;
  bomb.site = kSite;
  bomb.url = "http://films.example/bomb";
  bomb.html = "<body>";
  for (int i = 0; i < 400; ++i) bomb.html += "<div>x</div>";
  bomb.html += "</body>";

  std::future<ServeResult> good_future = service.Submit(Request());
  std::future<ServeResult> bomb_future = service.Submit(std::move(bomb));
  ASSERT_TRUE(service.Start().ok());

  ServeResult good = good_future.get();
  ASSERT_TRUE(good.status.ok()) << good.status.ToString();
  EXPECT_FALSE(good.triples.empty());

  ServeResult failed = bomb_future.get();
  EXPECT_EQ(failed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(failed.diagnostics.shed_cause, ShedCause::kParseFailed);
  EXPECT_EQ(
      service.stats().shed[static_cast<int>(ShedCause::kParseFailed)], 1);
}

TEST_F(ExtractionServiceTest, UnknownSiteShedsWholeBatchTyped) {
  ExtractionService service(registry_.get());
  ASSERT_TRUE(service.Start().ok());
  ServeRequest request = Request();
  request.site = "unpublished.example";
  ServeResult result = service.Submit(std::move(request)).get();
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(result.diagnostics.shed_cause, ShedCause::kModelLoadFailed);
}

TEST_F(ExtractionServiceTest, ServesMultipleSitesIndependently) {
  ASSERT_TRUE(registry_->Publish("second.example", *site_.model).ok());
  ExtractionServiceConfig config;
  config.worker_threads = 4;
  config.per_site_max_inflight = 1;
  ExtractionService service(registry_.get(), config);
  ASSERT_TRUE(service.Start().ok());

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 12; ++i) {
    ServeRequest request = Request(i);
    if (i % 2 == 1) request.site = "second.example";
    futures.push_back(service.Submit(std::move(request)));
  }
  for (std::future<ServeResult>& future : futures) {
    ServeResult result = future.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  EXPECT_EQ(service.stats().completed, 12);
}

TEST_F(ExtractionServiceTest, StopShedsQueuedRequestsAndRejectsNewOnes) {
  ExtractionService service(registry_.get());  // never started
  std::future<ServeResult> queued = service.Submit(Request());
  service.Stop();

  ServeResult shed = queued.get();
  EXPECT_EQ(shed.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(shed.diagnostics.shed_cause, ShedCause::kShutdown);

  ServeResult rejected = service.Submit(Request()).get();
  EXPECT_EQ(rejected.diagnostics.shed_cause, ShedCause::kShutdown);
  EXPECT_EQ(
      service.stats().shed[static_cast<int>(ShedCause::kShutdown)], 2);
  EXPECT_FALSE(service.stats().Summary().empty());
}

}  // namespace
}  // namespace ceres::serve
