#include "net/http_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "util/string_util.h"

namespace ceres::net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::Internal(StrCat(what, ": ", strerror(errno)));
}

}  // namespace

HttpClient::~HttpClient() { Close(); }

Status HttpClient::Connect() {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrCat("bad host address: ", host_));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = ErrnoStatus("connect");
    ::close(fd);
    return status;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) CERES_RETURN_IF_ERROR(Connect());
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("send");
      Close();
      return status;
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status HttpClient::ShutdownWrite() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (::shutdown(fd_, SHUT_WR) < 0) return ErrnoStatus("shutdown");
  return Status::Ok();
}

Result<HttpResponse> HttpClient::ReadResponse(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  timeval tv = {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ResponseParser parser;
  char buffer[8192];
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      const ParseState state =
          parser.Consume(std::string_view(buffer, static_cast<size_t>(n)));
      if (state == ParseState::kComplete) {
        HttpResponse response = parser.TakeResponse();
        const auto* connection = [&]() -> const std::string* {
          for (const HttpHeader& header : response.headers) {
            if (header.name == "connection") return &header.value;
          }
          return nullptr;
        }();
        if (connection != nullptr && *connection == "close") Close();
        return response;
      }
      if (state == ParseState::kError) {
        Close();
        return Status::Internal(StrCat("bad response: ", parser.error()));
      }
      continue;
    }
    if (n == 0) {
      Close();
      return Status::Internal("connection closed before full response");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Close();
      return Status::DeadlineExceeded("timed out waiting for response");
    }
    Status status = ErrnoStatus("recv");
    Close();
    return status;
  }
}

Result<HttpResponse> HttpClient::Roundtrip(const HttpRequest& request) {
  const bool was_connected = connected();
  CERES_RETURN_IF_ERROR(SendRaw(EncodeRequest(request)));
  Result<HttpResponse> response = ReadResponse();
  if (!response.ok() && was_connected) {
    // The keep-alive socket died between requests (server idle-closed or
    // drained it). One fresh connection, one retry.
    ++reconnects_;
    CERES_RETURN_IF_ERROR(Connect());
    CERES_RETURN_IF_ERROR(SendRaw(EncodeRequest(request)));
    return ReadResponse();
  }
  return response;
}

}  // namespace ceres::net
