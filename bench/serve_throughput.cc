// serve_throughput — latency/QPS sweep of the online extraction service.
//
// Trains per-site models for a small SWDE-style movie corpus, publishes
// them to a versioned store, then replays the held-out crawl through
// ExtractionService under a closed-loop client pool, sweeping worker
// threads x cache configuration:
//
//   warm: default byte budget — every site stays resident after its one
//         cold load;
//   cold: a 1-byte budget and no micro-batching, so every request
//         re-reads and re-parses its model file from disk (the naive
//         load-per-request baseline a cache-less server degenerates to;
//         batching is off so queue pile-ups cannot amortize the reloads
//         the cache is supposed to eliminate).
//
// For each cell it prints QPS and p50/p95/p99 end-to-end latency plus
// shed counts, and a machine-readable line with server-side stage
// timings (queue wait, parse, inference) from the obs histograms:
//
//   BENCH {"bench":"serve_throughput","cache":"warm","threads":4,...,
//          "stage_us":{"queue_wait_p50":...,...}}
//
// After the sweep it truncates one site's model file through the fault
// injector and replays a burst to show typed load-shedding.
//
// Invariants (exit 1 on violation):
//   * accounting is exact in every cell (completed + shed == submitted);
//   * every cell's stage histograms actually saw samples;
//   * the warm cache earns its keep: warm QPS >= 5x cold QPS at 8
//     threads (full sweep only);
//   * an injected model-load fault degrades into kModelLoadFailed sheds
//     for that site only — other sites keep serving, nothing crashes.
//
// Usage: serve_throughput [--smoke] [--persist]
//   --smoke: 2 sites at reduced scale, 1/4 threads, one round, no QPS
//   ratio gate; wired into tools/tier1.sh.
//   --persist: rewrite the BENCH lines to BENCH_serve_throughput.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "obs/metrics.h"
#include "robustness/fault_injector.h"
#include "serve/extraction_service.h"
#include "serve/model_registry.h"
#include "synth/corpora.h"
#include "util/random.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

int g_violations = 0;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
    ++g_violations;
  }
}

int64_t Percentile(const std::vector<int64_t>& sorted_micros, double p) {
  if (sorted_micros.empty()) return 0;
  const size_t index = std::min(
      sorted_micros.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_micros.size())));
  return sorted_micros[index];
}

struct SiteCrawl {
  std::string name;
  std::vector<const synth::GeneratedPage*> pages;
};

// Server-side stage timings for one cell, read back from the obs
// histograms the service records into (the registry is Reset() per cell).
struct StageStats {
  double queue_wait_p50 = 0, queue_wait_p95 = 0;
  double parse_p50 = 0, parse_p95 = 0;
  double inference_p50 = 0, inference_p95 = 0;
  double batch_size_mean = 0;
  int64_t samples = 0;  // completed-request parse samples
};

StageStats ReadStageStats() {
  auto& registry = obs::MetricsRegistry::Default();
  obs::Histogram* queue_wait =
      registry.GetHistogram("ceres_serve_queue_wait_us");
  obs::Histogram* parse = registry.GetHistogram("ceres_serve_parse_us");
  obs::Histogram* inference =
      registry.GetHistogram("ceres_serve_inference_us");
  obs::Histogram* batch_size =
      registry.GetHistogram("ceres_serve_batch_size", obs::SizeBuckets());
  StageStats stats;
  stats.queue_wait_p50 = queue_wait->Percentile(0.50);
  stats.queue_wait_p95 = queue_wait->Percentile(0.95);
  stats.parse_p50 = parse->Percentile(0.50);
  stats.parse_p95 = parse->Percentile(0.95);
  stats.inference_p50 = inference->Percentile(0.50);
  stats.inference_p95 = inference->Percentile(0.95);
  stats.batch_size_mean = batch_size->Mean();
  stats.samples = parse->Count();
  return stats;
}

struct RunResult {
  double qps = 0;
  int64_t p50 = 0, p95 = 0, p99 = 0;
  serve::ServiceStats stats;
  StageStats stages;
};

/// Replays `rounds` passes over the crawl (requests alternate across
/// sites) through a fresh service on `registry`, with a closed-loop
/// client pool twice the worker count.
RunResult Replay(serve::ModelRegistry* registry,
                 const std::vector<SiteCrawl>& crawl, int threads,
                 int rounds, size_t max_batch = 16,
                 int per_site_max_inflight = 2) {
  std::vector<std::pair<const std::string*, const synth::GeneratedPage*>>
      stream;
  size_t max_pages = 0;
  for (const SiteCrawl& site : crawl) {
    max_pages = std::max(max_pages, site.pages.size());
  }
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < max_pages; ++i) {
      for (const SiteCrawl& site : crawl) {
        if (i < site.pages.size()) {
          stream.emplace_back(&site.name, site.pages[i]);
        }
      }
    }
  }

  // One cell per Replay: zero the shared registry so the stage
  // histograms read back below describe only this run.
  obs::MetricsRegistry::Default().Reset();

  serve::ExtractionServiceConfig config;
  config.worker_threads = threads;
  config.max_queue = stream.size() + 1;
  config.max_batch = max_batch;
  config.per_site_max_inflight = per_site_max_inflight;
  serve::ExtractionService service(registry, config);
  Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    std::exit(1);
  }

  const int clients = std::max(4, threads * 2);
  std::atomic<size_t> next{0};
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(clients));
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (;;) {
        const size_t index = next.fetch_add(1);
        if (index >= stream.size()) return;
        serve::ServeRequest request;
        request.site = *stream[index].first;
        request.html = stream[index].second->html;
        request.url = stream[index].second->url;
        const Clock::time_point start = Clock::now();
        serve::ServeResult result = service.Submit(std::move(request)).get();
        (void)result;
        latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count());
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::now() - t0)
          .count();
  service.Stop();

  std::vector<int64_t> all;
  for (const std::vector<int64_t>& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());

  RunResult run;
  run.qps = static_cast<double>(stream.size()) / wall;
  run.p50 = Percentile(all, 0.50);
  run.p95 = Percentile(all, 0.95);
  run.p99 = Percentile(all, 0.99);
  run.stats = service.stats();
  run.stages = ReadStageStats();
  Require(run.stats.completed + run.stats.total_shed() ==
              static_cast<int64_t>(stream.size()),
          "accounting is exact (completed + shed == submitted)");
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool persist = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--persist") == 0) persist = true;
  }
  bench::BenchJson bench_json("serve_throughput");
  // The service records its stage histograms only when obs is on.
  obs::SetEnabled(true);

  const std::string store =
      (std::filesystem::temp_directory_path() / "serve_throughput_store")
          .string();
  std::filesystem::remove_all(store);

  // --- Offline: train + publish one model per site. ----------------------
  // Scale 0.6 yields realistically sized models (several hundred KB of
  // lexicon + weights), so the cold path's per-request reload cost is
  // measured against a non-trivial load.
  synth::Corpus corpus = synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie,
                                               smoke ? 0.3 : 0.6, 100);
  const size_t kNumSites = smoke ? 2 : 4;

  serve::ModelRegistryConfig warm_config;
  warm_config.root_dir = store;
  serve::ModelRegistry warm_registry(corpus.seed_kb.ontology(), warm_config);

  std::vector<SiteCrawl> crawl;
  for (size_t s = 0; s < std::min(kNumSites, corpus.sites.size()); ++s) {
    const synth::SyntheticSite& site = corpus.sites[s];
    std::vector<DomDocument> pages;
    for (const synth::GeneratedPage& page : site.pages) {
      Result<DomDocument> doc = ParseHtml(page.html);
      if (!doc.ok()) {
        std::fprintf(stderr, "unparseable generated page: %s\n",
                     doc.status().ToString().c_str());
        return 1;
      }
      pages.push_back(std::move(doc).value());
    }
    PipelineConfig train_config;
    // Production-sized feature space: a deep frequent-string lexicon and
    // extra text-feature levels, so the persisted model is realistically
    // heavy (the load cost the warm cache exists to amortize).
    train_config.features.frequent_string_page_fraction = 0.05;
    train_config.features.max_frequent_strings = 2000;
    train_config.features.text_feature_levels = 4;
    for (size_t i = 0; i < pages.size(); i += 2) {
      train_config.annotation_pages.push_back(static_cast<PageIndex>(i));
    }
    train_config.extraction_pages = train_config.annotation_pages;
    Result<PipelineResult> trained =
        RunPipeline(pages, corpus.seed_kb, train_config);
    if (!trained.ok() || trained->models.empty()) {
      std::fprintf(stderr, "site %s trained no model; skipping\n",
                   site.name.c_str());
      continue;
    }
    Result<int64_t> version =
        warm_registry.Publish(site.name, trained->models.front().model);
    if (!version.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   version.status().ToString().c_str());
      return 1;
    }
    SiteCrawl entry;
    entry.name = site.name;
    for (size_t i = 1; i < site.pages.size(); i += 2) {
      entry.pages.push_back(&site.pages[i]);
    }
    crawl.push_back(std::move(entry));
  }
  if (crawl.size() < 2) {
    std::fprintf(stderr, "need at least two trained sites\n");
    return 1;
  }

  // --- Sweep: threads x {warm, cold}. ------------------------------------
  std::printf("%-7s %-6s %-9s %-9s %-9s %-9s %-6s\n", "cache", "thr",
              "qps", "p50_us", "p95_us", "p99_us", "shed");
  const int kRounds = smoke ? 1 : 3;
  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  const int max_threads = sweep.back();
  double warm_qps_max = 0;
  double cold_qps_max = 0;
  for (int threads : sweep) {
    // Fresh cold registry per cell so its 1-byte budget forces a disk
    // load for every batch (requests alternate sites; each insert evicts).
    serve::ModelRegistryConfig cold_config;
    cold_config.root_dir = store;
    cold_config.byte_budget = 1;
    serve::ModelRegistry cold_registry(corpus.seed_kb.ontology(),
                                       cold_config);
    for (bool warm : {true, false}) {
      serve::ModelRegistry* registry =
          warm ? &warm_registry : &cold_registry;
      // The cold baseline is the cache-less server: one load per
      // request, no batching or in-flight dedup to amortize it.
      RunResult run = Replay(registry, crawl, threads, kRounds,
                             /*max_batch=*/warm ? 16 : 1,
                             /*per_site_max_inflight=*/warm ? 2 : 1);
      std::printf("%-7s %-6d %-9.1f %-9lld %-9lld %-9lld %-6lld\n",
                  warm ? "warm" : "cold", threads, run.qps,
                  static_cast<long long>(run.p50),
                  static_cast<long long>(run.p95),
                  static_cast<long long>(run.p99),
                  static_cast<long long>(run.stats.total_shed()));
      char line[512];
      std::snprintf(
          line, sizeof(line),
          "{\"bench\":\"serve_throughput\",\"mode\":\"%s\","
          "\"cache\":\"%s\",\"threads\":%d,\"requests\":%lld,"
          "\"qps\":%.1f,\"p50_us\":%lld,\"p95_us\":%lld,\"p99_us\":%lld,"
          "\"shed\":%lld,\"batch_size_mean\":%.2f,"
          "\"stage_us\":{\"queue_wait_p50\":%.1f,\"queue_wait_p95\":%.1f,"
          "\"parse_p50\":%.1f,\"parse_p95\":%.1f,"
          "\"inference_p50\":%.1f,\"inference_p95\":%.1f}}",
          smoke ? "smoke" : "full", warm ? "warm" : "cold", threads,
          static_cast<long long>(run.stats.submitted), run.qps,
          static_cast<long long>(run.p50), static_cast<long long>(run.p95),
          static_cast<long long>(run.p99),
          static_cast<long long>(run.stats.total_shed()),
          run.stages.batch_size_mean, run.stages.queue_wait_p50,
          run.stages.queue_wait_p95, run.stages.parse_p50,
          run.stages.parse_p95, run.stages.inference_p50,
          run.stages.inference_p95);
      bench_json.Emit(line);
      Require(run.stages.samples == run.stats.completed,
              "stage histograms saw every completed request");
      if (threads == max_threads) {
        (warm ? warm_qps_max : cold_qps_max) = run.qps;
      }
      Require(run.stats.total_shed() == 0,
              "healthy sweep sheds nothing");
    }
  }
  std::printf("warm/cold qps ratio at %d threads: %.1fx\n", max_threads,
              cold_qps_max > 0 ? warm_qps_max / cold_qps_max : 0.0);
  if (!smoke) {
    // The ratio gate is a full-sweep statement about steady-state cache
    // value; at smoke scale the models are too small to separate cleanly.
    Require(warm_qps_max >= 5.0 * cold_qps_max,
            "warm-cache QPS at 8 threads is at least 5x the cold-load QPS");
  }

  // --- Injected model-load fault: typed sheds, no crash. -----------------
  const std::string& victim = crawl.front().name;
  Result<int64_t> latest = LatestModelVersion(store, victim);
  if (!latest.ok()) {
    std::fprintf(stderr, "latest version lookup failed: %s\n",
                 latest.status().ToString().c_str());
    return 1;
  }
  const std::string victim_path = ModelVersionPath(store, victim, *latest);
  {
    std::ifstream in(victim_path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    FaultInjectionConfig fault_config;
    Rng rng(7);
    std::string corrupted =
        CorruptHtml(bytes, FaultType::kTruncate, fault_config, &rng);
    std::ofstream out(victim_path, std::ios::trunc);
    out << corrupted;
  }
  warm_registry.Invalidate(victim);

  RunResult faulted = Replay(&warm_registry, crawl, max_threads, 1);
  const int64_t load_sheds = faulted.stats.shed[static_cast<int>(
      serve::ShedCause::kModelLoadFailed)];
  std::printf("fault burst: %lld completed, %lld model-load sheds\n",
              static_cast<long long>(faulted.stats.completed),
              static_cast<long long>(load_sheds));
  Require(load_sheds ==
              static_cast<int64_t>(crawl.front().pages.size()),
          "every victim-site request sheds as kModelLoadFailed");
  Require(faulted.stats.completed ==
              faulted.stats.submitted - load_sheds,
          "non-victim sites keep serving through the fault");

  if (persist && !bench_json.Persist()) return 1;
  if (g_violations > 0) {
    std::fprintf(stderr, "%d invariant(s) violated\n", g_violations);
    return 1;
  }
  std::fprintf(stderr, "all throughput invariants hold\n");
  return 0;
}
