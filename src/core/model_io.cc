#include "core/model_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <system_error>

#include "util/string_util.h"

namespace ceres {

namespace {

// Class label text for the reserved and predicate classes.
std::string ClassName(const ClassMap& classes, const Ontology& ontology,
                      int32_t cls) {
  PredicateId predicate = classes.PredicateOf(cls);
  if (cls == ClassMap::kOtherClass) return "OTHER";
  if (predicate == kNamePredicate) return "NAME";
  return ontology.predicate(predicate).name;
}

Status MalformedLine(int line_number, const std::string& line,
                     const std::string& why) {
  return Status::InvalidArgument(
      StrCat("line ", line_number, ": ", why, " — \"", line, "\""));
}

bool ParseInt(const std::string& field, int64_t* value) {
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *value);
  return ec == std::errc() && ptr == field.data() + field.size();
}

bool ParseDouble(const std::string& field, double* value) {
  char* end = nullptr;
  *value = std::strtod(field.c_str(), &end);
  return end == field.c_str() + field.size() && !field.empty();
}

// Current on-disk format. Version 2 replaced the #features name dictionary
// with #featureids (16-hex-digit 64-bit feature ids). Version-1 files are
// still loadable: ids are defined as Fnv1a64 of the legacy feature name, so
// hashing each stored name on read reconstructs the exact dictionary.
constexpr int64_t kModelFormatVersion = 2;

std::string HexId(uint64_t id) {
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[id & 0xF];
    id >>= 4;
  }
  return std::string(buf, sizeof(buf));
}

bool ParseHexId(const std::string& field, uint64_t* id) {
  if (field.empty() || field.size() > 16) return false;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *id, 16);
  return ec == std::errc() && ptr == field.data() + field.size();
}

}  // namespace

Status SaveModel(const TrainedModel& model, const Ontology& ontology,
                 std::ostream* out) {
  if (!model.model.trained()) {
    return Status::FailedPrecondition("model is not trained");
  }
  if (!model.features.frozen()) {
    return Status::FailedPrecondition("feature map is not frozen");
  }
  const int32_t classes = model.model.num_classes();
  const int32_t features = model.model.num_features();
  *out << "#format\n" << kModelFormatVersion << '\n';
  *out << "#model\n" << classes << '\t' << features << '\n';
  *out << "#featureconfig\n"
       << model.feature_config.sibling_window << '\t'
       << (model.feature_config.structural_features ? 1 : 0) << '\t'
       << (model.feature_config.text_features ? 1 : 0) << '\t'
       << model.feature_config.text_feature_levels << '\n';
  *out << "#lexicon\n";
  {
    std::vector<std::string> lexicon(model.frequent_strings.begin(),
                                     model.frequent_strings.end());
    std::sort(lexicon.begin(), lexicon.end());
    for (const std::string& entry : lexicon) {
      if (entry.find('\t') != std::string::npos ||
          entry.find('\n') != std::string::npos) {
        return Status::InvalidArgument(
            StrCat("lexicon entry contains tab/newline: ", entry));
      }
      *out << entry << '\n';
    }
  }
  *out << "#classes\n";
  for (int32_t cls = 0; cls < classes; ++cls) {
    *out << cls << '\t' << ClassName(model.classes, ontology, cls) << '\n';
  }
  *out << "#featureids\n";
  for (int32_t f = 0; f < features; ++f) {
    *out << f << '\t' << HexId(model.features.IdAt(f)) << '\n';
  }
  *out << "#weights\n";
  out->precision(17);
  for (int32_t cls = 0; cls < classes; ++cls) {
    for (int32_t f = 0; f < features; ++f) {
      double w = model.model.WeightAt(cls, f);
      if (w != 0.0) *out << cls << '\t' << f << '\t' << w << '\n';
    }
    double bias = model.model.BiasAt(cls);
    if (bias != 0.0) *out << cls << "\tbias\t" << bias << '\n';
  }
  *out << "#end\n";
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

Status SaveModelToFile(const TrainedModel& model, const Ontology& ontology,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound(StrCat("cannot open for writing: ", path));
  }
  return SaveModel(model, ontology, &out);
}

Result<TrainedModel> LoadModel(std::istream* in, const Ontology& ontology) {
  enum class Section {
    kNone,
    kFormat,
    kModel,
    kFeatureConfig,
    kLexicon,
    kClasses,
    kFeatures,     // v1: string feature names, hashed on read
    kFeatureIds,   // v2: 64-bit feature ids in hex
    kWeights,
    kEnd
  };
  Section section = Section::kNone;
  int64_t num_classes = -1;
  int64_t num_features = -1;
  int64_t classes_seen = 0;
  bool saw_weights_section = false;
  TrainedModel model;
  model.classes = ClassMap(ontology);
  std::vector<double> weights;

  std::string line;
  int line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == "#format") section = Section::kFormat;
      else if (line == "#model") section = Section::kModel;
      else if (line == "#featureconfig") section = Section::kFeatureConfig;
      else if (line == "#lexicon") section = Section::kLexicon;
      else if (line == "#classes") section = Section::kClasses;
      else if (line == "#features") section = Section::kFeatures;
      else if (line == "#featureids") section = Section::kFeatureIds;
      else if (line == "#weights") {
        section = Section::kWeights;
        saw_weights_section = true;
      } else if (line == "#end") {
        section = Section::kEnd;
      } else {
        return MalformedLine(line_number, line, "unknown section header");
      }
      continue;
    }
    std::vector<std::string> fields = Split(line, '\t');
    switch (section) {
      case Section::kNone:
        return MalformedLine(line_number, line, "data before any section");
      case Section::kEnd:
        return MalformedLine(line_number, line, "data after #end marker");
      case Section::kFormat: {
        // Version-1 files have no #format section; anything between 1 and
        // the current version is accepted (the feature dictionary encoding
        // is inferred from which dictionary section the file carries).
        int64_t version = -1;
        if (fields.size() != 1 || !ParseInt(fields[0], &version)) {
          return MalformedLine(line_number, line, "bad format version");
        }
        if (version < 1 || version > kModelFormatVersion) {
          return Status::InvalidArgument(
              StrCat("unsupported model format version ", version,
                     " (this build reads up to ", kModelFormatVersion, ")"));
        }
        break;
      }
      case Section::kModel: {
        if (fields.size() != 2 || !ParseInt(fields[0], &num_classes) ||
            !ParseInt(fields[1], &num_features) || num_classes < 2 ||
            num_features < 0) {
          return MalformedLine(line_number, line, "bad model header");
        }
        if (num_classes != model.classes.num_classes()) {
          return Status::InvalidArgument(StrCat(
              "model has ", num_classes, " classes but the ontology yields ",
              model.classes.num_classes()));
        }
        weights.assign(static_cast<size_t>(num_classes) *
                           (static_cast<size_t>(num_features) + 1),
                       0.0);
        break;
      }
      case Section::kFeatureConfig: {
        int64_t window = 0;
        int64_t structural = 0;
        int64_t text = 0;
        int64_t levels = 0;
        if (fields.size() != 4 || !ParseInt(fields[0], &window) ||
            !ParseInt(fields[1], &structural) ||
            !ParseInt(fields[2], &text) || !ParseInt(fields[3], &levels)) {
          return MalformedLine(line_number, line, "bad feature config");
        }
        model.feature_config.sibling_window = static_cast<int>(window);
        model.feature_config.structural_features = structural != 0;
        model.feature_config.text_features = text != 0;
        model.feature_config.text_feature_levels = static_cast<int>(levels);
        break;
      }
      case Section::kLexicon: {
        model.frequent_strings.insert(line);
        break;
      }
      case Section::kClasses: {
        int64_t cls = -1;
        if (fields.size() != 2 || !ParseInt(fields[0], &cls) || cls < 0 ||
            cls >= num_classes) {
          return MalformedLine(line_number, line, "bad class line");
        }
        std::string expected =
            ClassName(model.classes, ontology, static_cast<int32_t>(cls));
        if (fields[1] != expected) {
          return Status::InvalidArgument(
              StrCat("class ", cls, " is \"", fields[1],
                     "\" in the file but \"", expected,
                     "\" in the ontology — ontology mismatch"));
        }
        ++classes_seen;
        break;
      }
      case Section::kFeatures: {
        // v1 compatibility: feature ids are Fnv1a64 of the stored name, so
        // hashing each name reconstructs the hashed dictionary exactly.
        int64_t index = -1;
        if (fields.size() != 2 || !ParseInt(fields[0], &index) || index < 0 ||
            index >= num_features) {
          return MalformedLine(line_number, line, "bad feature line");
        }
        int32_t assigned = model.features.GetOrAdd(Fnv1a64(fields[1]));
        if (assigned != static_cast<int32_t>(index)) {
          return MalformedLine(line_number, line,
                               "feature indices must be dense and in order");
        }
        break;
      }
      case Section::kFeatureIds: {
        int64_t index = -1;
        uint64_t id = 0;
        if (fields.size() != 2 || !ParseInt(fields[0], &index) || index < 0 ||
            index >= num_features || !ParseHexId(fields[1], &id)) {
          return MalformedLine(line_number, line, "bad feature id line");
        }
        int32_t assigned = model.features.GetOrAdd(id);
        if (assigned != static_cast<int32_t>(index)) {
          return MalformedLine(line_number, line,
                               "feature indices must be dense and in order");
        }
        break;
      }
      case Section::kWeights: {
        int64_t cls = -1;
        double value = 0;
        if (fields.size() != 3 || !ParseInt(fields[0], &cls) || cls < 0 ||
            cls >= num_classes || !ParseDouble(fields[2], &value) ||
            !std::isfinite(value)) {
          return MalformedLine(line_number, line, "bad weight line");
        }
        int64_t feature = -1;
        if (fields[1] == "bias") {
          feature = num_features;
        } else if (!ParseInt(fields[1], &feature) || feature < 0 ||
                   feature >= num_features) {
          return MalformedLine(line_number, line, "bad weight index");
        }
        weights[static_cast<size_t>(cls) *
                    (static_cast<size_t>(num_features) + 1) +
                static_cast<size_t>(feature)] = value;
        break;
      }
    }
  }
  if (num_classes < 0) {
    return Status::InvalidArgument("missing #model section");
  }
  if (model.features.size() != static_cast<int32_t>(num_features)) {
    return Status::InvalidArgument(
        StrCat("file declares ", num_features, " features but lists ",
               model.features.size()));
  }
  if (classes_seen != num_classes) {
    return Status::InvalidArgument(
        StrCat("file declares ", num_classes, " classes but lists ",
               classes_seen, " — truncated file?"));
  }
  if (!saw_weights_section) {
    return Status::InvalidArgument(
        "missing #weights section — truncated file?");
  }
  if (section != Section::kEnd) {
    return Status::InvalidArgument(
        "missing #end marker — file truncated mid-transfer");
  }
  model.features.Freeze();
  Result<LogisticRegression> lr = LogisticRegression::FromWeights(
      static_cast<int32_t>(num_features), static_cast<int32_t>(num_classes),
      std::move(weights));
  if (!lr.ok()) return lr.status();
  model.model = std::move(lr).value();
  return model;
}

Result<TrainedModel> LoadModelFromFile(const std::string& path,
                                       const Ontology& ontology) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open: ", path));
  }
  return LoadModel(&in, ontology);
}

namespace {

namespace fs = std::filesystem;

fs::path SiteDir(const std::string& root, const std::string& site) {
  return fs::path(root) / site;
}

/// Writes `text` to `path` via a sibling tmp file + rename, so readers only
/// ever see complete files.
Status AtomicWrite(const fs::path& path, const std::string& text) {
  fs::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp);
    if (!out.is_open()) {
      return Status::NotFound(
          StrCat("cannot open for writing: ", tmp.string()));
    }
    out << text;
    if (!out.good()) return Status::Internal("stream write failed");
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal(
        StrCat("rename ", tmp.string(), " -> ", path.string(), ": ",
               ec.message()));
  }
  return Status::Ok();
}

}  // namespace

std::string ModelVersionPath(const std::string& root, const std::string& site,
                             int64_t version) {
  return (SiteDir(root, site) / StrCat(version, ".model")).string();
}

Result<std::vector<int64_t>> ListModelVersions(const std::string& root,
                                               const std::string& site) {
  fs::path dir = SiteDir(root, site);
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound(StrCat("no model directory: ", dir.string()));
  }
  std::vector<int64_t> versions;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (entry.path().extension() != ".model") continue;
    const std::string stem = entry.path().stem().string();
    int64_t version = -1;
    if (!ParseInt(stem, &version) || version < 0) continue;
    versions.push_back(version);
  }
  if (versions.empty()) {
    return Status::NotFound(StrCat("no model versions for site: ", site));
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

Result<int64_t> LatestModelVersion(const std::string& root,
                                   const std::string& site) {
  // CURRENT is authoritative when present and well-formed; a missing or
  // garbled pointer (crashed publish) falls back to the newest snapshot.
  fs::path current = SiteDir(root, site) / "CURRENT";
  std::ifstream in(current);
  if (in.is_open()) {
    std::string line;
    int64_t version = -1;
    if (std::getline(in, line) && ParseInt(line, &version) && version >= 0) {
      std::error_code ec;
      if (fs::exists(ModelVersionPath(root, site, version), ec)) {
        return version;
      }
    }
  }
  CERES_ASSIGN_OR_RETURN(std::vector<int64_t> versions,
                         ListModelVersions(root, site));
  return versions.back();
}

Result<int64_t> SaveModelVersion(const std::string& root,
                                 const std::string& site,
                                 const TrainedModel& model,
                                 const Ontology& ontology) {
  fs::path dir = SiteDir(root, site);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(
        StrCat("cannot create ", dir.string(), ": ", ec.message()));
  }
  int64_t version = 1;
  Result<int64_t> latest = LatestModelVersion(root, site);
  if (latest.ok()) version = *latest + 1;

  std::ostringstream out;
  CERES_RETURN_IF_ERROR(SaveModel(model, ontology, &out));
  CERES_RETURN_IF_ERROR(
      AtomicWrite(ModelVersionPath(root, site, version), out.str()));
  CERES_RETURN_IF_ERROR(AtomicWrite(dir / "CURRENT", StrCat(version, "\n")));
  return version;
}

Result<TrainedModel> LoadModelVersion(const std::string& root,
                                      const std::string& site, int64_t version,
                                      const Ontology& ontology) {
  const std::string path = ModelVersionPath(root, site, version);
  Result<TrainedModel> model = LoadModelFromFile(path, ontology);
  if (!model.ok()) {
    return PrependContext(model.status(),
                          StrCat("site ", site, " version ", version));
  }
  return model;
}

Result<TrainedModel> LoadLatestModel(const std::string& root,
                                     const std::string& site,
                                     const Ontology& ontology,
                                     int64_t* version) {
  CERES_ASSIGN_OR_RETURN(int64_t latest, LatestModelVersion(root, site));
  CERES_ASSIGN_OR_RETURN(TrainedModel model,
                         LoadModelVersion(root, site, latest, ontology));
  if (version != nullptr) *version = latest;
  return model;
}

}  // namespace ceres
