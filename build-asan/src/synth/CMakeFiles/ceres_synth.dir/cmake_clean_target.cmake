file(REMOVE_RECURSE
  "libceres_synth.a"
)
