#include "ml/sparse_vector.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(SparseVectorTest, FinalizeSortsAndMerges) {
  SparseVector v;
  v.Add(5, 1.0);
  v.Add(2, 2.0);
  v.Add(5, 0.5);
  v.Finalize();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0].first, 2);
  EXPECT_DOUBLE_EQ(v.entries()[0].second, 2.0);
  EXPECT_EQ(v.entries()[1].first, 5);
  EXPECT_DOUBLE_EQ(v.entries()[1].second, 1.5);
}

TEST(SparseVectorTest, EmptyVector) {
  SparseVector v;
  v.Finalize();
  EXPECT_EQ(v.size(), 0u);
  double weights[3] = {1, 2, 3};
  EXPECT_DOUBLE_EQ(v.Dot(weights, 3), 0.0);
}

TEST(SparseVectorTest, DotProduct) {
  SparseVector v;
  v.Add(0, 1.0);
  v.Add(2, 3.0);
  v.Finalize();
  double weights[4] = {2.0, 10.0, -1.0, 10.0};
  EXPECT_DOUBLE_EQ(v.Dot(weights, 4), 2.0 - 3.0);
}

TEST(SparseVectorTest, DotIgnoresOutOfRangeIndices) {
  SparseVector v;
  v.Add(1, 1.0);
  v.Add(7, 100.0);  // Beyond dim.
  v.Finalize();
  double weights[2] = {5.0, 3.0};
  EXPECT_DOUBLE_EQ(v.Dot(weights, 2), 3.0);
}

TEST(SparseVectorTest, AxpyInto) {
  SparseVector v;
  v.Add(0, 2.0);
  v.Add(2, 1.0);
  v.Finalize();
  double out[3] = {1.0, 1.0, 1.0};
  v.AxpyInto(0.5, out, 3);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 1.5);
}

TEST(SparseVectorDeathTest, AddAfterFinalizeDies) {
  SparseVector v;
  v.Finalize();
  EXPECT_DEATH(v.Add(0, 1.0), "");
}

}  // namespace
}  // namespace ceres
