#ifndef CERES_TESTS_DIST_DIST_CORPUS_H_
#define CERES_TESTS_DIST_DIST_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "dist/wire.h"
#include "kb/knowledge_base.h"
#include "synth/kb_builder.h"
#include "synth/site_generator.h"
#include "synth/world.h"

namespace ceres::dist_testing {

/// A small multi-site corpus for the dist suites: one shared movie world,
/// `num_sites` sites with distinct templates, `pages_per_site` detail
/// pages each. Sized so one site pipelines in well under a second — the
/// watchdog tests rely on per-site compute staying far below their
/// liveness timeouts.
struct DistTestCorpus {
  std::unique_ptr<synth::World> world;
  std::unique_ptr<KnowledgeBase> seed_kb;
  std::vector<dist::ShardSite> sites;
};

inline DistTestCorpus MakeDistTestCorpus(int num_sites = 4,
                                         int pages_per_site = 14) {
  DistTestCorpus corpus;
  synth::MovieWorldConfig world_config;
  world_config.scale = 0.2;
  corpus.world =
      std::make_unique<synth::World>(synth::BuildMovieWorld(world_config));
  synth::SeedKbConfig kb_config;
  kb_config.default_coverage = 0.9;
  corpus.seed_kb = std::make_unique<KnowledgeBase>(
      synth::BuildSeedKb(*corpus.world, kb_config));

  const TypeId film = *corpus.world->kb.ontology().TypeByName("film");
  const std::vector<EntityId>& films = corpus.world->OfType(film);
  for (int s = 0; s < num_sites; ++s) {
    synth::SiteSpec spec;
    spec.name = "dist" + std::to_string(s) + ".example";
    spec.seed = 40 + static_cast<uint64_t>(s);
    spec.tmpl.topic_type = "film";
    spec.tmpl.css_prefix = "d" + std::to_string(s);
    spec.tmpl.num_recommendations = 2;
    spec.tmpl.sections = {
        {synth::pred::kFilmDirectedBy, "director", synth::SectionLayout::kRow,
         0.05, 3},
        {synth::pred::kFilmHasCastMember, "cast", synth::SectionLayout::kList,
         0.05, 10},
        {synth::pred::kFilmHasGenre, "genre", synth::SectionLayout::kList,
         0.05, 4},
    };
    // Overlapping topic windows: sites agree on some films (fusion gets
    // cross-site support) but not all.
    const size_t start = static_cast<size_t>(s) * 4;
    for (int p = 0; p < pages_per_site; ++p) {
      spec.topics.push_back(films[(start + static_cast<size_t>(p)) %
                                  films.size()]);
    }
    dist::ShardSite site;
    site.site = spec.name;
    for (const synth::GeneratedPage& page :
         GenerateSite(*corpus.world, spec)) {
      site.pages.push_back(RawPage{page.url, page.html});
    }
    corpus.sites.push_back(std::move(site));
  }
  return corpus;
}

}  // namespace ceres::dist_testing

#endif  // CERES_TESTS_DIST_DIST_CORPUS_H_
