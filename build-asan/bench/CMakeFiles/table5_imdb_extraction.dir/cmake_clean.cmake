file(REMOVE_RECURSE
  "CMakeFiles/table5_imdb_extraction.dir/table5_imdb_extraction.cc.o"
  "CMakeFiles/table5_imdb_extraction.dir/table5_imdb_extraction.cc.o.d"
  "table5_imdb_extraction"
  "table5_imdb_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_imdb_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
