// ceres_chaos — fault-injection sweep over the resilient CERES pipeline.
//
// Generates a synthetic film site with node-level ground truth, corrupts
// its crawl at increasing rates with seeded faults (truncation, byte
// garbling, tag deletion, entity breakage, node bombs), and runs the
// resilient pipeline at each rate. For every run it prints quarantine and
// skip accounting plus extraction F1, and it verifies the degradation
// invariants:
//
//   * every run completes without error (graceful degradation, no crash);
//   * quarantine accounting is exact: a page is in the diagnostics iff its
//     corrupted bytes no longer parse under the load budget;
//   * overall F1 degrades (weakly) monotonically as corruption grows;
//   * pages the injector never touched score within 2 F1 points of the
//     uncorrupted baseline;
//   * a pre-expired deadline produces a typed skip, not a hang.
//
// Exit status 0 when every invariant holds, 1 otherwise.
//
// Usage:
//   ceres_chaos [--rates 0,0.1,0.2,0.3,0.5] [--seed 77] [--pages 80]
//               [--budget-ms N] [--verbose]

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "dom/html_parser.h"
#include "eval/metrics.h"
#include "robustness/fault_injector.h"
#include "robustness/resilient_loader.h"
#include "synth/corpora.h"
#include "synth/kb_builder.h"
#include "synth/truth.h"
#include "util/logging.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

struct Options {
  std::vector<double> rates = {0.0, 0.1, 0.2, 0.3, 0.5};
  uint64_t seed = 77;
  size_t pages = 80;
  int budget_ms = 0;
  bool verbose = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ceres_chaos [--rates 0,0.1,0.3] [--seed N]\n"
               "  [--pages N] [--budget-ms N] [--verbose]\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--rates") {
      std::string value;
      if (!next(&value)) return false;
      options->rates.clear();
      size_t start = 0;
      while (start <= value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        options->rates.push_back(
            std::strtod(value.substr(start, comma - start).c_str(), nullptr));
        start = comma + 1;
      }
    } else if (arg == "--seed") {
      std::string value;
      if (!next(&value)) return false;
      options->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--pages") {
      std::string value;
      if (!next(&value)) return false;
      options->pages =
          static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--budget-ms") {
      std::string value;
      if (!next(&value)) return false;
      options->budget_ms = static_cast<int>(
          std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->rates.empty() && options->pages >= 10;
}

int g_violations = 0;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
    ++g_violations;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.verbose) SetLogLevel(LogLevel::kInfo);

  // Synthetic film site with node-level ground truth.
  synth::MovieWorldConfig world_config;
  world_config.scale = 0.25;
  synth::World world = synth::BuildMovieWorld(world_config);
  synth::SeedKbConfig kb_config;
  kb_config.default_coverage = 0.9;
  KnowledgeBase seed_kb = synth::BuildSeedKb(world, kb_config);

  synth::SiteSpec spec;
  spec.name = "chaos.example";
  spec.seed = 33;
  spec.tmpl.topic_type = "film";
  spec.tmpl.css_prefix = "ch";
  spec.tmpl.num_recommendations = 3;
  spec.tmpl.sections = {
      {synth::pred::kFilmDirectedBy, "director", synth::SectionLayout::kRow,
       0.05, 3},
      {synth::pred::kFilmWrittenBy, "writer", synth::SectionLayout::kRow,
       0.05, 4},
      {synth::pred::kFilmHasCastMember, "cast", synth::SectionLayout::kList,
       0.05, 15},
      {synth::pred::kFilmHasGenre, "genre", synth::SectionLayout::kList, 0.05,
       5},
      {synth::pred::kFilmReleaseDate, "release_date",
       synth::SectionLayout::kRow, 0.05, 1},
  };
  TypeId film = *world.kb.ontology().TypeByName("film");
  const auto& films = world.OfType(film);
  const size_t num_pages = std::min(options.pages, films.size());
  spec.topics.assign(films.begin(),
                     films.begin() + static_cast<long>(num_pages));
  std::vector<synth::GeneratedPage> generated = GenerateSite(world, spec);

  std::vector<RawPage> raw;
  std::vector<DomDocument> clean_parsed;
  for (const synth::GeneratedPage& page : generated) {
    raw.push_back(RawPage{page.url, page.html});
    Result<DomDocument> doc = ParseHtml(page.html);
    if (!doc.ok()) {
      std::fprintf(stderr, "generator produced unparseable page: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    clean_parsed.push_back(std::move(doc).value());
  }
  eval::SiteTruth truth = synth::BuildSiteTruth(generated, clean_parsed);

  // Load budget: real pages sit far below it, node bombs blow it.
  ResilientLoadOptions load_options;
  load_options.parse.max_nodes = 20000;

  PipelineConfig pipeline_config;
  if (options.budget_ms > 0) {
    pipeline_config.cluster_time_budget =
        std::chrono::milliseconds(options.budget_ms);
  }

  eval::ScoreOptions score_all;
  score_all.confidence_threshold = 0.5;

  std::fprintf(stderr,
               "site: %zu pages, %lld KB entities; sweeping %zu rates\n",
               raw.size(), static_cast<long long>(seed_kb.num_entities()),
               options.rates.size());
  std::printf(
      "%-6s %-8s %-11s %-9s %-12s %-8s %-8s\n", "rate", "faults",
      "quarantined", "skipped", "extractions", "f1", "clean_f1");

  double baseline_f1 = -1.0;
  double previous_f1 = -1.0;
  for (double rate : options.rates) {
    FaultInjectionConfig fault_config;
    fault_config.seed = options.seed;
    fault_config.page_fault_rate = rate;
    fault_config.node_bomb_weight = 1.0;
    FaultReport report;
    std::vector<RawPage> corrupted = InjectFaults(raw, fault_config, &report);

    Result<PipelineResult> result = RunPipelineResilient(
        corrupted, seed_kb, pipeline_config, load_options);
    Require(result.ok(), "corrupted run completes without error");
    if (!result.ok()) {
      std::fprintf(stderr, "rate %.2f failed: %s\n", rate,
                   result.status().ToString().c_str());
      continue;
    }
    const PipelineDiagnostics& diag = result->diagnostics;

    // Exact quarantine accounting against an independent re-parse.
    std::set<PageIndex> expected;
    for (size_t i = 0; i < corrupted.size(); ++i) {
      if (!ParseHtml(corrupted[i].html, load_options.parse).ok()) {
        expected.insert(static_cast<PageIndex>(i));
      }
    }
    std::set<PageIndex> actual;
    for (const QuarantinedPage& page : diag.quarantined_pages) {
      actual.insert(page.page);
    }
    Require(actual == expected,
            "quarantine list matches the pages that no longer parse");

    // Clean pages: never touched by the injector.
    std::set<PageIndex> faulted;
    for (const InjectedFault& fault : report.faults) {
      faulted.insert(fault.source_page);
    }
    std::vector<PageIndex> clean_pages;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (faulted.count(static_cast<PageIndex>(i)) == 0) {
        clean_pages.push_back(static_cast<PageIndex>(i));
      }
    }
    eval::ScoreOptions score_clean = score_all;
    score_clean.pages = clean_pages;

    const double f1 =
        eval::ScoreExtractions(result->extractions, truth, score_all).f1();
    const double clean_f1 =
        eval::ScoreExtractions(result->extractions, truth, score_clean).f1();

    std::printf("%-6.2f %-8zu %-11zu %-9zu %-12zu %-8.4f %-8.4f\n", rate,
                report.faults.size(), diag.quarantined_pages.size(),
                diag.skipped_clusters.size(), result->extractions.size(), f1,
                clean_f1);
    if (options.verbose) {
      std::fputs(diag.Summary().c_str(), stderr);
    }

    if (baseline_f1 < 0) {
      baseline_f1 = f1;
    } else {
      Require(clean_f1 >= baseline_f1 - 0.02,
              "clean-page F1 within 2 points of the uncorrupted baseline");
    }
    if (previous_f1 >= 0) {
      Require(f1 <= previous_f1 + 0.03,
              "overall F1 degrades monotonically with corruption");
    }
    previous_f1 = f1;
  }

  // Deadline behaviour: a pre-expired run deadline must come back as typed
  // skips in the diagnostics, never a hang or a crash.
  PipelineConfig expired_config;
  expired_config.cluster_pages = false;
  expired_config.deadline = Deadline::After(std::chrono::milliseconds(0));
  Result<PipelineResult> expired =
      RunPipelineResilient(raw, seed_kb, expired_config, load_options);
  Require(expired.ok(), "pre-expired deadline still returns a result");
  if (expired.ok()) {
    Require(expired->diagnostics.run_deadline_expired,
            "run_deadline_expired is set");
    bool typed_skip = false;
    for (const ClusterSkip& skip : expired->diagnostics.skipped_clusters) {
      if (skip.reason.code() == StatusCode::kDeadlineExceeded ||
          skip.reason.code() == StatusCode::kCancelled) {
        typed_skip = true;
      }
    }
    Require(typed_skip, "deadline expiry is recorded as a typed skip");
    std::fprintf(stderr, "deadline run: %s",
                 expired->diagnostics.Summary().c_str());
  }

  if (g_violations > 0) {
    std::fprintf(stderr, "%d invariant(s) violated\n", g_violations);
    return 1;
  }
  std::fprintf(stderr, "all degradation invariants hold\n");
  return 0;
}
