#ifndef CERES_SERVE_EXTRACTION_SERVICE_H_
#define CERES_SERVE_EXTRACTION_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/extractor.h"
#include "dom/html_parser.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/serve_diagnostics.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/sync.h"

namespace ceres::serve {

/// One extraction request: a crawled page of a known site, plus the
/// caller's cooperative deadline (default: none). The site name selects
/// the per-site model in the registry.
struct ServeRequest {
  std::string site;
  std::string html;
  std::string url;
  Deadline deadline;
};

/// The outcome of one request. `status` is OK when extraction ran (even if
/// it produced zero triples); shed / failed requests carry the typed error
/// and `diagnostics.shed_cause` says which admission or execution gate
/// rejected them.
struct ServeResult {
  Status status;
  std::vector<Extraction> triples;
  ServeDiagnostics diagnostics;
};

struct ExtractionServiceConfig {
  /// Worker threads applying models (0 = hardware concurrency).
  int worker_threads = 8;
  /// Global pending-request bound; submissions beyond it are shed with
  /// kResourceExhausted (admission control, never an unbounded queue).
  size_t max_queue = 1024;
  /// Most requests drained into one model application batch.
  size_t max_batch = 16;
  /// Concurrent batches per site. Caps how much of the worker pool one
  /// hot site can own, so a traffic spike on one site cannot starve the
  /// rest (per-site fairness under load).
  int per_site_max_inflight = 2;
  HtmlParseOptions parse;
  ExtractionConfig extraction;
};

/// A long-running online extraction service over a ModelRegistry.
///
/// Submit(request) admits the request (bounded queue, pre-expired-deadline
/// shedding), enqueues it on its site's micro-batch queue, and returns a
/// future. Worker threads — a pool fanned out over util/parallel.h's
/// ParallelFor — repeatedly claim the site whose queue became ready first,
/// drain up to `max_batch` requests, load the site model through the warm
/// registry, parse the batch's pages, run one batched model application,
/// and fulfil the futures with triples + per-request ServeDiagnostics
/// (queue wait, parse time, inference time, shed causes).
///
/// Failure containment mirrors the offline pipeline's graceful
/// degradation: a model-load failure sheds only that site's batch with a
/// typed kModelLoadFailed diagnostic; an unparseable page fails only its
/// own request (kParseFailed); deadline expiry in the queue sheds only the
/// expired requests. The service itself never crashes on bad input.
///
/// Submit is valid before Start(): requests queue up and run once workers
/// exist (tests use this for deterministic batching). Stop() sheds
/// anything still queued with kShutdown and joins the pool; the destructor
/// calls Stop().
class ExtractionService {
 public:
  explicit ExtractionService(ModelRegistry* registry,
                             ExtractionServiceConfig config = {});
  ~ExtractionService();

  ExtractionService(const ExtractionService&) = delete;
  ExtractionService& operator=(const ExtractionService&) = delete;

  /// Spawns the worker pool. Fails on a second Start or after Stop.
  Status Start();

  /// Stops accepting work, sheds queued requests, joins workers. Safe to
  /// call twice.
  void Stop();

  /// Runs on the thread that resolves the request (a worker for executed
  /// batches, the submitter for admission sheds, Stop for orphans),
  /// strictly before the future becomes ready — a caller woken by
  /// future.get() observes the hook's side effects. Must not call back
  /// into this service.
  using CompletionHook = std::function<void(const ServeResult&)>;

  /// Admission-controlled enqueue. The returned future is always valid;
  /// shed requests resolve immediately with the typed reason. The future
  /// is plain promise-backed state: safe to poll with wait_for and safe
  /// to hold past the service's lifetime.
  std::future<ServeResult> Submit(ServeRequest request,
                                  CompletionHook on_complete = nullptr);

  ServiceStats stats() const;
  const ExtractionServiceConfig& config() const { return config_; }

 private:
  struct PendingRequest {
    ServeRequest request;
    std::promise<ServeResult> promise;
    CompletionHook on_complete;
    obs::TimePoint enqueued;
  };

  struct SiteQueue {
    std::deque<PendingRequest> pending;
    int inflight_batches = 0;
    bool in_ready_list = false;
  };

  void WorkerLoop() CERES_EXCLUDES(mu_);
  void ProcessBatch(const std::string& site, std::vector<PendingRequest> batch)
      CERES_EXCLUDES(mu_);
  /// Marks `site` ready if it has work and spare inflight slots.
  void MaybeReadyLocked(const std::string& site, SiteQueue* queue)
      CERES_REQUIRES(mu_);
  static ServeResult ShedResult(Status status, ShedCause cause);

  ModelRegistry* const registry_;
  const ExtractionServiceConfig config_;

  mutable CheckedMutex mu_{"ExtractionService.mu"};
  CondVar work_ready_;
  std::unordered_map<std::string, SiteQueue> queues_ CERES_GUARDED_BY(mu_);
  /// Sites with drainable work, FIFO across sites.
  std::deque<std::string> ready_ CERES_GUARDED_BY(mu_);
  size_t total_pending_ CERES_GUARDED_BY(mu_) = 0;
  bool accepting_ CERES_GUARDED_BY(mu_) = true;
  bool stopping_ CERES_GUARDED_BY(mu_) = false;
  bool started_ CERES_GUARDED_BY(mu_) = false;
  /// Launcher thread owning the worker pool; written by Start under mu_,
  /// joined by Stop after workers have been told to drain.
  std::thread pool_ CERES_GUARDED_BY(mu_);

  mutable CheckedMutex stats_mu_{"ExtractionService.stats_mu"};
  ServiceStats stats_ CERES_GUARDED_BY(stats_mu_);
};

}  // namespace ceres::serve

#endif  // CERES_SERVE_EXTRACTION_SERVICE_H_
