#include "baselines/ceres_baseline.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;
using testing::TinyMovieKb;

class PairBaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pages_.push_back(ParseOrDie(FilmPageHtml(
        "Do the Right Thing", "Spike Lee", "Spike Lee",
        {"Spike Lee", "Danny Aiello", "John Turturro"},
        {"Comedy", "Dramedy"})));
    pages_.push_back(ParseOrDie(FilmPageHtml(
        "Crooklyn", "Spike Lee", "Nobody", {"Zelda Harris"}, {"Comedy"})));
    pages_.push_back(ParseOrDie(FilmPageHtml(
        "Selma", "Unknown Person", "Unknown Writer", {"Danny Aiello"},
        {"Dramedy"})));
  }

  TinyMovieKb kb_;
  std::vector<DomDocument> pages_;
};

TEST_F(PairBaselineTest, ProducesPairAnnotationsAndExtractions) {
  PairBaselineConfig config;
  config.confidence_threshold = 0.3;
  Result<PairBaselineResult> result = RunPairBaseline(
      pages_, kb_.kb, {0, 1}, {2}, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->num_annotations, 0);
  // Extractions are plausible pairs from page 2 only.
  for (const Extraction& extraction : result->extractions) {
    EXPECT_EQ(extraction.page, 2);
  }
}

TEST_F(PairBaselineTest, AnnotationCapTriggersResourceExhausted) {
  PairBaselineConfig config;
  config.max_pair_annotations = 2;  // Absurdly small.
  Result<PairBaselineResult> result =
      RunPairBaseline(pages_, kb_.kb, {0, 1}, {2}, config);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(PairBaselineTest, NoAnnotationsFails) {
  // A page whose strings match nothing in the KB related to each other.
  std::vector<DomDocument> pages;
  pages.push_back(
      ParseOrDie("<body><div>Zelda Harris</div><div>Dramedy</div></body>"));
  Result<PairBaselineResult> result =
      RunPairBaseline(pages, kb_.kb, {0}, {0}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PairBaselineTest, RequiresFrozenKb) {
  KnowledgeBase unfrozen(TinyMovieKb::MakeOntology());
  Result<PairBaselineResult> result =
      RunPairBaseline(pages_, unfrozen, {0}, {0}, {});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PairBaselineTest, CandidateFieldCapBoundsWork) {
  PairBaselineConfig config;
  config.max_candidate_fields_per_page = 2;
  config.confidence_threshold = 0.0;
  Result<PairBaselineResult> result =
      RunPairBaseline(pages_, kb_.kb, {0, 1}, {2}, config);
  ASSERT_TRUE(result.ok());
  // At most 2 candidate fields -> at most 2 ordered pairs scored.
  EXPECT_LE(result->extractions.size(), 2u);
}

}  // namespace
}  // namespace ceres
