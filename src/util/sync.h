#ifndef CERES_UTIL_SYNC_H_
#define CERES_UTIL_SYNC_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

/// Thread-safety annotation macros plus a checked mutex for the concurrent
/// serve path.
///
/// The annotation macros (`CERES_GUARDED_BY` et al.) expand to Clang's
/// thread-safety attributes when the compiler supports them and to nothing
/// otherwise (g++, the only compiler in the build image, ignores them).
/// They still pay their way on g++: they are machine-readable documentation
/// that `tools/ceres_lint` and reviewers can hold the code to, and any
/// developer with clang gets `-Wthread-safety` for free.
///
/// `CheckedMutex` wraps `std::mutex` with a process-wide lock-order graph:
/// every acquisition taken while other CheckedMutexes are held records a
/// held→acquired edge, and the first edge that closes a cycle reports both
/// lock chains and aborts — the deadlock fires on the *potential*, in the
/// very first run whose interleaving merely proves both orders exist, not
/// only on the unlucky run that actually hangs. Concurrency code in
/// `src/serve/` and `src/util/parallel.h` must use these wrappers instead
/// of naked `std::mutex` / `std::lock_guard` (enforced by `ceres_lint`).

#if defined(__clang__)
#define CERES_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CERES_THREAD_ANNOTATION_(x)
#endif

/// Declares that the annotated type is a lockable capability.
#define CERES_CAPABILITY(x) CERES_THREAD_ANNOTATION_(capability(x))
/// Declares that the annotated field may only be touched with `x` held.
#define CERES_GUARDED_BY(x) CERES_THREAD_ANNOTATION_(guarded_by(x))
/// Declares that callers must hold the given capabilities.
#define CERES_REQUIRES(...) \
  CERES_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Declares that callers must NOT hold the given capabilities.
#define CERES_EXCLUDES(...) \
  CERES_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define CERES_ACQUIRE(...) \
  CERES_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define CERES_RELEASE(...) \
  CERES_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns `ret`.
#define CERES_TRY_ACQUIRE(ret, ...) \
  CERES_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))
/// Opts a function out of the static analysis (init/teardown paths).
#define CERES_NO_THREAD_SAFETY_ANALYSIS \
  CERES_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ceres {

/// A report of one lock-order cycle: the chain this thread held while
/// acquiring the closing lock, and the previously recorded chain that
/// established the opposite order.
struct LockOrderViolation {
  /// Human-readable multi-line report naming both chains.
  std::string report;
};

/// Installs `handler` to receive lock-order violations instead of the
/// default stderr-print-and-abort. Pass nullptr to restore the default.
/// Intended for tests that deliberately provoke a cycle; production code
/// should leave the aborting default in place.
void SetLockOrderViolationHandler(
    std::function<void(const LockOrderViolation&)> handler);

/// A std::mutex that participates in process-wide lock-order deadlock
/// detection. Satisfies Lockable, so it composes with std::lock_guard,
/// std::unique_lock, and std::condition_variable_any.
///
/// Detection cost: lock/unlock of an uncontended-with-others mutex (no
/// other CheckedMutex held by this thread) is a thread-local vector
/// push/pop on top of the underlying mutex. Nested acquisitions consult a
/// thread-local edge cache first and touch the global graph only the first
/// time this thread observes a given held→acquired pair. Define
/// CERES_DISABLE_LOCK_ORDER_CHECKS to compile the bookkeeping out.
class CERES_CAPABILITY("mutex") CheckedMutex {
 public:
  /// `name` appears in violation reports; it must outlive the mutex
  /// (string literals only).
  explicit CheckedMutex(const char* name = "mutex");
  ~CheckedMutex();

  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() CERES_ACQUIRE();
  void unlock() CERES_RELEASE();
  bool try_lock() CERES_TRY_ACQUIRE(true);

  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const char* name_;
  /// Process-unique, never reused; keys the lock-order graph.
  const uint64_t id_;
};

/// RAII lock over a CheckedMutex; the drop-in for std::lock_guard in code
/// covered by the naked-sync lint rule.
using MutexLock = std::lock_guard<CheckedMutex>;

/// Deferrable/movable lock over a CheckedMutex; pairs with CondVar.
using UniqueMutexLock = std::unique_lock<CheckedMutex>;

/// Condition variable usable with CheckedMutex. Waiting re-enters the
/// mutex through CheckedMutex::lock, so the lock-order bookkeeping stays
/// exact across waits.
using CondVar = std::condition_variable_any;

}  // namespace ceres

#endif  // CERES_UTIL_SYNC_H_
