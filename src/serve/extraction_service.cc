#include "serve/extraction_service.h"

#include <algorithm>
#include <utility>

#include "util/parallel.h"
#include "util/string_util.h"

namespace ceres::serve {

namespace {

std::chrono::microseconds Since(
    std::chrono::steady_clock::time_point start,
    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::microseconds>(end - start);
}

}  // namespace

ExtractionService::ExtractionService(ModelRegistry* registry,
                                     ExtractionServiceConfig config)
    : registry_(registry), config_(std::move(config)) {}

ExtractionService::~ExtractionService() { Stop(); }

ServeResult ExtractionService::ShedResult(Status status, ShedCause cause) {
  ServeResult result;
  result.status = std::move(status);
  result.diagnostics.shed_cause = cause;
  return result;
}

Status ExtractionService::Start() {
  MutexLock lock(mu_);
  if (started_) return Status::FailedPrecondition("service already started");
  if (stopping_) return Status::FailedPrecondition("service was stopped");
  started_ = true;
  const size_t workers =
      config_.worker_threads > 0
          ? static_cast<size_t>(config_.worker_threads)
          : std::max(1u, std::thread::hardware_concurrency());
  // The pool rides util/parallel.h: one launcher thread fans out `workers`
  // long-lived WorkerLoop bodies and inherits ParallelFor's exception
  // containment (a throwing worker surfaces at join, not via terminate).
  pool_ = std::thread([this, workers] {
    ParallelConfig pool;
    pool.threads = static_cast<int>(workers);
    ParallelFor(workers, pool, [this](size_t) { WorkerLoop(); });
  });
  return Status::Ok();
}

void ExtractionService::Stop() {
  std::vector<PendingRequest> orphans;
  // The pool handle leaves the critical section with us so the join below
  // never races a concurrent Start writing pool_.
  std::thread pool;
  {
    MutexLock lock(mu_);
    accepting_ = false;
    stopping_ = true;
    pool = std::move(pool_);
    for (auto& [site, queue] : queues_) {
      for (PendingRequest& pending : queue.pending) {
        orphans.push_back(std::move(pending));
      }
      queue.pending.clear();
      queue.in_ready_list = false;
    }
    ready_.clear();
    total_pending_ = 0;
  }
  work_ready_.notify_all();
  for (PendingRequest& orphan : orphans) {
    orphan.promise.set_value(ShedResult(
        Status::Cancelled("service stopped with request still queued"),
        ShedCause::kShutdown));
  }
  if (!orphans.empty()) {
    MutexLock lock(stats_mu_);
    stats_.shed[static_cast<int>(ShedCause::kShutdown)] +=
        static_cast<int64_t>(orphans.size());
  }
  if (pool.joinable()) pool.join();
}

std::future<ServeResult> ExtractionService::Submit(ServeRequest request) {
  std::promise<ServeResult> shed_promise;
  std::future<ServeResult> shed_future = shed_promise.get_future();
  {
    MutexLock lock(stats_mu_);
    ++stats_.submitted;
  }

  auto shed = [&](Status status, ShedCause cause) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.shed[static_cast<int>(cause)];
    }
    shed_promise.set_value(ShedResult(std::move(status), cause));
    return std::move(shed_future);
  };

  if (request.deadline.expired()) {
    return shed(request.deadline.Check("admission"),
                ShedCause::kDeadlineBeforeAdmission);
  }

  UniqueMutexLock lock(mu_);
  if (!accepting_) {
    lock.unlock();
    return shed(Status::Cancelled("service is stopped"),
                ShedCause::kShutdown);
  }
  if (total_pending_ >= config_.max_queue) {
    lock.unlock();
    return shed(
        Status::ResourceExhausted(StrCat(
            "request queue full (", config_.max_queue, " pending)")),
        ShedCause::kQueueFull);
  }

  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueued = Clock::now();
  std::future<ServeResult> future = pending.promise.get_future();
  SiteQueue& queue = queues_[pending.request.site];
  const std::string site = pending.request.site;
  queue.pending.push_back(std::move(pending));
  ++total_pending_;
  MaybeReadyLocked(site, &queue);
  return future;
}

void ExtractionService::MaybeReadyLocked(const std::string& site,
                                         SiteQueue* queue) {
  if (queue->in_ready_list || queue->pending.empty()) return;
  if (queue->inflight_batches >= config_.per_site_max_inflight) return;
  ready_.push_back(site);
  queue->in_ready_list = true;
  work_ready_.notify_one();
}

void ExtractionService::WorkerLoop() {
  UniqueMutexLock lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    const std::string site = std::move(ready_.front());
    ready_.pop_front();
    auto it = queues_.find(site);
    if (it == queues_.end()) continue;
    SiteQueue& queue = it->second;
    queue.in_ready_list = false;
    if (queue.pending.empty()) continue;

    const size_t n = std::min(config_.max_batch, queue.pending.size());
    std::vector<PendingRequest> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue.pending.front()));
      queue.pending.pop_front();
    }
    total_pending_ -= n;
    ++queue.inflight_batches;
    // Leftover work re-arms the site immediately (up to the inflight cap),
    // so another worker can run the next batch concurrently.
    MaybeReadyLocked(site, &queue);

    lock.unlock();
    ProcessBatch(site, std::move(batch));
    lock.lock();

    auto post = queues_.find(site);
    if (post != queues_.end()) {
      --post->second.inflight_batches;
      if (post->second.pending.empty() &&
          post->second.inflight_batches == 0 &&
          !post->second.in_ready_list) {
        queues_.erase(post);
      } else {
        MaybeReadyLocked(site, &post->second);
      }
    }
  }
}

void ExtractionService::ProcessBatch(const std::string& site,
                                     std::vector<PendingRequest> batch) {
  struct LiveRequest {
    PendingRequest pending;
    std::chrono::microseconds queue_wait{0};
    std::chrono::microseconds parse_time{0};
    DomDocument doc;
  };
  // Promises are fulfilled only at the very end, AFTER the stats update: a
  // caller woken by future.get() must never observe counters that do not
  // yet include its own request.
  std::vector<std::promise<ServeResult>> promises;
  std::vector<ServeResult> outcomes;
  promises.reserve(batch.size());
  outcomes.reserve(batch.size());
  auto resolve = [&](std::promise<ServeResult> promise, ServeResult result) {
    promises.push_back(std::move(promise));
    outcomes.push_back(std::move(result));
  };

  int64_t timed_out = 0;
  int64_t parse_failed = 0;
  int64_t model_load_failed = 0;
  int64_t completed = 0;
  int64_t total_extractions = 0;
  bool batch_ran = false;

  std::vector<LiveRequest> live;
  live.reserve(batch.size());
  const Clock::time_point picked_up = Clock::now();
  for (PendingRequest& pending : batch) {
    const std::chrono::microseconds wait =
        Since(pending.enqueued, picked_up);
    if (pending.request.deadline.expired()) {
      ServeResult result = ShedResult(pending.request.deadline.Check("queue"),
                                      ShedCause::kTimedOutInQueue);
      result.diagnostics.queue_wait = wait;
      resolve(std::move(pending.promise), std::move(result));
      ++timed_out;
      continue;
    }
    LiveRequest request;
    request.pending = std::move(pending);
    request.queue_wait = wait;
    live.push_back(std::move(request));
  }

  if (!live.empty()) {
    // One model fetch covers the whole batch — this is where
    // micro-batching pays: the registry lookup (or cold load) amortizes
    // across `live`.
    bool cache_hit = false;
    Result<std::shared_ptr<const SiteModel>> model_or =
        registry_->Get(site, &cache_hit);
    if (!model_or.ok()) {
      model_load_failed = static_cast<int64_t>(live.size());
      for (LiveRequest& request : live) {
        ServeResult result =
            ShedResult(model_or.status(), ShedCause::kModelLoadFailed);
        result.diagnostics.queue_wait = request.queue_wait;
        result.diagnostics.batch_size = static_cast<int>(live.size());
        resolve(std::move(request.pending.promise), std::move(result));
      }
      live.clear();
    } else {
      const std::shared_ptr<const SiteModel>& model = model_or.value();

      // Parse each page; a broken page fails its own request only.
      std::vector<LiveRequest> parsed;
      parsed.reserve(live.size());
      for (LiveRequest& request : live) {
        const Clock::time_point parse_start = Clock::now();
        Result<DomDocument> doc =
            ParseHtml(request.pending.request.html, config_.parse);
        request.parse_time = Since(parse_start, Clock::now());
        if (!doc.ok()) {
          ServeResult result = ShedResult(
              PrependContext(doc.status(),
                             StrCat("parsing ", request.pending.request.url)),
              ShedCause::kParseFailed);
          result.diagnostics.queue_wait = request.queue_wait;
          result.diagnostics.parse_time = request.parse_time;
          result.diagnostics.model_version = model->version;
          result.diagnostics.model_cache_hit = cache_hit;
          resolve(std::move(request.pending.promise), std::move(result));
          ++parse_failed;
          continue;
        }
        request.doc = std::move(doc).value();
        parsed.push_back(std::move(request));
      }

      if (!parsed.empty()) {
        std::vector<const DomDocument*> pages;
        std::vector<PageIndex> page_indices;
        pages.reserve(parsed.size());
        page_indices.reserve(parsed.size());
        for (size_t i = 0; i < parsed.size(); ++i) {
          pages.push_back(&parsed[i].doc);
          page_indices.push_back(static_cast<PageIndex>(i));
        }

        // The frozen feature map makes this a read-only pass over the
        // shared model; ExtractFromPages only takes TrainedModel* for the
        // (unused here) training-time interning path.
        const Clock::time_point inference_start = Clock::now();
        std::vector<Extraction> extractions = ExtractFromPages(
            pages, page_indices,
            const_cast<TrainedModel*>(&model->model), model->featurizer,
            config_.extraction);
        const std::chrono::microseconds inference_time =
            Since(inference_start, Clock::now());

        std::vector<std::vector<Extraction>> per_request(parsed.size());
        for (Extraction& extraction : extractions) {
          const size_t index = static_cast<size_t>(extraction.page);
          extraction.page = 0;  // each request carries exactly one page
          per_request[index].push_back(std::move(extraction));
        }

        batch_ran = true;
        completed = static_cast<int64_t>(parsed.size());
        for (size_t i = 0; i < parsed.size(); ++i) {
          ServeResult result;
          result.status = Status::Ok();
          result.triples = std::move(per_request[i]);
          total_extractions += static_cast<int64_t>(result.triples.size());
          result.diagnostics.queue_wait = parsed[i].queue_wait;
          result.diagnostics.parse_time = parsed[i].parse_time;
          result.diagnostics.inference_time = inference_time;
          result.diagnostics.batch_size = static_cast<int>(parsed.size());
          result.diagnostics.model_cache_hit = cache_hit;
          result.diagnostics.model_version = model->version;
          resolve(std::move(parsed[i].pending.promise), std::move(result));
        }
      }
    }
  }

  {
    MutexLock lock(stats_mu_);
    stats_.shed[static_cast<int>(ShedCause::kTimedOutInQueue)] += timed_out;
    stats_.shed[static_cast<int>(ShedCause::kParseFailed)] += parse_failed;
    stats_.shed[static_cast<int>(ShedCause::kModelLoadFailed)] +=
        model_load_failed;
    stats_.completed += completed;
    stats_.extractions += total_extractions;
    if (batch_ran) {
      ++stats_.batches;
      stats_.batched_requests += completed;
    }
  }
  for (size_t i = 0; i < promises.size(); ++i) {
    promises[i].set_value(std::move(outcomes[i]));
  }
}

ServiceStats ExtractionService::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace ceres::serve
