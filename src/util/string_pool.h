#ifndef CERES_UTIL_STRING_POOL_H_
#define CERES_UTIL_STRING_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace ceres {
namespace util {

/// Process-wide append-only string interning pool.
///
/// Intern() returns a string_view that aliases pool-owned storage and stays
/// valid for the life of the process: chunks are never freed or reallocated,
/// so pooled views are stable and two Intern() calls with equal bytes return
/// views over the *same* storage. That pointer identity is what makes pooled
/// names cheap to compare on the hot path — `a.data() == b.data()` replaces a
/// byte compare for interned tag/attribute names.
///
/// Thread-safe: concurrent parses intern tag and attribute names through
/// Global(). The critical section is one probe of a small open-addressing
/// table, so a single mutex suffices — tag/attribute vocabulary is tiny and
/// repeat interns hit the first probe. The index is FNV-keyed (pinned
/// Fnv1a64, not std::hash) so behaviour is identical across runs and
/// processes.
class StringPool {
 public:
  StringPool();
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// The process-wide pool used for DOM tag/attribute names and XPath steps.
  static StringPool& Global();

  /// Returns a stable view of pooled storage holding the bytes of `s`,
  /// inserting them on first sight.
  std::string_view Intern(std::string_view s);

  /// Number of distinct strings interned.
  size_t size() const;

  /// Total pooled bytes (payload only, not index overhead).
  size_t payload_bytes() const;

 private:
  struct Slot {
    uint64_t hash = 0;
    std::string_view view;  // empty data() means the slot is free
  };

  // Copies `s` into chunk storage; caller holds the exclusive lock.
  std::string_view Store(std::string_view s);
  void GrowLocked();

  mutable CheckedMutex mu_{"string_pool"};
  // Open-addressing table over pooled views; capacity is a power of two.
  std::vector<Slot> slots_;
  size_t used_ = 0;
  // Bump-allocated chunks. Chunks are never resized once allocated, so the
  // views handed out remain stable for the pool's lifetime.
  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_capacity_ = 0;
  size_t chunk_used_ = 0;
  size_t payload_bytes_ = 0;
};

}  // namespace util
}  // namespace ceres

#endif  // CERES_UTIL_STRING_POOL_H_
