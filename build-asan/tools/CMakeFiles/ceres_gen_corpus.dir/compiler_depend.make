# Empty compiler generated dependencies file for ceres_gen_corpus.
# This may be replaced when dependencies are built.
