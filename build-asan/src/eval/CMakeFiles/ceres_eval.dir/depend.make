# Empty dependencies file for ceres_eval.
# This may be replaced when dependencies are built.
