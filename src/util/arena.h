#ifndef CERES_UTIL_ARENA_H_
#define CERES_UTIL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace ceres {
namespace util {

/// Bump allocator for the character data of one parsed document.
///
/// Append() copies bytes into chunked storage and returns a view into it.
/// Chunks are never resized or freed while the arena lives, so returned
/// views stay valid until the arena is destroyed (they move with the arena:
/// moving a TextArena moves chunk ownership, not the bytes). One DomDocument
/// owns one TextArena; node text and attribute values are views into it,
/// which turns a parsed page into a handful of contiguous buffers plus a
/// flat node array instead of thousands of individual heap strings.
///
/// ExtendTail() supports the parser's interleaved text accumulation
/// (`<p>a<b/>b</p>` touches the p-node's text twice): when the span being
/// grown is the most recent allocation it is extended in place, otherwise
/// the merged bytes are re-appended. Not thread-safe — a document is parsed
/// by exactly one thread.
class TextArena {
 public:
  TextArena() = default;
  TextArena(TextArena&&) = default;
  TextArena& operator=(TextArena&&) = default;
  TextArena(const TextArena&) = delete;
  TextArena& operator=(const TextArena&) = delete;

  /// Copies `s` into the arena and returns a stable view of the copy.
  std::string_view Append(std::string_view s) {
    char* dst = Allocate(s.size());
    if (!s.empty()) std::memcpy(dst, s.data(), s.size());
    return std::string_view(dst, s.size());
  }

  /// Returns a view over `head` + `sep` + `tail` stored in the arena.
  /// If `head` is the arena's most recent allocation the new bytes are
  /// bump-extended in place (no copy of `head`); otherwise all three parts
  /// are appended fresh. `head` must be a view previously returned by this
  /// arena (or empty).
  std::string_view ExtendTail(std::string_view head, std::string_view sep,
                              std::string_view tail) {
    if (head.empty()) return Append(tail);
    const size_t extra = sep.size() + tail.size();
    if (head.data() + head.size() == chunk_ptr_ &&
        chunk_left_ >= extra) {
      std::memcpy(chunk_ptr_, sep.data(), sep.size());
      std::memcpy(chunk_ptr_ + sep.size(), tail.data(), tail.size());
      chunk_ptr_ += extra;
      chunk_left_ -= extra;
      bytes_used_ += extra;
      return std::string_view(head.data(), head.size() + extra);
    }
    char* dst = Allocate(head.size() + extra);
    std::memcpy(dst, head.data(), head.size());
    std::memcpy(dst + head.size(), sep.data(), sep.size());
    std::memcpy(dst + head.size() + sep.size(), tail.data(), tail.size());
    return std::string_view(dst, head.size() + extra);
  }

  /// Bytes handed out (live payload; re-appended ExtendTail heads count
  /// twice — the abandoned prefix is arena garbage until the document dies).
  size_t bytes_used() const { return bytes_used_; }

  /// Total bytes reserved across chunks.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr size_t kMinChunk = 4 << 10;

  char* Allocate(size_t n) {
    if (chunk_left_ < n) Grow(n);
    char* out = chunk_ptr_;
    chunk_ptr_ += n;
    chunk_left_ -= n;
    bytes_used_ += n;
    return out;
  }

  void Grow(size_t min_bytes) {
    // Double the chunk size each time so a document needs O(log size)
    // allocations regardless of length.
    size_t want = bytes_reserved_ == 0 ? kMinChunk : bytes_reserved_;
    if (want < min_bytes) want = min_bytes;
    chunks_.push_back(std::make_unique<char[]>(want));
    chunk_ptr_ = chunks_.back().get();
    chunk_left_ = want;
    bytes_reserved_ += want;
  }

  std::vector<std::unique_ptr<char[]>> chunks_;
  char* chunk_ptr_ = nullptr;
  size_t chunk_left_ = 0;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace util
}  // namespace ceres

#endif  // CERES_UTIL_ARENA_H_
