#include "core/entity_matcher.h"

namespace ceres {

PageMentions MatchPageMentions(const DomDocument& page,
                               const KnowledgeBase& kb) {
  PageMentions out;
  for (NodeId id : page.TextFields()) {
    // The view overload matches without allocating a normalized key per
    // text field; we copy only the (rare) non-empty hits.
    std::span<const EntityId> ids = kb.MatchMentionsView(page.node(id).text);
    if (ids.empty()) continue;
    out.fields.push_back(id);
    for (EntityId entity : ids) {
      out.page_set.insert(entity);
      out.mentions_of[entity].push_back(id);
    }
    out.candidates.emplace_back(ids.begin(), ids.end());
  }
  return out;
}

}  // namespace ceres
