file(REMOVE_RECURSE
  "CMakeFiles/ceres_util.dir/deadline.cc.o"
  "CMakeFiles/ceres_util.dir/deadline.cc.o.d"
  "CMakeFiles/ceres_util.dir/logging.cc.o"
  "CMakeFiles/ceres_util.dir/logging.cc.o.d"
  "CMakeFiles/ceres_util.dir/status.cc.o"
  "CMakeFiles/ceres_util.dir/status.cc.o.d"
  "CMakeFiles/ceres_util.dir/string_util.cc.o"
  "CMakeFiles/ceres_util.dir/string_util.cc.o.d"
  "libceres_util.a"
  "libceres_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
