#include "dom/dom_tree.h"

namespace ceres {

DomDocument::DomDocument() {
  DomNode root;
  root.tag = "html";
  root.parent = kInvalidNode;
  nodes_.push_back(std::move(root));
}

NodeId DomDocument::AddChild(NodeId parent, std::string tag) {
  CERES_CHECK(parent >= 0 && parent < size());
  NodeId id = size();
  DomNode node;
  node.tag = std::move(tag);
  node.parent = parent;
  node.child_position = static_cast<int>(nodes_[parent].children.size());
  int same_tag = 0;
  for (NodeId sibling : nodes_[parent].children) {
    if (nodes_[sibling].tag == node.tag) ++same_tag;
  }
  node.sibling_index = same_tag + 1;
  nodes_[parent].children.push_back(id);
  nodes_.push_back(std::move(node));
  return id;
}

std::vector<NodeId> DomDocument::TextFields() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < size(); ++id) {
    if (nodes_[id].HasText()) out.push_back(id);
  }
  return out;
}

bool DomDocument::IsAncestorOrSelf(NodeId ancestor, NodeId descendant) const {
  NodeId cur = descendant;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

int DomDocument::Depth(NodeId id) const {
  int depth = 0;
  NodeId cur = node(id).parent;
  while (cur != kInvalidNode) {
    ++depth;
    cur = nodes_[cur].parent;
  }
  return depth;
}

}  // namespace ceres
