#include "text/normalize.h"

#include <array>
#include <cctype>
#include <cstdint>
#include <unordered_set>

namespace ceres {

namespace {

// Maps a Unicode code point in the Latin-1 supplement / Latin Extended-A
// ranges to an ASCII base letter, or 0 when there is no sensible fold.
char FoldLatin(uint32_t cp) {
  if (cp >= 0x00C0 && cp <= 0x00C5) return 'a';  // À-Å
  if (cp == 0x00C6) return 'a';                  // Æ
  if (cp == 0x00C7) return 'c';                  // Ç
  if (cp >= 0x00C8 && cp <= 0x00CB) return 'e';  // È-Ë
  if (cp >= 0x00CC && cp <= 0x00CF) return 'i';  // Ì-Ï
  if (cp == 0x00D0) return 'd';                  // Ð
  if (cp == 0x00D1) return 'n';                  // Ñ
  if (cp >= 0x00D2 && cp <= 0x00D6) return 'o';  // Ò-Ö
  if (cp == 0x00D8) return 'o';                  // Ø
  if (cp >= 0x00D9 && cp <= 0x00DC) return 'u';  // Ù-Ü
  if (cp == 0x00DD) return 'y';                  // Ý
  if (cp == 0x00DE) return 't';                  // Þ
  if (cp == 0x00DF) return 's';                  // ß
  if (cp >= 0x00E0 && cp <= 0x00E5) return 'a';
  if (cp == 0x00E6) return 'a';
  if (cp == 0x00E7) return 'c';
  if (cp >= 0x00E8 && cp <= 0x00EB) return 'e';
  if (cp >= 0x00EC && cp <= 0x00EF) return 'i';
  if (cp == 0x00F0) return 'd';
  if (cp == 0x00F1) return 'n';
  if (cp >= 0x00F2 && cp <= 0x00F6) return 'o';
  if (cp == 0x00F8) return 'o';
  if (cp >= 0x00F9 && cp <= 0x00FC) return 'u';
  if (cp == 0x00FD || cp == 0x00FF) return 'y';
  if (cp == 0x00FE) return 't';
  if (cp >= 0x0100 && cp <= 0x0105) return 'a';  // Ā-ą
  if (cp >= 0x0106 && cp <= 0x010D) return 'c';  // Ć-č
  if (cp >= 0x010E && cp <= 0x0111) return 'd';  // Ď-đ
  if (cp >= 0x0112 && cp <= 0x011B) return 'e';  // Ē-ě
  if (cp >= 0x011C && cp <= 0x0123) return 'g';
  if (cp >= 0x0124 && cp <= 0x0127) return 'h';
  if (cp >= 0x0128 && cp <= 0x0131) return 'i';
  if (cp >= 0x0134 && cp <= 0x0135) return 'j';
  if (cp >= 0x0136 && cp <= 0x0138) return 'k';
  if (cp >= 0x0139 && cp <= 0x0142) return 'l';
  if (cp >= 0x0143 && cp <= 0x014B) return 'n';
  if (cp >= 0x014C && cp <= 0x0153) return 'o';
  if (cp >= 0x0154 && cp <= 0x0159) return 'r';
  if (cp >= 0x015A && cp <= 0x0161) return 's';
  if (cp >= 0x0162 && cp <= 0x0167) return 't';
  if (cp >= 0x0168 && cp <= 0x0173) return 'u';
  if (cp >= 0x0174 && cp <= 0x0175) return 'w';
  if (cp >= 0x0176 && cp <= 0x0178) return 'y';
  if (cp >= 0x0179 && cp <= 0x017E) return 'z';
  return 0;
}

// Decodes one UTF-8 code point starting at input[i]; advances i past it.
// Malformed bytes are consumed one at a time and returned as-is.
uint32_t DecodeUtf8(std::string_view input, size_t* i) {
  unsigned char c0 = static_cast<unsigned char>(input[*i]);
  if (c0 < 0x80) {
    ++*i;
    return c0;
  }
  int extra = 0;
  uint32_t cp = 0;
  if ((c0 & 0xE0) == 0xC0) {
    extra = 1;
    cp = c0 & 0x1F;
  } else if ((c0 & 0xF0) == 0xE0) {
    extra = 2;
    cp = c0 & 0x0F;
  } else if ((c0 & 0xF8) == 0xF0) {
    extra = 3;
    cp = c0 & 0x07;
  } else {
    ++*i;
    return c0;
  }
  if (*i + extra >= input.size()) {
    // Truncated sequence: consume the lead byte only.
    ++*i;
    return c0;
  }
  for (int k = 1; k <= extra; ++k) {
    unsigned char ck = static_cast<unsigned char>(input[*i + k]);
    if ((ck & 0xC0) != 0x80) {
      ++*i;
      return c0;
    }
    cp = (cp << 6) | (ck & 0x3F);
  }
  *i += 1 + extra;
  return cp;
}

const std::unordered_set<std::string>& LowInformationWords() {
  static const auto* kWords = new std::unordered_set<std::string>{
      "usa",     "uk",      "france",  "germany", "italy",   "india",
      "china",   "japan",   "canada",  "spain",   "denmark", "iceland",
      "nigeria", "korea",   "help",    "home",    "search",  "login",
      "contact", "about",   "more",    "new",     "yes",     "no",
      "n a",     "none",    "unknown", "english", "drama",
  };
  return *kWords;
}

}  // namespace

void NormalizeTextInto(std::string_view input, std::string* out_ptr) {
  std::string& out = *out_ptr;
  out.clear();
  out.reserve(input.size());
  bool pending_space = false;
  auto push = [&](char c) {
    if (c == ' ') {
      if (!out.empty()) pending_space = true;
      return;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  };
  size_t i = 0;
  while (i < input.size()) {
    uint32_t cp = DecodeUtf8(input, &i);
    if (cp < 0x80) {
      char c = static_cast<char>(cp);
      if (std::isalnum(static_cast<unsigned char>(c))) {
        push(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
      } else {
        push(' ');
      }
    } else {
      char folded = FoldLatin(cp);
      push(folded != 0 ? folded : ' ');
    }
  }
}

std::string NormalizeText(std::string_view input) {
  std::string out;
  NormalizeTextInto(input, &out);
  return out;
}

bool IsBlankAfterNormalize(std::string_view input) {
  return NormalizeText(input).empty();
}

bool IsLowInformation(std::string_view text) {
  std::string norm = NormalizeText(text);
  if (norm.size() <= 1) return true;
  bool all_digits = true;
  for (char c : norm) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      all_digits = false;
      break;
    }
  }
  // Single-digit numbers and 4-digit years carry no topical information.
  if (all_digits && norm.size() <= 4) return true;
  return LowInformationWords().count(norm) > 0;
}

}  // namespace ceres
