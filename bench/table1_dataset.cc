// Table 1 — Overview of the four SWDE-style verticals used in evaluation.
//
// Paper reference (Table 1): Book 10 sites / 20,000 pages; Movie 10 /
// 20,000; NBA Player 10 / 4,405; University 10 / 16,705. The synthetic
// corpus reproduces the structure (10 sites per vertical, the same
// attribute sets) at laptop scale; page counts scale with CERES_SCALE.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf("Table 1: SWDE-style dataset overview (scale=%.2f)\n\n",
              scale);

  eval::TableReport table(
      {"Vertical", "#Sites", "#Pages", "Attributes"});
  for (synth::SwdeVertical vertical :
       {synth::SwdeVertical::kBook, synth::SwdeVertical::kMovie,
        synth::SwdeVertical::kNbaPlayer,
        synth::SwdeVertical::kUniversity}) {
    synth::Corpus corpus = synth::MakeSwdeCorpus(vertical, scale);
    int64_t pages = 0;
    for (const synth::SyntheticSite& site : corpus.sites) {
      pages += static_cast<int64_t>(site.pages.size());
    }
    std::string attributes = "title/name";
    for (const std::string& predicate : corpus.eval_predicates) {
      attributes += ", " + predicate;
    }
    table.AddRow({SwdeVerticalName(vertical),
                  std::to_string(corpus.sites.size()),
                  std::to_string(pages), attributes});
  }
  table.Print();
  std::printf(
      "\nPaper (Table 1): Book 10/20000, Movie 10/20000, NBA Player "
      "10/4405, University 10/16705.\n");
  return 0;
}
