file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/agglomerative_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/agglomerative_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/feature_map_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/feature_map_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/lbfgs_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/lbfgs_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/logistic_regression_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/logistic_regression_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/logreg_param_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/logreg_param_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/random_forest_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/random_forest_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/sparse_vector_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/sparse_vector_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
