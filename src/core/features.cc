#include "core/features.h"

#include <algorithm>
#include <unordered_map>

#include "dom/dom_utils.h"
#include "text/normalize.h"
#include "util/string_util.h"

namespace ceres {

namespace {

constexpr const char* kTrackedAttributes[] = {"class", "id", "itemprop",
                                              "itemtype", "property"};

void AddFeature(std::string_view prefix, const std::string& name,
                FeatureMap* map, SparseVector* out) {
  int32_t index = map->GetOrAdd(prefix.empty() ? name : StrCat(prefix, name));
  if (index >= 0) out->Add(index, 1.0);
}

// Emits the (attribute, value, level, sibling) tuples of one examined node.
void EmitNodeTuples(const DomNode& node, int level, int sibling_offset,
                    std::string_view prefix, FeatureMap* map,
                    SparseVector* out) {
  const std::string stem = StrCat("S|l=", level, "|s=", sibling_offset, "|");
  AddFeature(prefix, StrCat(stem, "tag=", node.tag), map, out);
  for (const char* attr : kTrackedAttributes) {
    std::string_view value = node.Attribute(attr);
    if (!value.empty()) {
      AddFeature(prefix, StrCat(stem, attr, "=", value), map, out);
    }
  }
}

}  // namespace

FeatureExtractor::FeatureExtractor(
    const std::vector<const DomDocument*>& pages, FeatureConfig config)
    : config_(config) {
  if (!config_.text_features || pages.empty()) return;
  // Mine strings that repeat across pages; these are the static labels
  // ("Director:", "Genres") that anchor text features. Pages are scanned
  // concurrently into per-page slots, then merged in page order; counting
  // is commutative, so the lexicon is identical at any thread count. A
  // page scanned after the deadline expires contributes nothing (same
  // monotonic cutoff the serial loop had).
  std::vector<std::unordered_set<std::string>> per_page(pages.size());
  ParallelFor(pages.size(), config_.parallel, [&](size_t i) {
    if (config_.deadline.expired()) return;
    std::unordered_set<std::string>& on_page = per_page[i];
    std::string norm;
    for (NodeId id : pages[i]->TextFields()) {
      NormalizeTextInto(pages[i]->node(id).text, &norm);
      if (!norm.empty() && norm.size() <= 60) on_page.insert(norm);
    }
  });
  std::unordered_map<std::string, size_t> page_counts;
  for (const std::unordered_set<std::string>& on_page : per_page) {
    for (const std::string& s : on_page) ++page_counts[s];
  }
  // Floor of two pages: a string seen on a single page is a value, not a
  // template label, no matter how small the site is.
  const double min_pages = std::max(
      pages.size() > 1 ? 2.0 : 1.0,
      config_.frequent_string_page_fraction * static_cast<double>(pages.size()));
  std::vector<std::pair<std::string, size_t>> qualified;
  for (auto& [text, count] : page_counts) {
    if (static_cast<double>(count) >= min_pages) {
      qualified.emplace_back(text, count);
    }
  }
  std::sort(qualified.begin(), qualified.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (qualified.size() > config_.max_frequent_strings) {
    qualified.resize(config_.max_frequent_strings);
  }
  for (auto& [text, count] : qualified) {
    frequent_strings_.insert(std::move(text));
  }
}

FeatureExtractor::FeatureExtractor(
    std::unordered_set<std::string> frequent_strings, FeatureConfig config)
    : config_(config), frequent_strings_(std::move(frequent_strings)) {}

void FeatureExtractor::AddStructural(const DomDocument& doc, NodeId node,
                                     std::string_view prefix,
                                     FeatureMap* map,
                                     SparseVector* out) const {
  // The node itself (level 0, sibling 0), its ancestors (level k, sibling
  // 0), and each examined node's siblings within the window.
  int level = 0;
  NodeId cur = node;
  while (cur != kInvalidNode) {
    EmitNodeTuples(doc.node(cur), level, 0, prefix, map, out);
    for (NodeId sibling : SiblingWindow(doc, cur, config_.sibling_window)) {
      int offset = doc.node(sibling).child_position -
                   doc.node(cur).child_position;
      EmitNodeTuples(doc.node(sibling), level, offset, prefix, map, out);
    }
    cur = doc.node(cur).parent;
    ++level;
  }
}

void FeatureExtractor::AddText(const DomDocument& doc, NodeId node,
                               std::string_view prefix, FeatureMap* map,
                               SparseVector* out,
                               NormalizedTextCache* text_cache) const {
  // Scratch used only on the cache-less path; with a cache the normalized
  // strings are computed once per document, not once per featurized field.
  std::string scratch;
  auto normalized = [&](NodeId id) -> const std::string& {
    if (text_cache != nullptr) return text_cache->Normalized(id);
    NormalizeTextInto(doc.node(id).text, &scratch);
    return scratch;
  };
  auto consider = [&](NodeId nearby, const std::string& relation) {
    if (nearby == kInvalidNode || nearby == node) return;
    if (!doc.node(nearby).HasText()) return;
    const std::string& norm = normalized(nearby);
    if (frequent_strings_.count(norm) == 0) return;
    AddFeature(prefix, StrCat("T|", relation, "|", norm), map, out);
  };

  // The node's own text, when it is itself a frequent site string, is a
  // strong OTHER signal (boilerplate labels).
  if (doc.node(node).HasText()) {
    const std::string& norm = normalized(node);
    if (frequent_strings_.count(norm) > 0) {
      AddFeature(prefix, StrCat("T|self|", norm), map, out);
    }
  }

  // Nearby nodes: for the node and its first few ancestors, the siblings
  // within the window (and the ancestor itself).
  NodeId cur = node;
  for (int level = 0;
       level <= config_.text_feature_levels && cur != kInvalidNode;
       ++level) {
    if (level > 0) consider(cur, StrCat("l", level));
    for (NodeId sibling : SiblingWindow(doc, cur, config_.sibling_window)) {
      int offset =
          doc.node(sibling).child_position - doc.node(cur).child_position;
      consider(sibling, StrCat("l", level, "s", offset));
      // Labels often live one level down inside a sibling wrapper
      // (e.g. <div><h4>Director:</h4>...</div>), so peek at its children.
      for (NodeId child : doc.node(sibling).children) {
        consider(child, StrCat("l", level, "s", offset, "c"));
      }
    }
    cur = doc.node(cur).parent;
  }
}

SparseVector FeatureExtractor::Extract(const DomDocument& doc, NodeId node,
                                       FeatureMap* map,
                                       std::string_view name_prefix,
                                       NormalizedTextCache* text_cache) const {
  SparseVector out;
  if (config_.structural_features) {
    AddStructural(doc, node, name_prefix, map, &out);
  }
  if (config_.text_features) {
    AddText(doc, node, name_prefix, map, &out, text_cache);
  }
  out.Finalize();
  return out;
}

}  // namespace ceres
