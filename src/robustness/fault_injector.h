#ifndef CERES_ROBUSTNESS_FAULT_INJECTOR_H_
#define CERES_ROBUSTNESS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "robustness/resilient_loader.h"
#include "util/random.h"

namespace ceres {

/// The fault kinds the chaos harness can inject into a crawl. The first
/// five corrupt a page's HTML in place; the last two corrupt the crawl's
/// shape (a page missing, a page fetched twice).
enum class FaultType {
  kNone = 0,
  /// Cut the byte stream off at a random point (interrupted transfer).
  kTruncate,
  /// Overwrite a fraction of bytes with random values (encoding damage).
  kGarble,
  /// Delete whole tags, unbalancing the markup (broken templating).
  kTagDelete,
  /// Break character entities mid-sequence (&am, &#xZZ;, unterminated).
  kEntityBreak,
  /// Append a long run of sibling elements so the element count blows any
  /// reasonable parse budget (scraper-trap / pathological page). Only
  /// triggers quarantine when HtmlParseOptions::max_nodes is lowered below
  /// `node_bomb_nodes`.
  kNodeBomb,
  /// Remove the page from the crawl.
  kDrop,
  /// Emit the page twice.
  kDuplicate,
};
inline constexpr int kNumFaultTypes = 8;

/// Human-readable fault name ("truncate", ...).
const char* FaultTypeName(FaultType fault);

/// Configuration of InjectFaults. All randomness flows from `seed`, forked
/// per page, so a given (crawl, config) pair always corrupts identically.
struct FaultInjectionConfig {
  uint64_t seed = 1;

  /// Probability that a page receives an in-place HTML fault.
  double page_fault_rate = 0.0;
  /// Relative weights of the in-place fault kinds, for pages that are hit.
  /// A zero weight disables the kind.
  double truncate_weight = 1.0;
  double garble_weight = 1.0;
  double tag_delete_weight = 1.0;
  double entity_break_weight = 1.0;
  double node_bomb_weight = 0.0;

  /// Probability that a page is dropped from the crawl entirely, and that
  /// a (kept) page appears twice. Decided independently of the in-place
  /// fault; a duplicated page duplicates its corrupted bytes.
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;

  /// Per-kind knobs.
  double truncate_keep_min = 0.05;  // fraction of bytes kept, lower bound
  double truncate_keep_max = 0.8;   // ... upper bound
  double garble_byte_fraction = 0.02;
  double tag_delete_fraction = 0.15;
  int node_bomb_nodes = 1 << 16;
};

/// One fault applied to one source page.
struct InjectedFault {
  PageIndex source_page = 0;
  FaultType fault = FaultType::kNone;
};

/// Exactly which faults InjectFaults applied, for ground-truth accounting
/// in chaos tests.
struct FaultReport {
  std::vector<InjectedFault> faults;
  int64_t count(FaultType fault) const;
  /// Source pages hit by `fault`, ascending.
  std::vector<PageIndex> PagesWith(FaultType fault) const;
};

/// Applies one in-place fault to an HTML string. kNone / kDrop / kDuplicate
/// return the input unchanged.
std::string CorruptHtml(std::string_view html, FaultType fault,
                        const FaultInjectionConfig& config, Rng* rng);

/// Deterministically corrupts a crawl according to `config`. Crawl order is
/// preserved; dropped pages are omitted, duplicated pages appear twice in a
/// row. Each applied fault is recorded in `report` (optional) against the
/// page's index in the input vector.
std::vector<RawPage> InjectFaults(const std::vector<RawPage>& pages,
                                  const FaultInjectionConfig& config,
                                  FaultReport* report = nullptr);

/// Process-level fault kinds for the distributed coordinator/worker
/// harness (src/dist/). The first three are acted out by the worker
/// process itself mid-shard; the last corrupts the coordinator's on-disk
/// checkpoint after it is written, so restart-time validation is testable.
enum class ProcessFaultType {
  kNone = 0,
  /// Worker _exit()s abruptly halfway through its assigned shard.
  kWorkerCrash,
  /// Worker stops heartbeating and blocks forever; only the coordinator's
  /// watchdog (deadline-based liveness) can reclaim the shard.
  kWorkerHang,
  /// Worker computes the full result but writes only a prefix of the
  /// result frame before exiting (interrupted pipe write).
  kTruncatedResult,
  /// Coordinator-side: the shard's checkpoint file is corrupted in place
  /// after the atomic write-rename, as if by partial storage failure.
  kCorruptCheckpoint,
};
inline constexpr int kNumProcessFaultTypes = 5;

/// Human-readable process-fault name ("worker-crash", ...).
const char* ProcessFaultTypeName(ProcessFaultType fault);

/// One planned process fault: `fault` fires whenever `shard` runs with an
/// attempt number <= `attempts` (1-based), then stops — so a shard crashed
/// on its first attempt succeeds on retry, and a shard with
/// `attempts >= max_attempts_per_shard` exhausts its budget and lands in
/// quarantine. Deterministic by construction: no randomness at fire time.
struct ProcessFault {
  int shard = 0;
  ProcessFaultType fault = ProcessFaultType::kNone;
  int attempts = 1;
};

/// A deterministic schedule of process-level faults, keyed by shard id and
/// attempt number. The plan travels from the coordinator to workers inside
/// the assign-shard frame, so a forked or exec'd worker misbehaves
/// identically across runs.
struct ProcessFaultPlan {
  std::vector<ProcessFault> faults;

  /// The fault to act out for this (shard, attempt), kNone when the shard
  /// has no planned fault or its fault budget is spent. `attempt` is
  /// 1-based.
  ProcessFaultType FaultFor(int shard, int attempt) const;
  /// Shards planned to receive `fault` (on any attempt), ascending.
  std::vector<int> ShardsWith(ProcessFaultType fault) const;
};

/// Builds a plan that applies `fault` to ceil(fault_fraction * num_shards)
/// shards, chosen by seeded shuffle, on their first `attempts` attempt(s).
/// The workhorse of the dist chaos tests and bench/dist_recovery.
ProcessFaultPlan MakeProcessFaultPlan(int num_shards, double fault_fraction,
                                      uint64_t seed,
                                      ProcessFaultType fault =
                                          ProcessFaultType::kWorkerCrash,
                                      int attempts = 1);

/// Corrupts a serialized knowledge base (kb_io.h format): each fact line
/// (#triples section) is mangled into a malformed record with probability
/// `line_fault_rate`. Schema and entity lines are left alone — nothing
/// references a triple, so every mangled line is exactly one bad line on a
/// lenient load, while a lost type or entity would cascade into its
/// referents. The number of mangled lines is written to `corrupted_lines`
/// (optional) — it is the exact bad-line tally a lenient LoadKb of the
/// result must report.
std::string CorruptKbText(std::string_view kb_text, double line_fault_rate,
                          uint64_t seed, int64_t* corrupted_lines = nullptr);

}  // namespace ceres

#endif  // CERES_ROBUSTNESS_FAULT_INJECTOR_H_
