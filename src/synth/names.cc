#include "synth/names.h"

#include <array>
#include <cctype>
#include <map>

#include "util/string_util.h"

namespace ceres::synth {

namespace {

struct SyllableBank {
  std::vector<std::string> first;
  std::vector<std::string> mid;
  std::vector<std::string> last;
};

const SyllableBank& BankFor(Locale locale) {
  static const auto* kBanks = new std::map<Locale, SyllableBank>{
      {Locale::kEnglish,
       {{"mar", "el", "jo", "ka", "dan", "ro", "li", "ste", "ber", "tho",
         "an", "wil", "har", "ed", "fre"},
        {"cu", "ri", "na", "vi", "lo", "den", "mi", "ga", "ren", "ther"},
        {"son", "ton", "ley", "field", "man", "berg", "wick", "ford", "well",
         "er", "by", "ham"}}},
      {Locale::kItalian,
       {{"gio", "mar", "lu", "fran", "ales", "pa", "vit", "ro", "si", "ce"},
        {"van", "ce", "to", "ri", "ssan", "ol", "en", "ber", "la", "mi"},
        {"ni", "ti", "sco", "ro", "lli", "ra", "dro", "ne", "si", "tta"}}},
      {Locale::kCzech,
       {{"ja", "pe", "mi", "vo", "zde", "kar", "lud", "bo", "sta", "vla"},
        {"ro", "tr", "ne", "je", "ku", "mil", "di", "va", "se", "ho"},
        {"slav", "mir", "tek", "cek", "ka", "nek", "vec", "sky", "cil",
         "han"}}},
      {Locale::kDanish,
       {{"sø", "las", "mik", "an", "kas", "fre", "jo", "ni", "mag", "es"},
        {"ren", "se", "kel", "der", "per", "de", "han", "ko", "nu", "ben"},
        {"sen", "gaard", "holm", "berg", "dal", "lund", "strup", "skov",
         "bæk", "toft"}}},
      {Locale::kIcelandic,
       {{"sig", "gud", "bjar", "ein", "hall", "thor", "ragn", "ás", "ól",
         "kri"},
        {"ur", "run", "ni", "dis", "ar", "mund", "ge", "stein", "vald",
         "björ"},
        {"sson", "dóttir", "nsson", "rsson", "ðsson", "gsson", "ksson",
         "ason", "msson", "tsson"}}},
      {Locale::kIndonesian,
       {{"bu", "sri", "adi", "dwi", "ra", "su", "tri", "yan", "nur", "in"},
        {"di", "ka", "war", "san", "har", "ta", "man", "gu", "se", "no"},
        {"to", "wan", "sih", "dja", "ti", "no", "yah", "tra", "man", "di"}}},
      {Locale::kSlovak,
       {{"ju", "mar", "pa", "mi", "lu", "ra", "to", "vla", "an", "du"},
        {"ra", "ti", "vo", "ku", "le", "bo", "mi", "se", "za", "ho"},
        {"vič", "ák", "ček", "ský", "an", "ko", "ar", "ik", "áš", "ec"}}},
  };
  auto it = kBanks->find(locale);
  return it == kBanks->end() ? kBanks->at(Locale::kEnglish) : it->second;
}

std::string Capitalize(std::string word) {
  if (!word.empty()) {
    word[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(word[0])));
  }
  return word;
}

std::string ComposeWord(Rng* rng, const SyllableBank& bank, int min_syl,
                        int max_syl) {
  int syllables = static_cast<int>(rng->Uniform(min_syl, max_syl));
  std::string word = rng->Pick(bank.first);
  for (int i = 1; i + 1 < syllables; ++i) word += rng->Pick(bank.mid);
  if (syllables > 1) word += rng->Pick(bank.last);
  return Capitalize(word);
}

const std::vector<std::string>& TitleAdjectives() {
  static const auto* kWords = new std::vector<std::string>{
      "Silent",  "Crimson", "Broken",  "Golden", "Hidden",  "Burning",
      "Frozen",  "Wild",    "Lonely",  "Final",  "Distant", "Hollow",
      "Gentle",  "Savage",  "Electric", "Paper", "Iron",    "Velvet",
      "Falling", "Rising"};
  return *kWords;
}

const std::vector<std::string>& TitleNouns() {
  static const auto* kWords = new std::vector<std::string>{
      "Harbor",  "Road",    "River",   "Mountain", "Garden", "Mirror",
      "Shadow",  "Summer",  "Winter",  "Letter",   "Window", "Island",
      "Signal",  "Horizon", "Lantern", "Orchard",  "Bridge", "Voyage",
      "Whisper", "Carnival"};
  return *kWords;
}

}  // namespace

std::string PersonName(Rng* rng, Locale locale) {
  const SyllableBank& bank = BankFor(locale);
  return ComposeWord(rng, bank, 2, 3) + " " + ComposeWord(rng, bank, 2, 4);
}

std::string FilmTitle(Rng* rng, Locale locale) {
  switch (rng->Uniform(0, 3)) {
    case 0:
      return StrCat("The ", rng->Pick(TitleAdjectives()), " ",
                    rng->Pick(TitleNouns()));
    case 1:
      return StrCat(rng->Pick(TitleAdjectives()), " ",
                    rng->Pick(TitleNouns()));
    case 2:
      return StrCat(rng->Pick(TitleNouns()), " of ",
                    ComposeWord(rng, BankFor(locale), 2, 3));
    default:
      return StrCat(rng->Pick(TitleNouns()), " ", rng->Pick(TitleNouns()));
  }
}

std::string BookTitle(Rng* rng) {
  switch (rng->Uniform(0, 2)) {
    case 0:
      return StrCat("A ", rng->Pick(TitleAdjectives()), " ",
                    rng->Pick(TitleNouns()));
    case 1:
      return StrCat("The ", rng->Pick(TitleNouns()), " and the ",
                    rng->Pick(TitleNouns()));
    default:
      return StrCat(rng->Pick(TitleAdjectives()), " ",
                    rng->Pick(TitleNouns()), "s");
  }
}

std::string PublisherName(Rng* rng) {
  static const std::vector<std::string> kSuffixes{"Press", "Books", "House",
                                                  "Publishing", "& Sons"};
  return StrCat(ComposeWord(rng, BankFor(Locale::kEnglish), 2, 3), " ",
                rng->Pick(kSuffixes));
}

std::string UniversityName(Rng* rng) {
  std::string base = ComposeWord(rng, BankFor(Locale::kEnglish), 2, 4);
  switch (rng->Uniform(0, 2)) {
    case 0:
      return StrCat("University of ", base);
    case 1:
      return StrCat(base, " State University");
    default:
      return StrCat(base, " College");
  }
}

std::string TeamName(Rng* rng) {
  static const std::vector<std::string> kMascots{
      "Hawks", "Bears",  "Comets", "Pioneers", "Wolves",
      "Kings", "Rivers", "Suns",   "Raptors",  "Chiefs"};
  return StrCat(ComposeWord(rng, BankFor(Locale::kEnglish), 2, 3), " ",
                rng->Pick(kMascots));
}

std::string PlaceName(Rng* rng, Locale locale) {
  static const std::vector<std::string> kSuffixes{"ville", " City", "burg",
                                                  "ton", " Falls"};
  return StrCat(ComposeWord(rng, BankFor(locale), 2, 3),
                rng->Pick(kSuffixes));
}

std::string DateString(Rng* rng, int year_lo, int year_hi) {
  static const std::vector<std::string> kMonths{
      "January",   "February", "March",    "April",
      "May",       "June",     "July",     "August",
      "September", "October",  "November", "December"};
  return StrCat(rng->Uniform(1, 28), " ", rng->Pick(kMonths), " ",
                rng->Uniform(year_lo, year_hi));
}

std::string HeightString(Rng* rng) {
  return StrCat(rng->Uniform(5, 7), "'", rng->Uniform(0, 11), "\"");
}

std::string WeightString(Rng* rng) {
  return StrCat(rng->Uniform(160, 290), " lbs");
}

std::string PhoneString(Rng* rng) {
  return StrCat("(", rng->Uniform(201, 989), ") 555-0",
                rng->Uniform(100, 199));
}

std::string WebsiteString(Rng* rng, std::string_view base) {
  (void)rng;
  return StrCat("www.", Slugify(base), ".edu");
}

std::string IsbnString(Rng* rng) {
  std::string out = "978-";
  out += std::to_string(rng->Uniform(0, 1));
  out += '-';
  for (int i = 0; i < 2; ++i) {
    out += std::to_string(rng->Uniform(100, 999));
    out += '-';
  }
  out += std::to_string(rng->Uniform(0, 9));
  return out;
}

const std::vector<std::string>& GenreNames() {
  static const auto* kGenres = new std::vector<std::string>{
      "Comedy",      "Thriller", "Romance",  "Action",  "Horror",
      "Documentary", "Western",  "Musical",  "Mystery", "Animation",
      "Crime",       "Fantasy",  "War",      "Sport",   "Biography",
      "Adventure",   "Family",   "Sci-Fi"};
  return *kGenres;
}

const std::vector<std::string>& AmbiguousEpisodeTitles() {
  static const auto* kTitles = new std::vector<std::string>{
      "Pilot", "Biography", "Help", "Home", "The Letter", "Family",
      "The Road", "Winter", "Crime", "The Bridge"};
  return *kTitles;
}

std::string UiLabel(const std::string& key, Locale locale) {
  using Table = std::map<std::string, std::string>;
  static const auto* kEnglish = new Table{
      {"director", "Director:"},       {"writer", "Writer:"},
      {"cast", "Cast"},                {"genre", "Genres"},
      {"release_date", "Release Date:"}, {"year", "Year:"},
      {"producer", "Producer:"},       {"music", "Music by:"},
      {"born", "Born:"},               {"birthplace", "Birthplace:"},
      {"alias", "Also Known As:"},     {"title", "Title:"},
      {"author", "Author:"},           {"publisher", "Publisher:"},
      {"publication_date", "Publication Date:"}, {"isbn", "ISBN-13:"},
      {"team", "Team:"},               {"height", "Height:"},
      {"weight", "Weight:"},           {"phone", "Phone:"},
      {"website", "Website:"},         {"type", "Type:"},
      {"known_for", "Known For"},
      {"recommendations", "People who liked this also liked"},
      {"filmography", "Filmography"},  {"home", "Home"},
      {"search", "Search"},            {"help", "Help"},
      {"login", "Login"},              {"episodes", "Episodes"},
      {"series", "Series:"},           {"season", "Season:"},
      {"episode", "Episode:"},         {"on_video", "Available on Video"},
      {"projects", "Projects in Development"},
      {"details", "Details:"},
      {"charts", "Daily Box Office"}};
  static const auto* kLocalized = new std::map<Locale, Table>{
      {Locale::kItalian,
       {{"director", "Regia:"},
        {"writer", "Sceneggiatura:"},
        {"cast", "Interpreti"},
        {"genre", "Genere"},
        {"release_date", "Data di uscita:"},
        {"year", "Anno:"},
        {"producer", "Produttore:"},
        {"music", "Musiche di:"},
        {"home", "Pagina iniziale"},
        {"search", "Cerca"},
        {"help", "Aiuto"}}},
      {Locale::kCzech,
       {{"director", "Režie:"},
        {"writer", "Scénář:"},
        {"cast", "Hrají"},
        {"genre", "Žánr"},
        {"release_date", "Premiéra:"},
        {"year", "Rok:"},
        {"home", "Domů"},
        {"search", "Hledat"},
        {"help", "Nápověda"}}},
      {Locale::kDanish,
       {{"director", "Instruktør:"},
        {"writer", "Manuskript:"},
        {"cast", "Medvirkende"},
        {"genre", "Genre"},
        {"release_date", "Premiere:"},
        {"year", "År:"},
        {"home", "Hjem"},
        {"search", "Søg"},
        {"help", "Hjælp"}}},
      {Locale::kIcelandic,
       {{"director", "Leikstjóri:"},
        {"writer", "Handrit:"},
        {"cast", "Leikarar"},
        {"genre", "Tegund"},
        {"year", "Ár:"},
        {"home", "Heim"},
        {"search", "Leita"}}},
      {Locale::kIndonesian,
       {{"director", "Sutradara:"},
        {"writer", "Penulis:"},
        {"cast", "Pemeran"},
        {"genre", "Genre"},
        {"release_date", "Tanggal rilis:"},
        {"year", "Tahun:"},
        {"home", "Beranda"},
        {"search", "Cari"}}},
      {Locale::kSlovak,
       {{"director", "Réžia:"},
        {"writer", "Scenár:"},
        {"cast", "Hrajú"},
        {"genre", "Žáner"},
        {"year", "Rok:"},
        {"home", "Domov"},
        {"search", "Hľadať"}}},
  };
  if (locale != Locale::kEnglish) {
    auto table_it = kLocalized->find(locale);
    if (table_it != kLocalized->end()) {
      auto it = table_it->second.find(key);
      if (it != table_it->second.end()) return it->second;
    }
  }
  auto it = kEnglish->find(key);
  return it == kEnglish->end() ? key : it->second;
}

std::string Slugify(std::string_view text) {
  std::string out;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace ceres::synth
