#include "serve/http_frontend.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres::serve {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

net::HttpResponse JsonResponse(int status, std::string body) {
  net::HttpResponse response;
  response.status = status;
  response.headers.push_back({"content-type", "application/json"});
  response.body = std::move(body);
  return response;
}

net::HttpResponse TextResponse(int status, std::string body) {
  net::HttpResponse response;
  response.status = status;
  response.headers.push_back({"content-type", "text/plain"});
  response.body = std::move(body);
  return response;
}

}  // namespace

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return 500;
  }
  return 500;
}

std::string EncodeServeResultJson(const std::string& site,
                                  const ServeResult& result) {
  std::string out = StrCat("{\"site\":\"", JsonEscape(site), "\"");
  if (result.status.ok()) {
    out += ",\"status\":\"ok\",\"triples\":[";
    bool first = true;
    for (const Extraction& triple : result.triples) {
      if (!first) out += ',';
      first = false;
      out += StrCat("{\"subject\":\"", JsonEscape(triple.subject),
                    "\",\"predicate\":", triple.predicate, ",\"object\":\"",
                    JsonEscape(triple.object), "\",\"confidence\":",
                    FormatDouble(triple.confidence), "}");
    }
    out += "]";
  } else {
    out += StrCat(",\"status\":\"",
                  JsonEscape(result.status.ToString()), "\"");
  }
  const ServeDiagnostics& diag = result.diagnostics;
  out += StrCat(",\"shed_cause\":\"", ShedCauseName(diag.shed_cause),
                "\",\"near_dup_hit\":", diag.near_dup_hit ? "true" : "false",
                ",\"model_cache_hit\":",
                diag.model_cache_hit ? "true" : "false",
                ",\"model_version\":", diag.model_version, "}");
  return out;
}

ExtractionFrontend::ExtractionFrontend(ShardedExtractionService* service,
                                       FrontendConfig config)
    : service_(service), config_(std::move(config)) {}

ExtractionFrontend::~ExtractionFrontend() { Stop(); }

Status ExtractionFrontend::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  const int threads = config_.completion_threads > 0
                          ? config_.completion_threads
                          : 1;
  pump_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    pump_.emplace_back([this] { PumpLoop(); });
  }
  server_ = std::make_unique<net::HttpServer>(
      [this](net::HttpRequest request,
             net::HttpServer::Responder responder) {
        Route(std::move(request), std::move(responder));
      },
      config_.http);
  Status status = server_->Start();
  if (!status.ok()) {
    Stop();
    return status;
  }
  started_ = true;
  return Status::Ok();
}

Status ExtractionFrontend::Drain(Deadline deadline) {
  if (server_ == nullptr) return Status::Ok();
  // The socket edge drains first — while the pump keeps answering — so
  // every in-flight request is responded to and flushed before sockets
  // close. The completion queue is necessarily empty afterwards (every
  // queued completion belongs to a connection the drain waited for), but
  // wait for it explicitly to make the guarantee local.
  Status status = server_->Drain(deadline);
  UniqueMutexLock lock(mu_);
  while (!pending_.empty() || inflight_ > 0) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded("completion queue not drained");
    }
    queue_idle_.wait_for(lock, std::chrono::milliseconds(20));
  }
  return status;
}

void ExtractionFrontend::Stop() {
  if (server_ != nullptr) server_->Shutdown();
  {
    MutexLock lock(mu_);
    stopping_ = true;
    pending_.clear();  // responders are dead post-shutdown; drop futures
    work_ready_.notify_all();
  }
  for (std::thread& thread : pump_) {
    if (thread.joinable()) thread.join();
  }
  pump_.clear();
  started_ = false;
}

bool ExtractionFrontend::drain_requested() const {
  MutexLock lock(mu_);
  return drain_requested_;
}

void ExtractionFrontend::WaitForDrainRequest(Deadline deadline) {
  UniqueMutexLock lock(mu_);
  while (!drain_requested_ && !stopping_) {
    if (deadline.expired()) return;
    work_ready_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void ExtractionFrontend::Route(net::HttpRequest request,
                               net::HttpServer::Responder responder) {
  const std::string_view path = request.Path();
  if (path == "/healthz") {
    responder.Send(TextResponse(200, "ok\n"));
    return;
  }
  if (path == "/metrics") {
    responder.Send(TextResponse(
        200, obs::MetricsRegistry::Default().ToPrometheusText()));
    return;
  }
  if (path == "/stats") {
    const ShardedServiceStats stats = service_->stats();
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t shed = 0;
    for (const ServiceStats& per_shard : stats.per_shard) {
      submitted += per_shard.submitted;
      completed += per_shard.completed;
      shed += per_shard.total_shed();
    }
    const net::HttpServerStats http = server_->stats();
    responder.Send(JsonResponse(
        200,
        StrCat("{\"shards\":", stats.per_shard.size(),
               ",\"submitted\":", submitted, ",\"completed\":", completed,
               ",\"shed\":", shed,
               ",\"near_dup_served\":", stats.near_dup_served,
               ",\"cache\":{\"hits\":", stats.cache.hits,
               ",\"misses\":", stats.cache.misses,
               ",\"entries\":", stats.cache.entries,
               ",\"bytes\":", stats.cache.bytes,
               "},\"http\":{\"requests\":", http.requests,
               ",\"responses\":", http.responses,
               ",\"rate_limited\":", http.rate_limited,
               ",\"parse_errors\":", http.parse_errors, "}}")));
    return;
  }
  if (path == "/admin/invalidate") {
    if (request.method != "POST") {
      responder.Send(TextResponse(405, "POST required\n"));
      return;
    }
    const auto params = net::ParseQuery(request.Query());
    const auto site = params.find("site");
    if (site == params.end() || site->second.empty()) {
      responder.Send(TextResponse(400, "missing site parameter\n"));
      return;
    }
    service_->Invalidate(site->second);
    responder.Send(JsonResponse(
        200, StrCat("{\"invalidated\":\"", JsonEscape(site->second),
                    "\"}")));
    return;
  }
  if (path == "/admin/drain") {
    if (request.method != "POST") {
      responder.Send(TextResponse(405, "POST required\n"));
      return;
    }
    {
      MutexLock lock(mu_);
      drain_requested_ = true;
      work_ready_.notify_all();
    }
    responder.Send(JsonResponse(202, "{\"draining\":true}"));
    return;
  }
  if (path == "/extract") {
    HandleExtract(std::move(request), std::move(responder));
    return;
  }
  responder.Send(TextResponse(404, "unknown path\n"));
}

void ExtractionFrontend::HandleExtract(
    net::HttpRequest request, net::HttpServer::Responder responder) {
  if (request.method != "POST") {
    responder.Send(TextResponse(405, "POST required\n"));
    return;
  }
  const auto params = net::ParseQuery(request.Query());
  const auto site = params.find("site");
  if (site == params.end() || site->second.empty()) {
    responder.Send(TextResponse(400, "missing site parameter\n"));
    return;
  }
  ServeRequest serve_request;
  serve_request.site = site->second;
  serve_request.html = std::move(request.body);
  const auto url = params.find("url");
  if (url != params.end()) serve_request.url = url->second;

  // Admission check before Submit: a shed request must never reach the
  // shard service (the extraction would run to completion with its result
  // abandoned, and submitted/completed stats would diverge from the HTTP
  // responses). A reserved slot keeps a concurrent burst from overshooting
  // the bound between this check and the push below.
  {
    bool shed = false;
    {
      MutexLock lock(mu_);
      if (stopping_ ||
          pending_.size() + reserved_ >= config_.max_pending_completions) {
        shed = true;
      } else {
        ++reserved_;
      }
    }
    if (shed) {
      // Send outside mu_: the responder write can block on the socket.
      responder.Send(TextResponse(503, "completion queue full\n"));
      return;
    }
  }
  PendingCompletion completion{
      service_->Submit(std::move(serve_request)), std::move(responder),
      site->second};
  {
    MutexLock lock(mu_);
    --reserved_;
    if (!stopping_) {
      pending_.push_back(std::move(completion));
      work_ready_.notify_one();
      return;
    }
  }
  // Stop() raced the submit; answer rather than drop the responder.
  completion.responder.Send(TextResponse(503, "shutting down\n"));
}

void ExtractionFrontend::PumpLoop() {
  for (;;) {
    PendingCompletion completion;
    {
      UniqueMutexLock lock(mu_);
      while (pending_.empty() && !stopping_) {
        work_ready_.wait(lock);
      }
      if (stopping_) return;
      completion = std::move(pending_.front());
      pending_.pop_front();
      ++inflight_;
    }
    // Blocking get: the near-dup cache insert already ran on the shard
    // worker by the time the future is ready.
    ServeResult result = completion.future.get();
    const int http_status = HttpStatusForCode(result.status.code());
    completion.responder.Send(JsonResponse(
        http_status, EncodeServeResultJson(completion.site, result)));
    MutexLock lock(mu_);
    --inflight_;
    if (pending_.empty() && inflight_ == 0) queue_idle_.notify_all();
  }
}

}  // namespace ceres::serve
