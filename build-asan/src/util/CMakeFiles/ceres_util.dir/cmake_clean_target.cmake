file(REMOVE_RECURSE
  "libceres_util.a"
)
