#include "util/parallel.h"

#include <gtest/gtest.h>

#include <numeric>

namespace ceres {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  ParallelFor(n, 4, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h = 0;
  ParallelFor(3, 64, [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0] + hits[1] + hits[2], 3);
}

TEST(ParallelForTest, ResultsMatchSequential) {
  const size_t n = 200;
  std::vector<double> parallel_out(n);
  std::vector<double> sequential_out(n);
  auto work = [](size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 50; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  ParallelFor(n, 8, [&](size_t i) { parallel_out[i] = work(i); });
  for (size_t i = 0; i < n; ++i) sequential_out[i] = work(i);
  EXPECT_EQ(parallel_out, sequential_out);
}

TEST(ParallelForTest, RethrowsBodyExceptionOnCallingThread) {
  try {
    ParallelFor(1000, 4, [&](size_t i) {
      if (i == 17) throw std::runtime_error("boom at 17");
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 17");
  }
}

TEST(ParallelForTest, RethrowsInSingleThreadFallback) {
  EXPECT_THROW(
      ParallelFor(5, 1, [](size_t i) {
        if (i == 3) throw std::logic_error("bad");
      }),
      std::logic_error);
}

TEST(ParallelForTest, FailureStopsWorkersFromClaimingNewIndices) {
  // Workers stop picking up indices once a failure is recorded; with the
  // failure on the very first index, a 1e6-item loop must end far short of
  // completing (each in-flight iteration may still finish).
  std::atomic<size_t> executed{0};
  const size_t n = 1000000;
  EXPECT_THROW(ParallelFor(n, 4,
                           [&](size_t i) {
                             if (i == 0) throw std::runtime_error("early");
                             ++executed;
                           }),
               std::runtime_error);
  EXPECT_LT(executed.load(), n / 2);
}

TEST(ParallelForTest, AllIndicesRunWhenNothingThrows) {
  std::atomic<int> hits{0};
  ParallelFor(64, 8, [&](size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 64);
}

TEST(ParallelConfigTest, WorkerCountNeverExceedsItems) {
  ParallelConfig config;
  config.threads = 16;
  EXPECT_EQ(config.WorkerCount(3), 3u);
  EXPECT_EQ(config.WorkerCount(16), 16u);
  EXPECT_EQ(config.WorkerCount(0), 0u);
}

TEST(ParallelConfigTest, MinItemsPerThreadCapsWorkers) {
  ParallelConfig config;
  config.threads = 8;
  config.min_items_per_thread = 10;
  // 25 items / 10 per worker -> at most 2 workers.
  EXPECT_EQ(config.WorkerCount(25), 2u);
  // Fewer items than the floor: run inline rather than spawn.
  EXPECT_EQ(config.WorkerCount(9), 1u);
  EXPECT_EQ(config.WorkerCount(100), 8u);
}

TEST(ParallelConfigTest, SequentialAlwaysResolvesToOneWorker) {
  const ParallelConfig config = ParallelConfig::Sequential();
  EXPECT_EQ(config.WorkerCount(1), 1u);
  EXPECT_EQ(config.WorkerCount(1000000), 1u);
}

TEST(ParallelConfigTest, ZeroThreadsUsesHardwareConcurrency) {
  ParallelConfig config;
  const size_t hardware =
      std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(config.WorkerCount(1000000), hardware);
}

TEST(ParallelConfigTest, SequentialConfigRunsInOrderOnCallingThread) {
  // The sequential fast path must run inline: same thread, ascending order.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  ParallelFor(5, ParallelConfig::Sequential(), [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelConfigTest, ConfigOverloadCoversEveryIndexExactlyOnce) {
  const size_t n = 500;
  ParallelConfig config;
  config.threads = 4;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  ParallelFor(n, config, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelConfigTest, MinItemsFloorStillCoversAllItems) {
  ParallelConfig config;
  config.threads = 8;
  config.min_items_per_thread = 64;
  std::atomic<int> hits{0};
  ParallelFor(100, config, [&](size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 100);
}

}  // namespace
}  // namespace ceres
