#include "kb/kb_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "synth/kb_builder.h"
#include "synth/world.h"

namespace ceres {
namespace {

KnowledgeBase MakeSmallKb() {
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  TypeId person = ontology.AddEntityType("person");
  TypeId date = ontology.AddEntityType("date", /*is_literal=*/true);
  PredicateId directed =
      ontology.AddPredicate("directedBy", film, person, true);
  PredicateId released =
      ontology.AddPredicate("releasedOn", film, date, false);
  KnowledgeBase kb(std::move(ontology));
  EntityId f = kb.AddEntity(film, "Do the Right Thing");
  EntityId p = kb.AddEntity(person, "Spike Lee");
  kb.AddAlias(p, "S. Lee");
  EntityId d = kb.AddEntity(date, "30 June 1989");
  kb.AddTriple(f, directed, p);
  kb.AddTriple(f, released, d);
  kb.Freeze();
  return kb;
}

TEST(KbIoTest, RoundTripPreservesEverything) {
  KnowledgeBase original = MakeSmallKb();
  std::ostringstream out;
  ASSERT_TRUE(SaveKb(original, &out).ok());
  std::istringstream in(out.str());
  Result<KnowledgeBase> loaded = LoadKb(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_entities(), original.num_entities());
  EXPECT_EQ(loaded->num_triples(), original.num_triples());
  EXPECT_EQ(loaded->ontology().num_types(), original.ontology().num_types());
  EXPECT_EQ(loaded->ontology().num_predicates(),
            original.ontology().num_predicates());
  // Matching and triple lookups behave identically.
  std::vector<EntityId> lee = loaded->MatchMentions("S. Lee");
  ASSERT_EQ(lee.size(), 1u);
  std::vector<EntityId> film = loaded->MatchMentions("Do the Right Thing");
  ASSERT_EQ(film.size(), 1u);
  PredicateId directed = *loaded->ontology().PredicateByName("directedBy");
  EXPECT_TRUE(loaded->HasTriple(film[0], directed, lee[0]));
  EXPECT_TRUE(loaded->ontology()
                  .entity_type(*loaded->ontology().TypeByName("date"))
                  .is_literal);
}

TEST(KbIoTest, RoundTripSerializationIsStable) {
  KnowledgeBase original = MakeSmallKb();
  std::ostringstream first;
  ASSERT_TRUE(SaveKb(original, &first).ok());
  std::istringstream in(first.str());
  Result<KnowledgeBase> loaded = LoadKb(&in);
  ASSERT_TRUE(loaded.ok());
  std::ostringstream second;
  ASSERT_TRUE(SaveKb(*loaded, &second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(KbIoTest, RoundTripSyntheticWorldKb) {
  synth::MovieWorldConfig config;
  config.scale = 0.1;
  synth::World world = synth::BuildMovieWorld(config);
  synth::SeedKbConfig kb_config;
  kb_config.default_coverage = 0.7;
  KnowledgeBase kb = synth::BuildSeedKb(world, kb_config);
  std::ostringstream out;
  ASSERT_TRUE(SaveKb(kb, &out).ok());
  std::istringstream in(out.str());
  Result<KnowledgeBase> loaded = LoadKb(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_entities(), kb.num_entities());
  EXPECT_EQ(loaded->num_triples(), kb.num_triples());
}

TEST(KbIoTest, SaveRequiresFrozen) {
  KnowledgeBase kb{Ontology{}};
  std::ostringstream out;
  EXPECT_EQ(SaveKb(kb, &out).code(), StatusCode::kFailedPrecondition);
}

TEST(KbIoTest, LoadRejectsMalformedInput) {
  auto load = [](const std::string& text) {
    std::istringstream in(text);
    return LoadKb(&in).status().code();
  };
  EXPECT_EQ(load("stray data\n"), StatusCode::kInvalidArgument);
  EXPECT_EQ(load("#types\nfilm\n"), StatusCode::kInvalidArgument);
  EXPECT_EQ(load("#types\nfilm\tweird\n"), StatusCode::kInvalidArgument);
  EXPECT_EQ(load("#types\nfilm\tentity\nfilm\tentity\n"),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(load("#predicates\np\tno\tno\tmulti\n"),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(load("#types\nfilm\tentity\n#entities\nx\tfilm\tA\n"),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      load("#types\nfilm\tentity\n#entities\n0\tfilm\tA\n#triples\n"
           "0\tunknown\t0\n"),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      load("#types\nfilm\tentity\n#entities\n0\tfilm\tA\n0\tfilm\tB\n"),
      StatusCode::kInvalidArgument);
}

TEST(KbIoTest, LoadEmptySucceeds) {
  std::istringstream in("");
  Result<KnowledgeBase> kb = LoadKb(&in);
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(kb->num_entities(), 0);
}

TEST(KbIoTest, LoadToleratesCommentsBlanksAndCrlf) {
  std::istringstream in(
      "# a file comment\r\n"
      "#types\r\n"
      "film\tentity\r\n"
      "\r\n"
      "#entities\r\n"
      "7\tfilm\tSelma\r\n");
  Result<KnowledgeBase> kb = LoadKb(&in);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ(kb->num_entities(), 1);
  EXPECT_EQ(kb->MatchMentions("Selma").size(), 1u);
}

TEST(KbIoTest, LenientLoadSkipsAndTalliesBadLines) {
  KnowledgeBase original = MakeSmallKb();
  std::ostringstream out;
  ASSERT_TRUE(SaveKb(original, &out).ok());
  // Splice malformed lines around the serialized text: one before any
  // section, one trailing in the #triples section.
  std::string corrupted =
      "stray data\n" + out.str() + "not\ta\tvalid\ttriple\textra\n";
  std::istringstream in(corrupted);
  KbLoadOptions options;
  options.strict = false;
  KbLoadStats stats;
  Result<KnowledgeBase> kb = LoadKb(&in, options, &stats);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ(stats.bad_lines, 2);
  ASSERT_EQ(stats.errors.size(), 2u);
  // The good records all survive.
  EXPECT_EQ(kb->num_entities(), original.num_entities());
  EXPECT_EQ(kb->num_triples(), original.num_triples());
}

TEST(KbIoTest, LenientLoadStopsPastMaxBadLines) {
  KnowledgeBase original = MakeSmallKb();
  std::ostringstream out;
  ASSERT_TRUE(SaveKb(original, &out).ok());
  std::string corrupted = "junk one\njunk two\n" + out.str();
  std::istringstream in(corrupted);
  KbLoadOptions options;
  options.strict = false;
  options.max_bad_lines = 1;
  KbLoadStats stats;
  Result<KnowledgeBase> kb = LoadKb(&in, options, &stats);
  EXPECT_EQ(kb.status().code(), StatusCode::kResourceExhausted);
}

TEST(KbIoTest, LenientLoadCapsRecordedErrors) {
  std::string corrupted;
  for (int i = 0; i < 30; ++i) corrupted += "junk line\n";
  std::istringstream in(corrupted);
  KbLoadOptions options;
  options.strict = false;
  KbLoadStats stats;
  Result<KnowledgeBase> kb = LoadKb(&in, options, &stats);
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(stats.bad_lines, 30);
  EXPECT_EQ(stats.errors.size(), KbLoadStats::kMaxRecordedErrors);
}

TEST(KbIoTest, StrictLoadStillFailsFast) {
  std::istringstream in("stray data\nmore stray data\n");
  KbLoadStats stats;
  Result<KnowledgeBase> kb = LoadKb(&in, KbLoadOptions{}, &stats);
  EXPECT_EQ(kb.status().code(), StatusCode::kInvalidArgument);
}

TEST(KbIoTest, FileHelpersReportMissingPath) {
  EXPECT_EQ(LoadKbFromFile("/nonexistent/kb").status().code(),
            StatusCode::kNotFound);
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_EQ(SaveKbToFile(kb, "/nonexistent/dir/kb").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ceres
