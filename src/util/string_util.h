#ifndef CERES_UTIL_STRING_UTIL_H_
#define CERES_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ceres {

/// FNV-1a 64-bit hash. Unlike std::hash, the value is pinned by this
/// definition, so it is stable across processes and runs — required wherever
/// a hash is persisted or must agree between coordinator and worker
/// processes (shard assignment by site hash, frame/checkpoint checksums).
constexpr uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Splits `input` on the single character `sep`. Empty fields are kept, so
/// Split("a//b", '/') yields {"a", "", "b"}; Split("", '/') yields {""}.
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `input` with leading and trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view input);

/// True if `text` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Concatenates streamable arguments into a string; the library's
/// no-format-library substitute for absl::StrCat.
template <typename... Args>
std::string StrCat(const Args&... args) {
  if constexpr (sizeof...(args) == 0) {
    return std::string();
  } else {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
  }
}

}  // namespace ceres

#endif  // CERES_UTIL_STRING_UTIL_H_
