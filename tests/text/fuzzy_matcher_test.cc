#include "text/fuzzy_matcher.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(FuzzyMatcherTest, ExactNormalizedMatch) {
  FuzzyMatcher matcher;
  matcher.Add("Do the Right Thing", 1);
  EXPECT_EQ(matcher.Match("do the right thing"), (std::vector<int64_t>{1}));
  EXPECT_EQ(matcher.Match("DO THE RIGHT THING!"), (std::vector<int64_t>{1}));
  EXPECT_TRUE(matcher.Match("something else").empty());
}

TEST(FuzzyMatcherTest, AmbiguousStringsReturnAllIds) {
  FuzzyMatcher matcher;
  matcher.Add("Pilot", 10);
  matcher.Add("Pilot", 20);
  matcher.Add("Pilot", 30);
  EXPECT_EQ(matcher.Match("Pilot").size(), 3u);
}

TEST(FuzzyMatcherTest, DuplicateRegistrationCollapsed) {
  FuzzyMatcher matcher;
  matcher.Add("Selma", 5);
  matcher.Add("Selma", 5);
  EXPECT_EQ(matcher.Match("Selma"), (std::vector<int64_t>{5}));
}

TEST(FuzzyMatcherTest, AliasesMapToSameId) {
  FuzzyMatcher matcher;
  matcher.Add("Samuel Clemens", 3);
  matcher.Add("Mark Twain", 3);
  EXPECT_EQ(matcher.Match("mark twain"), (std::vector<int64_t>{3}));
  EXPECT_EQ(matcher.Match("Samuel Clemens"), (std::vector<int64_t>{3}));
}

TEST(FuzzyMatcherTest, TrailingYearStripped) {
  FuzzyMatcher matcher;
  matcher.Add("Do the Right Thing", 1);
  EXPECT_EQ(matcher.Match("Do the Right Thing (1989)"),
            (std::vector<int64_t>{1}));
}

TEST(FuzzyMatcherTest, YearNotStrippedWhenNameHasYear) {
  FuzzyMatcher matcher;
  matcher.Add("Class of 1984", 7);
  EXPECT_EQ(matcher.Match("Class of 1984"), (std::vector<int64_t>{7}));
}

TEST(FuzzyMatcherTest, AccentInsensitive) {
  FuzzyMatcher matcher;
  matcher.Add("Amélie", 9);
  EXPECT_EQ(matcher.Match("Amelie"), (std::vector<int64_t>{9}));
}

TEST(FuzzyMatcherTest, EmptyAndBlankNeverMatch) {
  FuzzyMatcher matcher;
  matcher.Add("", 1);
  matcher.Add("  !! ", 2);
  EXPECT_EQ(matcher.KeyCount(), 0u);
  EXPECT_TRUE(matcher.Match("").empty());
}

TEST(FuzzyMatcherTest, MatchViewAliasesIndexAndAgreesWithMatch) {
  FuzzyMatcher matcher;
  matcher.Add("Do the Right Thing", 1);
  matcher.Add("Pilot", 10);
  matcher.Add("Pilot", 20);
  const std::span<const int64_t> hit = matcher.MatchView("pilot");
  EXPECT_EQ(std::vector<int64_t>(hit.begin(), hit.end()),
            matcher.Match("pilot"));
  // The span is a view into the matcher's index, valid across lookups.
  const std::span<const int64_t> other =
      matcher.MatchView("DO THE RIGHT THING (1989)");
  EXPECT_EQ(std::vector<int64_t>(other.begin(), other.end()),
            (std::vector<int64_t>{1}));
  EXPECT_EQ(std::vector<int64_t>(hit.begin(), hit.end()),
            (std::vector<int64_t>{10, 20}));
  EXPECT_TRUE(matcher.MatchView("nobody").empty());
}

TEST(StripTrailingYearTest, ViewVariantAgreesWithCopyingVariant) {
  for (const char* input :
       {"selma 2014", "selma", "2014", "top 100", "war 19999"}) {
    EXPECT_EQ(StripTrailingYearView(input), StripTrailingYear(input))
        << input;
  }
}

TEST(StripTrailingYearTest, Behaviour) {
  EXPECT_EQ(StripTrailingYear("selma 2014"), "selma");
  EXPECT_EQ(StripTrailingYear("selma"), "selma");
  EXPECT_EQ(StripTrailingYear("2014"), "2014");         // Nothing would remain.
  EXPECT_EQ(StripTrailingYear("top 100"), "top 100");    // Not 4 digits.
  EXPECT_EQ(StripTrailingYear("war 19999"), "war 19999");
}

}  // namespace
}  // namespace ceres
