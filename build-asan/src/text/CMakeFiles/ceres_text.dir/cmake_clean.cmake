file(REMOVE_RECURSE
  "CMakeFiles/ceres_text.dir/fuzzy_matcher.cc.o"
  "CMakeFiles/ceres_text.dir/fuzzy_matcher.cc.o.d"
  "CMakeFiles/ceres_text.dir/levenshtein.cc.o"
  "CMakeFiles/ceres_text.dir/levenshtein.cc.o.d"
  "CMakeFiles/ceres_text.dir/normalize.cc.o"
  "CMakeFiles/ceres_text.dir/normalize.cc.o.d"
  "CMakeFiles/ceres_text.dir/tokenizer.cc.o"
  "CMakeFiles/ceres_text.dir/tokenizer.cc.o.d"
  "libceres_text.a"
  "libceres_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
