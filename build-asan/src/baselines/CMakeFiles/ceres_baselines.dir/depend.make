# Empty dependencies file for ceres_baselines.
# This may be replaced when dependencies are built.
