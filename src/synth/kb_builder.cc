#include "synth/kb_builder.h"

#include <unordered_set>

#include "util/random.h"

namespace ceres::synth {

namespace {

// Copies world entities into `seed` on demand, preserving names, types, and
// (optionally) aliases.
class EntityCopier {
 public:
  EntityCopier(const World& world, KnowledgeBase* seed, bool include_aliases)
      : world_(world), seed_(seed), include_aliases_(include_aliases) {}

  EntityId Copy(EntityId world_id) {
    auto it = mapping_.find(world_id);
    if (it != mapping_.end()) return it->second;
    const Entity& entity = world_.kb.entity(world_id);
    EntityId seed_id = seed_->AddEntity(entity.type, entity.name);
    if (include_aliases_) {
      for (std::string_view alias : entity.aliases) {
        seed_->AddAlias(seed_id, alias);
      }
    }
    mapping_.emplace(world_id, seed_id);
    return seed_id;
  }

 private:
  const World& world_;
  KnowledgeBase* seed_;
  bool include_aliases_;
  std::unordered_map<EntityId, EntityId> mapping_;
};

// Popularity rank of each entity within its type roster, in [0, 1).
std::unordered_map<EntityId, double> PopularityRanks(const World& world) {
  std::unordered_map<EntityId, double> ranks;
  for (const auto& [type, ids] : world.by_type) {
    for (size_t i = 0; i < ids.size(); ++i) {
      ranks[ids[i]] = static_cast<double>(i) /
                      static_cast<double>(ids.size());
    }
  }
  return ranks;
}

}  // namespace

KnowledgeBase BuildSeedKb(const World& world, const SeedKbConfig& config) {
  KnowledgeBase seed(world.kb.ontology());
  EntityCopier copier(world, &seed, config.include_aliases);
  Rng rng(config.seed);
  std::unordered_map<EntityId, double> ranks;
  if (config.popularity_bias) ranks = PopularityRanks(world);

  for (const Triple& triple : world.kb.triples()) {
    const std::string& predicate_name =
        world.kb.ontology().predicate(triple.predicate).name;
    auto it = config.coverage.find(predicate_name);
    double keep =
        it != config.coverage.end() ? it->second : config.default_coverage;
    if (config.popularity_bias) {
      auto rank_it = ranks.find(triple.subject);
      double rank = rank_it != ranks.end() ? rank_it->second : 0.5;
      keep *= 2.0 * (1.0 - rank);
      if (keep > 1.0) keep = 1.0;
    }
    if (keep <= 0.0) continue;
    if (keep < 1.0 && !rng.Bernoulli(keep)) continue;
    seed.AddTriple(copier.Copy(triple.subject), triple.predicate,
                   copier.Copy(triple.object));
  }
  seed.Freeze();
  return seed;
}

KnowledgeBase BuildSeedKbFromPages(const World& world,
                                   const std::vector<GeneratedPage>& pages) {
  KnowledgeBase seed(world.kb.ontology());
  EntityCopier copier(world, &seed, /*include_aliases=*/true);
  for (const GeneratedPage& page : pages) {
    if (page.topic == kInvalidEntity) continue;
    EntityId subject = copier.Copy(page.topic);
    for (const GroundTruthFact& fact : page.facts) {
      if (fact.predicate == kNamePredicate) continue;
      seed.AddTriple(subject, fact.predicate, copier.Copy(fact.object));
    }
  }
  seed.Freeze();
  return seed;
}

}  // namespace ceres::synth
