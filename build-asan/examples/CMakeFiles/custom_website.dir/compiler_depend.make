# Empty compiler generated dependencies file for custom_website.
# This may be replaced when dependencies are built.
