#include "robustness/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/string_util.h"

namespace ceres {

const char* FaultTypeName(FaultType fault) {
  switch (fault) {
    case FaultType::kNone:
      return "none";
    case FaultType::kTruncate:
      return "truncate";
    case FaultType::kGarble:
      return "garble";
    case FaultType::kTagDelete:
      return "tag-delete";
    case FaultType::kEntityBreak:
      return "entity-break";
    case FaultType::kNodeBomb:
      return "node-bomb";
    case FaultType::kDrop:
      return "drop";
    case FaultType::kDuplicate:
      return "duplicate";
  }
  return "unknown";
}

int64_t FaultReport::count(FaultType fault) const {
  int64_t n = 0;
  for (const InjectedFault& f : faults) {
    if (f.fault == fault) ++n;
  }
  return n;
}

std::vector<PageIndex> FaultReport::PagesWith(FaultType fault) const {
  std::vector<PageIndex> pages;
  for (const InjectedFault& f : faults) {
    if (f.fault == fault) pages.push_back(f.source_page);
  }
  std::sort(pages.begin(), pages.end());
  return pages;
}

const char* ProcessFaultTypeName(ProcessFaultType fault) {
  switch (fault) {
    case ProcessFaultType::kNone:
      return "none";
    case ProcessFaultType::kWorkerCrash:
      return "worker-crash";
    case ProcessFaultType::kWorkerHang:
      return "worker-hang";
    case ProcessFaultType::kTruncatedResult:
      return "truncated-result";
    case ProcessFaultType::kCorruptCheckpoint:
      return "corrupt-checkpoint";
  }
  return "unknown";
}

ProcessFaultType ProcessFaultPlan::FaultFor(int shard, int attempt) const {
  for (const ProcessFault& fault : faults) {
    if (fault.shard != shard || fault.fault == ProcessFaultType::kNone) {
      continue;
    }
    if (attempt <= fault.attempts) return fault.fault;
  }
  return ProcessFaultType::kNone;
}

std::vector<int> ProcessFaultPlan::ShardsWith(ProcessFaultType fault) const {
  std::vector<int> shards;
  for (const ProcessFault& planned : faults) {
    if (planned.fault == fault) shards.push_back(planned.shard);
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

ProcessFaultPlan MakeProcessFaultPlan(int num_shards, double fault_fraction,
                                      uint64_t seed, ProcessFaultType fault,
                                      int attempts) {
  ProcessFaultPlan plan;
  if (num_shards <= 0 || fault_fraction <= 0.0 ||
      fault == ProcessFaultType::kNone) {
    return plan;
  }
  const double clamped = std::clamp(fault_fraction, 0.0, 1.0);
  const int hit = std::min(
      num_shards,
      static_cast<int>(
          std::ceil(clamped * static_cast<double>(num_shards))));
  std::vector<int> shards(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) shards[static_cast<size_t>(i)] = i;
  Rng rng(seed);
  rng.Shuffle(&shards);
  plan.faults.reserve(static_cast<size_t>(hit));
  for (int i = 0; i < hit; ++i) {
    plan.faults.push_back(
        ProcessFault{shards[static_cast<size_t>(i)], fault, attempts});
  }
  std::sort(plan.faults.begin(), plan.faults.end(),
            [](const ProcessFault& a, const ProcessFault& b) {
              return a.shard < b.shard;
            });
  return plan;
}

namespace {

std::string Truncate(std::string_view html, const FaultInjectionConfig& config,
                     Rng* rng) {
  if (html.empty()) return std::string();
  const double lo = std::clamp(config.truncate_keep_min, 0.0, 1.0);
  const double hi = std::clamp(config.truncate_keep_max, lo, 1.0);
  const double keep = lo + (hi - lo) * rng->UniformDouble();
  const size_t bytes =
      static_cast<size_t>(keep * static_cast<double>(html.size()));
  return std::string(html.substr(0, bytes));
}

std::string Garble(std::string_view html, const FaultInjectionConfig& config,
                   Rng* rng) {
  std::string out(html);
  if (out.empty()) return out;
  const size_t hits = std::max<size_t>(
      1, static_cast<size_t>(config.garble_byte_fraction *
                             static_cast<double>(out.size())));
  for (size_t i = 0; i < hits; ++i) {
    out[rng->Index(out.size())] = static_cast<char>(rng->Uniform(0, 255));
  }
  return out;
}

std::string TagDelete(std::string_view html,
                      const FaultInjectionConfig& config, Rng* rng) {
  std::string out;
  out.reserve(html.size());
  size_t i = 0;
  while (i < html.size()) {
    if (html[i] == '<') {
      size_t close = html.find('>', i);
      if (close == std::string_view::npos) close = html.size() - 1;
      if (!rng->Bernoulli(config.tag_delete_fraction)) {
        out.append(html.substr(i, close - i + 1));
      }
      i = close + 1;
    } else {
      out.push_back(html[i]);
      ++i;
    }
  }
  return out;
}

std::string EntityBreak(std::string_view html,
                        const FaultInjectionConfig& /*config*/, Rng* rng) {
  std::string out;
  out.reserve(html.size() + 16);
  size_t i = 0;
  while (i < html.size()) {
    if (html[i] != '&') {
      out.push_back(html[i]);
      ++i;
      continue;
    }
    switch (rng->Uniform(0, 2)) {
      case 0: {
        // Drop the terminator: "&amp;" -> "&amp".
        size_t end = html.find(';', i);
        size_t copy_to = (end == std::string_view::npos || end > i + 12)
                             ? i + 1
                             : end;  // excludes the ';'
        out.append(html.substr(i, copy_to - i));
        i = (copy_to == i + 1) ? i + 1 : copy_to + 1;
        break;
      }
      case 1: {
        // Replace the whole entity with an invalid numeric one.
        out.append("&#xZZ;");
        const size_t limit = std::min(html.size(), i + 12);
        ++i;  // the '&'
        while (i < limit && html[i] != ';' && html[i] != ' ' &&
               html[i] != '<') {
          ++i;
        }
        if (i < html.size() && html[i] == ';') ++i;
        break;
      }
      default:
        // Stutter the ampersand: "&amp;" -> "&&amp;".
        out.push_back('&');
        out.push_back('&');
        ++i;
        break;
    }
  }
  return out;
}

std::string NodeBomb(std::string_view html, const FaultInjectionConfig& config,
                     Rng* rng) {
  std::string out(html);
  const int nodes = std::max(1, config.node_bomb_nodes);
  out.reserve(out.size() + static_cast<size_t>(nodes) * 4);
  // <p> auto-closes its own kind, so this is a flat run of sibling
  // elements: element count grows without pathological nesting depth.
  for (int i = 0; i < nodes; ++i) {
    out.append(rng->Bernoulli(0.5) ? "<p>x" : "<p>y");
  }
  return out;
}

}  // namespace

std::string CorruptHtml(std::string_view html, FaultType fault,
                        const FaultInjectionConfig& config, Rng* rng) {
  switch (fault) {
    case FaultType::kTruncate:
      return Truncate(html, config, rng);
    case FaultType::kGarble:
      return Garble(html, config, rng);
    case FaultType::kTagDelete:
      return TagDelete(html, config, rng);
    case FaultType::kEntityBreak:
      return EntityBreak(html, config, rng);
    case FaultType::kNodeBomb:
      return NodeBomb(html, config, rng);
    case FaultType::kNone:
    case FaultType::kDrop:
    case FaultType::kDuplicate:
      break;
  }
  return std::string(html);
}

std::vector<RawPage> InjectFaults(const std::vector<RawPage>& pages,
                                  const FaultInjectionConfig& config,
                                  FaultReport* report) {
  const FaultType kinds[] = {FaultType::kTruncate, FaultType::kGarble,
                             FaultType::kTagDelete, FaultType::kEntityBreak,
                             FaultType::kNodeBomb};
  const double weights[] = {config.truncate_weight, config.garble_weight,
                            config.tag_delete_weight,
                            config.entity_break_weight,
                            config.node_bomb_weight};
  double total_weight = 0;
  for (double w : weights) total_weight += std::max(0.0, w);

  auto record = [&](PageIndex page, FaultType fault) {
    if (report != nullptr) {
      report->faults.push_back(InjectedFault{page, fault});
    }
  };

  std::vector<RawPage> out;
  out.reserve(pages.size());
  Rng root(config.seed);
  for (size_t i = 0; i < pages.size(); ++i) {
    // One fork per page: a page's corruption depends only on (seed, index),
    // never on what happened to earlier pages.
    Rng rng = root.Fork();
    const PageIndex page = static_cast<PageIndex>(i);
    if (rng.Bernoulli(config.drop_rate)) {
      record(page, FaultType::kDrop);
      continue;
    }
    RawPage kept = pages[i];
    if (total_weight > 0 && rng.Bernoulli(config.page_fault_rate)) {
      double roll = rng.UniformDouble() * total_weight;
      FaultType fault = kinds[0];
      for (size_t k = 0; k < 5; ++k) {
        roll -= std::max(0.0, weights[k]);
        if (roll <= 0) {
          fault = kinds[k];
          break;
        }
      }
      kept.html = CorruptHtml(kept.html, fault, config, &rng);
      record(page, fault);
    }
    if (rng.Bernoulli(config.duplicate_rate)) {
      record(page, FaultType::kDuplicate);
      out.push_back(kept);
    }
    out.push_back(std::move(kept));
  }
  return out;
}

std::string CorruptKbText(std::string_view kb_text, double line_fault_rate,
                          uint64_t seed, int64_t* corrupted_lines) {
  Rng rng(seed);
  int64_t corrupted = 0;
  std::string out;
  out.reserve(kb_text.size());
  bool in_triples = false;
  size_t start = 0;
  while (start <= kb_text.size()) {
    size_t end = kb_text.find('\n', start);
    const bool had_newline = end != std::string_view::npos;
    if (!had_newline) end = kb_text.size();
    std::string_view line = kb_text.substr(start, end - start);
    std::string_view trimmed = line;
    while (!trimmed.empty() && (trimmed.back() == '\r')) {
      trimmed.remove_suffix(1);
    }
    if (!trimmed.empty() && trimmed[0] == '#') in_triples = trimmed == "#triples";
    // Only fact lines are corrupted: no other record references a triple,
    // so each mangled line is exactly one bad line on load — corrupting
    // schema or entity lines would cascade into their referents and make
    // the tally unpredictable.
    const bool data_line = in_triples && !trimmed.empty() && trimmed[0] != '#';
    if (data_line && rng.Bernoulli(line_fault_rate)) {
      // A single tab-less token is malformed in every section of the KB
      // grammar, so the bad-line tally is exactly predictable.
      out.append("~corrupt ");
      for (char c : line) {
        if (c != '\t') out.push_back(c);
      }
      ++corrupted;
    } else {
      out.append(line);
    }
    if (had_newline) out.push_back('\n');
    start = end + 1;
    if (!had_newline) break;
  }
  if (corrupted_lines != nullptr) *corrupted_lines = corrupted;
  return out;
}

}  // namespace ceres
