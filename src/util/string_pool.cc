#include "util/string_pool.h"

#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {
namespace util {

namespace {
constexpr size_t kInitialSlots = 1 << 10;  // power of two
constexpr size_t kMinChunkBytes = 64 << 10;
}  // namespace

StringPool::StringPool() { slots_.resize(kInitialSlots); }

StringPool& StringPool::Global() {
  static StringPool* pool = new StringPool();
  return *pool;
}

std::string_view StringPool::Intern(std::string_view s) {
  const uint64_t hash = Fnv1a64(s);
  MutexLock lock(mu_);
  size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  while (slots_[i].view.data() != nullptr) {
    if (slots_[i].hash == hash && slots_[i].view == s) return slots_[i].view;
    i = (i + 1) & mask;
  }
  if ((used_ + 1) * 4 >= slots_.size() * 3) {
    GrowLocked();
    mask = slots_.size() - 1;
    i = hash & mask;
    while (slots_[i].view.data() != nullptr) i = (i + 1) & mask;
  }
  std::string_view stored = Store(s);
  slots_[i].hash = hash;
  slots_[i].view = stored;
  ++used_;
  return stored;
}

size_t StringPool::size() const {
  MutexLock lock(mu_);
  return used_;
}

size_t StringPool::payload_bytes() const {
  MutexLock lock(mu_);
  return payload_bytes_;
}

std::string_view StringPool::Store(std::string_view s) {
  if (chunks_.empty() || chunk_used_ + s.size() > chunk_capacity_) {
    chunk_capacity_ = s.size() > kMinChunkBytes ? s.size() : kMinChunkBytes;
    chunks_.push_back(std::make_unique<char[]>(chunk_capacity_));
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, s.data(), s.size());
  chunk_used_ += s.size();
  payload_bytes_ += s.size();
  // An interned empty string still needs a non-null data() so the slot is
  // distinguishable from a free one.
  return std::string_view(dst, s.size());
}

void StringPool::GrowLocked() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.view.data() == nullptr) continue;
    size_t i = slot.hash & mask;
    while (slots_[i].view.data() != nullptr) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

}  // namespace util
}  // namespace ceres
