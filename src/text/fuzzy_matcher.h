#ifndef CERES_TEXT_FUZZY_MATCHER_H_
#define CERES_TEXT_FUZZY_MATCHER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ceres {

/// Dictionary from surface strings to the ids registered under them, with
/// fuzzy lookup: two strings match when their normalizations (NormalizeText)
/// agree, and a text field with a trailing year token ("Selma (2014)") also
/// matches the year-free name. This is the string-matching process the paper
/// adopts from Gulhane et al. [18] for both topic identification and relation
/// annotation.
///
/// The same id may be registered under several names (aliases); the same
/// name may map to many ids (ambiguity, e.g. "Pilot" as a TV episode title).
///
/// Lookups are heterogeneous (string_view keys probe the index directly) and
/// MatchView normalizes into a per-thread scratch buffer, so the per-call
/// cost on the DOM-text-node hot path is hashing, not allocation. Concurrent
/// MatchView/Match calls on a fully built matcher are safe; Add is not.
class FuzzyMatcher {
 public:
  FuzzyMatcher() = default;

  /// Registers `id` under surface string `name`. Duplicate (name, id) pairs
  /// are collapsed.
  void Add(std::string_view name, int64_t id);

  /// All ids whose registered names fuzzily match `text`. Order is the
  /// registration order; no duplicates. The span aliases the matcher's
  /// index and stays valid until the next Add.
  std::span<const int64_t> MatchView(std::string_view text) const;

  /// Copying variant of MatchView for callers that keep the result.
  std::vector<int64_t> Match(std::string_view text) const;

  /// True if any id is registered under a name matching `text`.
  bool Matches(std::string_view text) const;

  /// Number of distinct normalized keys in the dictionary.
  size_t KeyCount() const { return index_.size(); }

 private:
  // Heterogeneous hashing (C++20 P0919): find(string_view) probes without
  // materializing a std::string key.
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  const std::vector<int64_t>* Lookup(std::string_view normalized) const;

  std::unordered_map<std::string, std::vector<int64_t>, TransparentHash,
                     std::equal_to<>>
      index_;
};

/// View of `normalized` with one trailing 4-digit-year token removed:
/// "selma 2014" -> "selma". Returns the input unchanged when there is no
/// trailing year or nothing would remain.
std::string_view StripTrailingYearView(std::string_view normalized);

/// Copying variant of StripTrailingYearView.
std::string StripTrailingYear(std::string_view normalized);

}  // namespace ceres

#endif  // CERES_TEXT_FUZZY_MATCHER_H_
