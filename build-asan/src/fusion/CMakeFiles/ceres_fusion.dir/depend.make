# Empty dependencies file for ceres_fusion.
# This may be replaced when dependencies are built.
