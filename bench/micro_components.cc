// Micro benchmarks (google-benchmark) for the pipeline's component costs:
// HTML parsing, entity matching, topic identification, relation
// annotation, feature extraction (with its interning / hashing
// sub-phases), training, and extraction. Not a paper table; used to watch
// for performance regressions.
//
// Usage: micro_components [--persist [path]] [google-benchmark flags]
//   --persist: also write one JSON line per benchmark (ns per op) to
//     BENCH_micro_components.json (or the given path).

#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <memory>
#include <random>
#include <string_view>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "ml/feature_id.h"
#include "ml/hashed_feature_map.h"
#include "util/arena.h"
#include "util/string_pool.h"

#include "core/entity_matcher.h"
#include "core/extractor.h"
#include "core/pipeline.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "core/training.h"
#include "dom/html_parser.h"
#include "synth/kb_builder.h"
#include "synth/site_generator.h"
#include "synth/world.h"

namespace ceres {
namespace {

// Shared fixture: a 40-page film site plus its seed KB.
struct MicroFixture {
  MicroFixture() {
    synth::MovieWorldConfig world_config;
    world_config.scale = 0.3;
    world = std::make_unique<synth::World>(
        synth::BuildMovieWorld(world_config));
    synth::SeedKbConfig kb_config;
    kb_config.default_coverage = 0.9;
    kb = std::make_unique<KnowledgeBase>(
        synth::BuildSeedKb(*world, kb_config));

    synth::SiteSpec spec;
    spec.name = "micro.example";
    spec.seed = 77;
    spec.tmpl.topic_type = "film";
    spec.tmpl.num_recommendations = 3;
    spec.tmpl.sections = {
        {synth::pred::kFilmDirectedBy, "director",
         synth::SectionLayout::kRow, 0.05, 3},
        {synth::pred::kFilmHasCastMember, "cast",
         synth::SectionLayout::kList, 0.05, 15},
        {synth::pred::kFilmHasGenre, "genre", synth::SectionLayout::kList,
         0.05, 5},
        {synth::pred::kFilmReleaseDate, "release_date",
         synth::SectionLayout::kRow, 0.05, 1},
    };
    TypeId film = *world->kb.ontology().TypeByName("film");
    const auto& films = world->OfType(film);
    spec.topics.assign(films.begin(), films.begin() + 40);
    generated = GenerateSite(*world, spec);
    for (const synth::GeneratedPage& page : generated) {
      pages.push_back(std::move(ParseHtml(page.html)).value());
    }
    for (const DomDocument& doc : pages) page_ptrs.push_back(&doc);
    for (const DomDocument& doc : pages) {
      mentions.push_back(MatchPageMentions(doc, *kb));
    }
    TopicConfig topic_config;
    topics = IdentifyTopics(page_ptrs, mentions, *kb, topic_config);
    annotations = AnnotateRelations(page_ptrs, mentions, topics, *kb, {});
    featurizer =
        std::make_unique<FeatureExtractor>(page_ptrs, FeatureConfig{});
    model = std::make_unique<TrainedModel>(std::move(
        TrainExtractor(page_ptrs, annotations.annotations, *featurizer,
                       kb->ontology(), TrainingConfig{}))
                                               .value());
  }

  std::unique_ptr<synth::World> world;
  std::unique_ptr<KnowledgeBase> kb;
  std::vector<synth::GeneratedPage> generated;
  std::vector<DomDocument> pages;
  std::vector<const DomDocument*> page_ptrs;
  std::vector<PageMentions> mentions;
  TopicResult topics;
  AnnotationResult annotations;
  std::unique_ptr<FeatureExtractor> featurizer;
  std::unique_ptr<TrainedModel> model;
};

MicroFixture& Fixture() {
  static auto* fixture = new MicroFixture();
  return *fixture;
}

void BM_ParseHtml(benchmark::State& state) {
  const std::string& html = Fixture().generated[0].html;
  for (auto _ : state) {
    Result<DomDocument> doc = ParseHtml(html);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(html.size()));
}
BENCHMARK(BM_ParseHtml);

void BM_EntityMatching(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    PageMentions mentions = MatchPageMentions(fixture.pages[0],
                                              *fixture.kb);
    benchmark::DoNotOptimize(mentions);
  }
}
BENCHMARK(BM_EntityMatching);

void BM_TopicIdentification(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    TopicResult topics = IdentifyTopics(fixture.page_ptrs, fixture.mentions,
                                        *fixture.kb, TopicConfig{});
    benchmark::DoNotOptimize(topics);
  }
}
BENCHMARK(BM_TopicIdentification);

void BM_RelationAnnotation(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    AnnotationResult annotations =
        AnnotateRelations(fixture.page_ptrs, fixture.mentions,
                          fixture.topics, *fixture.kb, {});
    benchmark::DoNotOptimize(annotations);
  }
}
BENCHMARK(BM_RelationAnnotation);

void BM_FeatureExtraction(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  const DomDocument& doc = fixture.pages[0];
  std::vector<NodeId> fields = doc.TextFields();
  for (auto _ : state) {
    for (NodeId node : fields) {
      SparseVector features =
          fixture.featurizer->Extract(doc, node, &fixture.model->features);
      benchmark::DoNotOptimize(features);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fields.size()));
}
BENCHMARK(BM_FeatureExtraction);

// --- Interning / hashing sub-phases of the parse->feature hot path ------

void BM_StringPoolIntern(benchmark::State& state) {
  // Steady-state interning: every name is already pooled (the parser's
  // situation after the first few pages of a site).
  static constexpr std::array<std::string_view, 8> kNames = {
      "div", "span", "class", "id", "itemprop", "td", "tr", "h4"};
  for (std::string_view name : kNames) {
    util::StringPool::Global().Intern(name);
  }
  size_t i = 0;
  for (auto _ : state) {
    std::string_view pooled =
        util::StringPool::Global().Intern(kNames[i++ & 7]);
    benchmark::DoNotOptimize(pooled);
  }
}
BENCHMARK(BM_StringPoolIntern);

void BM_ArenaAppend(benchmark::State& state) {
  // One document-sized arena per iteration: 64 text segments, as a parsed
  // page would append.
  constexpr std::string_view kSegment =
      "Directed by a celebrated director and starring a large cast";
  for (auto _ : state) {
    util::TextArena arena;
    for (int seg = 0; seg < 64; ++seg) {
      std::string_view stored = arena.Append(kSegment);
      benchmark::DoNotOptimize(stored);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ArenaAppend);

void BM_AttributeLookup(benchmark::State& state) {
  // Pooled-name attribute probes over a real parsed page (pointer-compare
  // fast path; zero allocations — see tests/dom/attribute_alloc_test.cc).
  MicroFixture& fixture = Fixture();
  const DomDocument& doc = fixture.pages[0];
  const std::string_view itemprop =
      util::StringPool::Global().Intern("itemprop");
  const std::string_view cls = util::StringPool::Global().Intern("class");
  NodeId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc.Attribute(id, itemprop));
    benchmark::DoNotOptimize(doc.Attribute(id, cls));
    id = (id + 1) % doc.size();
  }
}
BENCHMARK(BM_AttributeLookup);

void BM_FeatureIdHashing(benchmark::State& state) {
  // Composing one structural feature id from tuple components (no
  // intermediate name string): the per-emission cost inside the
  // featurizer.
  constexpr std::string_view kValue = "cast-row";
  for (auto _ : state) {
    FeatureIdBuilder stem;
    stem.Add("S|l=").AddInt(2).Add("|s=").AddInt(-1).Add('|');
    FeatureIdBuilder feature = stem.WithSink(nullptr);
    feature.Add("class=").Add(kValue);
    benchmark::DoNotOptimize(feature.id());
  }
}
BENCHMARK(BM_FeatureIdHashing);

void BM_HashedFeatureMapLookup(benchmark::State& state) {
  // Hit-path id -> dense-index resolution against a trained-model-sized
  // dictionary.
  static const auto* data = [] {
    auto* out =
        new std::pair<HashedFeatureMap, std::vector<uint64_t>>();
    std::mt19937_64 rng(7);
    out->second.resize(50000);
    for (uint64_t& id : out->second) {
      id = rng();
      out->first.GetOrAdd(id);
    }
    return out;
  }();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data->first.Get(data->second[i++ % data->second.size()]));
  }
}
BENCHMARK(BM_HashedFeatureMapLookup);

void BM_Training(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    Result<TrainedModel> model = TrainExtractor(
        fixture.page_ptrs, fixture.annotations.annotations,
        *fixture.featurizer, fixture.kb->ontology(), TrainingConfig{});
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_Training)->Unit(benchmark::kMillisecond);

void BM_Extraction(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  std::vector<PageIndex> indices;
  for (size_t i = 0; i < fixture.pages.size(); ++i) {
    indices.push_back(static_cast<PageIndex>(i));
  }
  for (auto _ : state) {
    std::vector<Extraction> extractions =
        ExtractFromPages(fixture.page_ptrs, indices, fixture.model.get(),
                         *fixture.featurizer, ExtractionConfig{});
    benchmark::DoNotOptimize(extractions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.pages.size()));
}
BENCHMARK(BM_Extraction)->Unit(benchmark::kMillisecond);

void BM_FullPipeline40Pages(benchmark::State& state) {
  MicroFixture& fixture = Fixture();
  for (auto _ : state) {
    Result<PipelineResult> result =
        RunPipeline(fixture.pages, *fixture.kb, PipelineConfig{});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullPipeline40Pages)->Unit(benchmark::kMillisecond);

// Captures per-benchmark timings for --persist while still printing the
// normal console report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations == 0) {
        continue;
      }
      results.emplace_back(run.benchmark_name(),
                           run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9);
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<std::pair<std::string, double>> results;  // name, ns per op
};

}  // namespace
}  // namespace ceres

int main(int argc, char** argv) {
  bool persist = false;
  std::string persist_path;
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--persist") == 0) {
      persist = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') persist_path = argv[++i];
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  ceres::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (persist) {
    ceres::bench::BenchJson bench_json("micro_components");
    for (const auto& [name, ns_per_op] : reporter.results) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"micro_components\",\"name\":\"%s\","
                    "\"ns_per_op\":%.1f}",
                    name.c_str(), ns_per_op);
      bench_json.Emit(line);
    }
    if (!bench_json.Persist(persist_path)) return 1;
  }
  return 0;
}
