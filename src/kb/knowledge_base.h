#ifndef CERES_KB_KNOWLEDGE_BASE_H_
#define CERES_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/ontology.h"
#include "text/fuzzy_matcher.h"
#include "util/status.h"

namespace ceres {

/// Identifier of an entity within a KnowledgeBase.
using EntityId = int64_t;
inline constexpr EntityId kInvalidEntity = -1;

/// One entity of the seed KB: a typed node with a canonical name and
/// optional aliases. Literal values (dates, numbers) are entities of
/// literal types so that all triple objects have matchable surface strings.
struct Entity {
  EntityId id = kInvalidEntity;
  TypeId type = kInvalidType;
  std::string name;
  std::vector<std::string> aliases;
};

/// One (subject, predicate, object) fact (§2.1).
struct Triple {
  EntityId subject = kInvalidEntity;
  PredicateId predicate = kInvalidPredicate;
  EntityId object = kInvalidEntity;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

/// The seed knowledge base: an entity catalog plus an indexed triple store.
///
/// Build phase: AddEntity / AddAlias / AddTriple in any order, then call
/// Freeze() once. All query methods require a frozen KB; the name index,
/// subject index, and object-string statistics are built at freeze time.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(Ontology ontology)
      : ontology_(std::move(ontology)) {}
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  const Ontology& ontology() const { return ontology_; }

  /// Registers an entity and returns its id.
  EntityId AddEntity(TypeId type, std::string_view name);

  /// Adds an alternative surface name for an existing entity.
  void AddAlias(EntityId id, std::string_view alias);

  /// Adds a fact; subject/object must be registered entities. Duplicate
  /// triples are collapsed at Freeze() time.
  void AddTriple(EntityId subject, PredicateId predicate, EntityId object);

  /// Builds all indexes. Must be called exactly once, after loading.
  void Freeze();
  bool frozen() const { return frozen_; }

  // --- Catalog queries -----------------------------------------------------

  int64_t num_entities() const { return static_cast<int64_t>(entities_.size()); }
  int64_t num_triples() const { return static_cast<int64_t>(triples_.size()); }
  const Entity& entity(EntityId id) const;
  const std::vector<Triple>& triples() const { return triples_; }

  /// Entities per type; used by the Table 2 report.
  int64_t CountEntitiesOfType(TypeId type) const;
  /// Distinct predicates whose subject type is `type`.
  int64_t CountPredicatesForSubjectType(TypeId type) const;

  // --- Matching (requires frozen) ------------------------------------------

  /// All entity ids whose name or alias fuzzily matches `text` (§3.1.1
  /// step 1). May return many ids for ambiguous strings. The span aliases
  /// the name index and stays valid for the KB's lifetime; matching
  /// normalizes into per-thread scratch, so concurrent calls are safe and
  /// allocation-free.
  std::span<const EntityId> MatchMentionsView(std::string_view text) const;

  /// Copying variant of MatchMentionsView for callers that keep the result.
  std::vector<EntityId> MatchMentions(std::string_view text) const;

  // --- Triple queries (require frozen) --------------------------------------

  /// Triples with the given subject. Freeze() sorts triples by (subject,
  /// predicate, object) and indexes them CSR-style, so this is a view into
  /// the contiguous per-subject slice of triples() — no copy. Valid for the
  /// KB's lifetime.
  std::span<const Triple> TriplesWithSubject(EntityId subject) const;

  /// Set of objects of any triple with the given subject — the
  /// entitySet of Equation (1).
  const std::unordered_set<EntityId>& ObjectsOfSubject(EntityId subject) const;

  /// All predicates r such that (subject, r, object) is in the KB.
  std::vector<PredicateId> PredicatesBetween(EntityId subject,
                                             EntityId object) const;

  bool HasTriple(EntityId subject, PredicateId predicate,
                 EntityId object) const;

  /// Normalized object strings that appear in at least `fraction` of all
  /// triples — the common-string topic filter of §3.1.1 (paper example:
  /// 0.01%). `min_count` floors the threshold so that small KBs (where
  /// 0.01% is under one triple) don't filter every string.
  std::unordered_set<std::string> CommonObjectStrings(
      double fraction, int64_t min_count = 1) const;

 private:
  Ontology ontology_;
  std::vector<Entity> entities_;
  std::vector<Triple> triples_;
  bool frozen_ = false;

  FuzzyMatcher name_index_;
  // CSR subject index: entity ids are dense [0, num_entities), and triples_
  // is sorted by (subject, predicate, object) at Freeze() time, so the
  // triples of subject s are triples_[subject_offsets_[s],
  // subject_offsets_[s+1]). Queries hand out spans over that slice.
  std::vector<size_t> subject_offsets_;
  std::unordered_map<EntityId, std::unordered_set<EntityId>>
      objects_by_subject_;
  std::unordered_map<std::string, int64_t> object_string_triple_count_;
  std::unordered_set<EntityId> empty_set_;
};

}  // namespace ceres

#endif  // CERES_KB_KNOWLEDGE_BASE_H_
