#include "ml/agglomerative.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "util/logging.h"

namespace ceres {

namespace {

// Union-find over item indices.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<int> AgglomerativeCluster(size_t num_items,
                                      const DistanceFn& distance,
                                      size_t target_clusters,
                                      Linkage linkage) {
  CERES_CHECK(target_clusters >= 1);
  if (num_items == 0) return {};
  if (target_clusters >= num_items) {
    std::vector<int> trivial(num_items);
    std::iota(trivial.begin(), trivial.end(), 0);
    return trivial;
  }

  // Materialize the distance matrix once.
  std::vector<std::vector<double>> dist(num_items,
                                        std::vector<double>(num_items, 0.0));
  for (size_t i = 0; i < num_items; ++i) {
    for (size_t j = i + 1; j < num_items; ++j) {
      dist[i][j] = dist[j][i] = distance(i, j);
    }
  }

  // Lance–Williams style cluster-distance maintenance: track live clusters
  // and, after each merge, recompute the merged cluster's distance to all
  // other live clusters per the linkage rule.
  std::vector<bool> alive(num_items, true);
  std::vector<size_t> cluster_size(num_items, 1);
  DisjointSets sets(num_items);

  size_t live = num_items;
  while (live > target_clusters) {
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0;
    size_t bj = 0;
    for (size_t i = 0; i < num_items; ++i) {
      if (!alive[i]) continue;
      for (size_t j = i + 1; j < num_items; ++j) {
        if (!alive[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi.
    for (size_t k = 0; k < num_items; ++k) {
      if (!alive[k] || k == bi || k == bj) continue;
      double combined;
      switch (linkage) {
        case Linkage::kSingle:
          combined = std::min(dist[bi][k], dist[bj][k]);
          break;
        case Linkage::kComplete:
          combined = std::max(dist[bi][k], dist[bj][k]);
          break;
        case Linkage::kAverage:
        default: {
          double wi = static_cast<double>(cluster_size[bi]);
          double wj = static_cast<double>(cluster_size[bj]);
          combined = (wi * dist[bi][k] + wj * dist[bj][k]) / (wi + wj);
          break;
        }
      }
      dist[bi][k] = dist[k][bi] = combined;
    }
    sets.Union(bj, bi);
    cluster_size[bi] += cluster_size[bj];
    alive[bj] = false;
    --live;
  }

  // Relabel roots to dense ids ordered by decreasing cluster size.
  std::vector<size_t> roots;
  for (size_t i = 0; i < num_items; ++i) {
    if (alive[i]) roots.push_back(sets.Find(i));
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());

  std::vector<size_t> sizes(roots.size(), 0);
  std::vector<size_t> item_root(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    item_root[i] = sets.Find(i);
    for (size_t r = 0; r < roots.size(); ++r) {
      if (roots[r] == item_root[i]) {
        ++sizes[r];
        break;
      }
    }
  }
  std::vector<size_t> order(roots.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return sizes[a] > sizes[b]; });
  std::vector<int> root_to_label(num_items, -1);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    root_to_label[roots[order[rank]]] = static_cast<int>(rank);
  }
  std::vector<int> labels(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    labels[i] = root_to_label[item_root[i]];
  }
  return labels;
}

}  // namespace ceres
