#include "cluster/detail_page_detector.h"

#include <cctype>
#include <string_view>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "text/normalize.h"

namespace ceres {

namespace {

// True for values that are numbers, dates, money, or similar data-series
// content: a majority of their alphanumeric characters are digits.
bool IsNumericLike(std::string_view text) {
  int digits = 0;
  int letters = 0;
  for (char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    if (std::isalpha(static_cast<unsigned char>(c))) ++letters;
  }
  if (digits == 0) return false;
  return digits * 2 >= digits + letters;  // At least half digits.
}

// The page's first prominent heading: the first h1/h2/h3/title field, or
// the first text field as a fallback.
std::string HeadingText(const DomDocument& page) {
  std::string fallback;
  for (NodeId id = 0; id < page.size(); ++id) {
    const DomNode& node = page.node(id);
    if (!node.HasText()) continue;
    if (node.tag == "h1" || node.tag == "h2" || node.tag == "h3") {
      return NormalizeText(node.text);
    }
    if (fallback.empty() && node.tag != "title") {
      fallback = NormalizeText(node.text);
    }
  }
  return fallback;
}

}  // namespace

DetailPageSignals ComputeDetailPageSignals(
    const std::vector<const DomDocument*>& pages,
    const DetailPageConfig& config) {
  DetailPageSignals signals;
  if (pages.empty()) return signals;

  // Page counts per normalized string. `on_page` is hoisted out of the
  // per-page loop and cleared between pages so its buckets (and most of
  // its string nodes' heap churn) are reused across the site.
  std::unordered_map<std::string, size_t> page_counts;
  std::unordered_set<std::string> on_page;
  int64_t total_fields = 0;
  int64_t numeric_fields = 0;
  for (const DomDocument* page : pages) {
    if (config.deadline.expired()) break;
    on_page.clear();
    for (NodeId id : page->TextFields()) {
      const std::string_view raw = page->node(id).text;
      ++total_fields;
      if (IsNumericLike(raw)) ++numeric_fields;
      std::string norm = NormalizeText(raw);
      if (!norm.empty()) on_page.insert(std::move(norm));
    }
    for (const std::string& s : on_page) ++page_counts[s];
  }
  const double boilerplate_pages =
      config.boilerplate_page_fraction * static_cast<double>(pages.size());
  int64_t boilerplate_fields = 0;
  for (const DomDocument* page : pages) {
    for (NodeId id : page->TextFields()) {
      std::string norm = NormalizeText(page->node(id).text);
      auto it = page_counts.find(norm);
      if (it != page_counts.end() &&
          static_cast<double>(it->second) >= boilerplate_pages) {
        ++boilerplate_fields;
      }
    }
  }
  signals.mean_fields = static_cast<double>(total_fields) /
                        static_cast<double>(pages.size());
  if (total_fields > 0) {
    signals.boilerplate_fraction =
        static_cast<double>(boilerplate_fields) /
        static_cast<double>(total_fields);
    signals.numeric_fraction = static_cast<double>(numeric_fields) /
                               static_cast<double>(total_fields);
  }

  std::unordered_map<std::string, size_t> heading_counts;
  for (const DomDocument* page : pages) {
    ++heading_counts[HeadingText(*page)];
  }
  size_t distinct_pages = 0;
  for (const DomDocument* page : pages) {
    if (heading_counts[HeadingText(*page)] == 1) ++distinct_pages;
  }
  signals.distinct_heading_fraction =
      static_cast<double>(distinct_pages) / static_cast<double>(pages.size());
  return signals;
}

bool LooksLikeDetailPages(const std::vector<const DomDocument*>& pages,
                          const DetailPageConfig& config) {
  if (pages.empty()) return false;
  DetailPageSignals signals = ComputeDetailPageSignals(pages, config);
  return signals.numeric_fraction <= config.max_numeric_fraction &&
         signals.distinct_heading_fraction >=
             config.min_distinct_heading_fraction &&
         signals.mean_fields >= config.min_mean_fields;
}

}  // namespace ceres
