# Empty dependencies file for fig6_confidence_sweep.
# This may be replaced when dependencies are built.
