#include "util/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace ceres {
namespace {

using std::chrono::hours;
using std::chrono::milliseconds;

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_FALSE(deadline.cancelled());
  EXPECT_TRUE(deadline.Check("stage").ok());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  Deadline deadline = Deadline::After(milliseconds(0));
  EXPECT_FALSE(deadline.infinite());
  EXPECT_TRUE(deadline.time_expired());
  EXPECT_TRUE(deadline.expired());
  Status status = deadline.Check("clustering");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("clustering"), std::string::npos);
}

TEST(DeadlineTest, GenerousBudgetIsLive) {
  Deadline deadline = Deadline::After(hours(1));
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(deadline.Check("stage").ok());
}

TEST(DeadlineTest, AtHonoursAbsoluteTimePoint) {
  Deadline past = Deadline::At(Deadline::Clock::now() - milliseconds(1));
  EXPECT_TRUE(past.expired());
  Deadline future = Deadline::At(Deadline::Clock::now() + hours(1));
  EXPECT_FALSE(future.expired());
}

TEST(DeadlineTest, ShortBudgetExpiresOverTime) {
  Deadline deadline = Deadline::After(milliseconds(5));
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_TRUE(deadline.expired());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken token;
  CancelToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(DeadlineTest, CancellationExpiresAnInfiniteDeadline) {
  CancelToken token;
  Deadline deadline = Deadline().WithToken(token);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  token.Cancel();
  EXPECT_TRUE(deadline.cancelled());
  EXPECT_TRUE(deadline.expired());
  Status status = deadline.Check("annotation");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("annotation"), std::string::npos);
}

TEST(DeadlineTest, CancellationReportedEvenWhenTimeAlsoExpired) {
  CancelToken token;
  token.Cancel();
  Deadline deadline = Deadline::After(milliseconds(0)).WithToken(token);
  EXPECT_EQ(deadline.Check("stage").code(), StatusCode::kCancelled);
}

TEST(DeadlineTest, EarlierPicksTheStricterBound) {
  Deadline loose = Deadline::After(hours(1));
  Deadline strict = Deadline::After(milliseconds(0));
  EXPECT_TRUE(loose.Earlier(strict).expired());
  EXPECT_TRUE(strict.Earlier(loose).expired());
  EXPECT_FALSE(loose.Earlier(Deadline()).expired());
}

TEST(DeadlineTest, EarlierAdoptsTheLooseSidesToken) {
  CancelToken token;
  Deadline with_token = Deadline().WithToken(token);
  Deadline bounded = Deadline::After(hours(1));
  Deadline combined = bounded.Earlier(with_token);
  EXPECT_FALSE(combined.expired());
  token.Cancel();
  EXPECT_TRUE(combined.cancelled());
}

}  // namespace
}  // namespace ceres
