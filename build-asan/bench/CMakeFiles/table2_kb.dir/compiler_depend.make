# Empty compiler generated dependencies file for table2_kb.
# This may be replaced when dependencies are built.
