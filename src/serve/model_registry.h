#ifndef CERES_SERVE_MODEL_REGISTRY_H_
#define CERES_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/features.h"
#include "core/model_io.h"
#include "core/training.h"
#include "kb/ontology.h"
#include "util/status.h"
#include "util/sync.h"

namespace ceres::serve {

/// A trained per-site extractor, resident in memory and ready to apply:
/// the persisted TrainedModel plus the featurizer rebuilt from its lexicon.
/// Immutable once constructed — the feature map is frozen, so concurrent
/// extraction through a shared SiteModel is safe. Handed out as
/// shared_ptr so a hot-swap or eviction never invalidates an extraction
/// already in flight.
struct SiteModel {
  std::string site;
  int64_t version = -1;
  /// Estimated resident size, charged against the cache byte budget.
  size_t bytes = 0;
  TrainedModel model;
  FeatureExtractor featurizer;

  /// Rebuilds the featurizer and fills in the byte estimate.
  SiteModel(std::string site_in, int64_t version_in, TrainedModel model_in);
};

/// Rough resident-memory estimate of a trained model (weight matrix,
/// feature dictionary, lexicon). Used for byte-budget cache accounting;
/// exactness is not required, proportionality across models is.
size_t EstimateModelBytes(const TrainedModel& model);

struct ModelRegistryConfig {
  /// Root of the versioned on-disk model store (core/model_io.h layout:
  /// <root>/<site>/<version>.model + CURRENT).
  std::string root_dir;
  /// Warm-cache budget. When the resident set exceeds it, least-recently
  /// used site models are dropped (in-flight extractions keep theirs alive
  /// through the shared_ptr). A single model larger than the budget is
  /// still served — it just gets evicted by the next insertion.
  size_t byte_budget = size_t{256} << 20;
};

/// Cache and load-path counters. `bytes_cached` / `models_cached` are the
/// current resident set; the rest are monotonic since construction.
struct RegistryStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t loads = 0;
  int64_t load_failures = 0;
  int64_t evictions = 0;
  int64_t hot_swaps = 0;
  size_t bytes_cached = 0;
  int64_t models_cached = 0;
};

/// Thread-safe registry of per-site extractor models for the online serve
/// path.
///
/// `Get(site)` returns the warm cached model or loads the site's CURRENT
/// version from the store. Concurrent Gets of the same cold site are
/// deduplicated: one caller performs the disk load while the others wait
/// on it, and distinct sites load in parallel (the disk parse happens
/// outside the registry lock). Failed loads are NOT negatively cached —
/// a retrain can publish a good model at any moment, so every request for
/// a broken site re-attempts the load and reports the typed error.
///
/// `Publish(site, model)` persists a new version through the store's
/// atomic rename protocol and hot-swaps the cache entry in the same
/// critical section, so readers see either the old model or the new one,
/// never a mixture; extractions already running on the old version finish
/// on it.
class ModelRegistry {
 public:
  ModelRegistry(Ontology ontology, ModelRegistryConfig config);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The warm model for `site`, loading on miss. `cache_hit` (optional)
  /// reports whether this call was served from the warm cache.
  Result<std::shared_ptr<const SiteModel>> Get(const std::string& site,
                                               bool* cache_hit = nullptr);

  /// Saves `model` as the next version of `site` and atomically installs
  /// it as the warm entry. Returns the version assigned.
  Result<int64_t> Publish(const std::string& site, const TrainedModel& model);

  /// Drops the warm entry (e.g. after an external writer updated the
  /// store); the next Get reloads from disk.
  void Invalidate(const std::string& site);

  RegistryStats stats() const;
  const Ontology& ontology() const { return ontology_; }
  const ModelRegistryConfig& config() const { return config_; }

 private:
  struct InflightLoad {
    /// Signalled (under mu_) when the owning load finishes; fields below
    /// are guarded by the registry's mu_, not a per-load mutex.
    CondVar done;
    bool finished = false;
    Result<std::shared_ptr<const SiteModel>> result{
        Status::Internal("load not finished")};
    int waiters = 0;
  };

  struct CacheEntry {
    std::shared_ptr<const SiteModel> model;
    std::list<std::string>::iterator lru_position;
  };

  /// Inserts (or replaces) `site` -> `model` and evicts LRU entries over
  /// budget. Never evicts the entry just inserted.
  void InstallLocked(const std::string& site,
                     std::shared_ptr<const SiteModel> model)
      CERES_REQUIRES(mu_);
  void EvictOverBudgetLocked(const std::string& keep) CERES_REQUIRES(mu_);

  const Ontology ontology_;
  const ModelRegistryConfig config_;

  mutable CheckedMutex mu_{"ModelRegistry.mu"};
  /// Most-recently used at the front.
  std::list<std::string> lru_ CERES_GUARDED_BY(mu_);
  std::unordered_map<std::string, CacheEntry> cache_ CERES_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::shared_ptr<InflightLoad>> inflight_
      CERES_GUARDED_BY(mu_);
  RegistryStats stats_ CERES_GUARDED_BY(mu_);
};

}  // namespace ceres::serve

#endif  // CERES_SERVE_MODEL_REGISTRY_H_
