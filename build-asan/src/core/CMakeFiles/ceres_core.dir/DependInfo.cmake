
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/entity_matcher.cc" "src/core/CMakeFiles/ceres_core.dir/entity_matcher.cc.o" "gcc" "src/core/CMakeFiles/ceres_core.dir/entity_matcher.cc.o.d"
  "/root/repo/src/core/extractor.cc" "src/core/CMakeFiles/ceres_core.dir/extractor.cc.o" "gcc" "src/core/CMakeFiles/ceres_core.dir/extractor.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/ceres_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/ceres_core.dir/features.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/ceres_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/ceres_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/ceres_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/ceres_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/relation_annotator.cc" "src/core/CMakeFiles/ceres_core.dir/relation_annotator.cc.o" "gcc" "src/core/CMakeFiles/ceres_core.dir/relation_annotator.cc.o.d"
  "/root/repo/src/core/topic_identification.cc" "src/core/CMakeFiles/ceres_core.dir/topic_identification.cc.o" "gcc" "src/core/CMakeFiles/ceres_core.dir/topic_identification.cc.o.d"
  "/root/repo/src/core/training.cc" "src/core/CMakeFiles/ceres_core.dir/training.cc.o" "gcc" "src/core/CMakeFiles/ceres_core.dir/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/cluster/CMakeFiles/ceres_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dom/CMakeFiles/ceres_dom.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/kb/CMakeFiles/ceres_kb.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/ceres_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/text/CMakeFiles/ceres_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
