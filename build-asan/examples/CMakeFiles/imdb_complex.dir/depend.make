# Empty dependencies file for imdb_complex.
# This may be replaced when dependencies are built.
