// Corpus: half of a deliberate two-file include cycle (the test lints
// both halves together under src/dom/ paths; the cycle detector must
// report the full a -> b -> a path once). Never compiled — linted by
// tests/lint/ceres_lint_test.cc.
#ifndef CERES_LINT_CORPUS_INCLUDE_CYCLE_A_H_
#define CERES_LINT_CORPUS_INCLUDE_CYCLE_A_H_

#include "dom/include_cycle_b.h"

namespace ceres {
struct CycleA {};
}  // namespace ceres

#endif  // CERES_LINT_CORPUS_INCLUDE_CYCLE_A_H_
