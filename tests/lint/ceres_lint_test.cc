#include "lint/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ceres::lint {
namespace {

#ifndef CERES_LINT_CORPUS_DIR
#error "CERES_LINT_CORPUS_DIR must point at tools/lint/corpus"
#endif

std::string ReadCorpus(const std::string& name) {
  const std::string path = std::string(CERES_LINT_CORPUS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

/// Lints one corpus snippet under a synthetic path (the path selects the
/// rule scope: serve scope, test exemption, stage-config scope).
std::vector<Diagnostic> LintAs(const std::string& corpus_name,
                               const std::string& synthetic_path) {
  return Lint({SourceFile{synthetic_path, ReadCorpus(corpus_name)}});
}

struct KnownBad {
  const char* corpus;
  const char* path;
  const char* rule;
};

/// Each known-bad snippet must fire its diagnostic exactly once.
TEST(CeresLintTest, EachKnownBadSnippetFiresExactlyOnce) {
  const KnownBad cases[] = {
      {"ignored_status.cc", "src/eval/ignored_status.cc", "ignored-status"},
      {"naked_mutex.cc", "src/serve/naked_mutex.cc", "naked-sync"},
      {"missing_deadline.cc", "src/core/missing_deadline.h",
       "config-deadline"},
      {"detached_thread.cc", "src/dom/detached_thread.cc", "thread-hygiene"},
      {"sleep_poll.cc", "src/robustness/sleep_poll.cc", "thread-hygiene"},
      {"raw_parallelism.cc", "src/core/raw_parallelism.cc",
       "raw-parallelism"},
      {"raw_timing.cc", "src/core/raw_timing.cc", "raw-timing"},
      {"raw_process.cc", "src/serve/raw_process.cc", "raw-process"},
      {"raw_socket.cc", "src/serve/raw_socket.cc", "raw-socket"},
      {"hot_alloc.cc", "src/dom/hot_alloc.cc", "hot-alloc"},
      {"temp_string_lookup.cc", "src/ml/temp_string_lookup.cc", "hot-alloc"},
      {"blocking_in_loop.cc", "src/net/blocking_in_loop.cc",
       "blocking-in-loop"},
      {"stale_suppression.cc", "src/eval/stale_suppression.cc",
       "stale-suppression"},
  };
  for (const KnownBad& known : cases) {
    SCOPED_TRACE(known.corpus);
    const std::vector<Diagnostic> diagnostics =
        LintAs(known.corpus, known.path);
    ASSERT_EQ(diagnostics.size(), 1u);
    EXPECT_EQ(diagnostics[0].rule, known.rule);
    EXPECT_EQ(diagnostics[0].file, known.path);
    EXPECT_GT(diagnostics[0].line, 0);
  }
}

TEST(CeresLintTest, CleanSnippetProducesNoDiagnostics) {
  // Even under the strictest scope (src/serve/), the clean corpus file —
  // which uses the checked wrappers, macro-propagated and (void)-discarded
  // Status, and a suppressed deliberate sleep — must lint clean.
  EXPECT_TRUE(LintAs("clean.cc", "src/serve/clean.cc").empty());
}

TEST(CeresLintTest, WholeCorpusTotalsAcrossFiles) {
  // All snippets linted together as one program: the Status-function pass
  // is global, and each bad file still reports exactly its one violation.
  std::vector<SourceFile> files = {
      {"src/eval/ignored_status.cc", ReadCorpus("ignored_status.cc")},
      {"src/serve/naked_mutex.cc", ReadCorpus("naked_mutex.cc")},
      {"src/core/missing_deadline.h", ReadCorpus("missing_deadline.cc")},
      {"src/dom/detached_thread.cc", ReadCorpus("detached_thread.cc")},
      {"src/robustness/sleep_poll.cc", ReadCorpus("sleep_poll.cc")},
      {"src/core/raw_parallelism.cc", ReadCorpus("raw_parallelism.cc")},
      {"src/serve/raw_timing.cc", ReadCorpus("raw_timing.cc")},
      {"src/eval/raw_process.cc", ReadCorpus("raw_process.cc")},
      {"src/eval/raw_socket.cc", ReadCorpus("raw_socket.cc")},
      {"src/dom/hot_alloc.cc", ReadCorpus("hot_alloc.cc")},
      {"src/ml/temp_string_lookup.cc", ReadCorpus("temp_string_lookup.cc")},
      {"src/net/blocking_in_loop.cc", ReadCorpus("blocking_in_loop.cc")},
      {"src/eval/stale_suppression.cc", ReadCorpus("stale_suppression.cc")},
      // The cycle pair reports its one cycle; layer_violation.cc is inert
      // here because no layer graph is passed (the edge check needs one —
      // cycle detection does not).
      {"src/dom/include_cycle_a.h", ReadCorpus("include_cycle_a.h")},
      {"src/dom/include_cycle_b.h", ReadCorpus("include_cycle_b.h")},
      {"src/dom/layer_violation.cc", ReadCorpus("layer_violation.cc")},
      {"src/serve/clean.cc", ReadCorpus("clean.cc")},
  };
  EXPECT_EQ(Lint(files).size(), 14u);
}

TEST(CeresLintTest, ScopeGatesRules) {
  // The same content outside its rule's scope is silent: naked std::mutex
  // is allowed off the serve path, sleeps are allowed in tests, and a
  // Deadline-less Config struct is fine outside src/core + src/cluster.
  EXPECT_TRUE(LintAs("naked_mutex.cc", "src/kb/naked_mutex.cc").empty());
  EXPECT_TRUE(
      LintAs("sleep_poll.cc", "tests/robustness/sleep_poll_test.cc").empty());
  EXPECT_TRUE(
      LintAs("missing_deadline.cc", "src/serve/missing_deadline.h").empty());
  // A hard-coded thread count is only policed in the batch-pipeline scope.
  EXPECT_TRUE(
      LintAs("raw_parallelism.cc", "src/serve/raw_parallelism.cc").empty());
  // Raw steady_clock is only policed in pipeline/serve code, and src/obs/
  // (the clock wrapper itself) is carved out of that scope.
  EXPECT_TRUE(LintAs("raw_timing.cc", "src/eval/raw_timing.cc").empty());
  EXPECT_TRUE(LintAs("raw_timing.cc", "src/obs/raw_timing.cc").empty());
  // Process-control calls are the dist layer's business — the same content
  // inside src/dist/ or a test file no longer trips raw-process. The
  // corpus snippet carries an allow(raw-process) comment, though, and out
  // of scope that suppression pays for nothing — the stale-suppression
  // audit reports exactly it.
  for (const char* path : {"src/dist/raw_process.cc",
                           "tests/dist/raw_process_test.cc"}) {
    SCOPED_TRACE(path);
    const std::vector<Diagnostic> diagnostics =
        LintAs("raw_process.cc", path);
    ASSERT_EQ(diagnostics.size(), 1u);
    EXPECT_EQ(diagnostics[0].rule, "stale-suppression");
  }
  // Socket/epoll calls are the net layer's business — same shape: the
  // rule goes silent, its suppression goes stale.
  for (const char* path :
       {"src/net/raw_socket.cc", "tests/net/raw_socket_test.cc"}) {
    SCOPED_TRACE(path);
    const std::vector<Diagnostic> diagnostics =
        LintAs("raw_socket.cc", path);
    ASSERT_EQ(diagnostics.size(), 1u);
    EXPECT_EQ(diagnostics[0].rule, "stale-suppression");
  }
  // The hot-alloc and event-loop scopes gate the new rules the same way.
  EXPECT_TRUE(LintAs("hot_alloc.cc", "src/serve/hot_alloc.cc").empty());
  EXPECT_TRUE(LintAs("hot_alloc.cc", "tests/dom/hot_alloc_test.cc").empty());
  // src/ml/ is part of the hot-alloc scope; src/kb/ is not, and tests
  // never are.
  ASSERT_EQ(LintAs("hot_alloc.cc", "src/ml/hot_alloc.cc").size(), 1u);
  EXPECT_TRUE(
      LintAs("temp_string_lookup.cc", "src/kb/temp_string_lookup.cc").empty());
  EXPECT_TRUE(
      LintAs("temp_string_lookup.cc", "tests/ml/temp_string_lookup_test.cc")
          .empty());
  EXPECT_TRUE(
      LintAs("blocking_in_loop.cc", "src/dist/blocking_in_loop.cc").empty());
  // http_client.* is carved out of the event-loop scope: the client is
  // the deliberately-blocking side of src/net/.
  EXPECT_TRUE(
      LintAs("blocking_in_loop.cc", "src/net/http_client_retry.cc").empty());
}

TEST(CeresLintTest, NakedSyncCoversNetScope) {
  // src/net/ joined the lock-order-checked scope with the HTTP server:
  // the event loop's responder inbox and drain signal must use the
  // sync.h wrappers.
  const std::vector<Diagnostic> diagnostics =
      LintAs("naked_mutex.cc", "src/net/naked_mutex.cc");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "naked-sync");
}

TEST(CeresLintTest, RawSocketBansDescriptorCallsButNotPoll) {
  // socket() and epoll_ctl() are flagged outside src/net/; poll() is not
  // (the dist coordinator waits on worker pipes with it).
  const std::string content =
      "namespace ceres {\n"
      "void Wait(int fd) {\n"
      "  int listener = socket(2, 1, 0);\n"
      "  epoll_ctl(listener, 1, fd, nullptr);\n"
      "  poll(nullptr, 0, 50);\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/dist/wait.cc", content}});
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "raw-socket");
  EXPECT_EQ(diagnostics[0].line, 3);
  EXPECT_EQ(diagnostics[1].rule, "raw-socket");
  EXPECT_EQ(diagnostics[1].line, 4);
}

TEST(CeresLintTest, ConfigDeadlineCoversFusionScope) {
  // FusionConfig carries a Deadline since the dist coordinator threads its
  // run deadline through fusion; the rule now polices src/fusion/ so that
  // stays true.
  const std::string content =
      "namespace ceres::fusion {\n"
      "struct RerankConfig {\n"
      "  int iterations = 3;\n"
      "};\n"
      "}  // namespace ceres::fusion\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/fusion/rerank.h", content}});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "config-deadline");
  EXPECT_TRUE(Lint({SourceFile{"src/eval/rerank.h", content}}).empty());
}

TEST(CeresLintTest, RawProcessDistinguishesCallsFromNames) {
  const std::string content =
      "namespace ceres {\n"
      "void Reap(int pid) {\n"
      "  int status = 0;\n"
      "  waitpid(pid, &status, 0);\n"
      "  (void)::kill(pid, 9);\n"
      "}\n"
      "int fork_count = 0;\n"
      "void HandleKill(int kill) { (void)kill; }\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/robustness/reap.cc", content}});
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "raw-process");
  EXPECT_EQ(diagnostics[0].line, 4);
  EXPECT_EQ(diagnostics[1].line, 5);
}

TEST(CeresLintTest, RawParallelismCatchesEachShape) {
  const std::string content =
      "namespace ceres {\n"
      "void Fan(size_t n, const ParallelConfig& config) {\n"
      "  std::thread worker([] {});\n"
      "  ParallelFor(n, 4, [](size_t) {});\n"
      "  ParallelConfig pool{2};\n"
      "  ParallelFor(n, config, [](size_t) {});\n"
      "  ParallelFor(n, ParallelConfig::Sequential(), [](size_t) {});\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/core/fan.cc", content}});
  ASSERT_EQ(diagnostics.size(), 3u);
  for (const Diagnostic& diagnostic : diagnostics) {
    EXPECT_EQ(diagnostic.rule, "raw-parallelism");
  }
  EXPECT_EQ(diagnostics[0].line, 3);
  EXPECT_EQ(diagnostics[1].line, 4);
  EXPECT_EQ(diagnostics[2].line, 5);
}

TEST(CeresLintTest, SuppressionCommentSilencesOneLine) {
  const std::string content =
      "namespace ceres {\n"
      "Status DoWork();\n"
      "void Caller() {\n"
      "  DoWork();  // ceres-lint: allow(ignored-status)\n"
      "  DoWork();\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/eval/suppressed.cc", content}});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 5);
}

TEST(CeresLintTest, IgnoredStatusSeesCallsThroughReceiverChains) {
  const std::string content =
      "namespace ceres {\n"
      "struct Registry { Status Publish(); };\n"
      "void Caller(Registry* registry, Registry& ref) {\n"
      "  registry->Publish();\n"
      "  ref.Publish();\n"
      "  Status kept = ref.Publish();\n"
      "  if (!kept.ok()) return;\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/eval/chains.cc", content}});
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].line, 4);
  EXPECT_EQ(diagnostics[1].line, 5);
}

TEST(CeresLintTest, FormatIsFileLineRuleMessage) {
  const Diagnostic diagnostic{"src/a.cc", 12, "naked-sync", "boom"};
  EXPECT_EQ(FormatDiagnostic(diagnostic), "src/a.cc:12: [naked-sync] boom");
}

// --- layer-violation -------------------------------------------------------

constexpr char kTestLayers[] =
    "# leaf-first test graph\n"
    "util:\n"
    "dom: util\n"
    "net: util\n"
    "tools: *\n";

LayerGraph ParseLayersOrDie(const std::string& text) {
  LayerGraph graph;
  std::string error;
  EXPECT_TRUE(ParseLayerGraph(text, &graph, &error)) << error;
  return graph;
}

std::vector<Diagnostic> LintWithLayers(const std::vector<SourceFile>& files,
                                       const LayerGraph& graph) {
  LintOptions options;
  options.layers = &graph;
  return Lint(files, options);
}

TEST(CeresLintTest, LayerViolationCorpusFiresWithGraph) {
  const LayerGraph graph = ParseLayersOrDie(kTestLayers);
  // dom -> net is not a declared edge; the same-module and dom -> util
  // includes are fine.
  const std::vector<Diagnostic> diagnostics = LintWithLayers(
      {{"src/dom/layer_violation.cc", ReadCorpus("layer_violation.cc")}},
      graph);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layer-violation");
  EXPECT_NE(diagnostics[0].message.find("dom -> net"), std::string::npos);
  // Driver layers declare "*" and may include anything; tests are exempt
  // from layering entirely.
  EXPECT_TRUE(LintWithLayers({{"tools/layer_violation.cc",
                               ReadCorpus("layer_violation.cc")}},
                             graph)
                  .empty());
  EXPECT_TRUE(LintWithLayers({{"tests/dom/layer_violation_test.cc",
                               ReadCorpus("layer_violation.cc")}},
                             graph)
                  .empty());
  // Without a graph the edge check is off (LintAs passes no options).
  EXPECT_TRUE(
      LintAs("layer_violation.cc", "src/dom/layer_violation.cc").empty());
}

TEST(CeresLintTest, UndeclaredModuleIsAViolation) {
  const LayerGraph graph = ParseLayersOrDie(kTestLayers);
  const std::vector<Diagnostic> diagnostics = LintWithLayers(
      {{"src/cluster/new_thing.cc", "namespace ceres {}\n"}}, graph);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layer-violation");
  EXPECT_NE(diagnostics[0].message.find("not declared"), std::string::npos);
}

TEST(CeresLintTest, IncludeCycleReportedOnceWithFullPath) {
  // The cycle check runs with or without a layer graph — a cycle is a
  // layering fault no DAG entry can legalize.
  const std::vector<SourceFile> files = {
      {"src/dom/include_cycle_a.h", ReadCorpus("include_cycle_a.h")},
      {"src/dom/include_cycle_b.h", ReadCorpus("include_cycle_b.h")},
  };
  const std::vector<Diagnostic> diagnostics = Lint(files);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layer-violation");
  EXPECT_NE(diagnostics[0].message.find("include cycle"), std::string::npos);
  // The full rotated path names both files.
  EXPECT_NE(diagnostics[0].message.find("src/dom/include_cycle_a.h"),
            std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("src/dom/include_cycle_b.h"),
            std::string::npos);
  // Either half alone is silent: its include target resolves to no
  // scanned file, so there is no edge to close a cycle with.
  EXPECT_TRUE(
      LintAs("include_cycle_a.h", "src/dom/include_cycle_a.h").empty());
}

TEST(CeresLintTest, ParseLayerGraphValidates) {
  LayerGraph graph;
  std::string error;
  // Valid: comments, blank lines, wildcard, forward references.
  EXPECT_TRUE(ParseLayerGraph(
      "a: b  # forward reference is fine\nb:\nd: *\n", &graph, &error))
      << error;
  EXPECT_TRUE(graph.Allows("a", "b"));
  EXPECT_TRUE(graph.Allows("a", "a"));  // self-edge needs no declaration
  EXPECT_FALSE(graph.Allows("b", "a"));
  EXPECT_TRUE(graph.Allows("d", "a"));  // wildcard
  EXPECT_TRUE(graph.Declares("a"));
  EXPECT_FALSE(graph.Declares("zzz"));
  // Missing colon.
  EXPECT_FALSE(ParseLayerGraph("a b\n", &graph, &error));
  EXPECT_NE(error.find("expected 'module:'"), std::string::npos);
  // Dependency on an undeclared module.
  EXPECT_FALSE(ParseLayerGraph("a: ghost\n", &graph, &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos);
  // Duplicate declaration.
  EXPECT_FALSE(ParseLayerGraph("a:\na:\n", &graph, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);
}

TEST(CeresLintTest, RepoLayersFileParses) {
  // The committed layers.txt must stay well-formed; the lint target would
  // exit 2 otherwise and tier1 treats that as an internal error.
  const std::string path =
      std::string(CERES_LINT_CORPUS_DIR) + "/../layers.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::ostringstream text;
  text << in.rdbuf();
  LayerGraph graph;
  std::string error;
  EXPECT_TRUE(ParseLayerGraph(text.str(), &graph, &error)) << error;
  // Spot-check the repo's contract: core may use cluster, never the
  // reverse; eval must not depend on synth (the truth adapter lives in
  // synth/ for exactly that reason).
  EXPECT_TRUE(graph.Allows("core", "cluster"));
  EXPECT_FALSE(graph.Allows("cluster", "core"));
  EXPECT_FALSE(graph.Allows("eval", "synth"));
  EXPECT_TRUE(graph.Allows("synth", "eval"));
}

// --- hot-alloc -------------------------------------------------------------

TEST(CeresLintTest, HotAllocCatchesEachShape) {
  const std::string content =
      "namespace ceres {\n"
      "struct Pool { void Add(std::string id) {\n"
      "  ids.push_back(std::move(id)); } };\n"
      "int Hash(std::string key) { return static_cast<int>(key.size()); }\n"
      "void Walk(const std::vector<std::string>& tags, Pool& pool) {\n"
      "  std::string path;\n"
      "  for (const std::string& tag : tags) {\n"
      "    path = path + \"/\" + tag;\n"
      "    std::string pair = tag + path;\n"
      "    (void)Hash(tag);\n"
      "    pool.Add(tag);\n"
      "  }\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/text/walk.cc", content}});
  // Three findings: the by-value parameter of Hash (called from the loop;
  // Pool::Add is exempt — it std::moves its parameter, the sink idiom),
  // the operator+ chain (one diagnostic after dedup), and the
  // concatenating std::string declaration.
  ASSERT_EQ(diagnostics.size(), 3u);
  for (const Diagnostic& diagnostic : diagnostics) {
    EXPECT_EQ(diagnostic.rule, "hot-alloc");
  }
  EXPECT_EQ(diagnostics[0].line, 4);
  EXPECT_NE(diagnostics[0].message.find("'Hash'"), std::string::npos);
  EXPECT_EQ(diagnostics[1].line, 8);
  EXPECT_EQ(diagnostics[2].line, 9);
}

TEST(CeresLintTest, HotAllocIgnoresColdScopesAndColdCalls) {
  // Outside a loop body nothing fires; outside the hot modules nothing
  // fires either.
  const std::string content =
      "namespace ceres {\n"
      "void Once() {\n"
      "  std::map<std::string, int> counts;\n"
      "  std::string joined = std::string(\"a\") + \"b\";\n"
      "}\n"
      "}  // namespace ceres\n";
  EXPECT_TRUE(Lint({SourceFile{"src/core/once.cc", content}}).empty());
  const std::string loop_content =
      "namespace ceres {\n"
      "void Busy() {\n"
      "  for (int i = 0; i < 3; ++i) {\n"
      "    std::map<std::string, int> counts;\n"
      "  }\n"
      "}\n"
      "}  // namespace ceres\n";
  EXPECT_TRUE(
      Lint({SourceFile{"src/serve/busy.cc", loop_content}}).empty());
  ASSERT_EQ(Lint({SourceFile{"src/core/busy.cc", loop_content}}).size(), 1u);
}

TEST(CeresLintTest, HotAllocCatchesTemporaryStringLookups) {
  // The temporary-string probe fires outside loops too: the defining
  // instance (a dictionary's GetOrAdd) is a flat helper that hot loops
  // call. Each probe method is covered; probing with an existing string
  // or through a transparent hasher is silent.
  const std::string content =
      "namespace ceres {\n"
      "int Probe(const Index& index, std::string_view name) {\n"
      "  if (index.map.count(std::string(name)) == 0) return -1;\n"
      "  auto it = index.map.find(std::string(name));\n"
      "  return index.map.at(std::string(name));\n"
      "}\n"
      "void Drop(Index& index, std::string_view name) {\n"
      "  index.map.erase(std::string(name));\n"
      "}\n"
      "int Fine(const Index& index, const std::string& name) {\n"
      "  auto it = index.map.find(name);\n"
      "  return it == index.map.end() ? -1 : it->second;\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/ml/probe.cc", content}});
  ASSERT_EQ(diagnostics.size(), 4u);
  for (const Diagnostic& diagnostic : diagnostics) {
    EXPECT_EQ(diagnostic.rule, "hot-alloc");
    EXPECT_NE(diagnostic.message.find("transparent hasher"),
              std::string::npos);
  }
  EXPECT_EQ(diagnostics[0].line, 3);
  EXPECT_EQ(diagnostics[1].line, 4);
  EXPECT_EQ(diagnostics[2].line, 5);
  EXPECT_EQ(diagnostics[3].line, 8);
}

// --- blocking-in-loop ------------------------------------------------------

TEST(CeresLintTest, BlockingInLoopCatchesSleepAndClient) {
  const std::string content =
      "namespace ceres {\n"
      "void Tick(HttpClient& upstream) {\n"
      "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/net/server_tick.cc", content}});
  // The sleep fires blocking-in-loop and thread-hygiene (net is non-test
  // code); naming HttpClient in loop scope fires once.
  ASSERT_EQ(diagnostics.size(), 3u);
  EXPECT_EQ(diagnostics[0].line, 2);
  EXPECT_EQ(diagnostics[0].rule, "blocking-in-loop");
  EXPECT_NE(diagnostics[0].message.find("HttpClient"), std::string::npos);
}

TEST(CeresLintTest, BlockingInLoopFlagsOnlyUnguardedReadWrite) {
  const std::string content =
      "namespace ceres {\n"
      "void Drain(int fd) {\n"
      "  char b[8];\n"
      "  ::read(fd, b, sizeof(b));\n"
      "  while (::read(fd, b, 8) > 0) {}\n"
      "  (void)!::write(fd, b, 1);\n"
      "  long n = ::read(fd, b, 8);\n"
      "  (void)n;\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/net/drain.cc", content}});
  // Only the bare statement on line 4 — the guarded loop condition, the
  // (void)-discarded write, and the result-kept read all pass.
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "blocking-in-loop");
  EXPECT_EQ(diagnostics[0].line, 4);
}

// --- stale-suppression -----------------------------------------------------

TEST(CeresLintTest, StaleSuppressionFlagsUnknownRuleNames) {
  const std::string content =
      "namespace ceres {\n"
      "Status DoWork();\n"
      "void Caller() {\n"
      "  DoWork();  // ceres-lint: allow(all)\n"
      "  DoWork();  // ceres-lint: allow(igored-status)\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/eval/typo.cc", content}});
  // allow(all) on line 4 suppresses its ignored-status and is counted as
  // used; the typo'd rule on line 5 suppresses nothing, so both the
  // original diagnostic and the audit fire there.
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].line, 5);
  EXPECT_EQ(diagnostics[0].rule, "ignored-status");
  EXPECT_EQ(diagnostics[1].line, 5);
  EXPECT_EQ(diagnostics[1].rule, "stale-suppression");
  EXPECT_NE(diagnostics[1].message.find("unknown rule"), std::string::npos);
}

TEST(CeresLintTest, StaleSuppressionAuditIsNotSuppressible) {
  const std::string content =
      "namespace ceres {\n"
      "void Fine();\n"
      "void Caller() {\n"
      "  Fine();  // ceres-lint: allow(thread-hygiene) "
      "ceres-lint: allow(stale-suppression)\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/eval/unsupressible.cc", content}});
  // Both entries are dead weight and both are reported — trying to
  // pre-excuse the audit itself doesn't work.
  ASSERT_EQ(diagnostics.size(), 2u);
  for (const Diagnostic& diagnostic : diagnostics) {
    EXPECT_EQ(diagnostic.rule, "stale-suppression");
    EXPECT_EQ(diagnostic.line, 4);
  }
}

// --- CLI contract ----------------------------------------------------------

TEST(CeresLintTest, ExitCodeContract) {
  const std::string corpus = CERES_LINT_CORPUS_DIR;
  std::string out;
  std::string err;
  // 0: clean (the clean corpus snippet passed as a direct file).
  EXPECT_EQ(RunLintCli({corpus + "/clean.cc"}, &out, &err), 0);
  // 1: findings.
  out.clear();
  err.clear();
  EXPECT_EQ(RunLintCli({corpus + "/ignored_status.cc"}, &out, &err), 1);
  EXPECT_NE(err.find("ignored-status"), std::string::npos);
  // 2: internal errors — bad path, unknown flag, malformed layers file,
  // no inputs at all.
  out.clear();
  err.clear();
  EXPECT_EQ(RunLintCli({corpus + "/does_not_exist.cc"}, &out, &err), 2);
  out.clear();
  err.clear();
  EXPECT_EQ(RunLintCli({"--bogus", corpus + "/clean.cc"}, &out, &err), 2);
  out.clear();
  err.clear();
  EXPECT_EQ(
      RunLintCli({"--layers=" + corpus + "/clean.cc", corpus + "/clean.cc"},
                 &out, &err),
      2);
  out.clear();
  err.clear();
  EXPECT_EQ(RunLintCli({}, &out, &err), 2);
}

TEST(CeresLintTest, JsonReportShape) {
  const std::vector<Diagnostic> diagnostics = {
      {"src/a.cc", 3, "hot-alloc", "msg with \"quotes\""}};
  const std::string json = FormatJsonReport(2, diagnostics);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": 1"), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  const std::string empty = FormatJsonReport(0, {});
  EXPECT_NE(empty.find("\"violations\": 0"), std::string::npos);
  // --json streams the report to `out`; diagnostics still land in `err`.
  std::string out;
  std::string err;
  const std::string corpus = CERES_LINT_CORPUS_DIR;
  EXPECT_EQ(RunLintCli({"--json", corpus + "/ignored_status.cc"}, &out, &err),
            1);
  EXPECT_NE(out.find("\"rule\": \"ignored-status\""), std::string::npos);
  EXPECT_NE(err.find("violation(s)"), std::string::npos);
}

}  // namespace
}  // namespace ceres::lint
