#ifndef CERES_UTIL_LOGGING_H_
#define CERES_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ceres {
namespace internal {

/// Terminates the process after printing `message` with source location.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line,
               message.c_str());
  std::abort();
}

}  // namespace internal

/// Log verbosity for PipelineObserver-style progress reporting.
enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

/// Process-wide log level; benches raise it for progress output.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Writes an INFO line to stderr when the global level allows it.
void LogInfo(const std::string& message);

}  // namespace ceres

/// Aborts when `cond` is false. Used for programmer errors / invariant
/// violations (never for data-dependent failures, which return Status).
#define CERES_CHECK(cond)                                           \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::ceres::internal::CheckFailed(__FILE__, __LINE__, #cond);    \
    }                                                               \
  } while (false)

#define CERES_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream _oss;                                          \
      _oss << #cond << " — " << msg;                                    \
      ::ceres::internal::CheckFailed(__FILE__, __LINE__, _oss.str());   \
    }                                                                   \
  } while (false)

#endif  // CERES_UTIL_LOGGING_H_
