// Property test: SerializeHtml(doc) parsed back yields a structurally
// identical document. The synthetic corpus generator depends on this
// invariant to keep its ground-truth XPaths valid after parsing.

#include <gtest/gtest.h>

#include "dom/html_parser.h"
#include "dom/html_serializer.h"
#include "dom/xpath.h"
#include "synth/site_generator.h"
#include "synth/world.h"
#include "util/random.h"

namespace ceres {
namespace {

// Recursively compares two trees by shape (node ids may differ when the
// source document was not built in preorder).
void ExpectSubtreeEqual(const DomDocument& a, NodeId ia, const DomDocument& b,
                        NodeId ib) {
  const DomNode& na = a.node(ia);
  const DomNode& nb = b.node(ib);
  EXPECT_EQ(na.tag, nb.tag);
  EXPECT_EQ(na.text, nb.text);
  EXPECT_EQ(na.sibling_index, nb.sibling_index);
  const auto attrs_a = a.attributes(ia);
  const auto attrs_b = b.attributes(ib);
  ASSERT_EQ(attrs_a.size(), attrs_b.size());
  for (size_t k = 0; k < attrs_a.size(); ++k) {
    EXPECT_EQ(attrs_a[k].name, attrs_b[k].name);
    EXPECT_EQ(attrs_a[k].value, attrs_b[k].value);
  }
  ASSERT_EQ(na.child_count, nb.child_count);
  const std::vector<NodeId> kids_a(a.children(ia).begin(),
                                   a.children(ia).end());
  const std::vector<NodeId> kids_b(b.children(ib).begin(),
                                   b.children(ib).end());
  ASSERT_EQ(kids_a.size(), kids_b.size());
  for (size_t k = 0; k < kids_a.size(); ++k) {
    ExpectSubtreeEqual(a, kids_a[k], b, kids_b[k]);
  }
}

void ExpectStructurallyEqual(const DomDocument& a, const DomDocument& b) {
  ASSERT_EQ(a.size(), b.size());
  ExpectSubtreeEqual(a, a.root(), b, b.root());
}

// Builds a random document via the arena API.
DomDocument RandomDocument(Rng* rng) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  std::vector<NodeId> open{body};
  static const std::vector<std::string> kTags{"div", "span", "ul",
                                              "li",  "p",    "h3"};
  static const std::vector<std::string> kTexts{
      "Spike Lee", "Tom & Jerry", "a < b", "quote \" here", "é è ü ø",
      "1989",      "",            "  spaced out  "};
  int nodes = static_cast<int>(rng->Uniform(5, 60));
  for (int i = 0; i < nodes; ++i) {
    NodeId parent = open[rng->Index(open.size())];
    std::string tag = rng->Pick(kTags);
    // Direct li-in-li / p-in-p nesting is not serializable: the parser
    // auto-closes it (and real generators never emit it).
    if (tag == doc.node(parent).tag && (tag == "li" || tag == "p")) {
      tag = "div";
    }
    NodeId id = doc.AddChild(parent, tag);
    if (rng->Bernoulli(0.5)) {
      // Whitespace normalizes at parse time, so pre-normalize here: the
      // round-trip guarantee applies to already-normalized text.
      std::string text = rng->Pick(kTexts);
      Result<DomDocument> tmp =
          ParseHtml("<body><i>" + EscapeHtml(text) + "</i></body>");
      doc.SetText(id, tmp->node(tmp->size() - 1).text);
    }
    if (rng->Bernoulli(0.4)) {
      doc.AddAttribute(id, "class", "c" + std::to_string(rng->Uniform(0, 5)));
    }
    if (rng->Bernoulli(0.6)) open.push_back(id);
  }
  return doc;
}

TEST(RoundTripTest, RandomDocumentsSurviveRoundTrip) {
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    DomDocument original = RandomDocument(&rng);
    std::string html = SerializeHtml(original);
    Result<DomDocument> reparsed = ParseHtml(html);
    ASSERT_TRUE(reparsed.ok()) << html;
    ExpectStructurallyEqual(original, *reparsed);
  }
}

TEST(RoundTripTest, EscapingSurvives) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  NodeId div = doc.AddChild(body, "div");
  doc.SetText(div, "a < b & \"c\" > d");
  doc.AddAttribute(div, "title", "x<y&\"z\"");
  Result<DomDocument> reparsed = ParseHtml(SerializeHtml(doc));
  ASSERT_TRUE(reparsed.ok());
  ExpectStructurallyEqual(doc, *reparsed);
}

TEST(RoundTripTest, GeneratedSitePagesRoundTrip) {
  synth::MovieWorldConfig config;
  config.scale = 0.1;
  synth::World world = synth::BuildMovieWorld(config);
  synth::SiteSpec spec;
  spec.name = "roundtrip.example";
  spec.seed = 5;
  spec.tmpl.topic_type = "film";
  spec.tmpl.num_recommendations = 3;
  spec.tmpl.sections = {
      {synth::pred::kFilmDirectedBy, "director", synth::SectionLayout::kRow,
       0.1, 3},
      {synth::pred::kFilmHasCastMember, "cast",
       synth::SectionLayout::kTable, 0.1, 10},
      {synth::pred::kFilmHasGenre, "genre", synth::SectionLayout::kList, 0.1,
       5},
  };
  Result<TypeId> film = world.kb.ontology().TypeByName("film");
  const auto& films = world.OfType(*film);
  spec.topics.assign(films.begin(), films.begin() + 20);
  std::vector<synth::GeneratedPage> pages = GenerateSite(world, spec);
  ASSERT_EQ(pages.size(), 20u);
  for (const synth::GeneratedPage& page : pages) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    ASSERT_TRUE(parsed.ok());
    // Every ground-truth XPath must resolve to a node with the recorded
    // object text.
    for (const synth::GroundTruthFact& fact : page.facts) {
      Result<XPath> path = XPath::Parse(fact.xpath);
      ASSERT_TRUE(path.ok()) << fact.xpath;
      NodeId node = path->Resolve(*parsed);
      ASSERT_NE(node, kInvalidNode) << fact.xpath;
      if (fact.predicate != kNamePredicate) {
        EXPECT_EQ(parsed->node(node).text, fact.object_text);
      }
    }
  }
}

}  // namespace
}  // namespace ceres
