# Empty compiler generated dependencies file for longtail_multilingual.
# This may be replaced when dependencies are built.
