// Table 9 — Number of annotations, extractions, and precision for the ten
// most-extracted predicates on the long-tail corpus (0.5 threshold).
//
// Paper shape: cast/acted-in dominate volume at >= 0.96 precision; genre
// ~0.9; release dates and "-of" person predicates are the weak spots
// (dates 0.41, writerOf 0.52, createdMusicFor 0.25) due to the semantic
// ambiguity failure modes the corpus reproduces.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/longtail_common.h"
#include "text/normalize.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  using namespace ceres::bench;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf(
      "Table 9: top-10 extracted predicates on the long-tail corpus "
      "(scale=%.2f)\n\n",
      scale);

  ParsedCorpus corpus = ParseCorpus(synth::MakeLongTailCorpus(scale));
  std::vector<LongTailSiteRun> runs = RunLongTail(corpus);
  const Ontology& ontology = corpus.corpus.seed_kb.ontology();

  struct Row {
    int64_t annotations = 0;
    int64_t extractions = 0;
    int64_t correct = 0;
  };
  std::map<PredicateId, Row> rows;
  Row total;
  for (const LongTailSiteRun& run : runs) {
    for (const Annotation& annotation : run.result.annotations) {
      if (annotation.predicate == kNamePredicate) continue;
      ++rows[annotation.predicate].annotations;
      ++total.annotations;
    }
    for (const Extraction& extraction : run.result.extractions) {
      if (extraction.predicate == kNamePredicate) continue;
      if (extraction.confidence < 0.5) continue;
      Row& row = rows[extraction.predicate];
      ++row.extractions;
      ++total.extractions;
      const eval::PageTruth& truth =
          run.site->truth.pages[static_cast<size_t>(extraction.page)];
      if (truth.Asserts(extraction.node, extraction.predicate) &&
          eval::SubjectMatchesTruth(extraction, truth)) {
        ++row.correct;
        ++total.correct;
      }
    }
  }

  std::vector<std::pair<PredicateId, Row>> ranked(rows.begin(), rows.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.extractions > b.second.extractions;
  });
  if (ranked.size() > 10) ranked.resize(10);

  eval::TableReport table(
      {"Predicate", "#Annotations", "#Extractions", "Precision"});
  for (const auto& [predicate, row] : ranked) {
    double precision =
        row.extractions == 0 ? 0.0
                             : static_cast<double>(row.correct) /
                                   static_cast<double>(row.extractions);
    table.AddRow({ontology.predicate(predicate).name,
                  std::to_string(row.annotations),
                  std::to_string(row.extractions),
                  eval::FormatRatio(precision)});
  }
  double total_precision =
      total.extractions == 0 ? 0.0
                             : static_cast<double>(total.correct) /
                                   static_cast<double>(total.extractions);
  table.AddRow({"All Predicates", std::to_string(total.annotations),
                std::to_string(total.extractions),
                eval::FormatRatio(total_precision)});
  table.Print();
  std::printf(
      "\nPaper (Table 9): film.hasCastMember 441K @ 0.98, person.actedIn "
      "380K @ 0.96, film.hasGenre 175K @ 0.90, film.hasReleaseDate 133K @ "
      "0.41, person.writerOf 37K @ 0.52; all predicates 1.69M @ 0.83.\n");
  return 0;
}
