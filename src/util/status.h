#ifndef CERES_UTIL_STATUS_H_
#define CERES_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace ceres {

/// Error categories used across the library. Library code does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// A lightweight status object carrying an error code and message.
///
/// Mirrors the absl::Status idiom: functions that can fail return Status (or
/// Result<T> when they also produce a value); `ok()` must be checked before
/// using any produced value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: empty page set".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, the no-exceptions analogue of absl::StatusOr.
///
/// Either holds a value of type T (status().ok() is true) or an error Status.
/// Accessing value() when not ok() aborts the process.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; the common success path.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal::DieOnBadResultAccess(status_);
}

}  // namespace ceres

/// Propagates an error Status from an expression that returns Status.
#define CERES_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::ceres::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (false)

#endif  // CERES_UTIL_STATUS_H_
