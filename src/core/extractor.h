#ifndef CERES_CORE_EXTRACTOR_H_
#define CERES_CORE_EXTRACTOR_H_

#include <vector>

#include "core/features.h"
#include "core/training.h"
#include "core/types.h"
#include "dom/dom_tree.h"
#include "util/deadline.h"
#include "util/parallel.h"

namespace ceres {

/// Configuration of the extraction pass (§4.3).
struct ExtractionConfig {
  /// Minimum class probability for emitting a relation extraction. Benches
  /// that sweep thresholds set this to 0 and filter afterwards.
  double confidence_threshold = 0.5;
  /// Minimum NAME probability for accepting a node as the page's topic
  /// name; pages without an accepted name node yield no extractions.
  double name_threshold = 0.5;
  /// Cooperative time budget, checked at page granularity: once expired,
  /// remaining pages yield no extractions (partial output, never a hang).
  Deadline deadline;
  /// Fan-out across pages. Workers write per-page slots that are merged in
  /// page order, so the extraction list is identical at any thread count.
  /// The batch pipeline passes Sequential() here when it is already
  /// parallel across clusters.
  ParallelConfig parallel = ParallelConfig::Sequential();
};

/// Applies a trained model to every text field of `pages` (global indices
/// given by `page_indices`, parallel to `pages`).
///
/// Per page: the field with the highest NAME probability becomes the
/// subject; every other field whose argmax class is a predicate with
/// confidence above the threshold yields one (subject, predicate, object)
/// extraction. A NAME extraction for the subject itself is also emitted
/// (predicate == kNamePredicate) so name accuracy can be scored.
///
/// `model` is passed mutably because featurization interns through its
/// HashedFeatureMap; the map must already be frozen, so no state actually changes.
std::vector<Extraction> ExtractFromPages(
    const std::vector<const DomDocument*>& pages,
    const std::vector<PageIndex>& page_indices, TrainedModel* model,
    const FeatureExtractor& featurizer, const ExtractionConfig& config = {});

}  // namespace ceres

#endif  // CERES_CORE_EXTRACTOR_H_
