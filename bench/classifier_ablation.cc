// Ablation: the paper notes "we experimented with several classifiers, but
// ultimately found the best results by modeling ... as a multinomial
// logistic regression" (§4.2). This bench trains logistic regression and a
// random forest on the SAME automatically generated annotations of one
// SWDE-movie site and compares extraction quality and training cost.

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "ml/random_forest.h"

namespace {

using namespace ceres;         // NOLINT(build/namespaces)
using namespace ceres::bench;  // NOLINT(build/namespaces)

// Generic per-page extraction using any classifier's probability function.
using ProbabilityFn =
    std::function<std::vector<double>(const SparseVector&)>;

std::vector<Extraction> ExtractWith(
    const std::vector<const DomDocument*>& pages,
    const std::vector<PageIndex>& indices, const FeatureExtractor& featurizer,
    HashedFeatureMap* feature_map, const ClassMap& classes,
    const ProbabilityFn& probabilities) {
  std::vector<Extraction> out;
  for (size_t p = 0; p < pages.size(); ++p) {
    const DomDocument& doc = *pages[p];
    std::vector<NodeId> fields = doc.TextFields();
    if (fields.empty()) continue;
    std::vector<std::vector<double>> probs(fields.size());
    for (size_t f = 0; f < fields.size(); ++f) {
      probs[f] = probabilities(
          featurizer.Extract(doc, fields[f], feature_map));
    }
    size_t name_field = 0;
    double name_prob = -1;
    for (size_t f = 0; f < fields.size(); ++f) {
      if (probs[f][ClassMap::kNameClass] > name_prob) {
        name_prob = probs[f][ClassMap::kNameClass];
        name_field = f;
      }
    }
    if (name_prob < 0.5) continue;
    const std::string subject(doc.node(fields[name_field]).text);
    for (size_t f = 0; f < fields.size(); ++f) {
      if (f == name_field) continue;
      auto it = std::max_element(probs[f].begin(), probs[f].end());
      int32_t cls = static_cast<int32_t>(it - probs[f].begin());
      if (cls == ClassMap::kOtherClass || cls == ClassMap::kNameClass ||
          *it < 0.5) {
        continue;
      }
      out.push_back(Extraction{indices[p], fields[f],
                               classes.PredicateOf(cls), subject,
                               std::string(doc.node(fields[f]).text), *it});
    }
  }
  return out;
}

}  // namespace

int main() {
  const double scale = synth::EnvScale();
  std::printf(
      "Classifier ablation on one SWDE-movie site (scale=%.2f)\n\n", scale);

  ParsedCorpus corpus = ParseCorpus(
      synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie, scale));
  const ParsedSite& site = corpus.sites[0];
  const KnowledgeBase& kb = corpus.corpus.seed_kb;
  Split split = HalfSplit(site.pages.size());

  // Shared annotation phase (Algorithms 1 + 2).
  std::vector<const DomDocument*> train_docs;
  for (PageIndex page : split.train) {
    train_docs.push_back(&site.pages[static_cast<size_t>(page)]);
  }
  std::vector<PageMentions> mentions;
  for (const DomDocument* doc : train_docs) {
    mentions.push_back(MatchPageMentions(*doc, kb));
  }
  TopicResult topics = IdentifyTopics(train_docs, mentions, kb, {});
  AnnotationResult annotations =
      AnnotateRelations(train_docs, mentions, topics, kb, {});
  std::printf("Shared annotations: %zu on %zu pages\n\n",
              annotations.annotations.size(),
              annotations.annotated_pages.size());

  // Shared feature extraction.
  FeatureExtractor featurizer(train_docs, FeatureConfig{});
  HashedFeatureMap feature_map;
  ClassMap classes(kb.ontology());
  std::vector<LabeledExample> examples;
  {
    // Same example construction as TrainExtractor, minus list exclusion
    // differences: reuse the real trainer for LR below; here we just need
    // the raw example set once for both classifiers.
    TrainingConfig training;
    Result<TrainedModel> lr_model = TrainExtractor(
        train_docs, annotations.annotations, featurizer, kb.ontology(),
        training);
    CERES_CHECK(lr_model.ok());
    // Rebuild examples against the LR model's frozen map so both
    // classifiers share an identical feature space.
    feature_map = lr_model->features;
  }
  // Build examples (positives + r=3 negatives) against the frozen map.
  {
    Rng rng(42);
    std::map<PageIndex, std::vector<const Annotation*>> by_page;
    for (const Annotation& a : annotations.annotations) {
      by_page[a.page].push_back(&a);
    }
    for (const auto& [page, list] : by_page) {
      const DomDocument& doc = *train_docs[static_cast<size_t>(page)];
      std::set<NodeId> positive_nodes;
      for (const Annotation* a : list) positive_nodes.insert(a->node);
      for (const Annotation* a : list) {
        LabeledExample example;
        example.features = featurizer.Extract(doc, a->node, &feature_map);
        example.label = classes.ClassOf(a->predicate);
        examples.push_back(std::move(example));
      }
      std::vector<NodeId> candidates;
      for (NodeId node : doc.TextFields()) {
        if (positive_nodes.count(node) == 0) candidates.push_back(node);
      }
      rng.Shuffle(&candidates);
      size_t wanted = 3 * list.size();
      if (candidates.size() > wanted) candidates.resize(wanted);
      for (NodeId node : candidates) {
        LabeledExample example;
        example.features = featurizer.Extract(doc, node, &feature_map);
        example.label = ClassMap::kOtherClass;
        examples.push_back(std::move(example));
      }
    }
  }

  std::vector<const DomDocument*> eval_docs;
  for (PageIndex page : split.eval) {
    eval_docs.push_back(&site.pages[static_cast<size_t>(page)]);
  }

  eval::TableReport table(
      {"Classifier", "Train ms", "P", "R", "F1", "#Extractions"});
  auto evaluate = [&](const char* label, const ProbabilityFn& fn,
                      double train_ms) {
    std::vector<Extraction> extractions = ExtractWith(
        eval_docs, split.eval, featurizer, &feature_map, classes, fn);
    eval::ScoreOptions options;
    options.pages = split.eval;
    eval::Prf prf =
        eval::ScoreExtractions(extractions, site.truth, options);
    table.AddRow({label, eval::FormatRatio(train_ms, 0),
                  eval::FormatRatio(prf.precision()),
                  eval::FormatRatio(prf.recall()),
                  eval::FormatRatio(prf.f1()),
                  std::to_string(prf.tp + prf.fp)});
  };

  using Clock = std::chrono::steady_clock;
  {
    LogisticRegression lr;
    auto start = Clock::now();
    CERES_CHECK(lr.Train(examples, feature_map.size(),
                         classes.num_classes(), LogRegConfig{})
                    .ok());
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();
    evaluate("Logistic regression (paper)",
             [&](const SparseVector& v) {
               return lr.PredictProbabilities(v);
             },
             ms);
  }
  {
    RandomForest forest;
    auto start = Clock::now();
    CERES_CHECK(forest
                    .Train(examples, feature_map.size(),
                           classes.num_classes(), RandomForestConfig{})
                    .ok());
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();
    evaluate("Random forest",
             [&](const SparseVector& v) {
               return forest.PredictProbabilities(v);
             },
             ms);
  }
  table.Print();
  std::printf(
      "\nNot a paper table: quantifies §4.2's remark that several "
      "classifiers were tried and multinomial LR won.\n");
  return 0;
}
