// Corpus: the other half of the deliberate include cycle — see
// include_cycle_a.h. Never compiled — linted by
// tests/lint/ceres_lint_test.cc.
#ifndef CERES_LINT_CORPUS_INCLUDE_CYCLE_B_H_
#define CERES_LINT_CORPUS_INCLUDE_CYCLE_B_H_

#include "dom/include_cycle_a.h"

namespace ceres {
struct CycleB {};
}  // namespace ceres

#endif  // CERES_LINT_CORPUS_INCLUDE_CYCLE_B_H_
