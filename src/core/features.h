#ifndef CERES_CORE_FEATURES_H_
#define CERES_CORE_FEATURES_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/doc_cache.h"
#include "dom/dom_tree.h"
#include "ml/feature_id.h"
#include "ml/hashed_feature_map.h"
#include "ml/sparse_vector.h"
#include "util/deadline.h"
#include "util/parallel.h"

namespace ceres {

/// Configuration of the §4.2 node featurizer.
struct FeatureConfig {
  /// Width of the sibling window examined on each side of the node and of
  /// every ancestor (paper: 5).
  int sibling_window = 5;
  /// Enable the Vertex-style structural features.
  bool structural_features = true;
  /// Enable the node-text features built from frequent site strings.
  bool text_features = true;
  /// A normalized string is "frequent on the website" when it occurs on at
  /// least this fraction of pages.
  double frequent_string_page_fraction = 0.2;
  /// At most this many frequent strings are mined per site.
  size_t max_frequent_strings = 200;
  /// Ancestor levels examined for text features (nearby-node search).
  int text_feature_levels = 3;
  /// Cooperative time budget for lexicon mining, checked per page: once
  /// expired, remaining pages contribute no frequent strings (a shallower
  /// lexicon, never a hang).
  Deadline deadline;
  /// Fan-out for lexicon mining: pages are scanned concurrently and their
  /// string sets merged in page order (the mined lexicon is identical at
  /// any thread count). The batch pipeline passes Sequential() here when it
  /// is already parallel across clusters.
  ParallelConfig parallel = ParallelConfig::Sequential();
};

/// Extracts the classifier features of one DOM node (§4.2).
///
/// Structural features follow the Vertex recipe [17]: for the node itself,
/// each ancestor, and every sibling of those ancestors within the window,
/// a 4-tuple (attribute name, attribute value, levels of ancestry, sibling
/// offset) over the tag, class, id, itemprop, itemtype, and property
/// attributes. Node-text features pair a frequent website string found in a
/// nearby node with the tree path to that node.
///
/// Features are identified by 64-bit ids — the Fnv1a64 hash of the legacy
/// string name (see ml/feature_id.h) — hashed incrementally from the tuple
/// components, so the hot path never materializes a name string. Pass a
/// FeatureNameTrace to additionally record the id → name table (debug
/// dumps, golden tests).
///
/// The extractor carries site-level state (the frequent-string lexicon), so
/// construct one per website from its training pages.
class FeatureExtractor {
 public:
  /// Mines the frequent-string lexicon from `pages` (the training pages of
  /// one site).
  FeatureExtractor(const std::vector<const DomDocument*>& pages,
                   FeatureConfig config = {});

  /// Restores an extractor from a previously mined lexicon (model
  /// persistence path; see core/model_io.h).
  FeatureExtractor(std::unordered_set<std::string> frequent_strings,
                   FeatureConfig config);

  /// Featurizes `node` of `doc`. New feature ids are interned into `map`
  /// unless it is frozen (then unknown features are dropped). The returned
  /// vector is finalized. `name_prefix` is folded into every feature id;
  /// the pair-based baseline uses it to keep subject-node and object-node
  /// features distinct. `text_cache`, when given, must be a cache over
  /// `doc`; the nearby-node text features then reuse its normalizations
  /// instead of re-normalizing the same label nodes for every field.
  /// `trace`, when given, records the legacy string name of every emitted
  /// feature id.
  SparseVector Extract(const DomDocument& doc, NodeId node,
                       HashedFeatureMap* map, std::string_view name_prefix = {},
                       NormalizedTextCache* text_cache = nullptr,
                       FeatureNameTrace* trace = nullptr) const;

  const std::unordered_set<std::string>& frequent_strings() const {
    return frequent_strings_;
  }
  const FeatureConfig& config() const { return config_; }

 private:
  void AddStructural(const DomDocument& doc, NodeId node,
                     std::string_view prefix, HashedFeatureMap* map,
                     SparseVector* out, FeatureNameTrace* trace) const;
  void AddText(const DomDocument& doc, NodeId node, std::string_view prefix,
               HashedFeatureMap* map, SparseVector* out,
               NormalizedTextCache* text_cache, FeatureNameTrace* trace) const;

  FeatureConfig config_;
  std::unordered_set<std::string> frequent_strings_;
};

}  // namespace ceres

#endif  // CERES_CORE_FEATURES_H_
