#include "dom/dom_tree.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(DomTreeTest, FreshDocumentHasHtmlRoot) {
  DomDocument doc;
  EXPECT_EQ(doc.size(), 1);
  EXPECT_EQ(doc.node(doc.root()).tag, "html");
  EXPECT_EQ(doc.node(doc.root()).parent, kInvalidNode);
}

TEST(DomTreeTest, AddChildMaintainsIndices) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  NodeId div1 = doc.AddChild(body, "div");
  NodeId span = doc.AddChild(body, "span");
  NodeId div2 = doc.AddChild(body, "div");

  EXPECT_EQ(doc.node(div1).sibling_index, 1);
  EXPECT_EQ(doc.node(span).sibling_index, 1);
  EXPECT_EQ(doc.node(div2).sibling_index, 2);
  EXPECT_EQ(doc.node(div1).child_position, 0);
  EXPECT_EQ(doc.node(span).child_position, 1);
  EXPECT_EQ(doc.node(div2).child_position, 2);
  ASSERT_EQ(doc.node(body).children.size(), 3u);
  EXPECT_EQ(doc.node(body).children[2], div2);
}

TEST(DomTreeTest, TextFieldsReturnsOnlyNodesWithText) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  NodeId with_text = doc.AddChild(body, "p");
  doc.mutable_node(with_text).text = "hello";
  doc.AddChild(body, "p");  // Empty.
  std::vector<NodeId> fields = doc.TextFields();
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], with_text);
}

TEST(DomTreeTest, AttributeLookup) {
  DomDocument doc;
  NodeId div = doc.AddChild(doc.root(), "div");
  doc.mutable_node(div).attributes.push_back(DomAttribute{"class", "x"});
  doc.mutable_node(div).attributes.push_back(DomAttribute{"id", "y"});
  EXPECT_EQ(doc.node(div).Attribute("class"), "x");
  EXPECT_EQ(doc.node(div).Attribute("id"), "y");
  EXPECT_EQ(doc.node(div).Attribute("missing"), "");
}

TEST(DomTreeTest, DepthAndAncestry) {
  DomDocument doc;
  NodeId body = doc.AddChild(doc.root(), "body");
  NodeId div = doc.AddChild(body, "div");
  NodeId span = doc.AddChild(div, "span");
  EXPECT_EQ(doc.Depth(doc.root()), 0);
  EXPECT_EQ(doc.Depth(span), 3);
  EXPECT_TRUE(doc.IsAncestorOrSelf(body, span));
  EXPECT_TRUE(doc.IsAncestorOrSelf(span, span));
  EXPECT_FALSE(doc.IsAncestorOrSelf(span, body));
}

TEST(DomTreeTest, MoveLeavesSourceReusable) {
  DomDocument doc;
  doc.AddChild(doc.root(), "body");
  doc.set_url("http://x");
  DomDocument moved = std::move(doc);
  EXPECT_EQ(moved.size(), 2);
  EXPECT_EQ(moved.url(), "http://x");
}

TEST(DomTreeDeathTest, OutOfRangeAccessDies) {
  DomDocument doc;
  EXPECT_DEATH(doc.node(5), "");
  EXPECT_DEATH(doc.AddChild(99, "div"), "");
}

}  // namespace
}  // namespace ceres
