#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(TokenizerTest, BasicTokens) {
  EXPECT_EQ(Tokenize("Do the Right Thing"),
            (std::vector<std::string>{"do", "the", "right", "thing"}));
}

TEST(TokenizerTest, PunctuationSeparates) {
  EXPECT_EQ(Tokenize("Director: Spike Lee"),
            (std::vector<std::string>{"director", "spike", "lee"}));
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!!").empty());
}

TEST(WordShinglesTest, BigramsOfFourTokens) {
  EXPECT_EQ(WordShingles("a b c d", 2),
            (std::vector<std::string>{"a b", "b c", "c d"}));
}

TEST(WordShinglesTest, ShortInputCollapses) {
  EXPECT_EQ(WordShingles("a b", 3), (std::vector<std::string>{"a b"}));
  EXPECT_EQ(WordShingles("solo", 2), (std::vector<std::string>{"solo"}));
}

TEST(WordShinglesTest, UnigramsEqualTokens) {
  EXPECT_EQ(WordShingles("x y z", 1),
            (std::vector<std::string>{"x", "y", "z"}));
}

TEST(WordShinglesTest, EmptyInput) {
  EXPECT_TRUE(WordShingles("", 2).empty());
}

}  // namespace
}  // namespace ceres
