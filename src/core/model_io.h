#ifndef CERES_CORE_MODEL_IO_H_
#define CERES_CORE_MODEL_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/training.h"
#include "kb/ontology.h"
#include "util/status.h"

namespace ceres {

/// Text persistence of a trained per-site extractor model, so that a model
/// learned once (annotation + training are the expensive phases) can be
/// re-applied to newly crawled pages of the same site without a seed KB.
///
/// Format (TSV sections, like kb_io), version 2:
///
///   #format
///   2
///   #model
///   <num classes> \t <num features>
///   #classes
///   <class index> \t <OTHER|NAME|predicate name>
///   #featureids
///   <feature index> \t <16-hex-digit 64-bit feature id>
///   #weights
///   <class index> \t <feature index | "bias"> \t <value>   (non-zeros only)
///   #end
///
/// Version 1 files carried no #format section and a `#features` dictionary
/// of string feature names instead of `#featureids`. They still load: a
/// feature id is defined as Fnv1a64 of the legacy name, so hashing each
/// stored name on read reconstructs the identical dictionary (same dense
/// indices, same weight layout).
///
/// The trailing `#end` marker is mandatory on load: a file cut off
/// mid-transfer loses it (and usually a whole section), so truncation is
/// reported as a typed error instead of silently yielding a model with
/// all-zero weights. Loading requires the same Ontology the model was
/// trained with (class indices are validated against its predicate list).

/// Writes `model` to `out`.
Status SaveModel(const TrainedModel& model, const Ontology& ontology,
                 std::ostream* out);

/// Convenience: SaveModel to a file path.
Status SaveModelToFile(const TrainedModel& model, const Ontology& ontology,
                       const std::string& path);

/// Parses a serialized model, validating it against `ontology`. Fails with
/// kInvalidArgument when any section is missing or cut short (truncated
/// download, partial write) — never returns a silently empty model.
Result<TrainedModel> LoadModel(std::istream* in, const Ontology& ontology);

/// Convenience: LoadModel from a file path.
Result<TrainedModel> LoadModelFromFile(const std::string& path,
                                       const Ontology& ontology);

/// --- Versioned model store -------------------------------------------------
///
/// On-disk layout used by the serving layer (serve/model_registry.h):
///
///   <root>/<site>/<version>.model    one immutable snapshot per retrain
///   <root>/<site>/CURRENT            latest version number, one line
///
/// Writers publish a new version by writing `<version>.model.tmp`, renaming
/// it into place, then rewriting CURRENT the same way — both renames are
/// atomic on POSIX, so a reader never observes a half-written model and a
/// crashed publish leaves the previous version current.

/// Path of one version file ("<root>/<site>/<version>.model").
std::string ModelVersionPath(const std::string& root, const std::string& site,
                             int64_t version);

/// Saves `model` as the next version of `site` under `root` (creating
/// directories as needed) and atomically advances CURRENT. Returns the
/// version number assigned.
Result<int64_t> SaveModelVersion(const std::string& root,
                                 const std::string& site,
                                 const TrainedModel& model,
                                 const Ontology& ontology);

/// The version CURRENT points at; falls back to the highest on-disk
/// version when CURRENT is missing. kNotFound when the site has no models.
Result<int64_t> LatestModelVersion(const std::string& root,
                                   const std::string& site);

/// All on-disk versions of `site`, ascending. kNotFound for an unknown site.
Result<std::vector<int64_t>> ListModelVersions(const std::string& root,
                                               const std::string& site);

/// Loads one specific version.
Result<TrainedModel> LoadModelVersion(const std::string& root,
                                      const std::string& site, int64_t version,
                                      const Ontology& ontology);

/// Loads the CURRENT version; writes the version loaded to `*version` when
/// non-null.
Result<TrainedModel> LoadLatestModel(const std::string& root,
                                     const std::string& site,
                                     const Ontology& ontology,
                                     int64_t* version = nullptr);

}  // namespace ceres

#endif  // CERES_CORE_MODEL_IO_H_
