file(REMOVE_RECURSE
  "CMakeFiles/ceres_kb.dir/kb_io.cc.o"
  "CMakeFiles/ceres_kb.dir/kb_io.cc.o.d"
  "CMakeFiles/ceres_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/ceres_kb.dir/knowledge_base.cc.o.d"
  "CMakeFiles/ceres_kb.dir/ontology.cc.o"
  "CMakeFiles/ceres_kb.dir/ontology.cc.o.d"
  "libceres_kb.a"
  "libceres_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
