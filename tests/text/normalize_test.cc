#include "text/normalize.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(NormalizeTest, LowercasesAscii) {
  EXPECT_EQ(NormalizeText("Spike Lee"), "spike lee");
}

TEST(NormalizeTest, CollapsesWhitespaceAndPunctuation) {
  EXPECT_EQ(NormalizeText("  Do the Right Thing!  "), "do the right thing");
  EXPECT_EQ(NormalizeText("a,b;c"), "a b c");
  EXPECT_EQ(NormalizeText("one -- two"), "one two");
}

TEST(NormalizeTest, FoldsLatinAccents) {
  EXPECT_EQ(NormalizeText("Réžie"), "rezie");
  EXPECT_EQ(NormalizeText("Søren Kierkegaard"), "soren kierkegaard");
  EXPECT_EQ(NormalizeText("Guðrún Ásdóttir"), "gudrun asdottir");
  EXPECT_EQ(NormalizeText("Żółć"), "zolc");
}

TEST(NormalizeTest, KeepsDigits) {
  EXPECT_EQ(NormalizeText("978-1-2345-6"), "978 1 2345 6");
}

TEST(NormalizeTest, EmptyAndPunctuationOnly) {
  EXPECT_EQ(NormalizeText(""), "");
  EXPECT_EQ(NormalizeText("!!!"), "");
  EXPECT_TRUE(IsBlankAfterNormalize("—–…"));
  EXPECT_FALSE(IsBlankAfterNormalize("a"));
}

TEST(NormalizeTest, HandlesMalformedUtf8) {
  std::string bad = "abc";
  bad.push_back(static_cast<char>(0xC3));  // Truncated 2-byte sequence.
  std::string out = NormalizeText(bad);
  EXPECT_EQ(out.substr(0, 3), "abc");
}

TEST(NormalizeTest, MatchingIsCaseAndAccentInsensitive) {
  EXPECT_EQ(NormalizeText("FRANÇOIS Truffaut"),
            NormalizeText("francois truffaut"));
}

TEST(LowInformationTest, YearsAndDigits) {
  EXPECT_TRUE(IsLowInformation("1989"));
  EXPECT_TRUE(IsLowInformation("7"));
  EXPECT_FALSE(IsLowInformation("12345"));  // 5 digits: could be a zip/id.
}

TEST(LowInformationTest, SingleCharactersAndEmpty) {
  EXPECT_TRUE(IsLowInformation("a"));
  EXPECT_TRUE(IsLowInformation(""));
  EXPECT_TRUE(IsLowInformation("!"));
}

TEST(LowInformationTest, CountriesAndBoilerplate) {
  EXPECT_TRUE(IsLowInformation("USA"));
  EXPECT_TRUE(IsLowInformation("France"));
  EXPECT_TRUE(IsLowInformation("Help"));
  EXPECT_TRUE(IsLowInformation("Login"));
}

TEST(LowInformationTest, RealNamesPass) {
  EXPECT_FALSE(IsLowInformation("Do the Right Thing"));
  EXPECT_FALSE(IsLowInformation("Spike Lee"));
  EXPECT_FALSE(IsLowInformation("Crooklyn"));
}

}  // namespace
}  // namespace ceres
