#include "core/model_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/entity_matcher.h"
#include "core/extractor.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "testing/fixtures.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;
using testing::TinyMovieKb;

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    docs_.push_back(ParseOrDie(FilmPageHtml(
        "Do the Right Thing", "Spike Lee", "Spike Lee",
        {"Spike Lee", "Danny Aiello", "John Turturro"},
        {"Comedy", "Dramedy"})));
    docs_.push_back(ParseOrDie(FilmPageHtml(
        "Crooklyn", "Spike Lee", "Nobody", {"Zelda Harris"}, {"Comedy"})));
    for (const DomDocument& doc : docs_) ptrs_.push_back(&doc);
    std::vector<PageMentions> mentions;
    for (const DomDocument* doc : ptrs_) {
      mentions.push_back(MatchPageMentions(*doc, kb_.kb));
    }
    TopicConfig topic_config;
    topic_config.min_annotations_per_page = 2;
    topic_config.common_string_min_count = 100;
    TopicResult topics =
        IdentifyTopics(ptrs_, mentions, kb_.kb, topic_config);
    AnnotationResult annotations =
        AnnotateRelations(ptrs_, mentions, topics, kb_.kb, {});
    featurizer_ =
        std::make_unique<FeatureExtractor>(ptrs_, FeatureConfig{});
    model_ = std::make_unique<TrainedModel>(
        std::move(TrainExtractor(ptrs_, annotations.annotations,
                                 *featurizer_, kb_.kb.ontology(), {}))
            .value());
  }

  TinyMovieKb kb_;
  std::vector<DomDocument> docs_;
  std::vector<const DomDocument*> ptrs_;
  std::unique_ptr<FeatureExtractor> featurizer_;
  std::unique_ptr<TrainedModel> model_;
};

TEST_F(ModelIoTest, RoundTripPredictionsIdentical) {
  std::ostringstream out;
  ASSERT_TRUE(SaveModel(*model_, kb_.kb.ontology(), &out).ok());
  std::istringstream in(out.str());
  Result<TrainedModel> loaded = LoadModel(&in, kb_.kb.ontology());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->features.size(), model_->features.size());
  EXPECT_TRUE(loaded->features.frozen());
  EXPECT_EQ(loaded->frequent_strings, model_->frequent_strings);
  // Identical extraction behaviour on a fresh page, with the featurizer
  // REBUILT from the persisted state (the production reuse path).
  FeatureExtractor restored = MakeFeaturizer(*loaded);
  DomDocument unseen = ParseOrDie(FilmPageHtml(
      "Brand New", "New Director", "New Writer", {"Actor X"}, {"Dramedy"}));
  std::vector<Extraction> a = ExtractFromPages(
      {&unseen}, {0}, model_.get(), *featurizer_, ExtractionConfig{});
  std::vector<Extraction> b = ExtractFromPages(
      {&unseen}, {0}, &loaded.value(), restored, ExtractionConfig{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].predicate, b[i].predicate);
    EXPECT_NEAR(a[i].confidence, b[i].confidence, 1e-12);
  }
}

TEST_F(ModelIoTest, FeaturizerStateSurvivesRoundTrip) {
  std::ostringstream out;
  ASSERT_TRUE(SaveModel(*model_, kb_.kb.ontology(), &out).ok());
  std::istringstream in(out.str());
  Result<TrainedModel> loaded = LoadModel(&in, kb_.kb.ontology());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->feature_config.sibling_window,
            model_->feature_config.sibling_window);
  EXPECT_EQ(loaded->feature_config.text_features,
            model_->feature_config.text_features);
  EXPECT_FALSE(loaded->frequent_strings.empty());
  EXPECT_TRUE(loaded->frequent_strings.count("director") > 0);
}

TEST_F(ModelIoTest, LoadRejectsOntologyMismatch) {
  std::ostringstream out;
  ASSERT_TRUE(SaveModel(*model_, kb_.kb.ontology(), &out).ok());
  // An ontology with different predicates cannot host this model.
  Ontology other;
  TypeId film = other.AddEntityType("film");
  other.AddPredicate("somethingElse", film, film, false);
  std::istringstream in(out.str());
  EXPECT_EQ(LoadModel(&in, other).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, LoadRejectsCorruptedInput) {
  auto load = [&](const std::string& text) {
    std::istringstream in(text);
    return LoadModel(&in, kb_.kb.ontology()).status().code();
  };
  EXPECT_EQ(load(""), StatusCode::kInvalidArgument);
  EXPECT_EQ(load("#model\nnot\tnumbers\n"), StatusCode::kInvalidArgument);
  EXPECT_EQ(load("#weights\n0\t0\t1.5\n"), StatusCode::kInvalidArgument);

  // Flip one declared feature count.
  std::ostringstream out;
  ASSERT_TRUE(SaveModel(*model_, kb_.kb.ontology(), &out).ok());
  const std::string original = out.str();
  size_t pos =
      original.find('\t', original.find('\n', original.find("#model")));
  ASSERT_NE(pos, std::string::npos);
  // Corrupt the feature count by splicing in an extra digit.
  std::string corrupted = original.substr(0, pos + 1) + "9" +
                          original.substr(pos + 1);
  EXPECT_EQ(load(corrupted), StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, TruncatedFileIsRejectedNotSilentlyEmpty) {
  std::ostringstream out;
  ASSERT_TRUE(SaveModel(*model_, kb_.kb.ontology(), &out).ok());
  const std::string full = out.str();

  auto load = [&](const std::string& text) {
    std::istringstream in(text);
    return LoadModel(&in, kb_.kb.ontology()).status();
  };
  ASSERT_TRUE(load(full).ok());

  // A transfer cut off at any section boundary must fail loudly. Before the
  // #end trailer existed, cutting just above #weights produced a "valid"
  // model whose every weight was zero.
  for (const char* marker : {"#classes", "#featureids", "#weights", "#end"}) {
    size_t pos = full.find(marker);
    ASSERT_NE(pos, std::string::npos) << marker;
    Status status = load(full.substr(0, pos));
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "cut before " << marker << ": " << status.ToString();
  }
  // Mid-line byte truncation inside the weights section.
  Status status = load(full.substr(0, full.size() - 8));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Garbage appended after the end marker.
  EXPECT_EQ(load(full + "0\t0\t1.0\n").code(), StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, VersionedStoreSavesLoadsAndAdvancesCurrent) {
  const std::string root = ::testing::TempDir() + "/model_store";
  std::filesystem::remove_all(root);  // version numbers restart at 1
  const std::string site = "films.example";

  Result<int64_t> v1 = SaveModelVersion(root, site, *model_,
                                        kb_.kb.ontology());
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1);
  Result<int64_t> v2 = SaveModelVersion(root, site, *model_,
                                        kb_.kb.ontology());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2);

  Result<std::vector<int64_t>> versions = ListModelVersions(root, site);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(*versions, (std::vector<int64_t>{1, 2}));

  int64_t loaded_version = -1;
  Result<TrainedModel> latest =
      LoadLatestModel(root, site, kb_.kb.ontology(), &loaded_version);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(loaded_version, 2);
  EXPECT_EQ(latest->features.size(), model_->features.size());
  EXPECT_TRUE(LoadModelVersion(root, site, 1, kb_.kb.ontology()).ok());

  EXPECT_EQ(LatestModelVersion(root, "unknown.example").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ModelIoTest, VersionedStoreSurvivesLostCurrentAndRejectsCorruption) {
  const std::string root = ::testing::TempDir() + "/model_store_corrupt";
  std::filesystem::remove_all(root);  // version numbers restart at 1
  const std::string site = "films.example";
  ASSERT_TRUE(SaveModelVersion(root, site, *model_, kb_.kb.ontology()).ok());
  ASSERT_TRUE(SaveModelVersion(root, site, *model_, kb_.kb.ontology()).ok());

  // A crashed publish can lose CURRENT; the newest snapshot still wins.
  std::filesystem::remove(std::filesystem::path(root) / site / "CURRENT");
  Result<int64_t> latest = LatestModelVersion(root, site);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 2);

  // Truncate the current snapshot on disk: the load must fail typed, not
  // hand back an empty model.
  const std::string path = ModelVersionPath(root, site, 2);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  std::ofstream out(path, std::ios::trunc);
  out << bytes.substr(0, bytes.size() / 2);
  out.close();
  Result<TrainedModel> loaded =
      LoadLatestModel(root, site, kb_.kb.ontology());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, SaveRequiresTrainedModel) {
  TrainedModel empty;
  std::ostringstream out;
  EXPECT_EQ(SaveModel(empty, kb_.kb.ontology(), &out).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ceres
