#ifndef CERES_OBS_TRACE_H_
#define CERES_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

/// RAII scoped timers that aggregate into a per-run trace tree.
///
/// A `TraceTree` is a tree of named aggregation nodes: every `TraceSpan`
/// opened with the same (parent, name) pair folds into the same node, so a
/// pipeline run over 200 clusters yields one "extract" node with
/// count=200 and total/min/max timings, not 200 leaf entries. Stage code
/// opens spans:
///
///   obs::TraceSpan pipeline(config.trace, "pipeline");
///   obs::TraceSpan clustering(pipeline, "clustering");   // child span
///
/// Spans end at scope exit (or explicitly via `End()`), which makes them
/// early-return safe. A span opened on a null tree — the default when no
/// caller asked for tracing — is a no-op costing one branch.
///
/// Thread safety: node creation and recording take the tree mutex. Spans
/// are opened at stage granularity (a handful per cluster), so contention
/// is negligible; do not open spans in per-token loops.
///
/// This header is also the sanctioned clock for pipeline/serve code:
/// `ceres_lint` (rule `raw-timing`) bans raw `std::chrono::steady_clock`
/// reads in `src/core/` and `src/serve/` so ad-hoc timings cannot bypass
/// the shared trace/metrics surface. Code that needs a raw timestamp (e.g.
/// queue-wait accounting) uses `MonotonicNow()`/`ElapsedMicros()`.

namespace ceres::obs {

/// Monotonic timestamp type for duration measurements.
using TimePoint = std::chrono::steady_clock::time_point;

/// Reads the monotonic clock.
TimePoint MonotonicNow();

/// Duration between two monotonic timestamps, saturated at zero.
std::chrono::microseconds ElapsedMicros(TimePoint start, TimePoint end);

class TraceSpan;

/// Aggregated span timings for one run. Nodes are identified by their
/// path of names from the root, e.g. {"pipeline", "clusters", "cluster",
/// "extract"}.
class TraceTree {
 public:
  TraceTree();
  TraceTree(const TraceTree&) = delete;
  TraceTree& operator=(const TraceTree&) = delete;

  /// Total recorded microseconds at `path`; 0 if the node does not exist.
  int64_t TotalMicros(const std::vector<std::string_view>& path) const;
  /// Number of spans recorded at `path`; 0 if the node does not exist.
  int64_t SpanCount(const std::vector<std::string_view>& path) const;

  /// Nested JSON: {"name":"root","count":0,"total_us":0,
  ///               "children":[{"name":"pipeline",...},...]}.
  /// Children are ordered by first span creation.
  std::string ToJson() const;

 private:
  friend class TraceSpan;

  struct Node {
    std::string name;
    std::vector<int32_t> children;
    int64_t count = 0;
    int64_t total_us = 0;
    int64_t min_us = std::numeric_limits<int64_t>::max();
    int64_t max_us = 0;
  };

  /// Finds or creates the child of `parent` named `name`; returns its id.
  int32_t ChildNode(int32_t parent, std::string_view name);
  void Record(int32_t node, int64_t micros);
  /// Walks `path` down from the root; -1 when any segment is missing.
  int32_t FindPath(const std::vector<std::string_view>& path) const
      CERES_REQUIRES(mu_);
  void AppendNodeJson(int32_t node, std::string* out) const
      CERES_REQUIRES(mu_);

  mutable CheckedMutex mu_{"TraceTree.mu"};
  /// nodes_[0] is the synthetic root; ids are stable for the tree's life.
  std::vector<Node> nodes_ CERES_GUARDED_BY(mu_);
};

/// RAII scoped timer. Records its elapsed time into a TraceTree node at
/// destruction or at the first `End()` call, whichever comes first.
class TraceSpan {
 public:
  /// Root-level span. `tree` may be null, in which case the span (and any
  /// span opened with it as parent) is a no-op.
  TraceSpan(TraceTree* tree, std::string_view name);
  /// Child span of `parent`. Must not outlive `parent`'s tree.
  TraceSpan(const TraceSpan& parent, std::string_view name);
  ~TraceSpan();

  TraceSpan(TraceSpan&&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan& operator=(TraceSpan&&) = delete;

  /// Stops the timer and records. Idempotent; later calls are no-ops.
  void End();

  bool active() const { return tree_ != nullptr; }

 private:
  TraceTree* tree_;
  int32_t node_ = -1;
  TimePoint start_;
};

}  // namespace ceres::obs

#endif  // CERES_OBS_TRACE_H_
