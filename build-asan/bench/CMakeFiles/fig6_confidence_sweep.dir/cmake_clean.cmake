file(REMOVE_RECURSE
  "CMakeFiles/fig6_confidence_sweep.dir/fig6_confidence_sweep.cc.o"
  "CMakeFiles/fig6_confidence_sweep.dir/fig6_confidence_sweep.cc.o.d"
  "fig6_confidence_sweep"
  "fig6_confidence_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_confidence_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
