// Table 6 — *Annotation* accuracy on the IMDb-like corpus, CERES-Topic vs
// CERES-Full, per predicate and per page domain. Precision: fraction of
// automatically generated training labels whose node truly asserts the
// predicate. Recall: fraction of page-asserted, seed-KB-known facts that
// received a correct label.
//
// Paper shape: Full trades a little recall for much higher precision
// (Person: 0.46/0.99 Topic -> 0.93/0.78 Full; Film/TV: 0.53/0.80 ->
// 0.96/0.71), which is what makes its trained extractor usable.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  using namespace ceres::bench;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf(
      "Table 6: IMDb-like annotation accuracy, CERES-Topic vs CERES-Full "
      "(scale=%.2f)\n\n",
      scale);

  ParsedCorpus corpus = ParseCorpus(synth::MakeImdbCorpus(scale));
  const ParsedSite& site = corpus.sites[0];
  const Ontology& ontology = corpus.corpus.seed_kb.ontology();
  const TypeId person_type = *ontology.TypeByName("person");
  Split split = HalfSplit(site.pages.size());

  std::vector<Annotation> annotations[2];
  for (System system : {System::kCeresTopic, System::kCeresFull}) {
    std::fprintf(stderr, "[table6] running %s...\n",
                 system == System::kCeresFull ? "full" : "topic");
    PipelineResult result =
        RunSite(site, corpus.corpus.seed_kb, MakeConfig(system, split));
    annotations[system == System::kCeresFull ? 1 : 0] =
        std::move(result.annotations);
  }

  std::vector<PageIndex> person_pages;
  std::vector<PageIndex> film_pages;
  for (PageIndex page : split.train) {
    EntityId topic = site.truth.pages[static_cast<size_t>(page)].topic;
    if (topic == kInvalidEntity) continue;
    (corpus.corpus.world.kb.entity(topic).type == person_type
         ? person_pages
         : film_pages)
        .push_back(page);
  }

  for (bool person_domain : {true, false}) {
    const std::vector<PageIndex>& pages =
        person_domain ? person_pages : film_pages;
    std::map<PredicateId, eval::Prf> scored[2];
    for (int sys = 0; sys < 2; ++sys) {
      scored[sys] = eval::ScoreAnnotationsByPredicate(
          annotations[sys], site.truth, corpus.corpus.seed_kb, pages);
    }
    std::printf("== %s domain (%zu annotation pages) ==\n",
                person_domain ? "Person" : "Film/TV", pages.size());
    eval::TableReport table({"Predicate", "Topic P", "Topic R", "Topic F1",
                             "Full P", "Full R", "Full F1"});
    eval::Prf topic_total;
    eval::Prf full_total;
    for (const PredicateDecl& predicate : ontology.predicates()) {
      const eval::Prf& t = scored[0][predicate.id];
      const eval::Prf& f = scored[1][predicate.id];
      if (t.tp + t.fp + t.fn + f.tp + f.fp + f.fn == 0) continue;
      table.AddRow({predicate.name, eval::FormatRatio(t.precision()),
                    eval::FormatRatio(t.recall()),
                    eval::FormatRatio(t.f1()),
                    eval::FormatRatio(f.precision()),
                    eval::FormatRatio(f.recall()),
                    eval::FormatRatio(f.f1())});
      topic_total += t;
      full_total += f;
    }
    table.AddRow({"All Annotations",
                  eval::FormatRatio(topic_total.precision()),
                  eval::FormatRatio(topic_total.recall()),
                  eval::FormatRatio(topic_total.f1()),
                  eval::FormatRatio(full_total.precision()),
                  eval::FormatRatio(full_total.recall()),
                  eval::FormatRatio(full_total.f1())});
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "Paper (Table 6): Person all-annotations Topic 0.46/0.99 vs Full "
      "0.93/0.78; Film/TV Topic 0.53/0.80 vs Full 0.96/0.71 (P/R).\n");
  return 0;
}
