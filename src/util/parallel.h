#ifndef CERES_UTIL_PARALLEL_H_
#define CERES_UTIL_PARALLEL_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace ceres {

/// Runs `body(i)` for every i in [0, n) across up to `threads` worker
/// threads (0 = hardware concurrency). Work is claimed dynamically via an
/// atomic counter, so uneven per-item costs (per-site pipeline runs)
/// balance naturally. The caller must ensure `body` is safe to run
/// concurrently for distinct indices; results should be written to
/// pre-sized per-index slots so no synchronization is needed.
inline void ParallelFor(size_t n, int threads,
                        const std::function<void(size_t)>& body) {
  if (n == 0) return;
  size_t worker_count = threads > 0
                            ? static_cast<size_t>(threads)
                            : std::max(1u, std::thread::hardware_concurrency());
  if (worker_count > n) worker_count = n;
  if (worker_count <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&]() {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        body(i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace ceres

#endif  // CERES_UTIL_PARALLEL_H_
