// Figure 6 — Precision vs number of extractions on the long-tail corpus at
// varying confidence thresholds. The paper's shape: precision rises
// monotonically with the threshold while extraction volume falls; the 0.75
// threshold yields ~90% precision (1.25M extractions at paper scale).

#include <cstdio>

#include "bench/longtail_common.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  using namespace ceres::bench;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf(
      "Figure 6: precision vs #extractions at confidence thresholds, "
      "long-tail corpus (scale=%.2f)\n\n",
      scale);

  ParsedCorpus corpus = ParseCorpus(synth::MakeLongTailCorpus(scale));
  std::vector<LongTailSiteRun> runs = RunLongTail(corpus);

  eval::TableReport table(
      {"Threshold", "#Extractions", "Precision", "Series"});
  for (double threshold :
       {0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}) {
    ThresholdPoint total;
    total.threshold = threshold;
    for (const LongTailSiteRun& run : runs) {
      ThresholdPoint point = CountAtThreshold(run, threshold);
      total.extractions += point.extractions;
      total.correct += point.correct;
    }
    int bars = static_cast<int>(total.precision() * 30 + 0.5);
    table.AddRow({eval::FormatRatio(threshold),
                  std::to_string(total.extractions),
                  eval::FormatRatio(total.precision()),
                  std::string(bars, '#')});
  }
  table.Print();
  std::printf(
      "\nPaper (Figure 6): precision increases monotonically with the "
      "threshold; 0.5 -> 1.69M extractions at 0.83 precision, 0.75 -> "
      "1.25M at 0.90.\n");
  return 0;
}
