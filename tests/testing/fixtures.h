#ifndef CERES_TESTS_TESTING_FIXTURES_H_
#define CERES_TESTS_TESTING_FIXTURES_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dom/html_parser.h"
#include "kb/knowledge_base.h"
#include "util/string_util.h"

namespace ceres::testing {

inline DomDocument ParseOrDie(const std::string& html) {
  Result<DomDocument> doc = ParseHtml(html);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

/// A tiny movie ontology/KB used by the core unit tests: three films, four
/// people, two genres, with director/writer/cast/genre predicates.
struct TinyMovieKb {
  TinyMovieKb() : kb(MakeOntology()) {
    film_type = *kb.ontology().TypeByName("film");
    person_type = *kb.ontology().TypeByName("person");
    genre_type = *kb.ontology().TypeByName("genre");
    directed = *kb.ontology().PredicateByName("directedBy");
    wrote = *kb.ontology().PredicateByName("writtenBy");
    cast = *kb.ontology().PredicateByName("hasCastMember");
    genre = *kb.ontology().PredicateByName("hasGenre");

    right_thing = kb.AddEntity(film_type, "Do the Right Thing");
    crooklyn = kb.AddEntity(film_type, "Crooklyn");
    selma = kb.AddEntity(film_type, "Selma");
    lee = kb.AddEntity(person_type, "Spike Lee");
    aiello = kb.AddEntity(person_type, "Danny Aiello");
    turturro = kb.AddEntity(person_type, "John Turturro");
    harris = kb.AddEntity(person_type, "Zelda Harris");
    comedy = kb.AddEntity(genre_type, "Comedy");
    drama_genre = kb.AddEntity(genre_type, "Dramedy");

    kb.AddTriple(right_thing, directed, lee);
    kb.AddTriple(right_thing, wrote, lee);
    kb.AddTriple(right_thing, cast, lee);
    kb.AddTriple(right_thing, cast, aiello);
    kb.AddTriple(right_thing, cast, turturro);
    kb.AddTriple(right_thing, genre, comedy);
    kb.AddTriple(right_thing, genre, drama_genre);

    kb.AddTriple(crooklyn, directed, lee);
    kb.AddTriple(crooklyn, cast, harris);
    kb.AddTriple(crooklyn, genre, comedy);

    kb.AddTriple(selma, cast, aiello);
    kb.AddTriple(selma, genre, drama_genre);
    kb.Freeze();
  }

  static Ontology MakeOntology() {
    Ontology ontology;
    TypeId film = ontology.AddEntityType("film");
    TypeId person = ontology.AddEntityType("person");
    TypeId genre = ontology.AddEntityType("genre");
    ontology.AddPredicate("directedBy", film, person, true);
    ontology.AddPredicate("writtenBy", film, person, true);
    ontology.AddPredicate("hasCastMember", film, person, true);
    ontology.AddPredicate("hasGenre", film, genre, true);
    return ontology;
  }

  KnowledgeBase kb;
  TypeId film_type, person_type, genre_type;
  PredicateId directed, wrote, cast, genre;
  EntityId right_thing, crooklyn, selma;
  EntityId lee, aiello, turturro, harris;
  EntityId comedy, drama_genre;
};

/// Renders a fixed-layout film detail page. The cast list is a <ul>, the
/// director/writer are rows, genres are a list; `rec_genres` adds a
/// recommendation block that repeats genre strings (the Example 3.2 trap).
inline std::string FilmPageHtml(
    const std::string& title, const std::string& director,
    const std::string& writer, const std::vector<std::string>& cast,
    const std::vector<std::string>& genres,
    const std::vector<std::string>& rec_genres = {}) {
  std::string html = StrCat(
      "<body><div class=page><h1 class=title>", title, "</h1>",
      "<div class=row><span class=lbl>Director:</span><span class=val>",
      director, "</span></div>",
      "<div class=row><span class=lbl>Writer:</span><span class=val>",
      writer, "</span></div>", "<div class=sec><h3>Cast</h3><ul class=cast>");
  for (const std::string& member : cast) {
    html += StrCat("<li>", member, "</li>");
  }
  html += "</ul></div><div class=sec><h3>Genres</h3><ul class=genres>";
  for (const std::string& g : genres) html += StrCat("<li>", g, "</li>");
  html += "</ul></div>";
  if (!rec_genres.empty()) {
    html += "<div class=recs><h3>Also like</h3><ul class=recgenres>";
    for (const std::string& g : rec_genres) {
      html += StrCat("<li>", g, "</li>");
    }
    html += "</ul></div>";
  }
  html += "</div></body>";
  return html;
}

}  // namespace ceres::testing

#endif  // CERES_TESTS_TESTING_FIXTURES_H_
