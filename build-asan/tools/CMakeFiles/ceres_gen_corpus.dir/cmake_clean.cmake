file(REMOVE_RECURSE
  "CMakeFiles/ceres_gen_corpus.dir/ceres_gen_corpus_main.cc.o"
  "CMakeFiles/ceres_gen_corpus.dir/ceres_gen_corpus_main.cc.o.d"
  "ceres_gen_corpus"
  "ceres_gen_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_gen_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
