# Empty compiler generated dependencies file for table5_imdb_extraction.
# This may be replaced when dependencies are built.
