#include "net/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <atomic>
#include <chrono>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres::net {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             obs::MonotonicNow().time_since_epoch())
      .count();
}

Status ErrnoStatus(const char* what) {
  return Status::Internal(StrCat(what, ": ", strerror(errno)));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Poller backends: one interface, epoll on Linux, portable poll() as the
// fallback (and as an always-buildable, always-tested second path).
// ---------------------------------------------------------------------------

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Peer fully gone (POLLHUP/POLLERR); the connection is unusable.
  bool hangup = false;
};

class PollerBackend {
 public:
  virtual ~PollerBackend() = default;
  virtual Status AddFd(int fd, bool read, bool write) = 0;
  virtual void UpdateFd(int fd, bool read, bool write) = 0;
  virtual void RemoveFd(int fd) = 0;
  /// Appends ready events to `events`; returns their number.
  virtual Result<int> Wait(int timeout_ms, std::vector<PollEvent>* events) = 0;
  virtual const char* name() const = 0;
};

class PollBackend final : public PollerBackend {
 public:
  Status AddFd(int fd, bool read, bool write) override {
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, Events(read, write), 0});
    return Status::Ok();
  }

  void UpdateFd(int fd, bool read, bool write) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    fds_[it->second].events = Events(read, write);
  }

  void RemoveFd(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    const size_t at = it->second;
    index_.erase(it);
    if (at + 1 != fds_.size()) {
      fds_[at] = fds_.back();
      index_[fds_[at].fd] = at;
    }
    fds_.pop_back();
  }

  Result<int> Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    const int ready = ::poll(fds_.data(),
                             static_cast<nfds_t>(fds_.size()), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return 0;
      return ErrnoStatus("poll");
    }
    int emitted = 0;
    for (const pollfd& entry : fds_) {
      if (entry.revents == 0) continue;
      PollEvent event;
      event.fd = entry.fd;
      event.readable = (entry.revents & POLLIN) != 0;
      event.writable = (entry.revents & POLLOUT) != 0;
      event.hangup =
          (entry.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      events->push_back(event);
      if (++emitted == ready) break;
    }
    return emitted;
  }

  const char* name() const override { return "poll"; }

 private:
  static short Events(bool read, bool write) {
    short events = 0;
    if (read) events |= POLLIN;
    if (write) events |= POLLOUT;
    return events;
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, size_t> index_;
};

#if defined(__linux__)
class EpollBackend final : public PollerBackend {
 public:
  ~EpollBackend() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return ErrnoStatus("epoll_create1");
    return Status::Ok();
  }

  Status AddFd(int fd, bool read, bool write) override {
    epoll_event event = Event(fd, read, write);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      return ErrnoStatus("epoll_ctl(ADD)");
    }
    return Status::Ok();
  }

  void UpdateFd(int fd, bool read, bool write) override {
    epoll_event event = Event(fd, read, write);
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
  }

  void RemoveFd(int fd) override {
    epoll_event unused = {};
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &unused);
  }

  Result<int> Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    epoll_event ready[64];
    const int n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      return ErrnoStatus("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      PollEvent event;
      event.fd = static_cast<int>(ready[i].data.fd);
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.hangup = (ready[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      events->push_back(event);
    }
    return n;
  }

  const char* name() const override { return "epoll"; }

 private:
  static epoll_event Event(int fd, bool read, bool write) {
    epoll_event event = {};
    if (read) event.events |= EPOLLIN;
    if (write) event.events |= EPOLLOUT;
    event.data.fd = fd;
    return event;
  }

  int epoll_fd_ = -1;
};
#endif  // defined(__linux__)

Result<std::unique_ptr<PollerBackend>> MakePoller(bool force_poll) {
#if defined(__linux__)
  if (!force_poll) {
    auto backend = std::make_unique<EpollBackend>();
    Status init = backend->Init();
    if (!init.ok()) return init;
    return std::unique_ptr<PollerBackend>(std::move(backend));
  }
#else
  (void)force_poll;
#endif
  return std::unique_ptr<PollerBackend>(std::make_unique<PollBackend>());
}

Result<int> CreateListenSocket(const HttpServerConfig& config,
                               uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrCat("bad bind address: ", config.bind_address));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = ErrnoStatus("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, config.listen_backlog) < 0) {
    Status status = ErrnoStatus("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    Status status = ErrnoStatus("getsockname");
    ::close(fd);
    return status;
  }
  *bound_port = ntohs(bound.sin_port);
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  return fd;
}

/// Loop-side monotonic counters; stats() snapshots them. Written only by
/// the loop thread (and responses_dropped by the inbox), read anywhere.
struct StatsCells {
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> rejected_at_capacity{0};
  std::atomic<int64_t> closed{0};
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> responses{0};
  std::atomic<int64_t> responses_dropped{0};
  std::atomic<int64_t> rate_limited{0};
  std::atomic<int64_t> parse_errors{0};
  std::atomic<int64_t> oversized{0};
  std::atomic<int64_t> idle_closed{0};
  std::atomic<int64_t> torn_closed{0};
  std::atomic<int64_t> drained{0};
};

}  // namespace

// ---------------------------------------------------------------------------
// Responder inbox: the only channel from handler threads back to the loop.
// ---------------------------------------------------------------------------

struct HttpServer::Responder::Inbox {
  CheckedMutex mu{"HttpServer.Inbox.mu"};
  std::vector<std::pair<uint64_t, HttpResponse>> ready CERES_GUARDED_BY(mu);
  /// Write end of the loop's self-pipe; -1 once the loop is gone.
  int wake_fd CERES_GUARDED_BY(mu) = -1;
  bool open CERES_GUARDED_BY(mu) = false;
  std::atomic<int64_t>* dropped = nullptr;  // points into StatsCells
};

void HttpServer::Responder::Send(HttpResponse response) const {
  if (inbox_ == nullptr) return;
  MutexLock lock(inbox_->mu);
  if (!inbox_->open) {
    if (inbox_->dropped != nullptr) {
      inbox_->dropped->fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  inbox_->ready.emplace_back(connection_id_, std::move(response));
  // One byte wakes the loop; a full pipe already implies a pending wake.
  char byte = 1;
  (void)!::write(inbox_->wake_fd, &byte, 1);
}

// ---------------------------------------------------------------------------
// The event loop.
// ---------------------------------------------------------------------------

struct HttpServer::Loop {
  struct Connection {
    explicit Connection(HttpLimits limits) : parser(limits) {}

    int fd = -1;
    uint64_t id = 0;
    std::string peer;  // dotted-quad peer address, the rate-limit key
    RequestParser parser;
    std::string out;       // encoded, not yet flushed response bytes
    size_t out_offset = 0;
    bool awaiting_handler = false;
    bool close_after_write = false;
    bool read_eof = false;
    bool want_read = true;
    bool want_write = false;
    bool keep_alive_current = true;
    int64_t last_activity_us = 0;
    int64_t dispatch_start_us = 0;
  };

  explicit Loop(HttpServer* server)
      : handler(server->handler_),
        config(server->config_),
        limiter(server->config_.rate_limit) {}

  ~Loop() {
    // Normal teardown happens in TearDown() (run by the loop thread); this
    // only releases fds when Init() failed before the thread started.
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read_fd >= 0) ::close(wake_read_fd);
    if (wake_write_fd >= 0) ::close(wake_write_fd);
  }

  // --- shared with other threads ---
  std::shared_ptr<Responder::Inbox> inbox;
  std::atomic<bool> stop{false};
  std::atomic<bool> drain{false};
  StatsCells stats;
  CheckedMutex drain_mu{"HttpServer.drain_mu"};
  CondVar drain_cv;
  bool drain_done CERES_GUARDED_BY(drain_mu) = false;

  // --- loop-thread state ---
  Handler handler;
  const HttpServerConfig config;
  std::unique_ptr<PollerBackend> poller;
  RateLimiter limiter;
  int listen_fd = -1;
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  uint64_t next_id = 1;
  std::unordered_map<uint64_t, Connection> connections;
  std::unordered_map<int, uint64_t> by_fd;
  bool drain_seen = false;
  int64_t drain_started_us = 0;

  // Cached obs instruments (process-default registry, created once).
  obs::Counter* requests_counter = nullptr;
  obs::Counter* responses_counter = nullptr;
  obs::Counter* rate_limited_counter = nullptr;
  obs::Counter* parse_error_counter = nullptr;
  obs::Histogram* request_us = nullptr;

  Status Init();
  void Serve();
  void TearDown();

  void SignalDrainDoneIfIdle();
  void AcceptReady();
  void HandleEvent(const PollEvent& event);
  void ReadReady(Connection* conn);
  void ApplyInbox();
  void ApplyResponse(uint64_t conn_id, HttpResponse response);
  void MaybeDispatch(Connection* conn);
  void EnqueueResponse(Connection* conn, const HttpResponse& response,
                       bool keep_alive);
  /// Returns false when the connection was closed by the flush.
  bool TryFlush(Connection* conn);
  void UpdateInterest(Connection* conn);
  void SweepTimeouts();
  void CloseConnection(uint64_t conn_id);
};

Status HttpServer::Loop::Init() {
  Result<std::unique_ptr<PollerBackend>> backend =
      MakePoller(config.force_poll);
  if (!backend.ok()) return backend.status();
  poller = std::move(backend).value();

  uint16_t bound_port = 0;
  Result<int> listener = CreateListenSocket(config, &bound_port);
  if (!listener.ok()) return listener.status();
  listen_fd = *listener;

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) return ErrnoStatus("pipe");
  wake_read_fd = pipe_fds[0];
  wake_write_fd = pipe_fds[1];
  Status nonblocking = SetNonBlocking(wake_read_fd);
  if (!nonblocking.ok()) return nonblocking;
  nonblocking = SetNonBlocking(wake_write_fd);
  if (!nonblocking.ok()) return nonblocking;

  Status added = poller->AddFd(listen_fd, /*read=*/true, /*write=*/false);
  if (!added.ok()) return added;
  added = poller->AddFd(wake_read_fd, /*read=*/true, /*write=*/false);
  if (!added.ok()) return added;

  inbox = std::make_shared<Responder::Inbox>();
  {
    MutexLock lock(inbox->mu);
    inbox->wake_fd = wake_write_fd;
    inbox->open = true;
    inbox->dropped = &stats.responses_dropped;
  }

  auto& registry = obs::MetricsRegistry::Default();
  requests_counter = registry.GetCounter("ceres_net_requests_total");
  responses_counter = registry.GetCounter("ceres_net_responses_total");
  rate_limited_counter =
      registry.GetCounter("ceres_net_rate_limited_total");
  parse_error_counter = registry.GetCounter("ceres_net_parse_errors_total");
  request_us = registry.GetHistogram("ceres_net_request_us");
  return Status::Ok();
}

void HttpServer::Loop::SignalDrainDoneIfIdle() {
  if (!drain.load(std::memory_order_acquire) || !connections.empty()) {
    return;
  }
  MutexLock lock(drain_mu);
  if (!drain_done) {
    drain_done = true;
    drain_cv.notify_all();
  }
}

void HttpServer::Loop::Serve() {
  std::vector<PollEvent> events;
  while (!stop.load(std::memory_order_acquire)) {
    if (drain.load(std::memory_order_acquire) && !drain_seen) {
      drain_seen = true;
      drain_started_us = NowMicros();
      if (listen_fd >= 0) {
        poller->RemoveFd(listen_fd);
        ::close(listen_fd);
        listen_fd = -1;
      }
    }
    events.clear();
    Result<int> waited = poller->Wait(/*timeout_ms=*/50, &events);
    if (!waited.ok()) {
      LogInfo(StrCat("http loop wait failed: ",
                     waited.status().ToString()));
      break;
    }
    for (const PollEvent& event : events) {
      if (stop.load(std::memory_order_acquire)) break;
      if (event.fd == listen_fd) {
        AcceptReady();
      } else if (event.fd == wake_read_fd) {
        char scratch[256];
        while (::read(wake_read_fd, scratch, sizeof(scratch)) > 0) {
        }
        ApplyInbox();
      } else {
        HandleEvent(event);
      }
    }
    ApplyInbox();  // responses may have landed while handling events
    SweepTimeouts();
    SignalDrainDoneIfIdle();
  }
  TearDown();
}

void HttpServer::Loop::TearDown() {
  // Close the channel first so late Responders drop instead of writing to
  // a dead pipe.
  if (inbox != nullptr) {
    MutexLock lock(inbox->mu);
    inbox->open = false;
    inbox->wake_fd = -1;
  }
  for (auto& [id, conn] : connections) {
    poller->RemoveFd(conn.fd);
    ::close(conn.fd);
    stats.closed.fetch_add(1, std::memory_order_relaxed);
  }
  connections.clear();
  by_fd.clear();
  if (listen_fd >= 0) ::close(listen_fd);
  if (wake_read_fd >= 0) ::close(wake_read_fd);
  if (wake_write_fd >= 0) ::close(wake_write_fd);
  listen_fd = wake_read_fd = wake_write_fd = -1;
  MutexLock lock(drain_mu);
  drain_done = true;
  drain_cv.notify_all();
}

void HttpServer::Loop::AcceptReady() {
  while (listen_fd >= 0) {
    sockaddr_in addr = {};
    socklen_t addr_len = sizeof(addr);
    const int fd = ::accept(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                            &addr_len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      LogInfo(StrCat("accept failed: ", strerror(errno)));
      return;
    }
    if (connections.size() >= config.max_connections ||
        drain.load(std::memory_order_acquire)) {
      ::close(fd);
      stats.rejected_at_capacity.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Status added = poller->AddFd(fd, /*read=*/true, /*write=*/false);
    if (!added.ok()) {
      ::close(fd);
      continue;
    }
    Connection conn(config.limits);
    conn.fd = fd;
    conn.id = next_id++;
    char peer[INET_ADDRSTRLEN] = "unknown";
    (void)::inet_ntop(AF_INET, &addr.sin_addr, peer, sizeof(peer));
    conn.peer = peer;
    conn.last_activity_us = NowMicros();
    by_fd[fd] = conn.id;
    const uint64_t id = conn.id;
    connections.emplace(id, std::move(conn));
    stats.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::Loop::HandleEvent(const PollEvent& event) {
  auto fd_it = by_fd.find(event.fd);
  if (fd_it == by_fd.end()) return;
  const uint64_t conn_id = fd_it->second;
  auto it = connections.find(conn_id);
  if (it == connections.end()) return;
  Connection* conn = &it->second;

  if (event.hangup) {
    // Peer fully gone; nothing can be delivered. An in-flight response is
    // counted as dropped when the Responder finds no connection.
    CloseConnection(conn_id);
    return;
  }
  if (event.writable) {
    if (!TryFlush(conn)) return;  // connection closed
  }
  if (event.readable && conn->want_read) {
    ReadReady(conn);
  }
}

void HttpServer::Loop::ReadReady(Connection* conn) {
  char buffer[16384];
  const uint64_t conn_id = conn->id;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->last_activity_us = NowMicros();
      const ParseState state =
          conn->parser.Consume(std::string_view(buffer,
                                                static_cast<size_t>(n)));
      if (state == ParseState::kError) {
        stats.parse_errors.fetch_add(1, std::memory_order_relaxed);
        const int status = conn->parser.error_status();
        if (status == 413 || status == 414 || status == 431) {
          stats.oversized.fetch_add(1, std::memory_order_relaxed);
        }
        if (obs::Enabled()) parse_error_counter->Increment();
        HttpResponse response;
        response.status = status;
        response.body = conn->parser.error() + "\n";
        conn->want_read = false;
        EnqueueResponse(conn, response, /*keep_alive=*/false);
        return;  // EnqueueResponse may have closed the connection
      }
      if (state == ParseState::kComplete) {
        MaybeDispatch(conn);
        if (connections.find(conn_id) == connections.end()) return;
        if (conn->awaiting_handler || !conn->want_read) return;
      }
      continue;
    }
    if (n == 0) {
      conn->read_eof = true;
      conn->want_read = false;
      // Half-close: a response still owed (or buffered) is delivered
      // before the connection goes away; otherwise close now.
      if (conn->awaiting_handler || !conn->out.empty()) {
        conn->close_after_write = true;
        UpdateInterest(conn);
      } else {
        CloseConnection(conn_id);
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }
}

void HttpServer::Loop::ApplyInbox() {
  std::vector<std::pair<uint64_t, HttpResponse>> ready;
  {
    MutexLock lock(inbox->mu);
    ready.swap(inbox->ready);
  }
  for (auto& [conn_id, response] : ready) {
    ApplyResponse(conn_id, std::move(response));
  }
}

void HttpServer::Loop::ApplyResponse(uint64_t conn_id,
                                     HttpResponse response) {
  auto it = connections.find(conn_id);
  if (it == connections.end() || !it->second.awaiting_handler) {
    stats.responses_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Connection* conn = &it->second;
  conn->awaiting_handler = false;
  conn->last_activity_us = NowMicros();
  if (obs::Enabled()) {
    request_us->Record(conn->last_activity_us - conn->dispatch_start_us);
  }
  const bool keep_alive = conn->keep_alive_current &&
                          !drain.load(std::memory_order_acquire) &&
                          !conn->read_eof;
  EnqueueResponse(conn, response, keep_alive);
  it = connections.find(conn_id);
  if (it == connections.end()) return;
  conn = &it->second;
  if (conn->out.empty() && !conn->close_after_write) {
    MaybeDispatch(conn);
  }
}

void HttpServer::Loop::MaybeDispatch(Connection* conn) {
  const uint64_t conn_id = conn->id;
  while (!conn->awaiting_handler && !conn->close_after_write &&
         conn->parser.state() == ParseState::kComplete) {
    HttpRequest request = conn->parser.TakeRequest();
    stats.requests.fetch_add(1, std::memory_order_relaxed);
    if (obs::Enabled()) requests_counter->Increment();
    const bool draining = drain.load(std::memory_order_acquire);
    conn->keep_alive_current = request.KeepAlive() && !draining;
    if (!limiter.Admit(conn->peer, NowMicros())) {
      stats.rate_limited.fetch_add(1, std::memory_order_relaxed);
      if (obs::Enabled()) rate_limited_counter->Increment();
      HttpResponse shed;
      shed.status = 429;
      shed.headers.push_back({"x-ceres-shed", "rate-limit"});
      shed.body = "rate limit exceeded\n";
      EnqueueResponse(conn, shed, conn->keep_alive_current);
      if (connections.find(conn_id) == connections.end()) return;
      continue;  // the parser may hold the next pipelined request already
    }
    conn->awaiting_handler = true;
    conn->dispatch_start_us = NowMicros();
    handler(std::move(request), Responder(inbox, conn_id));
    if (connections.find(conn_id) == connections.end()) return;
  }
  UpdateInterest(conn);
}

void HttpServer::Loop::EnqueueResponse(Connection* conn,
                                       const HttpResponse& response,
                                       bool keep_alive) {
  conn->out += EncodeResponse(response, keep_alive);
  if (!keep_alive) conn->close_after_write = true;
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) responses_counter->Increment();
  if (TryFlush(conn)) UpdateInterest(conn);
}

bool HttpServer::Loop::TryFlush(Connection* conn) {
  const uint64_t conn_id = conn->id;
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn->want_write = true;
      UpdateInterest(conn);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn_id);  // peer reset mid-response
    return false;
  }
  conn->out.clear();
  conn->out_offset = 0;
  conn->want_write = false;
  conn->last_activity_us = NowMicros();
  if (conn->close_after_write) {
    CloseConnection(conn_id);
    return false;
  }
  if (!conn->awaiting_handler) {
    // Room for the next request: resume reading, serve pipelined input.
    conn->want_read = !conn->read_eof;
    if (conn->parser.state() == ParseState::kComplete) {
      MaybeDispatch(conn);
      return connections.find(conn_id) != connections.end();
    }
  }
  UpdateInterest(conn);
  return true;
}

void HttpServer::Loop::UpdateInterest(Connection* conn) {
  poller->UpdateFd(conn->fd,
                 conn->want_read && !conn->awaiting_handler &&
                     !conn->close_after_write,
                 conn->want_write);
}

void HttpServer::Loop::SweepTimeouts() {
  const int64_t now_us = NowMicros();
  const bool draining = drain_seen;
  std::vector<uint64_t> to_close;
  std::vector<uint64_t> to_torn;
  for (auto& [id, conn] : connections) {
    if (conn.awaiting_handler || !conn.out.empty()) continue;
    const int64_t idle_us = now_us - conn.last_activity_us;
    if (conn.parser.MidMessage()) {
      if (idle_us > config.header_timeout_ms * 1000) to_torn.push_back(id);
      continue;
    }
    if (idle_us > config.idle_timeout_ms * 1000) {
      to_close.push_back(id);
      continue;
    }
    if (draining &&
        now_us - drain_started_us > config.drain_grace_ms * 1000) {
      // Idle under drain: grace for wire-in-flight bytes has passed.
      to_close.push_back(id);
    }
  }
  for (uint64_t id : to_torn) {
    auto it = connections.find(id);
    if (it == connections.end()) continue;
    stats.torn_closed.fetch_add(1, std::memory_order_relaxed);
    HttpResponse timeout;
    timeout.status = 408;
    timeout.body = "request incomplete\n";
    it->second.want_read = false;
    EnqueueResponse(&it->second, timeout, /*keep_alive=*/false);
  }
  for (uint64_t id : to_close) {
    if (connections.find(id) == connections.end()) continue;
    if (draining) {
      stats.drained.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats.idle_closed.fetch_add(1, std::memory_order_relaxed);
    }
    CloseConnection(id);
  }
}

void HttpServer::Loop::CloseConnection(uint64_t conn_id) {
  auto it = connections.find(conn_id);
  if (it == connections.end()) return;
  poller->RemoveFd(it->second.fd);
  ::close(it->second.fd);
  by_fd.erase(it->second.fd);
  connections.erase(it);
  stats.closed.fetch_add(1, std::memory_order_relaxed);
  SignalDrainDoneIfIdle();
}

// ---------------------------------------------------------------------------
// HttpServer facade.
// ---------------------------------------------------------------------------

HttpServer::HttpServer(Handler handler, HttpServerConfig config)
    : handler_(std::move(handler)), config_(std::move(config)) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  if (started_) return Status::FailedPrecondition("already started");
  loop_ = std::make_unique<Loop>(this);
  Status init = loop_->Init();
  if (!init.ok()) {
    loop_.reset();
    return init;
  }
  // Re-read the bound port from the loop's listener.
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(loop_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  started_ = true;
  loop_thread_ = std::thread([loop = loop_.get()] { loop->Serve(); });
  LogInfo(StrCat("http server listening on ", config_.bind_address, ":",
                 bound_port_, " (", loop_->poller->name(), ")"));
  return Status::Ok();
}

Status HttpServer::Drain(Deadline deadline) {
  if (!started_ || loop_ == nullptr) return Status::Ok();
  loop_->drain.store(true, std::memory_order_release);
  {
    MutexLock lock(loop_->inbox->mu);
    if (loop_->inbox->open) {
      char byte = 1;
      (void)!::write(loop_->inbox->wake_fd, &byte, 1);
    }
  }
  UniqueMutexLock lock(loop_->drain_mu);
  while (!loop_->drain_done) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded("drain did not complete");
    }
    loop_->drain_cv.wait_for(lock, std::chrono::milliseconds(20));
  }
  return Status::Ok();
}

void HttpServer::Shutdown() {
  if (!started_ || loop_ == nullptr) return;
  loop_->stop.store(true, std::memory_order_release);
  {
    // Wake the loop directly; the inbox may already be closed.
    MutexLock lock(loop_->inbox->mu);
    if (loop_->inbox->open) {
      char byte = 1;
      (void)!::write(loop_->inbox->wake_fd, &byte, 1);
    }
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  final_stats_ = stats();
  loop_.reset();
  started_ = false;
}

HttpServerStats HttpServer::stats() const {
  if (loop_ == nullptr) return final_stats_;
  HttpServerStats out;
  const StatsCells& cells = loop_->stats;
  out.accepted = cells.accepted.load(std::memory_order_relaxed);
  out.rejected_at_capacity =
      cells.rejected_at_capacity.load(std::memory_order_relaxed);
  out.closed = cells.closed.load(std::memory_order_relaxed);
  out.requests = cells.requests.load(std::memory_order_relaxed);
  out.responses = cells.responses.load(std::memory_order_relaxed);
  out.responses_dropped =
      cells.responses_dropped.load(std::memory_order_relaxed);
  out.rate_limited = cells.rate_limited.load(std::memory_order_relaxed);
  out.parse_errors = cells.parse_errors.load(std::memory_order_relaxed);
  out.oversized = cells.oversized.load(std::memory_order_relaxed);
  out.idle_closed = cells.idle_closed.load(std::memory_order_relaxed);
  out.torn_closed = cells.torn_closed.load(std::memory_order_relaxed);
  out.drained = cells.drained.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ceres::net
