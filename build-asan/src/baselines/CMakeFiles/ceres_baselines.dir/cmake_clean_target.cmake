file(REMOVE_RECURSE
  "libceres_baselines.a"
)
