#include "util/string_util.h"

#include <cctype>

namespace ceres {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace ceres
