#ifndef CERES_CORE_MODEL_IO_H_
#define CERES_CORE_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "core/training.h"
#include "kb/ontology.h"
#include "util/status.h"

namespace ceres {

/// Text persistence of a trained per-site extractor model, so that a model
/// learned once (annotation + training are the expensive phases) can be
/// re-applied to newly crawled pages of the same site without a seed KB.
///
/// Format (TSV sections, like kb_io):
///
///   #model
///   <num classes> \t <num features>
///   #classes
///   <class index> \t <OTHER|NAME|predicate name>
///   #features
///   <feature index> \t <feature name>
///   #weights
///   <class index> \t <feature index | "bias"> \t <value>   (non-zeros only)
///
/// Loading requires the same Ontology the model was trained with (class
/// indices are validated against its predicate list).

/// Writes `model` to `out`.
Status SaveModel(const TrainedModel& model, const Ontology& ontology,
                 std::ostream* out);

/// Convenience: SaveModel to a file path.
Status SaveModelToFile(const TrainedModel& model, const Ontology& ontology,
                       const std::string& path);

/// Parses a serialized model, validating it against `ontology`.
Result<TrainedModel> LoadModel(std::istream* in, const Ontology& ontology);

/// Convenience: LoadModel from a file path.
Result<TrainedModel> LoadModelFromFile(const std::string& path,
                                       const Ontology& ontology);

}  // namespace ceres

#endif  // CERES_CORE_MODEL_IO_H_
