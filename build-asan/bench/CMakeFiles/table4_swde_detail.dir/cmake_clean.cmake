file(REMOVE_RECURSE
  "CMakeFiles/table4_swde_detail.dir/table4_swde_detail.cc.o"
  "CMakeFiles/table4_swde_detail.dir/table4_swde_detail.cc.o.d"
  "table4_swde_detail"
  "table4_swde_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_swde_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
