#include "util/simhash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "serve/page_cache.h"

namespace ceres::serve {
namespace {

/// A film detail page with one templated field value; the surrounding
/// markup dwarfs the field, as on a real crawl.
std::string FilmPage(const std::string& director) {
  std::string html = "<html><head><title>Film Detail</title></head><body>";
  for (int i = 0; i < 40; ++i) {
    html += "<div class=nav>section " + std::to_string(i) + " link</div>";
  }
  html += "<span class=director>Directed by " + director + "</span>";
  html += "<footer>copyright example films corporation</footer></body>";
  return html;
}

CachedExtraction OneTripleResult(const std::string& subject,
                                 const std::string& object) {
  CachedExtraction result;
  Extraction triple;
  triple.subject = subject;
  triple.object = object;
  triple.confidence = 0.9;
  result.triples.push_back(triple);
  return result;
}

TEST(SimhashTest, DeterministicAcrossCalls) {
  const std::string page = FilmPage("Spike Lee");
  EXPECT_EQ(Simhash64(page), Simhash64(page));
}

TEST(SimhashTest, InvariantToCaseAndWhitespaceChurn) {
  // The churn that separates two crawls of the same page — whitespace
  // runs, newlines, letter case — must not move the fingerprint at all.
  const uint64_t original = Simhash64("Directed by Spike Lee (1989)");
  EXPECT_EQ(Simhash64("directed   BY\n\tspike\r\n lee { 1989 }"), original);
}

TEST(SimhashTest, EmptyAndNonAlnumInputMapToZero) {
  EXPECT_EQ(Simhash64(""), 0u);
  EXPECT_EQ(Simhash64("<->(){}//!!\r\n\t "), 0u);
}

TEST(SimhashTest, OneChangedFieldStaysNearerThanAnUnrelatedPage) {
  const uint64_t base = Simhash64(FilmPage("Spike Lee"));
  const uint64_t variant = Simhash64(FilmPage("Ava DuVernay"));
  const uint64_t unrelated = Simhash64(
      "completely different text about distributed systems consensus "
      "protocols leader election log replication snapshots quorums "
      "heartbeats elections terms voting commit indexes state machines");
  const int near = HammingDistance(base, variant);
  const int far = HammingDistance(base, unrelated);
  EXPECT_LT(near, far);
  // Unrelated pages land ~32 bits apart; near-twins stay well below that.
  EXPECT_GT(far, 15);
  EXPECT_LT(near, 16);
}

TEST(SimhashTest, ShingleSizeOneIsABagOfWords) {
  SimhashConfig bag;
  bag.shingle_size = 1;
  EXPECT_EQ(Simhash64("alpha beta gamma delta", bag),
            Simhash64("delta gamma beta alpha", bag));
  // With multi-token shingles the same reordering moves the fingerprint.
  SimhashConfig pairs;
  pairs.shingle_size = 2;
  EXPECT_NE(Simhash64("alpha beta gamma delta epsilon zeta eta", pairs),
            Simhash64("eta zeta epsilon delta gamma beta alpha", pairs));
}

TEST(HammingDistanceTest, CountsDifferingBits) {
  EXPECT_EQ(HammingDistance(0, 0), 0);
  EXPECT_EQ(HammingDistance(0, ~uint64_t{0}), 64);
  EXPECT_EQ(HammingDistance(0b1011, 0b0010), 2);
  EXPECT_EQ(HammingDistance(uint64_t{1} << 63, 0), 1);
}

TEST(NearDupCacheTest, FingerprintMatchesSimhashUnderCacheConfig) {
  PageCacheConfig config;
  config.simhash.shingle_size = 2;
  NearDupCache cache(config);
  const std::string page = FilmPage("Spike Lee");
  EXPECT_EQ(cache.Fingerprint(page), Simhash64(page, config.simhash));
}

TEST(NearDupCacheTest, HitsExactlyUpToTheHammingThreshold) {
  PageCacheConfig config;
  config.hamming_threshold = 3;
  NearDupCache cache(config);
  const uint64_t base = 0xA5A5'5A5A'F00D'BEEFull;
  cache.Insert("films.example", base, OneTripleResult("film", "director"));

  CachedExtraction out;
  EXPECT_TRUE(cache.Lookup("films.example", base, &out));
  ASSERT_EQ(out.triples.size(), 1u);
  EXPECT_EQ(out.triples[0].object, "director");
  // Three flipped bits is a near-duplicate; four is a different page.
  EXPECT_TRUE(cache.Lookup("films.example", base ^ 0b111, &out));
  EXPECT_FALSE(cache.Lookup("films.example", base ^ 0b1111, &out));

  const PageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(NearDupCacheTest, EntriesAreScopedToTheirSite) {
  NearDupCache cache;
  const uint64_t fingerprint = 42;
  cache.Insert("films.example", fingerprint, OneTripleResult("a", "b"));
  CachedExtraction out;
  EXPECT_TRUE(cache.Lookup("films.example", fingerprint, &out));
  // The identical fingerprint under another site must not match: that
  // site's model never produced these extractions.
  EXPECT_FALSE(cache.Lookup("books.example", fingerprint, &out));
}

TEST(NearDupCacheTest, ExactFingerprintInsertRefreshesInPlace) {
  NearDupCache cache;
  const uint64_t fingerprint = 7;
  cache.Insert("films.example", fingerprint, OneTripleResult("film", "old"));
  cache.Insert("films.example", fingerprint, OneTripleResult("film", "new"));
  EXPECT_EQ(cache.stats().entries, 1u);
  CachedExtraction out;
  ASSERT_TRUE(cache.Lookup("films.example", fingerprint, &out));
  ASSERT_EQ(out.triples.size(), 1u);
  // Latest extraction of the exact page wins.
  EXPECT_EQ(out.triples[0].object, "new");
}

TEST(NearDupCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Empty-result entries under one-character sites cost 129 bytes plus
  // the cached diagnostics record each; size the budget to hold exactly
  // two of them.
  PageCacheConfig config;
  config.max_bytes = 2 * (129 + sizeof(ServeDiagnostics)) + 1;
  NearDupCache cache(config);
  CachedExtraction out;
  cache.Insert("a", 1 << 10, {});
  cache.Insert("b", 2 << 10, {});
  // Touch "a" so "b" is the least recently used when the budget trips.
  ASSERT_TRUE(cache.Lookup("a", 1 << 10, &out));
  cache.Insert("c", 3 << 10, {});

  EXPECT_TRUE(cache.Lookup("a", 1 << 10, &out));
  EXPECT_FALSE(cache.Lookup("b", 2 << 10, &out));
  EXPECT_TRUE(cache.Lookup("c", 3 << 10, &out));
  const PageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, config.max_bytes);
}

TEST(NearDupCacheTest, StatsBalanceAndBytesReturnToZeroAfterInvalidation) {
  NearDupCache cache;
  // The byte estimate must charge the cached diagnostics record too, not
  // just the triples: it is stored and replayed on hits like everything
  // else in the entry.
  cache.Insert("a.example", 1, {});
  EXPECT_GE(cache.stats().bytes, 128 + sizeof(ServeDiagnostics));

  // An exact-fingerprint refresh counts as insertion + eviction so the
  // stats identity below holds; before the fix it was invisible in the
  // counters entirely.
  cache.Insert("a.example", 1, OneTripleResult("film", "director"));
  cache.Insert("a.example", 2, OneTripleResult("film", "year"));
  cache.Insert("b.example", 3, OneTripleResult("book", "author"));
  EXPECT_EQ(cache.stats().insertions, 4);

  cache.InvalidateSite("a.example");
  cache.InvalidateSite("b.example");
  const PageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.insertions, static_cast<int64_t>(stats.entries) +
                                  stats.evictions + stats.invalidations);
}

TEST(NearDupCacheTest, InvalidateSiteDropsExactlyThatSite) {
  NearDupCache cache;
  cache.Insert("films.example", 1, OneTripleResult("f", "x"));
  cache.Insert("films.example", 1 << 20, OneTripleResult("f", "y"));
  cache.Insert("books.example", 2, OneTripleResult("b", "z"));
  cache.InvalidateSite("films.example");

  CachedExtraction out;
  EXPECT_FALSE(cache.Lookup("films.example", 1, &out));
  EXPECT_FALSE(cache.Lookup("films.example", 1 << 20, &out));
  EXPECT_TRUE(cache.Lookup("books.example", 2, &out));
  const PageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.invalidations, 2);
}

TEST(NearDupCacheTest, DisabledCacheNeverStoresOrCounts) {
  PageCacheConfig config;
  config.enabled = false;
  NearDupCache cache(config);
  cache.Insert("films.example", 5, OneTripleResult("a", "b"));
  CachedExtraction out;
  EXPECT_FALSE(cache.Lookup("films.example", 5, &out));
  const PageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
}

TEST(NearDupCacheTest, WhitespaceChurnedRecrawlHitsViaFingerprint) {
  // End-to-end over the real fingerprint: a re-crawl of the same page
  // with case/whitespace churn normalizes to the identical simhash, so
  // the cached extraction is served without parse or inference.
  NearDupCache cache;
  const std::string first = "<div>Directed By Spike Lee</div>";
  const std::string recrawl = "<DIV>\n  directed   by   SPIKE LEE\n</DIV>";
  cache.Insert("films.example", cache.Fingerprint(first),
               OneTripleResult("film", "spike lee"));
  CachedExtraction out;
  ASSERT_TRUE(
      cache.Lookup("films.example", cache.Fingerprint(recrawl), &out));
  ASSERT_EQ(out.triples.size(), 1u);
  EXPECT_EQ(out.triples[0].object, "spike lee");
}

}  // namespace
}  // namespace ceres::serve
