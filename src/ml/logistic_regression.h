#ifndef CERES_ML_LOGISTIC_REGRESSION_H_
#define CERES_ML_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "ml/lbfgs.h"
#include "ml/sparse_vector.h"
#include "util/status.h"

namespace ceres {

/// Configuration of the multinomial logistic-regression node classifier
/// (§4.2). Defaults match the paper's scikit-learn setup: LBFGS solver, L2
/// regularization with C = 1.
struct LogRegConfig {
  /// Inverse regularization strength; the penalty is ||W||^2 / (2 C).
  double l2_c = 1.0;
  /// Whether the per-class intercepts beta_k0 are regularized (scikit-learn
  /// does not regularize intercepts; neither do we by default).
  bool regularize_bias = false;
  LbfgsConfig solver;
};

/// One labelled training example: a finalized sparse feature vector and a
/// class label in [0, num_classes).
struct LabeledExample {
  SparseVector features;
  int32_t label = 0;
  /// Importance weight (1 for normal examples).
  double weight = 1.0;
};

/// Multinomial (softmax) logistic regression trained with L-BFGS.
///
/// Pr(Y = k | x) = exp(b_k + w_k . x) / sum_i exp(b_i + w_i . x),
/// which is the paper's Section 4.2 model in the symmetric softmax
/// parameterization. Classes are dense ints; the caller maps predicates /
/// NAME / OTHER onto them.
class LogisticRegression {
 public:
  LogisticRegression() = default;

  /// Fits the model on `examples`. num_features bounds the feature indices,
  /// num_classes the labels. Returns solver statistics or an error for
  /// malformed inputs (no examples, label out of range).
  Result<LbfgsResult> Train(const std::vector<LabeledExample>& examples,
                            int32_t num_features, int32_t num_classes,
                            const LogRegConfig& config = {});

  /// Class probabilities for one example; requires a trained model.
  std::vector<double> PredictProbabilities(const SparseVector& features) const;

  /// Argmax class with its probability.
  std::pair<int32_t, double> Predict(const SparseVector& features) const;

  bool trained() const { return trained_; }
  int32_t num_classes() const { return num_classes_; }
  int32_t num_features() const { return num_features_; }

  /// Weight of feature `feature` for class `cls` (for introspection tests).
  double WeightAt(int32_t cls, int32_t feature) const;
  double BiasAt(int32_t cls) const;

  /// Raw parameter vector, class-major with stride num_features() + 1 and
  /// the intercept stored last in each class block. For persistence.
  const std::vector<double>& weights() const { return weights_; }

  /// Reconstructs a trained model from stored parameters (same layout as
  /// weights()). Fails on a size mismatch.
  static Result<LogisticRegression> FromWeights(int32_t num_features,
                                                int32_t num_classes,
                                                std::vector<double> weights);

 private:
  int32_t num_features_ = 0;
  int32_t num_classes_ = 0;
  /// Layout: class-major; weights_[k * (num_features_ + 1) + f], with the
  /// intercept stored at f == num_features_.
  std::vector<double> weights_;
  bool trained_ = false;
};

}  // namespace ceres

#endif  // CERES_ML_LOGISTIC_REGRESSION_H_
