// ceres_lint — project static analyzer. See tools/lint/lint.h for the rule
// set. Usage:
//
//   ceres_lint <path> [path...]     # each path a file or directory
//
// Exits 0 when clean, 1 on any violation, 2 on usage/IO errors. Wired up
// as the `lint` CMake target over src/, tools/, and bench/.

#include <cstdio>

#include "lint/lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-dir> [file-or-dir...]\n",
                 argv[0]);
    return 2;
  }
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) paths.emplace_back(argv[i]);

  std::string error;
  const std::vector<ceres::lint::SourceFile> sources =
      ceres::lint::CollectSources(paths, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "ceres_lint: %s\n", error.c_str());
    return 2;
  }

  const std::vector<ceres::lint::Diagnostic> diagnostics =
      ceres::lint::Lint(sources);
  for (const ceres::lint::Diagnostic& diagnostic : diagnostics) {
    std::fprintf(stderr, "%s\n",
                 ceres::lint::FormatDiagnostic(diagnostic).c_str());
  }
  std::fprintf(stderr, "ceres_lint: scanned %zu file(s), %zu violation(s)\n",
               sources.size(), diagnostics.size());
  return diagnostics.empty() ? 0 : 1;
}
