
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/agglomerative.cc" "src/ml/CMakeFiles/ceres_ml.dir/agglomerative.cc.o" "gcc" "src/ml/CMakeFiles/ceres_ml.dir/agglomerative.cc.o.d"
  "/root/repo/src/ml/feature_map.cc" "src/ml/CMakeFiles/ceres_ml.dir/feature_map.cc.o" "gcc" "src/ml/CMakeFiles/ceres_ml.dir/feature_map.cc.o.d"
  "/root/repo/src/ml/lbfgs.cc" "src/ml/CMakeFiles/ceres_ml.dir/lbfgs.cc.o" "gcc" "src/ml/CMakeFiles/ceres_ml.dir/lbfgs.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/ceres_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/ceres_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/ceres_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/ceres_ml.dir/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
