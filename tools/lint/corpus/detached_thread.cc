// Corpus: a detached thread in non-test code. Exactly one thread-hygiene
// violation; the joined thread is the compliant form.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <thread>

namespace ceres {

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();  // BAD: outlives every invariant it captured
}

void FireAndJoin() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace ceres
