#include "core/pipeline.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/entity_matcher.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {

namespace {

// Resolves the "empty means all" page-set convention.
std::vector<PageIndex> ResolvePageSet(const std::vector<PageIndex>& requested,
                                      size_t num_pages) {
  if (!requested.empty()) return requested;
  std::vector<PageIndex> all(num_pages);
  for (size_t i = 0; i < num_pages; ++i) all[i] = static_cast<PageIndex>(i);
  return all;
}

Status ValidateConfig(const std::vector<DomDocument>& pages,
                      const KnowledgeBase& kb, const PipelineConfig& config) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("knowledge base must be frozen");
  }
  if (pages.empty()) {
    return Status::InvalidArgument("no pages given");
  }
  for (PageIndex page : config.annotation_pages) {
    if (page < 0 || static_cast<size_t>(page) >= pages.size()) {
      return Status::InvalidArgument(
          StrCat("annotation page out of range: ", page));
    }
  }
  for (PageIndex page : config.extraction_pages) {
    if (page < 0 || static_cast<size_t>(page) >= pages.size()) {
      return Status::InvalidArgument(
          StrCat("extraction page out of range: ", page));
    }
  }
  return Status::Ok();
}

}  // namespace

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kClustering:
      return "clustering";
    case PipelineStage::kTopicIdentification:
      return "topic identification";
    case PipelineStage::kAnnotation:
      return "annotation";
    case PipelineStage::kTraining:
      return "training";
    case PipelineStage::kExtraction:
      return "extraction";
  }
  return "unknown";
}

std::vector<ClusterSkip> PipelineDiagnostics::SkipsForCluster(
    int cluster) const {
  std::vector<ClusterSkip> out;
  for (const ClusterSkip& skip : skipped_clusters) {
    if (skip.cluster == cluster) out.push_back(skip);
  }
  return out;
}

std::string PipelineDiagnostics::Summary() const {
  std::string out = "pipeline diagnostics:\n";
  out += StrCat("  quarantined pages: ", quarantined_pages.size(), "\n");
  for (int s = 0; s < kNumPipelineStages; ++s) {
    const StageCounts& c = stages[s];
    if (c.attempted == 0 && c.skipped == 0) continue;
    out += StrCat("  ", PipelineStageName(static_cast<PipelineStage>(s)),
                  ": attempted ", c.attempted, ", completed ", c.completed,
                  ", skipped ", c.skipped, "\n");
  }
  if (run_deadline_expired) out += "  run deadline expired\n";
  for (const ClusterSkip& skip : skipped_clusters) {
    out += StrCat("  cluster ", skip.cluster, " skipped at ",
                  PipelineStageName(skip.stage), ": ",
                  skip.reason.ToString(), "\n");
  }
  return out;
}

Result<PipelineResult> RunPipeline(const std::vector<DomDocument>& pages,
                                   const KnowledgeBase& kb,
                                   const PipelineConfig& config) {
  CERES_RETURN_IF_ERROR(
      PrependContext(ValidateConfig(pages, kb, config), "pipeline config"));

  PipelineResult result;
  PipelineDiagnostics& diag = result.diagnostics;
  result.topic_of_page.assign(pages.size(), kInvalidEntity);
  result.topic_node_of_page.assign(pages.size(), kInvalidNode);

  // 1. Template clustering (whole-run deadline only; the per-cluster
  // budget starts once clusters exist).
  diag.counts(PipelineStage::kClustering).attempted = 1;
  if (config.cluster_pages) {
    PageClusteringConfig clustering_config = config.clustering;
    clustering_config.deadline = config.deadline;
    result.cluster_of_page = ClusterPages(pages, clustering_config);
  } else {
    result.cluster_of_page.assign(pages.size(), 0);
  }
  if (config.deadline.expired()) {
    diag.run_deadline_expired = true;
    ++diag.counts(PipelineStage::kClustering).skipped;
  } else {
    ++diag.counts(PipelineStage::kClustering).completed;
  }
  int num_clusters = 0;
  for (int cluster : result.cluster_of_page) {
    num_clusters = std::max(num_clusters, cluster + 1);
  }

  const std::vector<PageIndex> annotation_pages =
      ResolvePageSet(config.annotation_pages, pages.size());
  const std::vector<PageIndex> extraction_pages =
      ResolvePageSet(config.extraction_pages, pages.size());

  auto skip_cluster = [&](int cluster, PipelineStage stage, Status reason) {
    LogInfo(StrCat("cluster ", cluster, ": skipped at ",
                   PipelineStageName(stage), ": ", reason.ToString()));
    ++diag.counts(stage).skipped;
    diag.skipped_clusters.push_back(
        ClusterSkip{cluster, stage, std::move(reason)});
  };

  for (int cluster = 0; cluster < num_clusters; ++cluster) {
    // Every cluster runs under the earlier of the whole-run deadline and
    // its own fresh time budget.
    Deadline cluster_deadline = config.deadline;
    if (config.cluster_time_budget.count() > 0) {
      cluster_deadline =
          cluster_deadline.Earlier(Deadline::After(config.cluster_time_budget));
    }
    // A deadline observed as expired but returning OK from Check can only
    // happen through a stage's own flag; normalize to a typed status.
    auto expiry_reason = [&](const char* what) {
      Status reason = cluster_deadline.Check(StrCat("cluster ", cluster, " ", what));
      if (reason.ok()) {
        reason = Status::DeadlineExceeded(
            StrCat("cluster ", cluster, " ", what, ": deadline exceeded"));
      }
      if (config.deadline.expired()) diag.run_deadline_expired = true;
      return reason;
    };

    // Global page indices of this cluster, split into the annotation and
    // extraction roles.
    std::vector<PageIndex> cluster_annotation;
    std::vector<PageIndex> cluster_extraction;
    for (PageIndex page : annotation_pages) {
      if (result.cluster_of_page[static_cast<size_t>(page)] == cluster) {
        cluster_annotation.push_back(page);
      }
    }
    for (PageIndex page : extraction_pages) {
      if (result.cluster_of_page[static_cast<size_t>(page)] == cluster) {
        cluster_extraction.push_back(page);
      }
    }
    if (cluster_annotation.size() < config.min_cluster_size) {
      skip_cluster(cluster, PipelineStage::kClustering,
                   Status::FailedPrecondition(
                       StrCat("only ", cluster_annotation.size(),
                              " annotation pages; min_cluster_size=",
                              config.min_cluster_size)));
      continue;
    }
    LogInfo(StrCat("cluster ", cluster, ": ", cluster_annotation.size(),
                   " annotation pages, ", cluster_extraction.size(),
                   " extraction pages"));

    std::vector<const DomDocument*> annotation_docs;
    annotation_docs.reserve(cluster_annotation.size());
    for (PageIndex page : cluster_annotation) {
      annotation_docs.push_back(&pages[static_cast<size_t>(page)]);
    }

    // Optional pre-filter: skip clusters that do not look like detail
    // pages at all (chart/index clusters).
    if (config.filter_non_detail_clusters &&
        !LooksLikeDetailPages(annotation_docs, config.detail_detector)) {
      skip_cluster(
          cluster, PipelineStage::kClustering,
          Status::FailedPrecondition("does not look like detail pages"));
      continue;
    }

    // 2. Entity matching + topic identification on annotation pages.
    ++diag.counts(PipelineStage::kTopicIdentification).attempted;
    {
      Status live = cluster_deadline.Check(
          StrCat("cluster ", cluster, " topic identification"));
      if (!live.ok()) {
        if (config.deadline.expired()) diag.run_deadline_expired = true;
        skip_cluster(cluster, PipelineStage::kTopicIdentification,
                     std::move(live));
        continue;
      }
    }
    std::vector<PageMentions> mentions;
    mentions.reserve(annotation_docs.size());
    for (const DomDocument* doc : annotation_docs) {
      mentions.push_back(MatchPageMentions(*doc, kb));
    }
    TopicConfig topic_config = config.topic;
    topic_config.deadline = cluster_deadline;
    TopicResult topics =
        IdentifyTopics(annotation_docs, mentions, kb, topic_config);
    if (topics.deadline_expired) {
      skip_cluster(cluster, PipelineStage::kTopicIdentification,
                   expiry_reason("topic identification"));
      continue;
    }
    ++diag.counts(PipelineStage::kTopicIdentification).completed;
    for (size_t i = 0; i < cluster_annotation.size(); ++i) {
      const size_t page = static_cast<size_t>(cluster_annotation[i]);
      result.topic_of_page[page] = topics.topic[i];
      result.topic_node_of_page[page] = topics.topic_node[i];
    }

    // 3. Relation annotation (Algorithm 2). Local indices map 1:1 onto
    // annotation_docs; translate to global page indices afterwards.
    ++diag.counts(PipelineStage::kAnnotation).attempted;
    AnnotatorConfig annotator_config = config.annotator;
    annotator_config.deadline = cluster_deadline;
    AnnotationResult annotation = AnnotateRelations(
        annotation_docs, mentions, topics, kb, annotator_config);
    if (annotation.deadline_expired) {
      skip_cluster(cluster, PipelineStage::kAnnotation,
                   expiry_reason("annotation"));
      continue;
    }
    if (annotation.annotations.empty()) {
      skip_cluster(cluster, PipelineStage::kAnnotation,
                   Status::NotFound("no annotations produced"));
      continue;
    }
    ++diag.counts(PipelineStage::kAnnotation).completed;
    std::vector<Annotation> local_annotations = annotation.annotations;
    for (Annotation& a : annotation.annotations) {
      a.page = cluster_annotation[static_cast<size_t>(a.page)];
      result.annotations.push_back(a);
    }
    for (PageIndex local : annotation.annotated_pages) {
      result.annotated_pages.push_back(
          cluster_annotation[static_cast<size_t>(local)]);
    }

    // 4. Training on the cluster's annotated pages.
    ++diag.counts(PipelineStage::kTraining).attempted;
    FeatureExtractor featurizer(annotation_docs, config.features);
    TrainingConfig training_config = config.training;
    training_config.deadline = cluster_deadline;
    Result<TrainedModel> trained =
        TrainExtractor(annotation_docs, local_annotations, featurizer,
                       kb.ontology(), training_config);
    if (!trained.ok()) {
      if (config.deadline.expired()) diag.run_deadline_expired = true;
      skip_cluster(cluster, PipelineStage::kTraining, trained.status());
      continue;
    }
    ++diag.counts(PipelineStage::kTraining).completed;

    // 5. Extraction over the cluster's extraction pages.
    ++diag.counts(PipelineStage::kExtraction).attempted;
    {
      Status live =
          cluster_deadline.Check(StrCat("cluster ", cluster, " extraction"));
      if (!live.ok()) {
        if (config.deadline.expired()) diag.run_deadline_expired = true;
        skip_cluster(cluster, PipelineStage::kExtraction, std::move(live));
        continue;
      }
    }
    std::vector<const DomDocument*> extraction_docs;
    extraction_docs.reserve(cluster_extraction.size());
    for (PageIndex page : cluster_extraction) {
      extraction_docs.push_back(&pages[static_cast<size_t>(page)]);
    }
    std::vector<Extraction> extracted =
        ExtractFromPages(extraction_docs, cluster_extraction,
                         &trained.value(), featurizer, config.extraction);
    result.extractions.insert(result.extractions.end(), extracted.begin(),
                              extracted.end());
    result.models.push_back(
        ClusterModel{cluster, std::move(trained).value()});
    ++diag.counts(PipelineStage::kExtraction).completed;
  }

  std::sort(result.annotated_pages.begin(), result.annotated_pages.end());
  return result;
}

}  // namespace ceres
