file(REMOVE_RECURSE
  "libceres_text.a"
)
