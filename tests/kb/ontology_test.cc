#include "kb/ontology.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(OntologyTest, TypesAndPredicatesRegistered) {
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  TypeId person = ontology.AddEntityType("person");
  TypeId date = ontology.AddEntityType("date", /*is_literal=*/true);
  PredicateId directed =
      ontology.AddPredicate("film.directedBy", film, person, true);
  PredicateId released =
      ontology.AddPredicate("film.releaseDate", film, date, false);

  EXPECT_EQ(ontology.num_types(), 3);
  EXPECT_EQ(ontology.num_predicates(), 2);
  EXPECT_EQ(ontology.entity_type(film).name, "film");
  EXPECT_FALSE(ontology.entity_type(film).is_literal);
  EXPECT_TRUE(ontology.entity_type(date).is_literal);
  EXPECT_EQ(ontology.predicate(directed).subject_type, film);
  EXPECT_EQ(ontology.predicate(directed).object_type, person);
  EXPECT_TRUE(ontology.predicate(directed).multi_valued);
  EXPECT_FALSE(ontology.predicate(released).multi_valued);
}

TEST(OntologyTest, LookupByName) {
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  PredicateId predicate =
      ontology.AddPredicate("film.self", film, film, false);

  Result<TypeId> found_type = ontology.TypeByName("film");
  ASSERT_TRUE(found_type.ok());
  EXPECT_EQ(*found_type, film);
  Result<PredicateId> found_pred = ontology.PredicateByName("film.self");
  ASSERT_TRUE(found_pred.ok());
  EXPECT_EQ(*found_pred, predicate);

  EXPECT_EQ(ontology.TypeByName("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ontology.PredicateByName("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(OntologyDeathTest, DuplicateNamesRejected) {
  Ontology ontology;
  ontology.AddEntityType("film");
  EXPECT_DEATH(ontology.AddEntityType("film"), "duplicate entity type");
}

TEST(OntologyDeathTest, PredicateWithUnknownTypeRejected) {
  Ontology ontology;
  TypeId film = ontology.AddEntityType("film");
  EXPECT_DEATH(ontology.AddPredicate("p", film, 99, false), "");
}

}  // namespace
}  // namespace ceres
