file(REMOVE_RECURSE
  "CMakeFiles/custom_website.dir/custom_website.cpp.o"
  "CMakeFiles/custom_website.dir/custom_website.cpp.o.d"
  "custom_website"
  "custom_website.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_website.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
