#include "baselines/vertex.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;
using testing::TinyMovieKb;

NodeId FindText(const DomDocument& doc, const std::string& text) {
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (doc.node(id).text == text) return id;
  }
  return kInvalidNode;
}

class VertexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two manually annotated pages with varying cast-list lengths.
    docs_.push_back(ParseOrDie(FilmPageHtml(
        "Film One", "Director A", "Writer A", {"Actor 1", "Actor 2"},
        {"Comedy"})));
    docs_.push_back(ParseOrDie(FilmPageHtml(
        "Film Two", "Director B", "Writer B",
        {"Actor 3", "Actor 4", "Actor 5"}, {"Dramedy", "Comedy"})));
    for (const DomDocument& doc : docs_) ptrs_.push_back(&doc);

    auto annotate = [&](PageIndex page, const std::string& text,
                        PredicateId predicate) {
      NodeId node = FindText(docs_[static_cast<size_t>(page)], text);
      ASSERT_NE(node, kInvalidNode) << text;
      manual_.push_back(Annotation{page, node, predicate, kInvalidEntity});
    };
    annotate(0, "Film One", kNamePredicate);
    annotate(1, "Film Two", kNamePredicate);
    annotate(0, "Director A", kb_.directed);
    annotate(1, "Director B", kb_.directed);
    annotate(0, "Actor 1", kb_.cast);
    annotate(0, "Actor 2", kb_.cast);
    annotate(1, "Actor 3", kb_.cast);
    annotate(1, "Actor 5", kb_.cast);
    annotate(0, "Comedy", kb_.genre);
    annotate(1, "Dramedy", kb_.genre);
    annotate(1, "Comedy", kb_.genre);
  }

  TinyMovieKb kb_;
  std::vector<DomDocument> docs_;
  std::vector<const DomDocument*> ptrs_;
  std::vector<Annotation> manual_;
};

TEST_F(VertexTest, LearnsRulesAndExtractsFromUnseenPage) {
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(ptrs_, manual_);
  ASSERT_TRUE(wrapper.ok());

  DomDocument unseen = ParseOrDie(FilmPageHtml(
      "Film Three", "Director C", "Writer C",
      {"Actor 6", "Actor 7", "Actor 8", "Actor 9"}, {"Comedy"}));
  std::vector<Extraction> extractions =
      wrapper->Extract({&unseen}, {7});
  ASSERT_FALSE(extractions.empty());

  int cast = 0;
  bool director = false;
  for (const Extraction& extraction : extractions) {
    EXPECT_EQ(extraction.page, 7);
    EXPECT_EQ(extraction.subject, "Film Three");
    if (extraction.predicate == kb_.cast) ++cast;
    if (extraction.predicate == kb_.directed &&
        extraction.object == "Director C") {
      director = true;
    }
  }
  // The wildcarded list index generalizes to all four cast entries.
  EXPECT_EQ(cast, 4);
  EXPECT_TRUE(director);
}

TEST_F(VertexTest, WildcardOnlyWhereExamplesVary) {
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(ptrs_, manual_);
  ASSERT_TRUE(wrapper.ok());
  for (const VertexRule& rule : wrapper->rules()) {
    if (rule.predicate == kb_.directed) {
      // Both director examples sit at the identical path: no wildcards.
      for (const XPathStep& step : rule.steps) {
        EXPECT_NE(step.index, -1);
      }
    }
    if (rule.predicate == kb_.cast) {
      int wildcards = 0;
      for (const XPathStep& step : rule.steps) {
        if (step.index == -1) ++wildcards;
      }
      EXPECT_EQ(wildcards, 1);  // Only the <li> position varies.
    }
  }
}

TEST_F(VertexTest, AnchorsBlockLookalikePaths) {
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(ptrs_, manual_);
  ASSERT_TRUE(wrapper.ok());
  bool cast_rule_has_anchor = false;
  for (const VertexRule& rule : wrapper->rules()) {
    if (rule.predicate == kb_.cast) {
      for (const VertexRule::Anchor& anchor : rule.anchors) {
        if (anchor.attribute == "class" && anchor.value == "cast") {
          cast_rule_has_anchor = true;
        }
      }
    }
  }
  EXPECT_TRUE(cast_rule_has_anchor);
}

TEST_F(VertexTest, RequiresNameAnnotation) {
  std::vector<Annotation> no_name;
  for (const Annotation& annotation : manual_) {
    if (annotation.predicate != kNamePredicate) no_name.push_back(annotation);
  }
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(ptrs_, no_name);
  EXPECT_EQ(wrapper.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(VertexTest, RejectsEmptyAndOutOfRange) {
  EXPECT_EQ(VertexWrapper::Learn(ptrs_, {}).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<Annotation> bad{Annotation{99, 0, kNamePredicate, 0}};
  EXPECT_EQ(VertexWrapper::Learn(ptrs_, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(VertexTest, NoSubjectRuleMatchNoExtractions) {
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(ptrs_, manual_);
  ASSERT_TRUE(wrapper.ok());
  // A structurally different page: the NAME rule can't fire.
  DomDocument different =
      ParseOrDie("<body><table><tr><td>Film X</td></tr></table></body>");
  EXPECT_TRUE(wrapper->Extract({&different}, {0}).empty());
}

TEST_F(VertexTest, MissedFieldsOnShiftedPagesAreTheKnownWeakness) {
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(ptrs_, manual_);
  ASSERT_TRUE(wrapper.ok());
  // A page with an extra block before the director row shifts the row's
  // XPath; the fixed-index rule misses it (classic wrapper brittleness,
  // §6). The title h1 still matches, so we do get a subject.
  DomDocument shifted = ParseOrDie(
      "<body><div class=page><h1 class=title>Film Four</h1>"
      "<div class=promo><span>AD</span></div>"
      "<div class=row><span class=lbl>Director:</span>"
      "<span class=val>Director D</span></div></div></body>");
  std::vector<Extraction> extractions = wrapper->Extract({&shifted}, {0});
  bool director_extracted = false;
  for (const Extraction& extraction : extractions) {
    if (extraction.predicate == kb_.directed) director_extracted = true;
  }
  EXPECT_FALSE(director_extracted);
}

TEST_F(VertexTest, TextAnchorsLearnedFromLabels) {
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(ptrs_, manual_);
  ASSERT_TRUE(wrapper.ok());
  bool director_has_label_anchor = false;
  for (const VertexRule& rule : wrapper->rules()) {
    if (rule.predicate != kb_.directed) continue;
    for (const auto& [slot, text] : rule.text_anchors) {
      if (slot == 0 && text == "director") director_has_label_anchor = true;
    }
  }
  EXPECT_TRUE(director_has_label_anchor);
}

TEST_F(VertexTest, TextAnchorsBlockWrongRowMatches) {
  Result<VertexWrapper> wrapper = VertexWrapper::Learn(ptrs_, manual_);
  ASSERT_TRUE(wrapper.ok());
  // A page where an ad pushes the WRITER row to the director row's
  // training position: the path may match but the label anchor must not.
  DomDocument shifted = ParseOrDie(
      "<body><div class=page><h1 class=title>Film Five</h1>"
      "<div class=row><span class=lbl>Writer:</span>"
      "<span class=val>Impostor Writer</span></div></div></body>");
  std::vector<Extraction> extractions = wrapper->Extract({&shifted}, {0});
  for (const Extraction& extraction : extractions) {
    EXPECT_NE(extraction.object, "Impostor Writer")
        << "director rule fired on the writer row";
  }
}

}  // namespace
}  // namespace ceres
