#include "util/logging.h"

#include <atomic>

namespace ceres {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kQuiet)};
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogInfo(const std::string& message) {
  if (GetLogLevel() >= LogLevel::kInfo) {
    std::fprintf(stderr, "[ceres] %s\n", message.c_str());
  }
}

}  // namespace ceres
