#ifndef CERES_EVAL_REPORT_H_
#define CERES_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace ceres::eval {

/// Fixed-width console table printer used by every bench binary to emit
/// paper-style tables.
class TableReport {
 public:
  explicit TableReport(std::vector<std::string> headers);

  /// Adds one row; cells beyond the header count are dropped, missing
  /// cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column separators and a header underline.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a ratio with the given number of decimals ("0.93"); NaN-safe.
std::string FormatRatio(double value, int decimals = 2);

/// Formats "NA" when the condition is false, else the ratio.
std::string RatioOrNa(bool available, double value, int decimals = 2);

}  // namespace ceres::eval

#endif  // CERES_EVAL_REPORT_H_
