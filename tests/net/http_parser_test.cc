#include "net/http.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "robustness/fault_injector.h"
#include "util/random.h"

namespace ceres::net {
namespace {

HttpRequest PostExtract(const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/extract?site=films.example";
  request.version = "HTTP/1.1";
  request.body = body;
  return request;
}

TEST(RequestParserTest, ParsesSimpleGetInOneChunk) {
  RequestParser parser;
  ASSERT_EQ(parser.Consume("GET /healthz HTTP/1.1\r\n"
                           "Host: localhost\r\n\r\n"),
            ParseState::kComplete);
  HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.Path(), "/healthz");
  EXPECT_TRUE(request.Query().empty());
  ASSERT_NE(request.FindHeader("HOST"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "localhost");
  EXPECT_TRUE(request.KeepAlive());
}

TEST(RequestParserTest, RoundtripsEncodeRequestByteAtATime) {
  const std::string wire = EncodeRequest(PostExtract("<html>page</html>"));
  RequestParser parser;
  for (size_t i = 0; i < wire.size(); ++i) {
    ASSERT_EQ(parser.state(), ParseState::kNeedMore)
        << "completed early at byte " << i;
    parser.Consume(std::string_view(&wire[i], 1));
    if (i > 0 && i + 1 < wire.size()) {
      EXPECT_TRUE(parser.MidMessage());
    }
  }
  ASSERT_EQ(parser.state(), ParseState::kComplete);
  HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.Path(), "/extract");
  EXPECT_EQ(request.body, "<html>page</html>");
  EXPECT_FALSE(parser.MidMessage());
}

TEST(RequestParserTest, ReArmsOnPipelinedRequests) {
  const std::string wire =
      EncodeRequest(PostExtract("one")) + EncodeRequest(PostExtract("two"));
  RequestParser parser;
  ASSERT_EQ(parser.Consume(wire), ParseState::kComplete);
  EXPECT_EQ(parser.TakeRequest().body, "one");
  // TakeRequest re-parses the buffered leftover immediately.
  ASSERT_EQ(parser.state(), ParseState::kComplete);
  EXPECT_EQ(parser.TakeRequest().body, "two");
  EXPECT_EQ(parser.state(), ParseState::kNeedMore);
  EXPECT_FALSE(parser.MidMessage());
}

TEST(RequestParserTest, TornRequestParksInNeedMore) {
  RequestParser parser;
  EXPECT_EQ(parser.Consume("POST /extract HTTP/1.1\r\nContent-Le"),
            ParseState::kNeedMore);
  EXPECT_TRUE(parser.MidMessage());
  // The remainder completes the message; nothing was lost at the tear.
  EXPECT_EQ(parser.Consume("ngth: 4\r\n\r\nbody"), ParseState::kComplete);
  EXPECT_EQ(parser.TakeRequest().body, "body");
}

TEST(RequestParserTest, RejectsChunkedTransferEncodingWith501) {
  RequestParser parser;
  ASSERT_EQ(parser.Consume("POST /extract HTTP/1.1\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParserTest, RejectsOversizedBodyWith413) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  RequestParser parser(limits);
  ASSERT_EQ(parser.Consume("POST /extract HTTP/1.1\r\n"
                           "Content-Length: 17\r\n\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, RejectsOversizedRequestLineWith414) {
  HttpLimits limits;
  limits.max_request_line_bytes = 64;
  RequestParser parser(limits);
  const std::string long_target(100, 'a');
  EXPECT_EQ(parser.Consume("GET /" + long_target + " HTTP/1.1\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(RequestParserTest, OversizedRequestLineDetectedWithoutNewline) {
  // The limit must trip on buffered bytes alone — a peer streaming an
  // endless first line never sends the newline the parser is waiting for.
  HttpLimits limits;
  limits.max_request_line_bytes = 64;
  RequestParser parser(limits);
  EXPECT_EQ(parser.Consume("GET /" + std::string(100, 'a')),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(RequestParserTest, RejectsOversizedHeaderSectionWith431) {
  HttpLimits limits;
  limits.max_header_section_bytes = 64;
  RequestParser parser(limits);
  ASSERT_EQ(parser.Consume("GET / HTTP/1.1\r\n"), ParseState::kNeedMore);
  EXPECT_EQ(parser.Consume("X-Filler: " + std::string(100, 'x') + "\r\n"),
            ParseState::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, RejectsTooManyHeadersWith431) {
  HttpLimits limits;
  limits.max_headers = 4;
  RequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) {
    wire += "X-H" + std::to_string(i) + ": v\r\n";
  }
  ASSERT_EQ(parser.Consume(wire), ParseState::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, RejectsUnsupportedVersionWith505) {
  RequestParser parser;
  ASSERT_EQ(parser.Consume("GET / HTTP/2.0\r\n\r\n"), ParseState::kError);
  EXPECT_EQ(parser.error_status(), 505);
  // Free-text junk splits as <method> <target> <everything else>: it is
  // rejected at the version check, still before any header handling.
  RequestParser junk;
  ASSERT_EQ(junk.Consume("not a request line at all\r\n"),
            ParseState::kError);
  EXPECT_EQ(junk.error_status(), 505);
}

TEST(RequestParserTest, RejectsMalformedInputWith400) {
  const char* bad[] = {
      "GET\r\n",
      "GET /\r\n",
      "G@T / HTTP/1.1\r\n",
      "GET / HTTP/1.1\r\nno-colon-here\r\n",
      "GET / HTTP/1.1\r\n: empty-name\r\n",
      "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
  };
  for (const char* wire : bad) {
    SCOPED_TRACE(wire);
    RequestParser parser;
    ASSERT_EQ(parser.Consume(wire), ParseState::kError);
    EXPECT_EQ(parser.error_status(), 400);
  }
}

TEST(RequestParserTest, ErrorIsStickyUntilReset) {
  RequestParser parser;
  ASSERT_EQ(parser.Consume("garbage\r\n"), ParseState::kError);
  // More bytes — even a valid request — cannot clear the error.
  EXPECT_EQ(parser.Consume("GET / HTTP/1.1\r\n\r\n"), ParseState::kError);
  parser.Reset();
  EXPECT_EQ(parser.Consume("GET / HTTP/1.1\r\n\r\n"), ParseState::kComplete);
}

/// Fault-injected wire bytes: a truncated request is a strict prefix, so
/// it must never complete; after any corruption and a Reset, the parser
/// must accept a clean request (no poisoned state, no crash).
TEST(RequestParserTest, SurvivesInjectedTruncationAndGarbling) {
  const std::string wire =
      EncodeRequest(PostExtract("<html><body>Film page</body></html>"));
  const std::string clean = "GET /healthz HTTP/1.1\r\n\r\n";
  FaultInjectionConfig config;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng torn_rng(seed);
    const std::string torn =
        CorruptHtml(wire, FaultType::kTruncate, config, &torn_rng);
    ASSERT_LT(torn.size(), wire.size());
    RequestParser parser;
    EXPECT_NE(parser.Consume(torn), ParseState::kComplete)
        << "seed " << seed << " completed on a truncated request";
    parser.Reset();
    ASSERT_EQ(parser.Consume(clean), ParseState::kComplete);

    Rng garbled_rng(seed);
    const std::string garbled =
        CorruptHtml(wire, FaultType::kGarble, config, &garbled_rng);
    RequestParser reused;
    // Garbled bytes may parse, park, or error — anything but a crash; a
    // completed parse must hand back a request without tripping limits.
    if (reused.Consume(garbled) == ParseState::kComplete) {
      (void)reused.TakeRequest();
    }
    reused.Reset();
    ASSERT_EQ(reused.Consume(clean), ParseState::kComplete);
  }
}

TEST(ResponseParserTest, RoundtripsEncodeResponse) {
  HttpResponse response;
  response.status = 429;
  response.headers.push_back(HttpHeader{"x-ceres-shed", "rate-limit"});
  response.body = "slow down";
  const std::string wire = EncodeResponse(response, /*keep_alive=*/false);
  ResponseParser parser;
  ASSERT_EQ(parser.Consume(wire), ParseState::kComplete);
  HttpResponse parsed = parser.TakeResponse();
  EXPECT_EQ(parsed.status, 429);
  EXPECT_EQ(parsed.body, "slow down");
  const std::string* connection = nullptr;
  for (const HttpHeader& header : parsed.headers) {
    if (header.name == "connection") connection = &header.value;
  }
  ASSERT_NE(connection, nullptr);
  EXPECT_EQ(*connection, "close");
}

TEST(ResponseParserTest, RequiresContentLengthExceptFor204) {
  ResponseParser parser;
  EXPECT_EQ(parser.Consume("HTTP/1.1 200 OK\r\n\r\n"), ParseState::kError);
  ResponseParser no_content;
  EXPECT_EQ(no_content.Consume("HTTP/1.1 204 No Content\r\n\r\n"),
            ParseState::kComplete);
  EXPECT_TRUE(no_content.TakeResponse().body.empty());
}

TEST(HttpMessageTest, KeepAliveDefaultsByVersion) {
  HttpRequest request;
  request.version = "HTTP/1.1";
  EXPECT_TRUE(request.KeepAlive());
  request.headers.push_back(HttpHeader{"connection", "Close"});
  EXPECT_FALSE(request.KeepAlive());
  HttpRequest old_request;
  old_request.version = "HTTP/1.0";
  EXPECT_FALSE(old_request.KeepAlive());
  old_request.headers.push_back(HttpHeader{"connection", "Keep-Alive"});
  EXPECT_TRUE(old_request.KeepAlive());
}

TEST(HttpMessageTest, ParseQuerySplitsPairs) {
  const auto query = ParseQuery("site=films.example&url=x+y&flag");
  EXPECT_EQ(query.at("site"), "films.example");
  EXPECT_EQ(query.at("url"), "x y");
  EXPECT_EQ(query.at("flag"), "");
}

}  // namespace
}  // namespace ceres::net
