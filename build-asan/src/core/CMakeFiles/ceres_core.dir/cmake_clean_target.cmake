file(REMOVE_RECURSE
  "libceres_core.a"
)
