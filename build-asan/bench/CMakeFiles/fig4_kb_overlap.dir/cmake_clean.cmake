file(REMOVE_RECURSE
  "CMakeFiles/fig4_kb_overlap.dir/fig4_kb_overlap.cc.o"
  "CMakeFiles/fig4_kb_overlap.dir/fig4_kb_overlap.cc.o.d"
  "fig4_kb_overlap"
  "fig4_kb_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_kb_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
