# Empty compiler generated dependencies file for table7_topic_id.
# This may be replaced when dependencies are built.
