#include "kb/knowledge_base.h"

#include <algorithm>

#include "text/normalize.h"
#include "util/logging.h"

namespace ceres {

EntityId KnowledgeBase::AddEntity(TypeId type, std::string_view name) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(type >= 0 && type < ontology_.num_types());
  EntityId id = static_cast<EntityId>(entities_.size());
  entities_.push_back(Entity{id, type, std::string(name), {}});
  return id;
}

void KnowledgeBase::AddAlias(EntityId id, std::string_view alias) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(id >= 0 && id < num_entities());
  entities_[static_cast<size_t>(id)].aliases.emplace_back(alias);
}

void KnowledgeBase::AddTriple(EntityId subject, PredicateId predicate,
                              EntityId object) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(subject >= 0 && subject < num_entities());
  CERES_CHECK(object >= 0 && object < num_entities());
  CERES_CHECK(predicate >= 0 && predicate < ontology_.num_predicates());
  triples_.push_back(Triple{subject, predicate, object});
}

void KnowledgeBase::Freeze() {
  CERES_CHECK(!frozen_);
  // Deduplicate triples.
  std::sort(triples_.begin(), triples_.end(),
            [](const Triple& a, const Triple& b) {
              if (a.subject != b.subject) return a.subject < b.subject;
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              return a.object < b.object;
            });
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());

  for (const Entity& entity : entities_) {
    name_index_.Add(entity.name, entity.id);
    for (const std::string& alias : entity.aliases) {
      name_index_.Add(alias, entity.id);
    }
  }
  for (size_t i = 0; i < triples_.size(); ++i) {
    const Triple& triple = triples_[i];
    triples_by_subject_[triple.subject].push_back(static_cast<int>(i));
    objects_by_subject_[triple.subject].insert(triple.object);
    std::string key =
        NormalizeText(entities_[static_cast<size_t>(triple.object)].name);
    if (!key.empty()) ++object_string_triple_count_[key];
  }
  frozen_ = true;
}

const Entity& KnowledgeBase::entity(EntityId id) const {
  CERES_CHECK(id >= 0 && id < num_entities());
  return entities_[static_cast<size_t>(id)];
}

int64_t KnowledgeBase::CountEntitiesOfType(TypeId type) const {
  int64_t count = 0;
  for (const Entity& entity : entities_) {
    if (entity.type == type) ++count;
  }
  return count;
}

int64_t KnowledgeBase::CountPredicatesForSubjectType(TypeId type) const {
  std::unordered_set<PredicateId> seen;
  for (const Triple& triple : triples_) {
    if (entities_[static_cast<size_t>(triple.subject)].type == type) {
      seen.insert(triple.predicate);
    }
  }
  return static_cast<int64_t>(seen.size());
}

std::vector<EntityId> KnowledgeBase::MatchMentions(
    std::string_view text) const {
  CERES_CHECK(frozen_);
  return name_index_.Match(text);
}

std::vector<Triple> KnowledgeBase::TriplesWithSubject(
    EntityId subject) const {
  CERES_CHECK(frozen_);
  std::vector<Triple> out;
  auto it = triples_by_subject_.find(subject);
  if (it == triples_by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (int index : it->second) {
    out.push_back(triples_[static_cast<size_t>(index)]);
  }
  return out;
}

const std::unordered_set<EntityId>& KnowledgeBase::ObjectsOfSubject(
    EntityId subject) const {
  CERES_CHECK(frozen_);
  auto it = objects_by_subject_.find(subject);
  return it == objects_by_subject_.end() ? empty_set_ : it->second;
}

std::vector<PredicateId> KnowledgeBase::PredicatesBetween(
    EntityId subject, EntityId object) const {
  CERES_CHECK(frozen_);
  std::vector<PredicateId> out;
  auto it = triples_by_subject_.find(subject);
  if (it == triples_by_subject_.end()) return out;
  for (int index : it->second) {
    const Triple& triple = triples_[static_cast<size_t>(index)];
    if (triple.object == object) out.push_back(triple.predicate);
  }
  return out;
}

bool KnowledgeBase::HasTriple(EntityId subject, PredicateId predicate,
                              EntityId object) const {
  CERES_CHECK(frozen_);
  auto it = triples_by_subject_.find(subject);
  if (it == triples_by_subject_.end()) return false;
  for (int index : it->second) {
    const Triple& triple = triples_[static_cast<size_t>(index)];
    if (triple.predicate == predicate && triple.object == object) return true;
  }
  return false;
}

std::unordered_set<std::string> KnowledgeBase::CommonObjectStrings(
    double fraction, int64_t min_count) const {
  CERES_CHECK(frozen_);
  std::unordered_set<std::string> out;
  if (triples_.empty()) return out;
  const double threshold =
      std::max(fraction * static_cast<double>(triples_.size()),
               static_cast<double>(min_count));
  for (const auto& [key, count] : object_string_triple_count_) {
    if (static_cast<double>(count) >= threshold) out.insert(key);
  }
  return out;
}

}  // namespace ceres
