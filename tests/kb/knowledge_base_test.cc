#include "kb/knowledge_base.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

namespace ceres {
namespace {

class KnowledgeBaseTest : public ::testing::Test {
 protected:
  KnowledgeBaseTest() : kb_(MakeOntology()) {
    film_type_ = *kb_.ontology().TypeByName("film");
    person_type_ = *kb_.ontology().TypeByName("person");
    directed_ = *kb_.ontology().PredicateByName("directedBy");
    wrote_ = *kb_.ontology().PredicateByName("writtenBy");

    film_ = kb_.AddEntity(film_type_, "Do the Right Thing");
    other_film_ = kb_.AddEntity(film_type_, "Crooklyn");
    lee_ = kb_.AddEntity(person_type_, "Spike Lee");
    kb_.AddAlias(lee_, "S. Lee");
    kb_.AddTriple(film_, directed_, lee_);
    kb_.AddTriple(film_, wrote_, lee_);
    kb_.AddTriple(other_film_, directed_, lee_);
    kb_.AddTriple(other_film_, directed_, lee_);  // Duplicate, collapsed.
  }

  static Ontology MakeOntology() {
    Ontology ontology;
    TypeId film = ontology.AddEntityType("film");
    TypeId person = ontology.AddEntityType("person");
    ontology.AddPredicate("directedBy", film, person, true);
    ontology.AddPredicate("writtenBy", film, person, true);
    return ontology;
  }

  KnowledgeBase kb_;
  TypeId film_type_ = kInvalidType;
  TypeId person_type_ = kInvalidType;
  PredicateId directed_ = kInvalidPredicate;
  PredicateId wrote_ = kInvalidPredicate;
  EntityId film_ = kInvalidEntity;
  EntityId other_film_ = kInvalidEntity;
  EntityId lee_ = kInvalidEntity;
};

TEST_F(KnowledgeBaseTest, FreezeDeduplicatesTriples) {
  kb_.Freeze();
  EXPECT_EQ(kb_.num_triples(), 3);
  EXPECT_EQ(kb_.num_entities(), 3);
}

TEST_F(KnowledgeBaseTest, MatchMentionsByNameAndAlias) {
  kb_.Freeze();
  EXPECT_EQ(kb_.MatchMentions("spike lee"), (std::vector<EntityId>{lee_}));
  EXPECT_EQ(kb_.MatchMentions("S. Lee"), (std::vector<EntityId>{lee_}));
  EXPECT_TRUE(kb_.MatchMentions("Nobody").empty());
}

TEST_F(KnowledgeBaseTest, TriplesWithSubject) {
  kb_.Freeze();
  std::span<const Triple> triples = kb_.TriplesWithSubject(film_);
  EXPECT_EQ(triples.size(), 2u);
  EXPECT_TRUE(kb_.TriplesWithSubject(lee_).empty());
  // The span aliases the frozen triple store and is sorted by
  // (subject, predicate, object).
  for (const Triple& triple : triples) EXPECT_EQ(triple.subject, film_);
}

TEST_F(KnowledgeBaseTest, ObjectsOfSubject) {
  kb_.Freeze();
  std::span<const EntityId> objects = kb_.ObjectsOfSubject(film_);
  EXPECT_EQ(objects.size(), 1u);
  EXPECT_TRUE(std::binary_search(objects.begin(), objects.end(), lee_));
  EXPECT_TRUE(kb_.ObjectsOfSubject(lee_).empty());
}

TEST_F(KnowledgeBaseTest, PredicatesBetween) {
  kb_.Freeze();
  std::vector<PredicateId> predicates = kb_.PredicatesBetween(film_, lee_);
  EXPECT_EQ(predicates.size(), 2u);
  EXPECT_TRUE(kb_.PredicatesBetween(lee_, film_).empty());
}

TEST_F(KnowledgeBaseTest, HasTriple) {
  kb_.Freeze();
  EXPECT_TRUE(kb_.HasTriple(film_, directed_, lee_));
  EXPECT_TRUE(kb_.HasTriple(other_film_, directed_, lee_));
  EXPECT_FALSE(kb_.HasTriple(other_film_, wrote_, lee_));
}

TEST_F(KnowledgeBaseTest, CommonObjectStrings) {
  kb_.Freeze();
  // "spike lee" is object of all 3 triples.
  auto common = kb_.CommonObjectStrings(0.5);
  EXPECT_EQ(common.size(), 1u);
  EXPECT_TRUE(common.count("spike lee") > 0);
  // With a min_count floor above 3, nothing qualifies.
  EXPECT_TRUE(kb_.CommonObjectStrings(0.5, 10).empty());
}

TEST_F(KnowledgeBaseTest, CountsByType) {
  kb_.Freeze();
  EXPECT_EQ(kb_.CountEntitiesOfType(film_type_), 2);
  EXPECT_EQ(kb_.CountEntitiesOfType(person_type_), 1);
  EXPECT_EQ(kb_.CountPredicatesForSubjectType(film_type_), 2);
  EXPECT_EQ(kb_.CountPredicatesForSubjectType(person_type_), 0);
}

TEST_F(KnowledgeBaseTest, QueriesRequireFreeze) {
  EXPECT_DEATH(kb_.MatchMentions("x"), "");
  EXPECT_DEATH(kb_.TriplesWithSubject(film_), "");
}

TEST_F(KnowledgeBaseTest, MutationAfterFreezeDies) {
  kb_.Freeze();
  EXPECT_DEATH(kb_.AddEntity(film_type_, "Late"), "");
  EXPECT_DEATH(kb_.AddTriple(film_, directed_, lee_), "");
}

}  // namespace
}  // namespace ceres
