#include "util/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

// Counting replacements for the global allocation functions. Relaxed atomics:
// the counters are read at bench phase boundaries, never used for
// synchronization. Deliberately no operator delete tracking — the benches
// gate on allocation *churn*, and counting frees would double the hook cost.
//
// Under a sanitizer build (CERES_ALLOC_COUNT_DISABLED, set by CMake when
// CERES_SANITIZE is non-empty) the replacement is compiled out entirely so
// ASan/TSan keep their own allocator interposition; the counters then stay
// at zero and callers must treat a zero delta as "counting unavailable".

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};

#ifndef CERES_ALLOC_COUNT_DISABLED
void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must not.
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
#endif
}  // namespace

#ifndef CERES_ALLOC_COUNT_DISABLED
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // CERES_ALLOC_COUNT_DISABLED

namespace ceres {
namespace util {

uint64_t AllocationCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

uint64_t AllocationBytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

}  // namespace util
}  // namespace ceres
