# Empty dependencies file for bootstrap_new_vertical.
# This may be replaced when dependencies are built.
