file(REMOVE_RECURSE
  "libceres_robustness.a"
)
