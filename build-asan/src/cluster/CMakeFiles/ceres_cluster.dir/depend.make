# Empty dependencies file for ceres_cluster.
# This may be replaced when dependencies are built.
