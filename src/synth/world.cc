#include "synth/world.h"

#include <functional>

#include <cmath>
#include <set>
#include <unordered_set>

#include "util/string_util.h"

namespace ceres::synth {

namespace {

int Scaled(int count, double scale) {
  return std::max(1, static_cast<int>(std::lround(count * scale)));
}

// Generates up to `count` entities with mostly unique names; a handful of
// natural collisions are allowed (real KBs have them too).
std::vector<EntityId> MakeEntities(World* world, TypeId type, int count,
                                   Rng* rng,
                                   const std::function<std::string(Rng*)>& gen) {
  std::vector<EntityId> ids;
  std::unordered_set<std::string> used;
  ids.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::string name = gen(rng);
    for (int attempt = 0; attempt < 12 && used.count(name) > 0; ++attempt) {
      name = gen(rng);
    }
    used.insert(name);
    ids.push_back(world->Add(type, name));
  }
  return ids;
}

// Popularity-skewed pick: low indices (popular entities) are favoured.
EntityId SkewedPick(const std::vector<EntityId>& ids, Rng* rng) {
  double u = rng->UniformDouble();
  size_t index = static_cast<size_t>(u * u * static_cast<double>(ids.size()));
  if (index >= ids.size()) index = ids.size() - 1;
  return ids[index];
}

// Picks `n` distinct skewed entities.
std::vector<EntityId> SkewedPickDistinct(const std::vector<EntityId>& ids,
                                         int n, Rng* rng) {
  std::set<EntityId> chosen;
  int guard = 0;
  while (static_cast<int>(chosen.size()) < n && guard++ < 20 * n + 50) {
    chosen.insert(SkewedPick(ids, rng));
  }
  return {chosen.begin(), chosen.end()};
}

std::string AliasOf(std::string_view name, Rng* rng) {
  // "Marcus Ellery" -> "M. Ellery" or "Marcus J. Ellery".
  size_t space = name.find(' ');
  if (space == std::string_view::npos || space == 0) return StrCat(name, " Jr.");
  if (rng->Bernoulli(0.5)) {
    return StrCat(name.substr(0, 1), ". ", name.substr(space + 1));
  }
  return StrCat(name.substr(0, space), " ",
                static_cast<char>('A' + rng->Uniform(0, 25)), ". ",
                name.substr(space + 1));
}

}  // namespace

World BuildMovieWorld(const MovieWorldConfig& config) {
  Ontology ontology;
  TypeId person = ontology.AddEntityType("person");
  TypeId film = ontology.AddEntityType("film");
  TypeId series = ontology.AddEntityType("tv_series");
  TypeId episode = ontology.AddEntityType("tv_episode");
  TypeId genre = ontology.AddEntityType("genre");
  TypeId place = ontology.AddEntityType("place");
  TypeId date = ontology.AddEntityType("date", /*is_literal=*/true);
  TypeId year = ontology.AddEntityType("year", /*is_literal=*/true);
  TypeId number = ontology.AddEntityType("number", /*is_literal=*/true);
  TypeId alias = ontology.AddEntityType("alias_name", /*is_literal=*/true);
  TypeId rating = ontology.AddEntityType("rating", /*is_literal=*/true);

  auto p = [&](const char* name, TypeId s, TypeId o, bool multi) {
    return ontology.AddPredicate(name, s, o, multi);
  };
  PredicateId film_cast = p(pred::kFilmHasCastMember, film, person, true);
  PredicateId film_director = p(pred::kFilmDirectedBy, film, person, true);
  PredicateId film_writer = p(pred::kFilmWrittenBy, film, person, true);
  PredicateId film_producer = p(pred::kFilmProducedBy, film, person, true);
  PredicateId film_music = p(pred::kFilmMusicBy, film, person, false);
  PredicateId film_genre = p(pred::kFilmHasGenre, film, genre, true);
  PredicateId film_date = p(pred::kFilmReleaseDate, film, date, false);
  PredicateId film_year = p(pred::kFilmReleaseYear, film, year, false);
  PredicateId film_rating = p(pred::kFilmMpaaRating, film, rating, false);
  PredicateId acted_in = p(pred::kPersonActedIn, person, film, true);
  PredicateId director_of = p(pred::kPersonDirectorOf, person, film, true);
  PredicateId writer_of = p(pred::kPersonWriterOf, person, film, true);
  PredicateId producer_of = p(pred::kPersonProducerOf, person, film, true);
  PredicateId music_for = p(pred::kPersonMusicFor, person, film, true);
  PredicateId has_alias = p(pred::kPersonAlias, person, alias, false);
  PredicateId birth_place = p(pred::kPersonBirthPlace, person, place, false);
  PredicateId birth_date = p(pred::kPersonBirthDate, person, date, false);
  PredicateId ep_number = p(pred::kEpisodeNumber, episode, number, false);
  PredicateId ep_season = p(pred::kEpisodeSeason, episode, number, false);
  PredicateId ep_series = p(pred::kEpisodeSeries, episode, series, false);

  World world(std::move(ontology));
  Rng rng(config.seed);

  // Rosters.
  std::vector<EntityId> persons =
      MakeEntities(&world, person, Scaled(config.num_persons, config.scale),
                   &rng, [](Rng* r) { return PersonName(r); });
  std::vector<EntityId> films =
      MakeEntities(&world, film, Scaled(config.num_films, config.scale), &rng,
                   [](Rng* r) { return FilmTitle(r); });
  std::vector<EntityId> series_ids =
      MakeEntities(&world, series, Scaled(config.num_series, config.scale),
                   &rng, [](Rng* r) { return StrCat(FilmTitle(r), " (TV)"); });
  std::vector<EntityId> places =
      MakeEntities(&world, place, Scaled(config.num_places, config.scale),
                   &rng, [](Rng* r) { return PlaceName(r); });
  std::vector<EntityId> genres;
  for (const std::string& g : GenreNames()) {
    genres.push_back(world.Add(genre, g));
  }
  std::vector<EntityId> years;
  for (int y = 1950; y <= 2017; ++y) {
    years.push_back(world.Add(year, std::to_string(y)));
  }
  std::vector<EntityId> numbers;
  for (int n = 1; n <= 30; ++n) {
    numbers.push_back(world.Add(number, std::to_string(n)));
  }
  std::vector<EntityId> ratings;
  for (const char* r : {"G", "PG", "PG-13", "R"}) {
    ratings.push_back(world.Add(rating, r));
  }

  // Films and their crews.
  for (EntityId f : films) {
    int year_index = static_cast<int>(rng.Uniform(0, 67));
    world.kb.AddTriple(f, film_year, years[static_cast<size_t>(year_index)]);
    EntityId d = world.Add(
        date, DateString(&rng, 1950 + year_index, 1950 + year_index));
    world.kb.AddTriple(f, film_date, d);

    std::vector<EntityId> directors = SkewedPickDistinct(
        persons, rng.Bernoulli(0.12) ? 2 : 1, &rng);
    for (EntityId x : directors) {
      world.kb.AddTriple(f, film_director, x);
      world.kb.AddTriple(x, director_of, f);
    }
    std::vector<EntityId> writers =
        SkewedPickDistinct(persons, static_cast<int>(rng.Uniform(1, 3)), &rng);
    // Directors frequently write their own films (Figure 1's Spike Lee).
    if (rng.Bernoulli(0.3)) writers.push_back(directors.front());
    for (EntityId x : writers) {
      world.kb.AddTriple(f, film_writer, x);
      world.kb.AddTriple(x, writer_of, f);
    }
    int cast_size = static_cast<int>(rng.Uniform(3, 18));
    std::vector<EntityId> cast = SkewedPickDistinct(persons, cast_size, &rng);
    if (rng.Bernoulli(0.15)) cast.push_back(directors.front());
    for (EntityId x : cast) {
      world.kb.AddTriple(f, film_cast, x);
      world.kb.AddTriple(x, acted_in, f);
    }
    std::vector<EntityId> producers =
        SkewedPickDistinct(persons, static_cast<int>(rng.Uniform(1, 2)), &rng);
    for (EntityId x : producers) {
      world.kb.AddTriple(f, film_producer, x);
      world.kb.AddTriple(x, producer_of, f);
    }
    if (rng.Bernoulli(0.6)) {
      EntityId composer = SkewedPick(persons, &rng);
      world.kb.AddTriple(f, film_music, composer);
      world.kb.AddTriple(composer, music_for, f);
    }
    int genre_count = static_cast<int>(rng.Uniform(2, 3));
    for (EntityId g : SkewedPickDistinct(genres, genre_count, &rng)) {
      world.kb.AddTriple(f, film_genre, g);
    }
    world.kb.AddTriple(f, film_rating, rng.Pick(ratings));
  }

  // People's personal data.
  for (EntityId x : persons) {
    if (rng.Bernoulli(0.3)) {
      EntityId a =
          world.Add(alias, AliasOf(world.kb.entity(x).name, &rng));
      world.kb.AddTriple(x, has_alias, a);
    }
    if (rng.Bernoulli(0.7)) {
      world.kb.AddTriple(x, birth_place, rng.Pick(places));
    }
    if (rng.Bernoulli(0.7)) {
      EntityId d = world.Add(date, DateString(&rng, 1920, 1999));
      world.kb.AddTriple(x, birth_date, d);
    }
  }

  // TV episodes: many share ambiguous titles ("Pilot", "Help").
  int episode_count = Scaled(config.num_episodes, config.scale);
  for (int i = 0; i < episode_count; ++i) {
    std::string title = rng.Bernoulli(0.4)
                            ? rng.Pick(AmbiguousEpisodeTitles())
                            : FilmTitle(&rng);
    EntityId e = world.Add(episode, title);
    world.kb.AddTriple(e, ep_series, rng.Pick(series_ids));
    world.kb.AddTriple(e, ep_season,
                       numbers[static_cast<size_t>(rng.Uniform(0, 7))]);
    world.kb.AddTriple(e, ep_number,
                       numbers[static_cast<size_t>(rng.Uniform(0, 23))]);
  }

  world.kb.Freeze();
  return world;
}

World BuildBookWorld(const BookWorldConfig& config) {
  Ontology ontology;
  TypeId author = ontology.AddEntityType("author");
  TypeId book = ontology.AddEntityType("book");
  TypeId publisher = ontology.AddEntityType("publisher");
  TypeId date = ontology.AddEntityType("date", /*is_literal=*/true);
  TypeId isbn = ontology.AddEntityType("isbn", /*is_literal=*/true);

  PredicateId by = ontology.AddPredicate(pred::kBookAuthor, book, author, true);
  PredicateId pub =
      ontology.AddPredicate(pred::kBookPublisher, book, publisher, false);
  PredicateId pub_date =
      ontology.AddPredicate(pred::kBookPubDate, book, date, false);
  PredicateId book_isbn =
      ontology.AddPredicate(pred::kBookIsbn, book, isbn, false);

  World world(std::move(ontology));
  Rng rng(config.seed);
  std::vector<EntityId> authors =
      MakeEntities(&world, author, Scaled(config.num_authors, config.scale),
                   &rng, [](Rng* r) { return PersonName(r); });
  std::vector<EntityId> publishers = MakeEntities(
      &world, publisher, Scaled(config.num_publishers, config.scale), &rng,
      [](Rng* r) { return PublisherName(r); });
  std::vector<EntityId> books =
      MakeEntities(&world, book, Scaled(config.num_books, config.scale), &rng,
                   [](Rng* r) { return BookTitle(r); });

  for (EntityId b : books) {
    int author_count = rng.Bernoulli(0.15) ? 2 : 1;
    for (EntityId a : SkewedPickDistinct(authors, author_count, &rng)) {
      world.kb.AddTriple(b, by, a);
    }
    world.kb.AddTriple(b, pub, SkewedPick(publishers, &rng));
    EntityId d = world.Add(date, DateString(&rng, 1960, 2017));
    world.kb.AddTriple(b, pub_date, d);
    EntityId i = world.Add(isbn, IsbnString(&rng));
    world.kb.AddTriple(b, book_isbn, i);
  }
  world.kb.Freeze();
  return world;
}

World BuildNbaWorld(const NbaWorldConfig& config) {
  Ontology ontology;
  TypeId player = ontology.AddEntityType("player");
  TypeId team = ontology.AddEntityType("team");
  TypeId length = ontology.AddEntityType("length", /*is_literal=*/true);
  TypeId mass = ontology.AddEntityType("mass", /*is_literal=*/true);

  PredicateId member =
      ontology.AddPredicate(pred::kPlayerTeam, player, team, false);
  PredicateId height =
      ontology.AddPredicate(pred::kPlayerHeight, player, length, false);
  PredicateId weight =
      ontology.AddPredicate(pred::kPlayerWeight, player, mass, false);

  World world(std::move(ontology));
  Rng rng(config.seed);
  std::vector<EntityId> teams =
      MakeEntities(&world, team, Scaled(config.num_teams, config.scale), &rng,
                   [](Rng* r) { return TeamName(r); });
  std::vector<EntityId> players =
      MakeEntities(&world, player, Scaled(config.num_players, config.scale),
                   &rng, [](Rng* r) { return PersonName(r); });

  // Shared height/weight literals: values repeat across players, which is
  // exactly the ambiguity NBA pages carry.
  std::unordered_map<std::string, EntityId> heights;
  std::unordered_map<std::string, EntityId> weights;
  for (EntityId x : players) {
    world.kb.AddTriple(x, member, rng.Pick(teams));
    std::string h = HeightString(&rng);
    auto hit = heights.find(h);
    EntityId h_id =
        hit != heights.end() ? hit->second : (heights[h] = world.Add(length, h));
    world.kb.AddTriple(x, height, h_id);
    std::string w = WeightString(&rng);
    auto wit = weights.find(w);
    EntityId w_id =
        wit != weights.end() ? wit->second : (weights[w] = world.Add(mass, w));
    world.kb.AddTriple(x, weight, w_id);
  }
  world.kb.Freeze();
  return world;
}

World BuildUniversityWorld(const UniversityWorldConfig& config) {
  Ontology ontology;
  TypeId university = ontology.AddEntityType("university");
  TypeId category = ontology.AddEntityType("category", /*is_literal=*/true);
  TypeId phone = ontology.AddEntityType("phone", /*is_literal=*/true);
  TypeId url = ontology.AddEntityType("url", /*is_literal=*/true);

  PredicateId type_pred = ontology.AddPredicate(pred::kUniversityType,
                                                university, category, false);
  PredicateId phone_pred = ontology.AddPredicate(pred::kUniversityPhone,
                                                 university, phone, false);
  PredicateId site_pred = ontology.AddPredicate(pred::kUniversityWebsite,
                                                university, url, false);

  World world(std::move(ontology));
  Rng rng(config.seed);
  EntityId public_type = world.Add(category, "Public");
  EntityId private_type = world.Add(category, "Private");
  std::vector<EntityId> universities = MakeEntities(
      &world, university, Scaled(config.num_universities, config.scale), &rng,
      [](Rng* r) { return UniversityName(r); });
  for (EntityId u : universities) {
    world.kb.AddTriple(u, type_pred,
                       rng.Bernoulli(0.6) ? public_type : private_type);
    EntityId ph = world.Add(phone, PhoneString(&rng));
    world.kb.AddTriple(u, phone_pred, ph);
    EntityId web =
        world.Add(url, WebsiteString(&rng, world.kb.entity(u).name));
    world.kb.AddTriple(u, site_pred, web);
  }
  world.kb.Freeze();
  return world;
}

}  // namespace ceres::synth
