// ceres_lint — project static analyzer. See tools/lint/lint.h for the rule
// set. Usage:
//
//   ceres_lint [--layers=FILE] [--json[=FILE]] <path> [path...]
//
// Each path is a file or directory. --layers enables the layer-violation
// module-DAG check against the declared graph; --json emits the machine-
// readable report to stdout (or FILE). Exits 0 when clean, 1 on any
// violation, 2 on usage/IO errors. Wired up as the `lint` CMake target
// over src/, tools/, and bench/.

#include <cstdio>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  std::string out;
  std::string err;
  const int code = ceres::lint::RunLintCli(args, &out, &err);
  if (!err.empty()) std::fputs(err.c_str(), stderr);
  if (!out.empty()) std::fputs(out.c_str(), stdout);
  return code;
}
