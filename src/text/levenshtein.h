#ifndef CERES_TEXT_LEVENSHTEIN_H_
#define CERES_TEXT_LEVENSHTEIN_H_

#include <algorithm>
#include <cstddef>
#include <string_view>
#include <vector>

namespace ceres {

/// Levenshtein edit distance between two sequences (insertions, deletions,
/// substitutions each cost 1). Works on any random-access sequences whose
/// elements compare with ==; used both for character strings and for XPath
/// step sequences (§3.2.2 clustering distance).
template <typename Seq>
size_t LevenshteinDistance(const Seq& a, const Seq& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

/// Levenshtein distance with early exit: returns `bound + 1` as soon as the
/// true distance provably exceeds `bound`. Use when only "is the distance
/// <= k" matters (banded DP, O(k * min(n, m)) time).
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t bound);

}  // namespace ceres

#endif  // CERES_TEXT_LEVENSHTEIN_H_
