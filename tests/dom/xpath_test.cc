#include "dom/xpath.h"

#include <gtest/gtest.h>

#include "dom/html_parser.h"

namespace ceres {
namespace {

DomDocument Parse(const std::string& html) {
  Result<DomDocument> doc = ParseHtml(html);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

TEST(XPathTest, FromNodeAndToString) {
  DomDocument doc =
      Parse("<body><div>a</div><div><span>b</span></div></body>");
  // Find the span.
  NodeId span = kInvalidNode;
  for (NodeId id = 0; id < doc.size(); ++id) {
    if (doc.node(id).tag == "span") span = id;
  }
  ASSERT_NE(span, kInvalidNode);
  XPath path = XPath::FromNode(doc, span);
  EXPECT_EQ(path.ToString(), "/html/body[1]/div[2]/span[1]");
}

TEST(XPathTest, ParseRoundTrip) {
  const std::string text = "/html/body[1]/div[2]/span[1]";
  Result<XPath> path = XPath::Parse(text);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->ToString(), text);
  EXPECT_EQ(path->size(), 4u);
  EXPECT_EQ(path->steps()[2].tag, "div");
  EXPECT_EQ(path->steps()[2].index, 2);
}

TEST(XPathTest, ParseRejectsMalformed) {
  EXPECT_FALSE(XPath::Parse("").ok());
  EXPECT_FALSE(XPath::Parse("html/body").ok());
  EXPECT_FALSE(XPath::Parse("/html//body").ok());
  EXPECT_FALSE(XPath::Parse("/html/div[0]").ok());
  EXPECT_FALSE(XPath::Parse("/html/div[x]").ok());
  EXPECT_FALSE(XPath::Parse("/html/div[2").ok());
  EXPECT_FALSE(XPath::Parse("/").ok());
}

TEST(XPathTest, ResolveFindsNode) {
  DomDocument doc =
      Parse("<body><div>a</div><div><span>b</span></div></body>");
  Result<XPath> path = XPath::Parse("/html/body[1]/div[2]/span[1]");
  ASSERT_TRUE(path.ok());
  NodeId node = path->Resolve(doc);
  ASSERT_NE(node, kInvalidNode);
  EXPECT_EQ(doc.node(node).text, "b");
}

TEST(XPathTest, ResolveMissingReturnsInvalid) {
  DomDocument doc = Parse("<body><div>a</div></body>");
  EXPECT_EQ(XPath::Parse("/html/body[1]/div[2]")->Resolve(doc),
            kInvalidNode);
  EXPECT_EQ(XPath::Parse("/html/section[1]")->Resolve(doc), kInvalidNode);
}

TEST(XPathTest, RoundTripEveryNode) {
  DomDocument doc = Parse(
      "<body><ul><li>1</li><li>2</li><li>3</li></ul><table><tr><td>x</td>"
      "</tr></table></body>");
  for (NodeId id = 0; id < doc.size(); ++id) {
    XPath path = XPath::FromNode(doc, id);
    EXPECT_EQ(path.Resolve(doc), id) << path.ToString();
    Result<XPath> reparsed = XPath::Parse(path.ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(*reparsed == path, true);
  }
}

TEST(XPathEditDistanceTest, IdenticalIsZero) {
  XPath a = *XPath::Parse("/html/body[1]/div[2]");
  EXPECT_DOUBLE_EQ(XPathEditDistance(a, a), 0.0);
}

TEST(XPathEditDistanceTest, LeafIndexDifferenceIsCheap) {
  // Last-step index mismatch (two entries of one list): 1 - 0.75*1 = 0.25.
  XPath a = *XPath::Parse("/html/body[1]/ul[1]/li[3]");
  XPath b = *XPath::Parse("/html/body[1]/ul[1]/li[9]");
  EXPECT_DOUBLE_EQ(XPathEditDistance(a, b), 0.25);
}

TEST(XPathEditDistanceTest, SectionIndexDifferenceCostsMoreThanLeaf) {
  // Sibling-section mismatch vs in-list mismatch: the section split must
  // be strictly more expensive so clustering separates rec blocks.
  XPath main1 = *XPath::Parse("/html/body[1]/div[4]/ul[1]/li[1]");
  XPath main2 = *XPath::Parse("/html/body[1]/div[4]/ul[1]/li[2]");
  XPath rec1 = *XPath::Parse("/html/body[1]/div[5]/ul[1]/li[1]");
  EXPECT_LT(XPathEditDistance(main1, main2),
            XPathEditDistance(main1, rec1));
}

TEST(XPathEditDistanceTest, TagDifferenceCostsMore) {
  XPath a = *XPath::Parse("/html/body[1]/div[1]/span[1]");
  XPath b = *XPath::Parse("/html/body[1]/table[1]/span[1]");
  EXPECT_DOUBLE_EQ(XPathEditDistance(a, b), 1.0);
}

TEST(XPathEditDistanceTest, LengthDifference) {
  XPath a = *XPath::Parse("/html/body[1]");
  XPath b = *XPath::Parse("/html/body[1]/div[1]/span[1]");
  EXPECT_DOUBLE_EQ(XPathEditDistance(a, b), 2.0);
}

TEST(XPathEditDistanceTest, ListPathsCloserThanSectionPaths) {
  // The §3.2.2 requirement: two entries of the same list must be closer
  // than entries of different page sections.
  XPath list1 = *XPath::Parse("/html/body[1]/div[1]/ul[1]/li[2]");
  XPath list2 = *XPath::Parse("/html/body[1]/div[1]/ul[1]/li[17]");
  XPath other = *XPath::Parse("/html/body[1]/div[3]/ul[1]/li[2]");
  EXPECT_LT(XPathEditDistance(list1, list2),
            XPathEditDistance(list1, other));
}

TEST(IndexOnlyDifferencesTest, SameShape) {
  XPath a = *XPath::Parse("/html/body[1]/ul[1]/li[3]");
  XPath b = *XPath::Parse("/html/body[1]/ul[1]/li[7]");
  bool same_shape = false;
  std::vector<size_t> diffs = IndexOnlyDifferences(a, b, &same_shape);
  EXPECT_TRUE(same_shape);
  EXPECT_EQ(diffs, (std::vector<size_t>{3}));
}

TEST(IndexOnlyDifferencesTest, DifferentShape) {
  XPath a = *XPath::Parse("/html/body[1]/ul[1]/li[3]");
  XPath b = *XPath::Parse("/html/body[1]/ol[1]/li[3]");
  bool same_shape = true;
  EXPECT_TRUE(IndexOnlyDifferences(a, b, &same_shape).empty());
  EXPECT_FALSE(same_shape);
}

TEST(IndexOnlyDifferencesTest, DifferentLength) {
  XPath a = *XPath::Parse("/html/body[1]/ul[1]");
  XPath b = *XPath::Parse("/html/body[1]/ul[1]/li[3]");
  bool same_shape = true;
  EXPECT_TRUE(IndexOnlyDifferences(a, b, &same_shape).empty());
  EXPECT_FALSE(same_shape);
}

TEST(XPathHashTest, EqualPathsHashEqual) {
  XPath a = *XPath::Parse("/html/body[1]/div[2]");
  XPath b = *XPath::Parse("/html/body[1]/div[2]");
  XPath c = *XPath::Parse("/html/body[1]/div[3]");
  XPathHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // Overwhelmingly likely.
}

}  // namespace
}  // namespace ceres
