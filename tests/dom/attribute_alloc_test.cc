// Micro-regression: attribute lookup on the parse->feature hot path must
// not allocate. DomDocument::Attribute compares pooled string_views (pointer
// fast path, content fallback), so probing any number of attributes performs
// zero heap allocations per call. This binary links the counting allocator
// (util/alloc_counter.h); under sanitizers the counter is compiled out and
// the test skips itself.

#include "dom/dom_tree.h"

#include <gtest/gtest.h>

#include <string>

#include "dom/html_parser.h"
#include "util/alloc_counter.h"
#include "util/string_pool.h"

namespace ceres {
namespace {

TEST(AttributeAllocTest, AttributeLookupDoesNotAllocate) {
  Result<DomDocument> parsed = ParseHtml(
      "<body><div class=\"row\" id=\"r1\" itemprop=\"director\">"
      "<span class=\"val\" data-x=\"1\">Spike Lee</span></div></body>");
  ASSERT_TRUE(parsed.ok());
  const DomDocument& doc = *parsed;

  // Pooled probe names: same interned pointers the parser stored.
  const std::string_view cls = util::StringPool::Global().Intern("class");
  const std::string_view itemprop =
      util::StringPool::Global().Intern("itemprop");
  // Unpooled probe name in a heap buffer: exercises the content-compare
  // fallback path.
  const std::string heap_name = std::string("item") + "prop";

  if (util::AllocationCount() == 0) {
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build)";
  }

  size_t hits = 0;
  const uint64_t before = util::AllocationCount();
  for (int round = 0; round < 1000; ++round) {
    for (NodeId id = 0; id < doc.size(); ++id) {
      if (!doc.Attribute(id, cls).empty()) ++hits;
      if (!doc.Attribute(id, itemprop).empty()) ++hits;
      if (!doc.Attribute(id, heap_name).empty()) ++hits;
      if (!doc.Attribute(id, "missing").empty()) ++hits;
    }
  }
  const uint64_t after = util::AllocationCount();
  EXPECT_EQ(after - before, 0u) << "Attribute() allocated on the hot path";
  // class on div+span, itemprop on div via both probe names.
  EXPECT_EQ(hits, 1000u * 4u);
}

TEST(AttributeAllocTest, PooledTagComparisonDoesNotAllocate) {
  Result<DomDocument> parsed = ParseHtml(
      "<body><div>a</div><div>b</div><span>c</span></body>");
  ASSERT_TRUE(parsed.ok());
  const DomDocument& doc = *parsed;
  const std::string_view div = util::StringPool::Global().Intern("div");

  if (util::AllocationCount() == 0) {
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build)";
  }

  size_t divs = 0;
  const uint64_t before = util::AllocationCount();
  for (int round = 0; round < 1000; ++round) {
    for (NodeId id = 0; id < doc.size(); ++id) {
      if (doc.node(id).tag == div) ++divs;
    }
  }
  const uint64_t after = util::AllocationCount();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(divs, 2000u);
}

}  // namespace
}  // namespace ceres
