#ifndef CERES_SERVE_PAGE_CACHE_H_
#define CERES_SERVE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "serve/serve_diagnostics.h"
#include "util/simhash.h"
#include "util/status.h"
#include "util/sync.h"

namespace ceres::serve {

/// Configuration of the near-duplicate page cache.
struct PageCacheConfig {
  /// Master switch; a disabled cache never hits and never stores.
  bool enabled = true;
  /// Byte budget for resident entries (site keys + triples). LRU entries
  /// are evicted when the resident estimate exceeds it.
  size_t max_bytes = size_t{32} << 20;
  /// Two fingerprints within this Hamming distance are near-duplicates.
  /// 0 requires identical fingerprints; 64 would match anything.
  int hamming_threshold = 3;
  SimhashConfig simhash;
};

/// Monotonic counters plus the current resident set. The counters keep
/// the identity `insertions == entries + evictions + invalidations`: an
/// exact-fingerprint refresh counts as one insertion plus one eviction
/// (of the payload it replaced), and Clear counts its drops as
/// invalidations.
struct PageCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t invalidations = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// The cached outcome of one extraction: the triples plus the diagnostics
/// of the request that produced them.
struct CachedExtraction {
  std::vector<Extraction> triples;
  ServeDiagnostics diagnostics;
};

/// A near-duplicate page cache keyed by (site, simhash fingerprint).
///
/// Crawled sites re-serve the same detail page with trivial churn — view
/// counters, ad markup, timestamp footers — and re-crawls hand the serving
/// tier near-identical HTML over and over. Parsing and model inference on
/// such a page reproduces the extractions of its near-twin, so the serving
/// tier fingerprints every page with a 64-bit simhash (util/simhash.h) and
/// remembers recent extraction results: a lookup whose fingerprint lies
/// within `hamming_threshold` bits of a cached page of the same site is
/// served from the cache, skipping parse and inference entirely.
///
/// Scoping by site keeps the Hamming scan short (a linear probe of the
/// site's resident fingerprints) and makes invalidation natural: when a
/// site's model is republished or invalidated, its cached extractions are
/// stale — InvalidateSite drops exactly them. Eviction is global LRU under
/// a byte budget, charging each entry its triples' string bytes plus fixed
/// overhead. Thread-safe; every operation is one short critical section.
class NearDupCache {
 public:
  explicit NearDupCache(PageCacheConfig config = {});

  NearDupCache(const NearDupCache&) = delete;
  NearDupCache& operator=(const NearDupCache&) = delete;

  /// The fingerprint Lookup/Insert expect for `html` under this cache's
  /// shingle configuration.
  uint64_t Fingerprint(std::string_view html) const;

  /// True (and fills `out`) when a near-duplicate of `fingerprint` is
  /// resident for `site`; refreshes that entry's LRU position.
  bool Lookup(const std::string& site, uint64_t fingerprint,
              CachedExtraction* out);

  /// Stores `result` under (site, fingerprint). An exact-fingerprint match
  /// already resident for the site is refreshed in place (latest result
  /// wins); near-but-not-identical twins are stored separately so the
  /// threshold keeps matching future variants of either.
  void Insert(const std::string& site, uint64_t fingerprint,
              CachedExtraction result);

  /// Drops every entry of `site` (model republished / invalidated).
  void InvalidateSite(const std::string& site);

  void Clear();

  PageCacheStats stats() const;
  const PageCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    std::string site;
    uint64_t fingerprint = 0;
    size_t bytes = 0;
    CachedExtraction result;
  };
  using EntryList = std::list<Entry>;

  static size_t EntryBytes(const std::string& site,
                           const CachedExtraction& result);
  void EvictOverBudgetLocked() CERES_REQUIRES(mu_);
  void EraseFromSiteIndexLocked(EntryList::iterator it) CERES_REQUIRES(mu_);

  const PageCacheConfig config_;

  mutable CheckedMutex mu_{"NearDupCache.mu"};
  /// Most-recently used at the front.
  EntryList lru_ CERES_GUARDED_BY(mu_);
  /// Per-site resident entries, the Hamming scan set for a lookup.
  std::unordered_map<std::string, std::vector<EntryList::iterator>> by_site_
      CERES_GUARDED_BY(mu_);
  size_t bytes_ CERES_GUARDED_BY(mu_) = 0;
  PageCacheStats stats_ CERES_GUARDED_BY(mu_);
};

}  // namespace ceres::serve

#endif  // CERES_SERVE_PAGE_CACHE_H_
