#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace ceres {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status PrependContext(Status status, std::string_view context) {
  if (status.ok() || context.empty()) return status;
  std::string message(context);
  message += ": ";
  message += status.message();
  return Status(status.code(), std::move(message));
}

namespace internal {
void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result accessed with non-OK status: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace ceres
