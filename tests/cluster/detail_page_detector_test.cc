#include "cluster/detail_page_detector.h"

#include <gtest/gtest.h>

#include "dom/html_parser.h"
#include "synth/corpora.h"
#include "testing/fixtures.h"
#include "util/string_util.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;

struct PageSet {
  std::vector<DomDocument> docs;
  std::vector<const DomDocument*> ptrs;

  void Add(const std::string& html) {
    docs.push_back(ParseOrDie(html));
    ptrs.clear();
    for (const DomDocument& doc : docs) ptrs.push_back(&doc);
  }
};

PageSet DetailPages(int n) {
  PageSet pages;
  for (int i = 0; i < n; ++i) {
    pages.Add(FilmPageHtml(StrCat("Film ", i), StrCat("Director ", i),
                           StrCat("Writer ", i),
                           {StrCat("Actor A", i), StrCat("Actor B", i)},
                           {"Comedy"}));
  }
  return pages;
}

PageSet ChartPages(int n) {
  PageSet pages;
  for (int i = 0; i < n; ++i) {
    std::string html = StrCat("<body><h1>Daily Chart #", i,
                              "</h1><table>");
    for (int r = 0; r < 15; ++r) {
      html += StrCat("<tr><td>1", r, " June 2016</td><td>$", 10000 + r * i,
                     "</td></tr>");
    }
    html += "</table></body>";
    pages.Add(html);
  }
  return pages;
}

TEST(DetailPageDetectorTest, AcceptsDetailPages) {
  PageSet pages = DetailPages(10);
  EXPECT_TRUE(LooksLikeDetailPages(pages.ptrs));
  DetailPageSignals signals = ComputeDetailPageSignals(pages.ptrs);
  EXPECT_GT(signals.distinct_heading_fraction, 0.9);
  EXPECT_LT(signals.numeric_fraction, 0.2);
}

TEST(DetailPageDetectorTest, RejectsChartPages) {
  PageSet pages = ChartPages(10);
  EXPECT_FALSE(LooksLikeDetailPages(pages.ptrs));
  DetailPageSignals signals = ComputeDetailPageSignals(pages.ptrs);
  EXPECT_GT(signals.numeric_fraction, 0.5);
}

TEST(DetailPageDetectorTest, RejectsBoilerplateOnlyPages) {
  PageSet pages;
  for (int i = 0; i < 8; ++i) {
    pages.Add(
        "<body><h1>Welcome</h1><div>Home</div><div>Search</div>"
        "<div>About</div><div>Contact</div></body>");
  }
  // Identical headings on every page: nothing entity-specific here.
  EXPECT_FALSE(LooksLikeDetailPages(pages.ptrs));
}

TEST(DetailPageDetectorTest, RejectsEmptyAndTinyPages) {
  EXPECT_FALSE(LooksLikeDetailPages({}));
  PageSet pages;
  for (int i = 0; i < 5; ++i) {
    pages.Add(StrCat("<body><h1>Entity ", i, "</h1></body>"));
  }
  EXPECT_FALSE(LooksLikeDetailPages(pages.ptrs));  // Too few fields.
}

TEST(DetailPageDetectorTest, SignalsOnSyntheticCorpusSites) {
  synth::Corpus corpus = synth::MakeLongTailCorpus(0.2);
  for (const synth::SyntheticSite& site : corpus.sites) {
    if (site.name != "themoviedb.org" && site.name != "boxofficemojo.com") {
      continue;
    }
    std::vector<DomDocument> docs;
    std::vector<const DomDocument*> ptrs;
    for (const synth::GeneratedPage& page : site.pages) {
      docs.push_back(std::move(ParseHtml(page.html)).value());
    }
    for (const DomDocument& doc : docs) ptrs.push_back(&doc);
    if (site.name == "themoviedb.org") {
      EXPECT_TRUE(LooksLikeDetailPages(ptrs)) << site.name;
    } else {
      EXPECT_FALSE(LooksLikeDetailPages(ptrs)) << site.name;
    }
  }
}

TEST(DetailPageDetectorTest, BoilerplateFractionOrdering) {
  // Detail pages with chrome have more boilerplate than without.
  PageSet detail = DetailPages(6);
  PageSet with_chrome;
  for (int i = 0; i < 6; ++i) {
    with_chrome.Add(StrCat(
        "<body><div class=nav><a>Home</a><a>Help</a><a>Login</a>"
        "<a>Search</a><a>About</a></div><h1>Film ", i,
        "</h1><div>Director ", i, "</div></body>"));
  }
  DetailPageSignals plain = ComputeDetailPageSignals(detail.ptrs);
  DetailPageSignals chrome = ComputeDetailPageSignals(with_chrome.ptrs);
  EXPECT_GT(chrome.boilerplate_fraction, plain.boilerplate_fraction);
}

}  // namespace
}  // namespace ceres
