// Ablation: sensitivity of extraction quality to the template-clustering
// threshold, on the mixed-template IMDb-like site. §5.5.1 concludes that
// "a robust clustering algorithm is critical": merging distinct templates
// (threshold too low / clustering off) forces one extractor to serve film,
// person, AND episode pages, while over-splitting starves small clusters
// of annotations.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  using namespace ceres::bench;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf(
      "Clustering ablation on the mixed-template IMDb-like site "
      "(scale=%.2f)\n\n",
      scale);

  ParsedCorpus corpus = ParseCorpus(synth::MakeImdbCorpus(scale));
  const ParsedSite& site = corpus.sites[0];
  Split split = HalfSplit(site.pages.size());

  eval::TableReport table({"Clustering", "#Clusters", "P", "R", "F1"});
  struct Setting {
    const char* label;
    bool enabled;
    double threshold;
  };
  for (const Setting& setting :
       {Setting{"off (single merged template)", false, 0.0},
        Setting{"threshold 0.3", true, 0.3},
        Setting{"threshold 0.6 (default)", true, 0.6},
        Setting{"threshold 0.9 (over-split)", true, 0.9}}) {
    PipelineConfig config = MakeConfig(System::kCeresFull, split);
    config.cluster_pages = setting.enabled;
    config.clustering.similarity_threshold = setting.threshold;
    PipelineResult result = RunSite(site, corpus.corpus.seed_kb, config);
    int clusters = 0;
    for (int cluster : result.cluster_of_page) {
      clusters = std::max(clusters, cluster + 1);
    }
    eval::ScoreOptions options;
    options.pages = split.eval;
    options.confidence_threshold = 0.5;
    eval::Prf prf =
        eval::ScoreExtractions(result.extractions, site.truth, options);
    table.AddRow({setting.label, std::to_string(clusters),
                  eval::FormatRatio(prf.precision()),
                  eval::FormatRatio(prf.recall()),
                  eval::FormatRatio(prf.f1())});
    std::fprintf(stderr, "[clustering] %s done\n", setting.label);
  }
  table.Print();
  std::printf(
      "\nNot a paper table; quantifies §5.5.1's conclusion that robust "
      "template clustering is critical (36%% of the paper's long-tail "
      "errors traced to merged clusters).\n");
  return 0;
}
