#ifndef CERES_UTIL_PARALLEL_H_
#define CERES_UTIL_PARALLEL_H_

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace ceres {

/// Runs `body(i)` for every i in [0, n) across up to `threads` worker
/// threads (0 = hardware concurrency). Work is claimed dynamically via an
/// atomic counter, so uneven per-item costs (per-site pipeline runs)
/// balance naturally. The caller must ensure `body` is safe to run
/// concurrently for distinct indices; results should be written to
/// pre-sized per-index slots so no synchronization is needed.
///
/// If `body` throws, the first exception is captured and rethrown on the
/// calling thread after all workers have joined (an exception escaping a
/// worker thread would otherwise std::terminate the process). Remaining
/// unclaimed indices are abandoned once a failure is recorded; in-flight
/// iterations on other workers still run to completion.
inline void ParallelFor(size_t n, int threads,
                        const std::function<void(size_t)>& body) {
  if (n == 0) return;
  size_t worker_count = threads > 0
                            ? static_cast<size_t>(threads)
                            : std::max(1u, std::thread::hardware_concurrency());
  if (worker_count > n) worker_count = n;
  if (worker_count <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_exception;
  CheckedMutex exception_mutex{"ParallelFor.exception_mutex"};
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&]() {
      while (!failed.load(std::memory_order_relaxed)) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          body(i);
        } catch (...) {
          MutexLock lock(exception_mutex);
          if (first_exception == nullptr) {
            first_exception = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

}  // namespace ceres

#endif  // CERES_UTIL_PARALLEL_H_
