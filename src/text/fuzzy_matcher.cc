#include "text/fuzzy_matcher.h"

#include <algorithm>
#include <cctype>

#include "obs/metrics.h"
#include "text/normalize.h"

namespace ceres {

std::string_view StripTrailingYearView(std::string_view normalized) {
  size_t space = normalized.rfind(' ');
  if (space == std::string_view::npos) return normalized;
  std::string_view last = normalized.substr(space + 1);
  if (last.size() != 4) return normalized;
  for (char c : last) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return normalized;
    }
  }
  return normalized.substr(0, space);
}

std::string StripTrailingYear(std::string_view normalized) {
  return std::string(StripTrailingYearView(normalized));
}

void FuzzyMatcher::Add(std::string_view name, int64_t id) {
  std::string key = NormalizeText(name);
  if (key.empty()) return;
  std::vector<int64_t>& ids = index_[key];
  if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
    ids.push_back(id);
  }
}

const std::vector<int64_t>* FuzzyMatcher::Lookup(
    std::string_view normalized) const {
  auto it = index_.find(normalized);
  return it == index_.end() ? nullptr : &it->second;
}

std::span<const int64_t> FuzzyMatcher::MatchView(std::string_view text) const {
  // One scratch buffer per thread: concurrent batch workers each reuse
  // their own, so the hot path stays allocation-free after warm-up.
  thread_local std::string scratch;
  NormalizeTextInto(text, &scratch);
  if (scratch.empty()) return {};
  const std::vector<int64_t>* hit = Lookup(scratch);
  if (hit == nullptr) {
    // Retry with a trailing disambiguation year removed, a common pattern on
    // film sites ("Do the Right Thing (1989)").
    std::string_view stripped = StripTrailingYearView(scratch);
    if (stripped.size() != scratch.size() && !stripped.empty()) {
      hit = Lookup(stripped);
    }
  }
  // Hot path: when metrics are off this whole block is one relaxed load +
  // branch. The handles are resolved once per process and cached.
  if (obs::Enabled()) {
    static obs::Counter* const lookups =
        obs::MetricsRegistry::Default().GetCounter("ceres_fuzzy_lookups_total");
    static obs::Counter* const hits =
        obs::MetricsRegistry::Default().GetCounter("ceres_fuzzy_hits_total");
    lookups->Increment();
    if (hit != nullptr) hits->Increment();
  }
  return hit != nullptr ? std::span<const int64_t>(*hit)
                        : std::span<const int64_t>{};
}

std::vector<int64_t> FuzzyMatcher::Match(std::string_view text) const {
  std::span<const int64_t> hit = MatchView(text);
  return std::vector<int64_t>(hit.begin(), hit.end());
}

bool FuzzyMatcher::Matches(std::string_view text) const {
  return !MatchView(text).empty();
}

}  // namespace ceres
