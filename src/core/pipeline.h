#ifndef CERES_CORE_PIPELINE_H_
#define CERES_CORE_PIPELINE_H_

#include <chrono>
#include <string>
#include <vector>

#include "cluster/detail_page_detector.h"
#include "cluster/page_clustering.h"
#include "core/extractor.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "core/training.h"
#include "core/types.h"
#include "kb/knowledge_base.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/parallel.h"
#include "util/status.h"

namespace ceres {

/// End-to-end configuration of the CERES pipeline (Figure 3):
/// page clustering -> topic identification -> relation annotation ->
/// training -> extraction.
struct PipelineConfig {
  /// Group pages into template clusters before annotating (§2.1). Disable
  /// when the caller guarantees single-template input.
  bool cluster_pages = true;
  /// Clusters smaller than this are skipped entirely.
  size_t min_cluster_size = 5;
  /// Pre-filter template clusters that do not look like detail pages
  /// (chart/index clusters) before spending annotation effort — the §7
  /// future-work extension. Off by default for paper fidelity.
  bool filter_non_detail_clusters = false;
  DetailPageConfig detail_detector;

  PageClusteringConfig clustering;
  TopicConfig topic;
  AnnotatorConfig annotator;
  FeatureConfig features;
  TrainingConfig training;
  ExtractionConfig extraction;

  /// Pages (global indices) eligible for annotation/training; empty = all.
  /// The paper's SWDE/IMDb protocol annotates one half and evaluates
  /// extraction on the other half.
  std::vector<PageIndex> annotation_pages;
  /// Pages to extract from; empty = all.
  std::vector<PageIndex> extraction_pages;

  /// Whole-run cooperative deadline (time budget and/or cancellation
  /// token). Once it expires, remaining clusters are recorded as typed
  /// skips in the diagnostics instead of being processed.
  Deadline deadline;
  /// Per-cluster time budget; zero = unlimited. Each cluster runs under
  /// the earlier of this budget and the whole-run deadline, so one
  /// pathological cluster times out into a diagnostic entry without
  /// starving the rest of the site.
  std::chrono::milliseconds cluster_time_budget{0};

  /// Optional trace sink. When set, the run records stage spans
  /// ("pipeline" → "clustering" / "clusters" → "cluster" →
  /// "topic"/"annotate"/"train"/"extract") into this tree; per-cluster
  /// spans aggregate across the ParallelFor workers. Null = no tracing.
  /// The tree must outlive the RunPipeline call. See DESIGN.md
  /// "Observability".
  obs::TraceTree* trace = nullptr;

  /// Batch fan-out. Independent template clusters run concurrently; with a
  /// single cluster the budget moves to the per-page inner loops (entity
  /// matching, lexicon mining, extraction) instead. Workers write
  /// pre-sized per-cluster slots merged in cluster-id order, so the
  /// PipelineResult is identical at any thread count; the whole-run
  /// deadline and cancel token are observed inside every worker. Default
  /// Sequential() preserves the historical single-threaded behavior.
  ParallelConfig parallel = ParallelConfig::Sequential();
};

/// A model trained for one template cluster, reusable on later crawls of
/// the same site (persist with core/model_io.h).
struct ClusterModel {
  int cluster = 0;
  TrainedModel model;
};

/// Stages a cluster moves through, in order; used to type diagnostics.
enum class PipelineStage {
  kClustering = 0,
  kTopicIdentification,
  kAnnotation,
  kTraining,
  kExtraction,
};
inline constexpr int kNumPipelineStages = 5;

/// Human-readable stage name ("clustering", ...).
const char* PipelineStageName(PipelineStage stage);

/// A page excluded from the run, with the typed reason. Produced by
/// resilient crawl loading (robustness/resilient_loader.h) and carried in
/// the diagnostics so downstream accounting sees exactly which pages were
/// dropped and why. `page` indexes the caller's original page order.
struct QuarantinedPage {
  PageIndex page = 0;
  std::string url;
  Status reason;
};

/// A cluster the pipeline gave up on: at which stage and why. The reason
/// Status is typed (kFailedPrecondition for size/detail filters, kNotFound
/// for zero annotations, kDeadlineExceeded / kCancelled for timeouts, the
/// trainer's own code for training failures).
struct ClusterSkip {
  int cluster = -1;
  PipelineStage stage = PipelineStage::kClustering;
  Status reason;
};

/// Per-stage outcome counters at cluster granularity.
struct StageCounts {
  int64_t attempted = 0;
  int64_t completed = 0;
  int64_t skipped = 0;
};

/// Structured record of everything a pipeline run dropped, skipped, or
/// timed out on — the machine-readable replacement for grepping log lines.
/// A run that degrades (quarantined pages, skipped clusters) still returns
/// OK; the diagnostics say what was lost.
struct PipelineDiagnostics {
  /// Pages quarantined before the pipeline saw them (resilient loading).
  std::vector<QuarantinedPage> quarantined_pages;
  /// Clusters abandoned mid-pipeline, in cluster order.
  std::vector<ClusterSkip> skipped_clusters;
  /// Outcome counts per stage, indexed by PipelineStage.
  StageCounts stages[kNumPipelineStages];
  /// True when the whole-run deadline expired before all clusters ran.
  bool run_deadline_expired = false;

  StageCounts& counts(PipelineStage stage) {
    return stages[static_cast<int>(stage)];
  }
  const StageCounts& counts(PipelineStage stage) const {
    return stages[static_cast<int>(stage)];
  }
  /// Skips of one cluster (empty when it completed).
  std::vector<ClusterSkip> SkipsForCluster(int cluster) const;
  /// Multi-line human-readable rendering for logs and CLI tools.
  std::string Summary() const;
};

/// Everything the evaluation benches need from one pipeline run.
struct PipelineResult {
  /// Template cluster of each page (all pages; -1 only if clustering was
  /// skipped for size).
  std::vector<int> cluster_of_page;
  /// Identified topic entity per page (kInvalidEntity when none); covers
  /// annotation pages only.
  std::vector<EntityId> topic_of_page;
  /// Node carrying the topic name per page.
  std::vector<NodeId> topic_node_of_page;
  /// All (noisy) training annotations produced, incl. NAME labels.
  std::vector<Annotation> annotations;
  /// Pages that contributed training data.
  std::vector<PageIndex> annotated_pages;
  /// Final extractions across all requested pages.
  std::vector<Extraction> extractions;
  /// The trained per-cluster extractor models, largest cluster first.
  std::vector<ClusterModel> models;
  /// What the run dropped, skipped, or timed out on.
  PipelineDiagnostics diagnostics;
};

/// Runs the full CERES pipeline over the pages of one website.
///
/// Never fails outright for data reasons: clusters that produce no
/// annotations simply contribute no extractions (the correct outcome for
/// sites without usable detail pages, §5.5). Returns an error only for
/// malformed configuration.
Result<PipelineResult> RunPipeline(const std::vector<DomDocument>& pages,
                                   const KnowledgeBase& kb,
                                   const PipelineConfig& config = {});

}  // namespace ceres

#endif  // CERES_CORE_PIPELINE_H_
