#ifndef CERES_UTIL_DEADLINE_H_
#define CERES_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string_view>

#include "util/status.h"

namespace ceres {

/// A shared cancellation flag. Copies refer to the same flag, so a caller
/// can hand a token into a long-running pipeline stage and cancel it from
/// another thread; the stage observes the request at its next cooperative
/// check. Cancellation is one-way: a token never resets.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A cooperative time budget plus optional cancellation, threaded through
/// the pipeline configs. Deadlines are cheap values: copying one shares the
/// underlying cancel token (if any) and the fixed expiry point.
///
/// Library loops call `expired()` (cheap) at iteration granularity, or
/// `Check(stage)` to produce a typed Status (kDeadlineExceeded /
/// kCancelled) for diagnostics. A default-constructed Deadline never
/// expires and has no token.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires, not cancellable.
  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget` from now. Non-positive budgets are already expired.
  static Deadline After(Clock::duration budget) {
    Deadline deadline;
    deadline.at_ = Clock::now() + budget;
    return deadline;
  }

  static Deadline At(Clock::time_point at) {
    Deadline deadline;
    deadline.at_ = at;
    return deadline;
  }

  /// A copy of this deadline that additionally observes `token`.
  Deadline WithToken(CancelToken token) const {
    Deadline deadline = *this;
    deadline.token_ = std::move(token);
    deadline.has_token_ = true;
    return deadline;
  }

  /// Whichever of the two deadlines expires first; keeps both tokens'
  /// effects when only one side has a token (the earlier side's token wins
  /// when both have one, matching "the stricter bound governs").
  Deadline Earlier(const Deadline& other) const {
    const Deadline& strict = at_ <= other.at_ ? *this : other;
    const Deadline& loose = at_ <= other.at_ ? other : *this;
    Deadline deadline = strict;
    if (!deadline.has_token_ && loose.has_token_) {
      deadline.token_ = loose.token_;
      deadline.has_token_ = true;
    }
    return deadline;
  }

  bool infinite() const {
    return at_ == Clock::time_point::max() && !has_token_;
  }
  bool cancelled() const { return has_token_ && token_.cancelled(); }
  bool time_expired() const {
    return at_ != Clock::time_point::max() && Clock::now() >= at_;
  }
  /// True when the budget is spent or cancellation was requested.
  bool expired() const { return cancelled() || time_expired(); }

  /// OK while live; kCancelled / kDeadlineExceeded naming `stage` once
  /// expired. The cancellation check runs first so an explicit cancel is
  /// reported as such even after the time budget also ran out.
  Status Check(std::string_view stage) const;

 private:
  Clock::time_point at_;
  CancelToken token_;
  bool has_token_ = false;
};

}  // namespace ceres

#endif  // CERES_UTIL_DEADLINE_H_
