file(REMOVE_RECURSE
  "CMakeFiles/classifier_ablation.dir/classifier_ablation.cc.o"
  "CMakeFiles/classifier_ablation.dir/classifier_ablation.cc.o.d"
  "classifier_ablation"
  "classifier_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
