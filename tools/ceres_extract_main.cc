// ceres_extract — command-line distant-supervision extraction.
//
// Reads a seed KB (kb_io format) and a directory of crawled HTML pages,
// runs the full CERES pipeline, and writes extractions as TSV:
//   subject \t predicate \t object \t confidence \t page
//
// Usage:
//   ceres_extract --kb seed.kb --pages ./crawl_dir --out triples.tsv
//                 [--threshold 0.5] [--no-cluster] [--min-cluster 5]
//                 [--topic-only] [--save-model model.txt] [--verbose]
//                 [--model model.txt] [--trace_json trace.json]
//
// Pages are read from every regular file in --pages (sorted by name).
// With --save-model, the largest cluster's trained model is persisted.
// With --model, the saved model is applied directly (annotation and
// training are skipped; the KB is only needed for its ontology).
// With --trace_json (also accepted as --trace_json=PATH), the run records
// per-stage TraceSpans plus the obs counters and writes
// {"trace":...,"metrics":...} JSON to PATH after the pipeline finishes.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/extractor.h"
#include "core/model_io.h"
#include "core/pipeline.h"
#include "dom/html_parser.h"
#include "kb/kb_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

struct Options {
  std::string kb_path;
  std::string pages_dir;
  std::string out_path;
  std::string save_model_path;
  std::string model_path;
  std::string trace_json_path;
  double threshold = 0.5;
  bool cluster = true;
  size_t min_cluster = 5;
  bool topic_only = false;
  bool verbose = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: ceres_extract --kb <kb file> --pages <dir> --out <tsv>\n"
      "  [--threshold 0.5] [--no-cluster] [--min-cluster N]\n"
      "  [--topic-only] [--save-model <file>] [--trace_json <file>]\n"
      "  [--verbose]\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--kb") {
      if (!next(&options->kb_path)) return false;
    } else if (arg == "--pages") {
      if (!next(&options->pages_dir)) return false;
    } else if (arg == "--out") {
      if (!next(&options->out_path)) return false;
    } else if (arg == "--save-model") {
      if (!next(&options->save_model_path)) return false;
    } else if (arg == "--model") {
      if (!next(&options->model_path)) return false;
    } else if (arg == "--trace_json") {
      if (!next(&options->trace_json_path)) return false;
    } else if (arg.rfind("--trace_json=", 0) == 0) {
      options->trace_json_path = arg.substr(std::strlen("--trace_json="));
      if (options->trace_json_path.empty()) return false;
    } else if (arg == "--threshold") {
      std::string value;
      if (!next(&value)) return false;
      options->threshold = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--min-cluster") {
      std::string value;
      if (!next(&value)) return false;
      options->min_cluster =
          static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--no-cluster") {
      options->cluster = false;
    } else if (arg == "--topic-only") {
      options->topic_only = true;
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->kb_path.empty() && !options->pages_dir.empty() &&
         !options->out_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.verbose) SetLogLevel(LogLevel::kInfo);
  obs::TraceTree trace;
  const bool tracing = !options.trace_json_path.empty();
  if (tracing) obs::SetEnabled(true);

  Result<KnowledgeBase> kb = LoadKbFromFile(options.kb_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "failed to load KB: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "KB: %lld entities, %lld triples\n",
               static_cast<long long>(kb->num_entities()),
               static_cast<long long>(kb->num_triples()));

  // Load pages, sorted by filename for deterministic indices.
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.pages_dir, ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "cannot read pages dir: %s\n",
                 ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  std::vector<DomDocument> pages;
  std::vector<std::string> page_names;
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<DomDocument> parsed = ParseHtml(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      continue;
    }
    parsed->set_url(path.filename().string());
    pages.push_back(std::move(parsed).value());
    page_names.push_back(path.filename().string());
  }
  if (pages.empty()) {
    std::fprintf(stderr, "no parseable pages in %s\n",
                 options.pages_dir.c_str());
    return 1;
  }
  std::fprintf(stderr, "parsed %zu pages\n", pages.size());

  std::vector<Extraction> extractions;
  size_t annotated_pages = 0;
  if (!options.model_path.empty()) {
    // Apply-only mode: reuse a previously trained model.
    Result<TrainedModel> model =
        LoadModelFromFile(options.model_path, kb->ontology());
    if (!model.ok()) {
      std::fprintf(stderr, "failed to load model: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    FeatureExtractor featurizer = MakeFeaturizer(*model);
    std::vector<const DomDocument*> page_ptrs;
    std::vector<PageIndex> indices;
    for (size_t i = 0; i < pages.size(); ++i) {
      page_ptrs.push_back(&pages[i]);
      indices.push_back(static_cast<PageIndex>(i));
    }
    ExtractionConfig extraction_config;
    extraction_config.confidence_threshold = options.threshold;
    extractions = ExtractFromPages(page_ptrs, indices, &model.value(),
                                   featurizer, extraction_config);
  } else {
    PipelineConfig config;
    config.cluster_pages = options.cluster;
    config.min_cluster_size = options.min_cluster;
    config.extraction.confidence_threshold = options.threshold;
    config.annotator.use_relation_filtering = !options.topic_only;
    if (tracing) config.trace = &trace;
    Result<PipelineResult> result = RunPipeline(pages, *kb, config);
    if (!result.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    extractions = std::move(result->extractions);
    annotated_pages = result->annotated_pages.size();
    if (!options.save_model_path.empty()) {
      if (result->models.empty()) {
        std::fprintf(stderr, "no model was trained; nothing to save\n");
      } else {
        Status saved = SaveModelToFile(result->models.front().model,
                                       kb->ontology(),
                                       options.save_model_path);
        if (!saved.ok()) {
          std::fprintf(stderr, "failed to save model: %s\n",
                       saved.ToString().c_str());
          return 1;
        }
        std::fprintf(stderr, "saved model (cluster %d) to %s\n",
                     result->models.front().cluster,
                     options.save_model_path.c_str());
      }
    }
  }

  std::ofstream out(options.out_path);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", options.out_path.c_str());
    return 1;
  }
  int64_t written = 0;
  for (const Extraction& extraction : extractions) {
    if (extraction.predicate == kNamePredicate) continue;
    out << extraction.subject << '\t'
        << kb->ontology().predicate(extraction.predicate).name << '\t'
        << extraction.object << '\t' << extraction.confidence << '\t'
        << page_names[static_cast<size_t>(extraction.page)] << '\n';
    ++written;
  }
  std::fprintf(stderr,
               "annotated %zu pages, wrote %lld extractions to %s\n",
               annotated_pages, static_cast<long long>(written),
               options.out_path.c_str());

  if (tracing) {
    std::ofstream trace_out(options.trace_json_path);
    if (!trace_out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n",
                   options.trace_json_path.c_str());
      return 1;
    }
    trace_out << "{\"trace\":" << trace.ToJson() << ",\"metrics\":"
              << obs::MetricsRegistry::Default().ToJson() << "}\n";
    std::fprintf(stderr, "wrote trace to %s\n",
                 options.trace_json_path.c_str());
  }
  return 0;
}
