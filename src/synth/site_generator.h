#ifndef CERES_SYNTH_SITE_GENERATOR_H_
#define CERES_SYNTH_SITE_GENERATOR_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "synth/world.h"

namespace ceres::synth {

/// How a predicate's values are laid out in a template section.
enum class SectionLayout {
  /// label span + one value span per object, inline in a row div.
  kRow,
  /// h3 label + <ul> with one <li> per object.
  kList,
  /// <table> with one row per object; label cell on the first row.
  kTable,
};

/// One value-bearing section of a detail-page template.
struct PredicateSection {
  /// Ontology predicate name (see synth::pred constants).
  std::string predicate;
  /// UiLabel key rendered as the section label.
  std::string label_key;
  SectionLayout layout = SectionLayout::kRow;
  /// Per-page probability that this section is omitted (missing-field
  /// variation, §2.1).
  double missing_prob = 0.03;
  int max_values = 30;
};

/// A detail-page template: the value sections plus the structural quirks
/// and trap sections the paper's evaluation sites exhibit.
struct TemplateSpec {
  Locale locale = Locale::kEnglish;
  /// CSS class prefix; distinct per site so structural features differ
  /// across sites.
  std::string css_prefix = "st";
  /// Entity-type name of page topics ("film", "person", ...).
  std::string topic_type;
  std::vector<PredicateSection> sections;

  bool nav = true;
  bool footer = true;
  /// Render titles as "Name (1987)" using the film's release year.
  bool title_year_suffix = false;
  /// Per-page probability of shuffling section order (the template-variety
  /// failure mode of §5.5.1, bollywoodmdb).
  double section_shuffle_prob = 0.0;
  /// Probability of an ad/promo block inserted mid-page, shifting the
  /// XPaths of everything below it (Figure 2).
  double page_noise_prob = 0.1;

  // Trap sections (all render real-looking values that assert NO ontology
  // relation; a correct extractor must not fire on them).
  /// Related-entity cards with their own titles/genres/cast (Figure 1's
  /// recommendation strip).
  int num_recommendations = 0;
  /// "Known For": four films of mixed roles on person pages.
  bool known_for = false;
  /// "Available on Video": a second copy of a subset of acted-in films.
  bool on_video_list = false;
  /// "Projects in Development": produced/written films mixed with unrelated
  /// ones (the producer_of trap of §5.4).
  bool projects_in_development = false;
  /// A search box whose <option> values are "Public"/"Private" on every
  /// page (the University failure of §5.3).
  bool search_box_values = false;
  /// Every genre listed on every page (christianfilmdatabase/laborfilms,
  /// §5.5.1).
  bool all_genres_nav = false;
  /// Replace per-role filmographies by one undifferentiated list
  /// (spicyonion/filmindonesia, §5.5.1). Ground truth labels each entry
  /// with the role predicates that actually hold.
  bool merged_filmography = false;
  /// Box-office style tables full of dates and figures (the-numbers,
  /// boxofficemojo). On detail pages the chart table mimics the value
  /// tables (same class, same parent), reproducing the release-date
  /// confusion of §5.5.1.
  bool daily_charts = false;
  /// Render every section with the same generic label instead of
  /// predicate-specific ones — the weak-text-features regime in which the
  /// paper's template-variety failures (§5.5.1) occur.
  bool weak_labels = false;
};

/// One node-level ground-truth label of a generated page.
struct GroundTruthFact {
  /// Absolute XPath of the value node in the rendered page.
  std::string xpath;
  /// Predicate asserted (kNamePredicate for the topic-name node).
  PredicateId predicate = kInvalidPredicate;
  std::string object_text;
  /// World entity id of the object.
  EntityId object = kInvalidEntity;
};

/// A rendered page plus its ground truth. `facts` contains only relations
/// the page *asserts*; values appearing in trap sections carry no fact.
struct GeneratedPage {
  std::string url;
  std::string html;
  /// World id of the topic entity; kInvalidEntity for non-detail pages.
  EntityId topic = kInvalidEntity;
  std::string topic_name;
  /// XPath of the field holding the topic name; empty for non-detail pages.
  std::string topic_xpath;
  std::vector<GroundTruthFact> facts;
};

/// One website to generate.
struct SiteSpec {
  std::string name;
  uint64_t seed = 0;
  TemplateSpec tmpl;
  /// World entities that get detail pages.
  std::vector<EntityId> topics;
  /// Additional non-detail pages (charts, index pages) with no topic.
  int num_non_detail_pages = 0;
};

/// Renders all pages of one site. Pages are deterministic functions of
/// (world, spec): the ground-truth XPaths are recorded while building the
/// DOM and remain valid in the parse of the emitted HTML (round-trip
/// guarantee of SerializeHtml).
std::vector<GeneratedPage> GenerateSite(const World& world,
                                        const SiteSpec& spec);

}  // namespace ceres::synth

#endif  // CERES_SYNTH_SITE_GENERATOR_H_
