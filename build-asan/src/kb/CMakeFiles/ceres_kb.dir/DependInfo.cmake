
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/kb_io.cc" "src/kb/CMakeFiles/ceres_kb.dir/kb_io.cc.o" "gcc" "src/kb/CMakeFiles/ceres_kb.dir/kb_io.cc.o.d"
  "/root/repo/src/kb/knowledge_base.cc" "src/kb/CMakeFiles/ceres_kb.dir/knowledge_base.cc.o" "gcc" "src/kb/CMakeFiles/ceres_kb.dir/knowledge_base.cc.o.d"
  "/root/repo/src/kb/ontology.cc" "src/kb/CMakeFiles/ceres_kb.dir/ontology.cc.o" "gcc" "src/kb/CMakeFiles/ceres_kb.dir/ontology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/text/CMakeFiles/ceres_text.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ceres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
