#include "robustness/resilient_loader.h"

#include <gtest/gtest.h>

#include <string>

namespace ceres {
namespace {

RawPage GoodPage(int i) {
  return RawPage{"http://example.test/good" + std::to_string(i),
                 "<html><body><p>fine</p></body></html>"};
}

// Only parse failure ParseHtml has: element count over max_nodes. The
// loader options lower the budget so this page reliably quarantines.
RawPage BombPage(int i) {
  std::string html;
  for (int k = 0; k < 300; ++k) html += "<p>x";
  return RawPage{"http://example.test/bomb" + std::to_string(i),
                 std::move(html)};
}

ResilientLoadOptions TightOptions() {
  ResilientLoadOptions options;
  options.parse.max_nodes = 100;
  return options;
}

TEST(ResilientLoaderTest, CleanCrawlLoadsEverything) {
  std::vector<RawPage> raw = {GoodPage(0), GoodPage(1), GoodPage(2)};
  Result<LoadedCrawl> crawl = LoadCrawl(raw);
  ASSERT_TRUE(crawl.ok());
  EXPECT_EQ(crawl->pages.size(), 3u);
  EXPECT_TRUE(crawl->quarantined.empty());
  EXPECT_EQ(crawl->source_index, (std::vector<PageIndex>{0, 1, 2}));
  EXPECT_EQ(crawl->surviving_index, (std::vector<PageIndex>{0, 1, 2}));
}

TEST(ResilientLoaderTest, UnparseablePagesAreQuarantinedNotFatal) {
  std::vector<RawPage> raw = {GoodPage(0), BombPage(1), GoodPage(2),
                              BombPage(3), GoodPage(4)};
  Result<LoadedCrawl> crawl = LoadCrawl(raw, TightOptions());
  ASSERT_TRUE(crawl.ok()) << crawl.status().ToString();
  EXPECT_EQ(crawl->pages.size(), 3u);
  ASSERT_EQ(crawl->quarantined.size(), 2u);
  EXPECT_EQ(crawl->quarantined[0].page, 1);
  EXPECT_EQ(crawl->quarantined[1].page, 3);
  EXPECT_EQ(crawl->quarantined[0].reason.code(),
            StatusCode::kResourceExhausted);
  // The reason names the page's URL.
  EXPECT_NE(crawl->quarantined[0].reason.message().find("bomb1"),
            std::string::npos);
  EXPECT_EQ(crawl->source_index, (std::vector<PageIndex>{0, 2, 4}));
  EXPECT_EQ(crawl->surviving_index,
            (std::vector<PageIndex>{0, -1, 1, -1, 2}));
}

TEST(ResilientLoaderTest, QuarantineBudgetBlowsWithResourceExhausted) {
  std::vector<RawPage> raw = {GoodPage(0), BombPage(1), BombPage(2),
                              BombPage(3)};
  ResilientLoadOptions options = TightOptions();
  options.max_quarantine_fraction = 0.5;
  Result<LoadedCrawl> crawl = LoadCrawl(raw, options);
  EXPECT_EQ(crawl.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResilientLoaderTest, BudgetBoundaryIsInclusive) {
  // Exactly at the budget (2 of 4 = 0.5) still loads.
  std::vector<RawPage> raw = {GoodPage(0), BombPage(1), BombPage(2),
                              GoodPage(3)};
  ResilientLoadOptions options = TightOptions();
  options.max_quarantine_fraction = 0.5;
  Result<LoadedCrawl> crawl = LoadCrawl(raw, options);
  ASSERT_TRUE(crawl.ok());
  EXPECT_EQ(crawl->quarantined.size(), 2u);
}

TEST(ResilientLoaderTest, EmptyCrawlLoadsEmpty) {
  Result<LoadedCrawl> crawl = LoadCrawl({});
  ASSERT_TRUE(crawl.ok());
  EXPECT_TRUE(crawl->pages.empty());
}

TEST(ResilientLoaderTest, EmptyBatchRunsPipelineToEmptyOkResult) {
  // Regression: an empty raw batch used to surface RunPipeline's
  // kInvalidArgument instead of the documented empty OK result.
  KnowledgeBase kb((Ontology()));
  Result<PipelineResult> result = RunPipelineResilient({}, kb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->extractions.empty());
  EXPECT_TRUE(result->cluster_of_page.empty());
  EXPECT_TRUE(result->diagnostics.quarantined_pages.empty());
}

TEST(ResilientLoaderTest, FullyQuarantinedBatchWithinBudgetIsEmptyOk) {
  // Every page quarantines but the budget (1.0) allows it: the shard
  // degrades to an empty result that still accounts for each lost page.
  KnowledgeBase kb((Ontology()));
  ResilientLoadOptions options = TightOptions();
  options.max_quarantine_fraction = 1.0;
  std::vector<RawPage> raw = {BombPage(0), BombPage(1)};
  Result<PipelineResult> result =
      RunPipelineResilient(raw, kb, PipelineConfig{}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->extractions.empty());
  ASSERT_EQ(result->diagnostics.quarantined_pages.size(), 2u);
  EXPECT_EQ(result->diagnostics.quarantined_pages[0].page, 0);
  EXPECT_EQ(result->diagnostics.quarantined_pages[1].page, 1);
}

}  // namespace
}  // namespace ceres
