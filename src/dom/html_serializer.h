#ifndef CERES_DOM_HTML_SERIALIZER_H_
#define CERES_DOM_HTML_SERIALIZER_H_

#include <string>

#include "dom/dom_tree.h"

namespace ceres {

/// Renders a DomDocument back to HTML with all attribute values and text
/// escaped. Serialization round-trips through ParseHtml to a structurally
/// identical document (same tags, indices, attributes, text), which the
/// synthetic site generator relies on: it records ground truth as XPaths in
/// the built tree and resolves them in the parsed copy.
std::string SerializeHtml(const DomDocument& doc);

/// Escapes &, <, >, and double quotes for embedding in HTML.
std::string EscapeHtml(std::string_view text);

}  // namespace ceres

#endif  // CERES_DOM_HTML_SERIALIZER_H_
