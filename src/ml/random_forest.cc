#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace ceres {

namespace {

// True when the example's sparse vector contains `feature` with a non-zero
// value. Entries are sorted after Finalize(), so binary search applies.
bool HasFeature(const SparseVector& features, int32_t feature) {
  const auto& entries = features.entries();
  auto it = std::lower_bound(
      entries.begin(), entries.end(), feature,
      [](const std::pair<int32_t, double>& entry, int32_t key) {
        return entry.first < key;
      });
  return it != entries.end() && it->first == feature && it->second != 0.0;
}

// Gini impurity of a class-count histogram.
double Gini(const std::vector<int64_t>& counts, int64_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (int64_t count : counts) {
    double p = static_cast<double>(count) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

}  // namespace

Status RandomForest::Train(const std::vector<LabeledExample>& examples,
                           int32_t num_features, int32_t num_classes,
                           const RandomForestConfig& config) {
  if (examples.empty()) {
    return Status::InvalidArgument("no training examples");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  for (const LabeledExample& example : examples) {
    if (!example.features.finalized()) {
      return Status::InvalidArgument("example features not finalized");
    }
    if (example.label < 0 || example.label >= num_classes) {
      return Status::InvalidArgument(
          StrCat("label out of range: ", example.label));
    }
  }
  if (config.num_trees < 1 || config.max_depth < 1) {
    return Status::InvalidArgument("num_trees and max_depth must be >= 1");
  }

  num_classes_ = num_classes;
  trees_.clear();
  trees_.resize(static_cast<size_t>(config.num_trees));
  const int candidates_per_split =
      config.features_per_split > 0
          ? config.features_per_split
          : std::max(1, static_cast<int>(std::ceil(
                            std::sqrt(static_cast<double>(num_features)))));

  Rng rng(config.seed);
  for (Tree& tree : trees_) {
    Rng tree_rng = rng.Fork();
    // Bootstrap sample.
    const size_t sample_size = std::max<size_t>(
        1, static_cast<size_t>(config.bagging_fraction *
                               static_cast<double>(examples.size())));
    std::vector<int> sample(sample_size);
    for (int& index : sample) {
      index = static_cast<int>(tree_rng.Index(examples.size()));
    }

    // Iterative depth-first tree construction.
    struct Pending {
      int32_t node;
      std::vector<int> indices;
      int depth;
    };
    auto make_leaf = [&](Node* node, const std::vector<int>& indices) {
      std::vector<int64_t> counts(static_cast<size_t>(num_classes_), 0);
      for (int index : indices) {
        ++counts[static_cast<size_t>(
            examples[static_cast<size_t>(index)].label)];
      }
      node->feature = -1;
      node->distribution.assign(static_cast<size_t>(num_classes_), 0.0);
      for (int32_t cls = 0; cls < num_classes_; ++cls) {
        node->distribution[static_cast<size_t>(cls)] =
            static_cast<double>(counts[static_cast<size_t>(cls)]) /
            static_cast<double>(indices.size());
      }
    };

    tree.nodes.emplace_back();
    std::vector<Pending> stack{{0, std::move(sample), 0}};
    while (!stack.empty()) {
      Pending pending = std::move(stack.back());
      stack.pop_back();
      const std::vector<int>& indices = pending.indices;

      // Class counts to decide purity / leaf-ness.
      std::vector<int64_t> counts(static_cast<size_t>(num_classes_), 0);
      for (int index : indices) {
        ++counts[static_cast<size_t>(
            examples[static_cast<size_t>(index)].label)];
      }
      const int64_t total = static_cast<int64_t>(indices.size());
      const double parent_gini = Gini(counts, total);
      if (pending.depth >= config.max_depth ||
          total < 2 * config.min_samples_leaf || parent_gini == 0.0) {
        make_leaf(&tree.nodes[static_cast<size_t>(pending.node)], indices);
        continue;
      }

      // Candidate features: sampled from those PRESENT in the node's
      // examples (splitting on absent features is useless).
      std::unordered_set<int32_t> present;
      for (int index : indices) {
        for (const auto& [feature, value] :
             examples[static_cast<size_t>(index)].features.entries()) {
          if (value != 0.0) present.insert(feature);
        }
      }
      std::vector<int32_t> pool(present.begin(), present.end());
      std::sort(pool.begin(), pool.end());  // Determinism.
      tree_rng.Shuffle(&pool);
      if (static_cast<int>(pool.size()) > candidates_per_split) {
        pool.resize(static_cast<size_t>(candidates_per_split));
      }

      int32_t best_feature = -1;
      double best_score = parent_gini;  // Must strictly improve.
      for (int32_t feature : pool) {
        std::vector<int64_t> with(static_cast<size_t>(num_classes_), 0);
        int64_t with_total = 0;
        for (int index : indices) {
          const LabeledExample& example =
              examples[static_cast<size_t>(index)];
          if (HasFeature(example.features, feature)) {
            ++with[static_cast<size_t>(example.label)];
            ++with_total;
          }
        }
        if (with_total == 0 || with_total == total) continue;
        std::vector<int64_t> without(static_cast<size_t>(num_classes_), 0);
        for (int32_t cls = 0; cls < num_classes_; ++cls) {
          without[static_cast<size_t>(cls)] =
              counts[static_cast<size_t>(cls)] -
              with[static_cast<size_t>(cls)];
        }
        const int64_t without_total = total - with_total;
        const double weighted =
            (static_cast<double>(with_total) * Gini(with, with_total) +
             static_cast<double>(without_total) *
                 Gini(without, without_total)) /
            static_cast<double>(total);
        if (weighted + 1e-12 < best_score) {
          best_score = weighted;
          best_feature = feature;
        }
      }
      if (best_feature < 0) {
        make_leaf(&tree.nodes[static_cast<size_t>(pending.node)], indices);
        continue;
      }

      std::vector<int> left_indices;   // Feature absent.
      std::vector<int> right_indices;  // Feature present.
      for (int index : indices) {
        if (HasFeature(examples[static_cast<size_t>(index)].features,
                       best_feature)) {
          right_indices.push_back(index);
        } else {
          left_indices.push_back(index);
        }
      }
      const int32_t left = static_cast<int32_t>(tree.nodes.size());
      tree.nodes.emplace_back();
      const int32_t right = static_cast<int32_t>(tree.nodes.size());
      tree.nodes.emplace_back();
      Node& node = tree.nodes[static_cast<size_t>(pending.node)];
      node.feature = best_feature;
      node.left = left;
      node.right = right;
      stack.push_back({left, std::move(left_indices), pending.depth + 1});
      stack.push_back({right, std::move(right_indices), pending.depth + 1});
    }
  }
  trained_ = true;
  return Status::Ok();
}

std::vector<double> RandomForest::PredictProbabilities(
    const SparseVector& features) const {
  CERES_CHECK(trained_);
  std::vector<double> total(static_cast<size_t>(num_classes_), 0.0);
  for (const Tree& tree : trees_) {
    int32_t node = 0;
    while (tree.nodes[static_cast<size_t>(node)].feature >= 0) {
      const Node& current = tree.nodes[static_cast<size_t>(node)];
      node = HasFeature(features, current.feature) ? current.right
                                                   : current.left;
    }
    const std::vector<double>& leaf =
        tree.nodes[static_cast<size_t>(node)].distribution;
    for (int32_t cls = 0; cls < num_classes_; ++cls) {
      total[static_cast<size_t>(cls)] += leaf[static_cast<size_t>(cls)];
    }
  }
  for (double& p : total) p /= static_cast<double>(trees_.size());
  return total;
}

std::pair<int32_t, double> RandomForest::Predict(
    const SparseVector& features) const {
  std::vector<double> probs = PredictProbabilities(features);
  auto it = std::max_element(probs.begin(), probs.end());
  return {static_cast<int32_t>(it - probs.begin()), *it};
}

int64_t RandomForest::TotalNodes() const {
  int64_t total = 0;
  for (const Tree& tree : trees_) {
    total += static_cast<int64_t>(tree.nodes.size());
  }
  return total;
}

}  // namespace ceres
