#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {

namespace {

// Computes the softmax of `logits` in place, numerically stabilized.
void SoftmaxInPlace(std::vector<double>* logits) {
  double max_logit = *std::max_element(logits->begin(), logits->end());
  double sum = 0;
  for (double& v : *logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (double& v : *logits) v /= sum;
}

}  // namespace

Result<LbfgsResult> LogisticRegression::Train(
    const std::vector<LabeledExample>& examples, int32_t num_features,
    int32_t num_classes, const LogRegConfig& config) {
  if (examples.empty()) {
    return Status::InvalidArgument("no training examples");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument(
        StrCat("need at least 2 classes, got ", num_classes));
  }
  for (const LabeledExample& example : examples) {
    if (example.label < 0 || example.label >= num_classes) {
      return Status::InvalidArgument(
          StrCat("label out of range: ", example.label));
    }
    if (!example.features.finalized()) {
      return Status::InvalidArgument("example features not finalized");
    }
  }

  num_features_ = num_features;
  num_classes_ = num_classes;
  const int32_t stride = num_features_ + 1;  // +1 intercept.
  const size_t dim = static_cast<size_t>(num_classes_) * stride;
  std::vector<double> params(dim, 0.0);
  const double lambda = 1.0 / std::max(config.l2_c, 1e-12);

  LbfgsObjective objective = [&](const std::vector<double>& w,
                                 std::vector<double>* grad) {
    std::fill(grad->begin(), grad->end(), 0.0);
    double loss = 0;
    std::vector<double> logits(static_cast<size_t>(num_classes_));
    for (const LabeledExample& example : examples) {
      for (int32_t k = 0; k < num_classes_; ++k) {
        const double* wk = w.data() + static_cast<size_t>(k) * stride;
        logits[static_cast<size_t>(k)] =
            example.features.Dot(wk, num_features_) + wk[num_features_];
      }
      SoftmaxInPlace(&logits);
      const double p_true =
          std::max(logits[static_cast<size_t>(example.label)], 1e-300);
      loss -= example.weight * std::log(p_true);
      for (int32_t k = 0; k < num_classes_; ++k) {
        double err = logits[static_cast<size_t>(k)] -
                     (k == example.label ? 1.0 : 0.0);
        err *= example.weight;
        double* gk = grad->data() + static_cast<size_t>(k) * stride;
        example.features.AxpyInto(err, gk, num_features_);
        gk[num_features_] += err;
      }
    }
    // L2 penalty: lambda/2 * ||W||^2 over weights (and optionally biases).
    for (int32_t k = 0; k < num_classes_; ++k) {
      const double* wk = w.data() + static_cast<size_t>(k) * stride;
      double* gk = grad->data() + static_cast<size_t>(k) * stride;
      const int32_t limit = config.regularize_bias ? stride : num_features_;
      for (int32_t f = 0; f < limit; ++f) {
        loss += 0.5 * lambda * wk[f] * wk[f];
        gk[f] += lambda * wk[f];
      }
    }
    return loss;
  };

  LbfgsResult solver_result = MinimizeLbfgs(objective, &params, config.solver);
  weights_ = std::move(params);
  trained_ = true;
  return solver_result;
}

std::vector<double> LogisticRegression::PredictProbabilities(
    const SparseVector& features) const {
  CERES_CHECK(trained_);
  const int32_t stride = num_features_ + 1;
  std::vector<double> logits(static_cast<size_t>(num_classes_));
  for (int32_t k = 0; k < num_classes_; ++k) {
    const double* wk = weights_.data() + static_cast<size_t>(k) * stride;
    logits[static_cast<size_t>(k)] =
        features.Dot(wk, num_features_) + wk[num_features_];
  }
  SoftmaxInPlace(&logits);
  return logits;
}

std::pair<int32_t, double> LogisticRegression::Predict(
    const SparseVector& features) const {
  std::vector<double> probs = PredictProbabilities(features);
  auto it = std::max_element(probs.begin(), probs.end());
  return {static_cast<int32_t>(it - probs.begin()), *it};
}

double LogisticRegression::WeightAt(int32_t cls, int32_t feature) const {
  CERES_CHECK(trained_);
  CERES_CHECK(cls >= 0 && cls < num_classes_);
  CERES_CHECK(feature >= 0 && feature < num_features_);
  return weights_[static_cast<size_t>(cls) * (num_features_ + 1) + feature];
}

Result<LogisticRegression> LogisticRegression::FromWeights(
    int32_t num_features, int32_t num_classes, std::vector<double> weights) {
  if (num_features < 0 || num_classes < 2) {
    return Status::InvalidArgument("bad model dimensions");
  }
  const size_t expected = static_cast<size_t>(num_classes) *
                          (static_cast<size_t>(num_features) + 1);
  if (weights.size() != expected) {
    return Status::InvalidArgument(
        StrCat("weight vector has ", weights.size(), " values; expected ",
               expected));
  }
  LogisticRegression model;
  model.num_features_ = num_features;
  model.num_classes_ = num_classes;
  model.weights_ = std::move(weights);
  model.trained_ = true;
  return model;
}

double LogisticRegression::BiasAt(int32_t cls) const {
  CERES_CHECK(trained_);
  CERES_CHECK(cls >= 0 && cls < num_classes_);
  return weights_[static_cast<size_t>(cls) * (num_features_ + 1) +
                  num_features_];
}

}  // namespace ceres
