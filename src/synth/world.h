#ifndef CERES_SYNTH_WORLD_H_
#define CERES_SYNTH_WORLD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "synth/names.h"

namespace ceres::synth {

/// The ground-truth universe of one vertical: a complete, noise-free
/// knowledge base (every fact that websites may assert) plus typed entity
/// rosters. Seed KBs handed to CERES are *projections* of a World (see
/// KbBuilder); web pages are *renderings* of World facts (see
/// SiteGenerator); evaluation compares extractions back to World truth.
struct World {
  explicit World(Ontology ontology) : kb(std::move(ontology)) {}
  World(World&&) = default;
  World& operator=(World&&) = default;

  KnowledgeBase kb;
  std::unordered_map<TypeId, std::vector<EntityId>> by_type;

  /// Registers an entity and tracks it in the roster.
  EntityId Add(TypeId type, const std::string& name) {
    EntityId id = kb.AddEntity(type, name);
    by_type[type].push_back(id);
    return id;
  }

  const std::vector<EntityId>& OfType(TypeId type) const {
    static const std::vector<EntityId> kEmpty;
    auto it = by_type.find(type);
    return it == by_type.end() ? kEmpty : it->second;
  }
};

/// Size knobs of the movie world (people / films / TV, the IMDb-like
/// domain of §5.1.1–5.1.2). Counts scale linearly with `scale`.
struct MovieWorldConfig {
  uint64_t seed = 1;
  double scale = 1.0;
  int num_persons = 2200;
  int num_films = 650;
  int num_series = 25;
  int num_episodes = 450;
  int num_places = 60;
};

/// Builds the movie world: films with directors/writers/cast/genres/dates,
/// people with filmographies (inverse predicates), aliases, birth data, and
/// TV episodes with deliberately ambiguous titles ("Pilot"). Role overlap
/// (directors who write and act) mirrors the disambiguation challenges of
/// Figure 1.
World BuildMovieWorld(const MovieWorldConfig& config = {});

struct BookWorldConfig {
  uint64_t seed = 2;
  double scale = 1.0;
  int num_authors = 260;
  int num_books = 620;
  int num_publishers = 40;
};
World BuildBookWorld(const BookWorldConfig& config = {});

struct NbaWorldConfig {
  uint64_t seed = 3;
  double scale = 1.0;
  int num_players = 420;
  int num_teams = 30;
};
World BuildNbaWorld(const NbaWorldConfig& config = {});

struct UniversityWorldConfig {
  uint64_t seed = 4;
  double scale = 1.0;
  int num_universities = 420;
};
World BuildUniversityWorld(const UniversityWorldConfig& config = {});

/// Canonical predicate-name constants shared between world builders, site
/// templates, and benches. (Names follow the paper's Table 9 style.)
namespace pred {
// Movie vertical.
inline constexpr char kFilmHasCastMember[] = "film.hasCastMember.person";
inline constexpr char kFilmDirectedBy[] = "film.wasDirectedBy.person";
inline constexpr char kFilmWrittenBy[] = "film.wasWrittenBy.person";
inline constexpr char kFilmProducedBy[] = "film.wasProducedBy.person";
inline constexpr char kFilmMusicBy[] = "film.musicBy.person";
inline constexpr char kFilmHasGenre[] = "film.hasGenre.genre";
inline constexpr char kFilmReleaseDate[] = "film.hasReleaseDate.date";
inline constexpr char kFilmReleaseYear[] = "film.hasReleaseYear.year";
inline constexpr char kFilmMpaaRating[] = "film.mpaaRating.rating";
inline constexpr char kPersonActedIn[] = "person.actedIn.film";
inline constexpr char kPersonDirectorOf[] = "person.directorOf.film";
inline constexpr char kPersonWriterOf[] = "person.writerOf.film";
inline constexpr char kPersonProducerOf[] = "person.producerOf.film";
inline constexpr char kPersonMusicFor[] = "person.createdMusicFor.film";
inline constexpr char kPersonAlias[] = "person.hasAlias.name";
inline constexpr char kPersonBirthPlace[] = "person.placeOfBirth.place";
inline constexpr char kPersonBirthDate[] = "person.dateOfBirth.date";
inline constexpr char kEpisodeNumber[] = "episode.episodeNumber.number";
inline constexpr char kEpisodeSeason[] = "episode.seasonNumber.number";
inline constexpr char kEpisodeSeries[] = "episode.partOfSeries.series";
// Book vertical.
inline constexpr char kBookAuthor[] = "book.writtenBy.author";
inline constexpr char kBookPublisher[] = "book.publishedBy.publisher";
inline constexpr char kBookPubDate[] = "book.publicationDate.date";
inline constexpr char kBookIsbn[] = "book.isbn13.isbn";
// NBA vertical.
inline constexpr char kPlayerTeam[] = "player.memberOf.team";
inline constexpr char kPlayerHeight[] = "player.height.length";
inline constexpr char kPlayerWeight[] = "player.weight.mass";
// University vertical.
inline constexpr char kUniversityType[] = "university.type.category";
inline constexpr char kUniversityPhone[] = "university.phone.phone";
inline constexpr char kUniversityWebsite[] = "university.website.url";
}  // namespace pred

}  // namespace ceres::synth

#endif  // CERES_SYNTH_WORLD_H_
