file(REMOVE_RECURSE
  "libceres_ml.a"
)
