#include "synth/site_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "dom/html_parser.h"
#include "dom/xpath.h"

namespace ceres::synth {
namespace {

World SmallWorld() {
  MovieWorldConfig config;
  config.scale = 0.1;
  return BuildMovieWorld(config);
}

SiteSpec FilmSiteSpec(const World& world, int pages) {
  SiteSpec spec;
  spec.name = "test.example";
  spec.seed = 9;
  spec.tmpl.topic_type = "film";
  spec.tmpl.css_prefix = "tt";
  spec.tmpl.sections = {
      {pred::kFilmDirectedBy, "director", SectionLayout::kRow, 0.0, 3},
      {pred::kFilmHasCastMember, "cast", SectionLayout::kList, 0.0, 10},
      {pred::kFilmHasGenre, "genre", SectionLayout::kList, 0.0, 5},
      {pred::kFilmReleaseDate, "release_date", SectionLayout::kRow, 0.0, 1},
  };
  TypeId film = *world.kb.ontology().TypeByName("film");
  const auto& films = world.OfType(film);
  spec.topics.assign(films.begin(),
                     films.begin() + std::min<size_t>(films.size(),
                                                      static_cast<size_t>(pages)));
  return spec;
}

TEST(SiteGeneratorTest, RendersOnePagePerTopic) {
  World world = SmallWorld();
  SiteSpec spec = FilmSiteSpec(world, 12);
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  ASSERT_EQ(pages.size(), 12u);
  for (const GeneratedPage& page : pages) {
    EXPECT_NE(page.topic, kInvalidEntity);
    EXPECT_FALSE(page.html.empty());
    EXPECT_FALSE(page.topic_xpath.empty());
    EXPECT_NE(page.url.find("test.example"), std::string::npos);
  }
}

TEST(SiteGeneratorTest, GroundTruthMatchesWorldFacts) {
  World world = SmallWorld();
  SiteSpec spec = FilmSiteSpec(world, 8);
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  PredicateId director =
      *world.kb.ontology().PredicateByName(pred::kFilmDirectedBy);
  for (const GeneratedPage& page : pages) {
    for (const GroundTruthFact& fact : page.facts) {
      if (fact.predicate == kNamePredicate) {
        EXPECT_EQ(fact.object, page.topic);
        continue;
      }
      // Every recorded fact must exist in the world KB.
      EXPECT_TRUE(world.kb.HasTriple(page.topic, fact.predicate,
                                     fact.object))
          << "page " << page.url;
      if (fact.predicate == director) {
        EXPECT_EQ(world.kb.entity(fact.object).name, fact.object_text);
      }
    }
  }
}

TEST(SiteGeneratorTest, DeterministicOutput) {
  World world = SmallWorld();
  SiteSpec spec = FilmSiteSpec(world, 6);
  std::vector<GeneratedPage> a = GenerateSite(world, spec);
  std::vector<GeneratedPage> b = GenerateSite(world, spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].html, b[i].html);
    EXPECT_EQ(a[i].facts.size(), b[i].facts.size());
  }
}

TEST(SiteGeneratorTest, MissingProbabilityDropsSections) {
  World world = SmallWorld();
  SiteSpec spec = FilmSiteSpec(world, 30);
  spec.tmpl.sections[0].missing_prob = 0.5;  // Director often missing.
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  PredicateId director =
      *world.kb.ontology().PredicateByName(pred::kFilmDirectedBy);
  int with_director = 0;
  for (const GeneratedPage& page : pages) {
    for (const GroundTruthFact& fact : page.facts) {
      if (fact.predicate == director) {
        ++with_director;
        break;
      }
    }
  }
  EXPECT_GT(with_director, 3);
  EXPECT_LT(with_director, 27);
}

TEST(SiteGeneratorTest, TrapSectionsCarryNoGroundTruth) {
  World world = SmallWorld();
  SiteSpec spec = FilmSiteSpec(world, 10);
  spec.tmpl.num_recommendations = 4;
  spec.tmpl.all_genres_nav = true;
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  for (const GeneratedPage& page : pages) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    ASSERT_TRUE(parsed.ok());
    // Collect ground-truth nodes.
    std::set<NodeId> truth_nodes;
    for (const GroundTruthFact& fact : page.facts) {
      truth_nodes.insert(XPath::Parse(fact.xpath)->Resolve(*parsed));
    }
    // No truth node sits inside a rec card or the genre nav.
    for (NodeId id = 0; id < parsed->size(); ++id) {
      std::string_view cls = parsed->Attribute(id, "class");
      if (cls == "tt-card" || cls == "tt-gnav") {
        for (NodeId inner = id; inner < parsed->size(); ++inner) {
          if (!parsed->IsAncestorOrSelf(id, inner)) continue;
          EXPECT_EQ(truth_nodes.count(inner), 0u);
        }
      }
    }
  }
}

TEST(SiteGeneratorTest, MergedFilmographyLabelsAllRoles) {
  World world = SmallWorld();
  SiteSpec spec;
  spec.name = "person.example";
  spec.seed = 4;
  spec.tmpl.topic_type = "person";
  spec.tmpl.css_prefix = "pp";
  spec.tmpl.merged_filmography = true;
  spec.tmpl.sections = {
      {pred::kPersonActedIn, "cast", SectionLayout::kList, 0.0, 20},
      {pred::kPersonDirectorOf, "director", SectionLayout::kList, 0.0, 10},
      {pred::kPersonWriterOf, "writer", SectionLayout::kList, 0.0, 10},
  };
  TypeId person = *world.kb.ontology().TypeByName("person");
  const auto& persons = world.OfType(person);
  spec.topics.assign(persons.begin(), persons.begin() + 20);
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  PredicateId acted = *world.kb.ontology().PredicateByName(pred::kPersonActedIn);
  PredicateId directed =
      *world.kb.ontology().PredicateByName(pred::kPersonDirectorOf);
  bool saw_multi_role_node = false;
  for (const GeneratedPage& page : pages) {
    std::map<std::string, std::set<PredicateId>> roles_at;
    for (const GroundTruthFact& fact : page.facts) {
      if (fact.predicate == acted || fact.predicate == directed) {
        roles_at[fact.xpath].insert(fact.predicate);
      }
    }
    for (const auto& [xpath, roles] : roles_at) {
      if (roles.size() > 1) saw_multi_role_node = true;
    }
  }
  EXPECT_TRUE(saw_multi_role_node);
}

TEST(SiteGeneratorTest, NonDetailPagesHaveNoTopic) {
  World world = SmallWorld();
  SiteSpec spec = FilmSiteSpec(world, 3);
  spec.num_non_detail_pages = 4;
  spec.tmpl.daily_charts = true;
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  ASSERT_EQ(pages.size(), 7u);
  int non_detail = 0;
  for (const GeneratedPage& page : pages) {
    if (page.topic == kInvalidEntity) {
      ++non_detail;
      EXPECT_TRUE(page.facts.empty());
      EXPECT_TRUE(page.topic_xpath.empty());
    }
  }
  EXPECT_EQ(non_detail, 4);
}

TEST(SiteGeneratorTest, TitleYearSuffixApplied) {
  World world = SmallWorld();
  SiteSpec spec = FilmSiteSpec(world, 5);
  spec.tmpl.title_year_suffix = true;
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  for (const GeneratedPage& page : pages) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    NodeId title = XPath::Parse(page.topic_xpath)->Resolve(*parsed);
    ASSERT_NE(title, kInvalidNode);
    // Rendered title ends with "(YYYY)" but the recorded topic name is
    // the canonical name without the year.
    const std::string_view rendered = parsed->node(title).text;
    EXPECT_EQ(rendered.back(), ')');
    EXPECT_EQ(rendered.find(page.topic_name), 0u);
  }
}

TEST(SiteGeneratorTest, SearchBoxRendersBothTypeValues) {
  World world = SmallWorld();
  SiteSpec spec = FilmSiteSpec(world, 3);
  spec.tmpl.search_box_values = true;
  std::vector<GeneratedPage> pages = GenerateSite(world, spec);
  for (const GeneratedPage& page : pages) {
    EXPECT_NE(page.html.find(">Public<"), std::string::npos);
    EXPECT_NE(page.html.find(">Private<"), std::string::npos);
  }
}

}  // namespace
}  // namespace ceres::synth
