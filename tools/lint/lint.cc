#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace ceres::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Tokenizer: comments, string/char literals, and preprocessor lines are
// stripped (literals survive as placeholder tokens so statement shapes stay
// intact); `ceres-lint` allow-comments are recorded per line.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool is_literal = false;
};

struct TokenizedFile {
  std::vector<Token> tokens;
  /// line -> rules suppressed on that line ("all" suppresses every rule).
  /// Kept ordered so the stale-suppression audit reports deterministically.
  std::map<int, std::set<std::string>> suppressions;
};

/// One `#include "target"` directive (angle-bracket includes are system
/// headers and carry no layering information).
struct IncludeDirective {
  std::string target;
  int line = 0;
};

bool IsIdentStart(char c) {
  return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }

bool IsIdent(const Token& token) {
  return !token.is_literal && !token.text.empty() &&
         IsIdentStart(token.text[0]);
}

/// Records a `ceres-lint` allow-comment found in a comment's text.
void ParseSuppression(const std::string& comment, int line,
                      TokenizedFile* out) {
  static const std::string kMarker = std::string("ceres-lint") + ": allow(";
  size_t at = comment.find(kMarker);
  while (at != std::string::npos) {
    const size_t start = at + kMarker.size();
    const size_t end = comment.find(')', start);
    if (end == std::string::npos) break;
    out->suppressions[line].insert(comment.substr(start, end - start));
    at = comment.find(kMarker, end);
  }
}

TokenizedFile Tokenize(const std::string& content) {
  TokenizedFile out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto advance_newline = [&]() {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      advance_newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          advance_newline();
          i += 2;
          continue;
        }
        if (content[i] == '\n') {
          advance_newline();
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const size_t start = i;
      while (i < n && content[i] != '\n') ++i;
      ParseSuppression(content.substr(start, i - start), line, &out);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const size_t start = i;
      const int comment_line = line;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') advance_newline();
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      ParseSuppression(content.substr(start, i - start), comment_line, &out);
      continue;
    }
    // Identifiers (and raw-string prefixes).
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(content[j])) ++j;
      const std::string ident = content.substr(i, j - i);
      static const std::unordered_set<std::string> kRawPrefixes = {
          "R", "LR", "u8R", "uR", "UR"};
      if (j < n && content[j] == '"' && kRawPrefixes.count(ident) > 0) {
        // Raw string literal: R"delim( ... )delim".
        size_t k = j + 1;
        std::string delim;
        while (k < n && content[k] != '(') delim += content[k++];
        const std::string closer = ")" + delim + "\"";
        size_t close = content.find(closer, k);
        if (close == std::string::npos) close = n;
        for (size_t p = j; p < std::min(close + closer.size(), n); ++p) {
          if (content[p] == '\n') advance_newline();
        }
        out.tokens.push_back(Token{"<str>", line, true});
        i = std::min(close + closer.size(), n);
        continue;
      }
      out.tokens.push_back(Token{ident, line, false});
      i = j;
      continue;
    }
    // Numbers (only shape matters; consume alnum + dots + exponent signs).
    if (c >= '0' && c <= '9') {
      size_t j = i;
      while (j < n && (IsIdentChar(content[j]) || content[j] == '.' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back(Token{content.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') advance_newline();
        ++j;
      }
      out.tokens.push_back(
          Token{quote == '"' ? "<str>" : "<chr>", line, true});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Two-character punctuators the rules care about.
    if (i + 1 < n) {
      const std::string two = content.substr(i, 2);
      if (two == "::" || two == "->") {
        out.tokens.push_back(Token{two, line, false});
        i += 2;
        continue;
      }
    }
    out.tokens.push_back(Token{std::string(1, c), line, false});
    ++i;
  }
  return out;
}

/// Mines the quoted `#include` directives the tokenizer strips. Runs over
/// the raw content line by line; whitespace between `#`, `include`, and
/// the target is tolerated.
std::vector<IncludeDirective> ExtractIncludes(const std::string& content) {
  std::vector<IncludeDirective> out;
  int line = 1;
  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    const size_t eol = content.find('\n', i);
    const size_t end = (eol == std::string::npos) ? n : eol;
    size_t j = i;
    while (j < end && (content[j] == ' ' || content[j] == '\t')) ++j;
    if (j < end && content[j] == '#') {
      ++j;
      while (j < end && (content[j] == ' ' || content[j] == '\t')) ++j;
      if (content.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < end && (content[j] == ' ' || content[j] == '\t')) ++j;
        if (j < end && content[j] == '"') {
          const size_t close = content.find('"', j + 1);
          if (close != std::string::npos && close < end) {
            out.push_back(
                IncludeDirective{content.substr(j + 1, close - j - 1), line});
          }
        }
      }
    }
    i = end + 1;
    ++line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Loop-body mapping: per token, whether it sits inside at least one
// for/while/do body. Loop bodies are tracked by brace, so lambdas and
// nested blocks inside a loop count as inside it (a lambda defined in a
// per-cluster loop runs in that loop's cadence).
// ---------------------------------------------------------------------------

std::vector<bool> LoopBodyMask(const std::vector<Token>& tokens) {
  const size_t n = tokens.size();
  // First pass: mark the indices of `{` tokens that open a loop body.
  std::vector<bool> loop_brace(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (tokens[i].is_literal) continue;
    const std::string& text = tokens[i].text;
    if (text == "do") {
      if (i + 1 < n && tokens[i + 1].text == "{") loop_brace[i + 1] = true;
      continue;
    }
    if (text != "for" && text != "while") continue;
    if (i + 1 >= n || tokens[i + 1].text != "(") continue;
    size_t j = i + 2;
    int depth = 1;
    while (j < n && depth > 0) {
      if (!tokens[j].is_literal) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].text == ")") --depth;
      }
      ++j;
    }
    if (j < n && tokens[j].text == "{") loop_brace[j] = true;
  }
  // Second pass: propagate through the brace stack.
  std::vector<bool> mask(n, false);
  std::vector<bool> stack;  // true = loop body brace
  int loop_depth = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!tokens[i].is_literal && tokens[i].text == "}") {
      if (!stack.empty()) {
        if (stack.back()) --loop_depth;
        stack.pop_back();
      }
    }
    mask[i] = loop_depth > 0;
    if (!tokens[i].is_literal && tokens[i].text == "{") {
      stack.push_back(loop_brace[i]);
      if (loop_brace[i]) ++loop_depth;
    }
  }
  return mask;
}

// ---------------------------------------------------------------------------
// Scope classification from the file path.
// ---------------------------------------------------------------------------

bool PathContains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Test code: exempt from thread-hygiene (tests legitimately sleep to widen
/// race windows and provoke timeouts) and from the layering rules (tests
/// may reach any module).
bool IsTestFile(const std::string& path) {
  return PathContains(path, "tests/") || EndsWith(path, "_test.cc");
}

/// The concurrency-critical scope that must use util/sync.h wrappers.
/// src/net/ is included: the HTTP server's event loop and responder inbox
/// coordinate with handler threads, so their locks must participate in
/// lock-order deadlock detection too.
bool IsCheckedSyncScope(const std::string& path) {
  if (EndsWith(path, "util/sync.h") || EndsWith(path, "util/sync.cc")) {
    return false;  // the wrappers themselves wrap std primitives
  }
  return PathContains(path, "src/serve/") || PathContains(path, "src/net/") ||
         EndsWith(path, "util/parallel.h");
}

/// Pipeline-stage configuration scope for the config-deadline rule.
/// src/fusion/ is included: fusion is the last pipeline stage and its
/// config must be interruptible like any other (FusionConfig::deadline).
bool IsStageConfigScope(const std::string& path) {
  return PathContains(path, "src/core/") ||
         PathContains(path, "src/cluster/") ||
         PathContains(path, "src/fusion/");
}

/// Process-lifecycle scope for the raw-process rule: src/dist/ owns every
/// fork/exec/kill/waitpid in the tree, so worker lifetimes always flow
/// through the coordinator's watchdog, reaping, and restart accounting.
bool IsRawProcessScope(const std::string& path) {
  return !PathContains(path, "src/dist/");
}

/// Socket-edge scope for the raw-socket rule: src/net/ owns every socket
/// and epoll descriptor in the tree, so connection lifecycle, non-blocking
/// setup, and event-loop registration stay behind one audited boundary.
/// (`poll` itself stays unpoliced: src/dist/ waits on worker pipes with
/// it, which is not a socket edge.)
bool IsRawSocketScope(const std::string& path) {
  return !PathContains(path, "src/net/");
}

/// Batch-pipeline scope for the raw-parallelism rule: stage code receives
/// its thread budget via ParallelConfig, it never picks one itself.
bool IsBatchParallelScope(const std::string& path) {
  return PathContains(path, "src/core/");
}

/// Timing scope for the raw-timing rule: pipeline and serving code must
/// time through obs (TraceSpan / MonotonicNow) so measurements land in the
/// shared trace and metrics surfaces. src/obs/ itself wraps the clock and
/// stays out of scope.
bool IsRawTimingScope(const std::string& path) {
  if (PathContains(path, "src/obs/")) return false;
  return PathContains(path, "src/core/") || PathContains(path, "src/serve/");
}

/// The parse→feature hot path the hot-alloc rule polices: every loop in
/// these modules runs per page, per node, or per token, so allocation
/// churn there multiplies by the corpus size. This is the scope the
/// ROADMAP [perf] arena/interning pass targets. src/ml/ joined the scope
/// with the hashed-feature-id work: the feature dictionary sits on the
/// same per-node loops as the featurizer.
bool IsHotAllocScope(const std::string& path) {
  if (IsTestFile(path)) return false;
  return PathContains(path, "src/dom/") || PathContains(path, "src/text/") ||
         PathContains(path, "src/cluster/") ||
         PathContains(path, "src/core/") || PathContains(path, "src/ml/");
}

/// The HTTP event-loop scope the blocking-in-loop rule polices: all of
/// src/net/ except http_client.* — everything else there (server loop,
/// parsers, rate limiter, responder) executes on the event-loop thread,
/// where one blocking call stalls every connection. HttpClient is the
/// deliberately-blocking client used by tools and the dist tier; its own
/// implementation may block, but naming it anywhere else in src/net/ means
/// the loop is about to do synchronous network I/O.
bool IsEventLoopScope(const std::string& path) {
  if (IsTestFile(path) || !PathContains(path, "src/net/")) return false;
  const std::string base = Basename(path);
  return base.rfind("http_client", 0) != 0;
}

// ---------------------------------------------------------------------------
// Module mapping for the layer rules.
// ---------------------------------------------------------------------------

/// Module of a scanned file: "src/<m>/..." -> m, "tools/lint/..." ->
/// "lint", other "tools/..." -> "tools", "bench/..." -> "bench". Empty for
/// tests and unrecognized roots (exempt from layer policing).
std::string ModuleOfPath(const std::string& path) {
  if (IsTestFile(path)) return "";
  auto segment_after = [&](const std::string& root) -> std::string {
    const size_t at = path.rfind(root);
    if (at == std::string::npos) return "";
    // Only treat it as a root when it starts the path or follows '/'.
    if (at != 0 && path[at - 1] != '/') return "";
    const size_t start = at + root.size();
    const size_t slash = path.find('/', start);
    if (slash == std::string::npos) return "";
    return path.substr(start, slash - start);
  };
  const std::string src_module = segment_after("src/");
  if (!src_module.empty()) return src_module;
  if (PathContains(path, "tools/lint/")) return "lint";
  if (PathContains(path, "tools/")) return "tools";
  if (PathContains(path, "bench/")) return "bench";
  return "";
}

/// Module of an include target ("kb/kb_io.h" -> "kb"). Empty when the
/// target has no directory component.
std::string ModuleOfInclude(const std::string& target) {
  const size_t slash = target.find('/');
  if (slash == std::string::npos) return "";
  return target.substr(0, slash);
}

/// Spellings under which a scanned file can be included: the path suffix
/// after src/ (the project include root), after tools/ (the lint library
/// root), and after the repo root for bench/ ("bench/bench_common.h").
std::vector<std::string> IncludeSpellings(const std::string& path) {
  std::vector<std::string> out;
  for (const char* root : {"src/", "tools/", "bench/"}) {
    const size_t at = path.rfind(root);
    if (at == std::string::npos) continue;
    if (at != 0 && path[at - 1] != '/') continue;
    if (std::string(root) == "bench/") {
      out.push_back(path.substr(at));  // spelled from the repo root
    } else {
      out.push_back(path.substr(at + std::string(root).size()));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pass one: whole-program fact mining.
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& KeywordBlacklist() {
  static const std::unordered_set<std::string> kKeywords = {
      "if",     "for",    "while",  "switch", "return", "sizeof",
      "operator", "new",  "delete", "co_await", "co_return", "throw"};
  return kKeywords;
}

void CollectStatusFunctions(const TokenizedFile& file,
                            std::unordered_set<std::string>* names) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].is_literal) continue;
    const std::string& text = tokens[i].text;
    if (text != "Status" && text != "Result") continue;
    size_t j = i + 1;
    if (text == "Result") {
      if (j >= tokens.size() || tokens[j].text != "<") continue;
      int depth = 1;
      ++j;
      while (j < tokens.size() && depth > 0) {
        if (tokens[j].text == "<") ++depth;
        if (tokens[j].text == ">") --depth;
        ++j;
      }
      if (depth != 0) continue;
    }
    // Identifier chain: Name, Class::Name, ns::Class::Name, ...
    size_t name_at = j;
    while (name_at + 1 < tokens.size() && IsIdent(tokens[name_at]) &&
           tokens[name_at + 1].text == "::") {
      name_at += 2;
    }
    if (name_at >= tokens.size() || !IsIdent(tokens[name_at])) continue;
    if (name_at + 1 >= tokens.size() || tokens[name_at + 1].text != "(") {
      continue;
    }
    const std::string& name = tokens[name_at].text;
    if (KeywordBlacklist().count(name) > 0) continue;
    names->insert(name);
  }
}

/// Mines the names of functions called from inside loop bodies in hot-path
/// files — pass one of the by-value-string-parameter check. Member calls
/// and free calls both count: the rule matches definitions by bare name.
void CollectLoopCalledFunctions(const TokenizedFile& file,
                                const std::vector<bool>& in_loop,
                                std::unordered_set<std::string>* names) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!in_loop[i] || !IsIdent(tokens[i])) continue;
    if (tokens[i + 1].text != "(") continue;
    if (KeywordBlacklist().count(tokens[i].text) > 0) continue;
    names->insert(tokens[i].text);
  }
}

// ---------------------------------------------------------------------------
// Single-file discipline rules (pass two). Rules emit every diagnostic;
// allow-comment filtering happens centrally so the stale-suppression audit
// can see which suppressions actually fired.
// ---------------------------------------------------------------------------

void CheckIgnoredStatus(const SourceFile& source, const TokenizedFile& file,
                        const std::unordered_set<std::string>& status_fns,
                        std::vector<Diagnostic>* out) {
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdent(tokens[i]) || status_fns.count(tokens[i].text) == 0) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    // Walk back over the receiver chain (obj.  obj->  ns::) to find what
    // precedes the whole call expression.
    size_t k = i;
    while (k >= 2 && !tokens[k - 1].is_literal &&
           (tokens[k - 1].text == "::" || tokens[k - 1].text == "." ||
            tokens[k - 1].text == "->") &&
           IsIdent(tokens[k - 2])) {
      k -= 2;
    }
    if (k > 0) {
      const std::string& before = tokens[k - 1].text;
      if (before != ";" && before != "{" && before != "}") continue;
    }
    // The call must be the entire statement: matching ')' followed by ';'.
    size_t j = i + 2;
    int depth = 1;
    while (j < tokens.size() && depth > 0) {
      if (!tokens[j].is_literal) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].text == ")") --depth;
      }
      ++j;
    }
    if (depth != 0 || j >= tokens.size() || tokens[j].text != ";") continue;
    out->push_back(Diagnostic{
        source.path, tokens[i].line, "ignored-status",
        "result of Status/Result-returning call '" + tokens[i].text +
            "' is ignored; propagate it, handle it, or discard explicitly "
            "with (void)"});
  }
}

void CheckNakedSync(const SourceFile& source, const TokenizedFile& file,
                    std::vector<Diagnostic>* out) {
  if (!IsCheckedSyncScope(source.path)) return;
  static const std::unordered_map<std::string, std::string> kReplacements = {
      {"mutex", "ceres::CheckedMutex"},
      {"recursive_mutex", "ceres::CheckedMutex"},
      {"shared_mutex", "ceres::CheckedMutex"},
      {"timed_mutex", "ceres::CheckedMutex"},
      {"lock_guard", "ceres::MutexLock"},
      {"scoped_lock", "ceres::MutexLock"},
      {"unique_lock", "ceres::UniqueMutexLock"},
      {"condition_variable", "ceres::CondVar"},
      {"condition_variable_any", "ceres::CondVar"},
  };
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].is_literal || tokens[i].text != "std") continue;
    if (tokens[i + 1].text != "::") continue;
    auto it = kReplacements.find(tokens[i + 2].text);
    if (it == kReplacements.end()) continue;
    out->push_back(Diagnostic{
        source.path, tokens[i].line, "naked-sync",
        "naked std::" + it->first +
            " in lock-order-checked scope; use " + it->second +
            " from util/sync.h"});
  }
}

void CheckThreadHygiene(const SourceFile& source, const TokenizedFile& file,
                        std::vector<Diagnostic>* out) {
  if (IsTestFile(source.path)) return;
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].is_literal) continue;
    const std::string& text = tokens[i].text;
    if (text == "detach" && i > 0 && i + 1 < tokens.size() &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
        tokens[i + 1].text == "(") {
      out->push_back(Diagnostic{
          source.path, tokens[i].line, "thread-hygiene",
          "detached thread in non-test code; detached threads outlive the "
          "invariants of the objects they capture — keep the handle and "
          "join"});
    }
    if (text == "sleep_for" || text == "sleep_until") {
      out->push_back(Diagnostic{
          source.path, tokens[i].line, "thread-hygiene",
          text + " polling in non-test code; wait on a condition variable "
                 "or future instead of sleeping"});
    }
  }
}

void CheckConfigDeadline(const SourceFile& source, const TokenizedFile& file,
                         std::vector<Diagnostic>* out) {
  if (!IsStageConfigScope(source.path)) return;
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].is_literal || tokens[i].text != "struct") continue;
    if (!IsIdent(tokens[i + 1]) || !EndsWith(tokens[i + 1].text, "Config")) {
      continue;
    }
    if (tokens[i + 2].text != "{") continue;
    size_t j = i + 3;
    int depth = 1;
    bool has_deadline = false;
    while (j < tokens.size() && depth > 0) {
      if (!tokens[j].is_literal) {
        if (tokens[j].text == "{") ++depth;
        if (tokens[j].text == "}") --depth;
        if (tokens[j].text == "Deadline") has_deadline = true;
      }
      ++j;
    }
    if (has_deadline) continue;
    out->push_back(Diagnostic{
        source.path, tokens[i].line, "config-deadline",
        "pipeline-stage config struct '" + tokens[i + 1].text +
            "' carries no Deadline member; every stage config must be "
            "cooperatively interruptible (util/deadline.h)"});
  }
}

void CheckRawParallelism(const SourceFile& source, const TokenizedFile& file,
                         std::vector<Diagnostic>* out) {
  if (!IsBatchParallelScope(source.path)) return;
  const std::vector<Token>& tokens = file.tokens;
  auto is_number = [](const Token& token) {
    return !token.is_literal && !token.text.empty() &&
           token.text[0] >= '0' && token.text[0] <= '9';
  };
  auto emit = [&](int line, const std::string& message) {
    out->push_back(Diagnostic{source.path, line, "raw-parallelism", message});
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].is_literal) continue;
    const std::string& text = tokens[i].text;
    // Raw std::thread (spawn, member, or hardware_concurrency probe): the
    // thread budget belongs to the caller's ParallelConfig, not the stage.
    if (text == "std" && i + 2 < tokens.size() &&
        tokens[i + 1].text == "::" && tokens[i + 2].text == "thread") {
      emit(tokens[i].line,
           "raw std::thread in batch-pipeline code; take a ParallelConfig "
           "and run through ParallelFor (util/parallel.h)");
      continue;
    }
    // ParallelFor(n, <literal>, body): a hard-coded thread count.
    if (text == "ParallelFor" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      size_t j = i + 2;
      int depth = 1;
      while (j < tokens.size()) {
        if (!tokens[j].is_literal) {
          const std::string& t = tokens[j].text;
          if (t == "(" || t == "{" || t == "[") ++depth;
          if (t == ")" || t == "}" || t == "]") {
            if (--depth == 0) break;  // call ended before a second argument
          }
          if (depth == 1 && t == ",") break;
        }
        ++j;
      }
      if (j + 2 < tokens.size() && tokens[j].text == "," &&
          is_number(tokens[j + 1]) && tokens[j + 2].text == ",") {
        emit(tokens[j + 1].line,
             "literal thread count passed to ParallelFor; accept a "
             "ParallelConfig from the caller instead");
      }
      continue;
    }
    // ParallelConfig{<literal>} / ParallelConfig name{<literal>}: same
    // smell, aggregate-initialized with a hard-coded count.
    if (text == "ParallelConfig" && i + 2 < tokens.size()) {
      size_t brace = i + 1;
      if (IsIdent(tokens[brace])) ++brace;  // optional variable name
      if (brace + 1 < tokens.size() && tokens[brace].text == "{" &&
          is_number(tokens[brace + 1])) {
        emit(tokens[i].line,
             "ParallelConfig built from a literal thread count; use "
             "ParallelConfig::Sequential() or the caller's config");
      }
    }
  }
}

void CheckRawTiming(const SourceFile& source, const TokenizedFile& file,
                    std::vector<Diagnostic>* out) {
  if (!IsRawTimingScope(source.path)) return;
  for (const Token& token : file.tokens) {
    if (token.is_literal || token.text != "steady_clock") continue;
    out->push_back(Diagnostic{
        source.path, token.line, "raw-timing",
        "raw std::chrono::steady_clock timing in pipeline/serve code; time "
        "through obs::TraceSpan or obs::MonotonicNow (src/obs/trace.h) so "
        "measurements land in the shared trace and metrics surfaces"});
  }
}

/// Shared shape test for the raw-process / raw-socket / blocking-in-loop
/// syscall checks: tokens[i] names a banned function and tokens[i+1] is
/// '('. Returns false for member calls, class-qualified names, and
/// declarations — a bare `::` global-scope qualifier is still the raw
/// call.
bool IsBareCall(const std::vector<Token>& tokens, size_t i) {
  if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") return false;
  if (i == 0) return true;
  const std::string& before = tokens[i - 1].text;
  if (!tokens[i - 1].is_literal && (before == "." || before == "->")) {
    return false;
  }
  if (before == "::" && i >= 2 && IsIdent(tokens[i - 2])) return false;
  // A preceding identifier is a declaration (`void kill();`), not a call —
  // except `return kill(...)`.
  if (IsIdent(tokens[i - 1]) && before != "return") return false;
  return true;
}

void CheckRawProcess(const SourceFile& source, const TokenizedFile& file,
                     std::vector<Diagnostic>* out) {
  if (!IsRawProcessScope(source.path) || IsTestFile(source.path)) return;
  static const std::unordered_set<std::string> kProcessCalls = {
      "fork", "vfork", "execv", "execvp", "execve", "waitpid", "kill",
      "_exit"};
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdent(tokens[i]) || kProcessCalls.count(tokens[i].text) == 0) {
      continue;
    }
    if (!IsBareCall(tokens, i)) continue;
    out->push_back(Diagnostic{
        source.path, tokens[i].line, "raw-process",
        "raw process-control call '" + tokens[i].text +
            "' outside src/dist/; process lifecycle belongs to the dist "
            "coordinator/worker layer (watchdog, reaping, restart "
            "accounting)"});
  }
}

void CheckRawSocket(const SourceFile& source, const TokenizedFile& file,
                    std::vector<Diagnostic>* out) {
  if (!IsRawSocketScope(source.path) || IsTestFile(source.path)) return;
  static const std::unordered_set<std::string> kSocketCalls = {
      "socket",       "bind",          "listen",    "accept",     "accept4",
      "connect",      "epoll_create",  "epoll_create1",
      "epoll_ctl",    "epoll_wait"};
  const std::vector<Token>& tokens = file.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsIdent(tokens[i]) || kSocketCalls.count(tokens[i].text) == 0) {
      continue;
    }
    if (!IsBareCall(tokens, i)) continue;
    out->push_back(Diagnostic{
        source.path, tokens[i].line, "raw-socket",
        "raw socket/epoll call '" + tokens[i].text +
            "' outside src/net/; the socket edge belongs to the net layer "
            "(non-blocking setup, event-loop registration, connection "
            "lifecycle) — serve it through HttpServer/HttpClient"});
  }
}

// ---------------------------------------------------------------------------
// hot-alloc: allocation churn inside loop bodies on the parse→feature hot
// path.
// ---------------------------------------------------------------------------

/// Matches `std :: <container> < std :: string` at `i` and returns the
/// index one past the template argument list's closing '>', or 0 if the
/// shape does not match.
size_t MatchStringKeyedContainer(const std::vector<Token>& tokens, size_t i) {
  static const std::unordered_set<std::string> kContainers = {
      "map", "unordered_map", "set", "unordered_set", "multimap",
      "unordered_multimap", "multiset", "unordered_multiset"};
  if (i + 6 >= tokens.size()) return 0;
  if (tokens[i].is_literal || tokens[i].text != "std") return 0;
  if (tokens[i + 1].text != "::") return 0;
  if (kContainers.count(tokens[i + 2].text) == 0) return 0;
  if (tokens[i + 3].text != "<") return 0;
  if (tokens[i + 4].text != "std" || tokens[i + 5].text != "::" ||
      tokens[i + 6].text != "string") {
    return 0;
  }
  size_t j = i + 4;
  int depth = 1;
  while (j < tokens.size() && depth > 0) {
    if (!tokens[j].is_literal) {
      if (tokens[j].text == "<") ++depth;
      if (tokens[j].text == ">") --depth;
    }
    ++j;
  }
  return depth == 0 ? j : 0;
}

void CheckHotAlloc(const SourceFile& source, const TokenizedFile& file,
                   const std::vector<bool>& in_loop,
                   const std::unordered_set<std::string>& loop_called,
                   std::vector<Diagnostic>* out) {
  if (!IsHotAllocScope(source.path)) return;
  const std::vector<Token>& tokens = file.tokens;
  const size_t n = tokens.size();

  auto is_static_decl = [&](size_t i) {
    // Look back a few tokens for `static`: a static local is constructed
    // once, not per iteration.
    for (size_t back = 1; back <= 3 && back <= i; ++back) {
      const Token& t = tokens[i - back];
      if (t.is_literal) break;
      if (t.text == "static") return true;
      if (t.text != "const" && t.text != "constexpr") break;
    }
    return false;
  };

  for (size_t i = 0; i < n; ++i) {
    if (tokens[i].is_literal) continue;

    // (a) Construction of a string-keyed map/set inside a loop body.
    if (in_loop[i]) {
      const size_t after = MatchStringKeyedContainer(tokens, i);
      if (after != 0 && after < n && !is_static_decl(i)) {
        const std::string& next = tokens[after].text;
        // `&` / `*` bind a reference or pointer to an existing container;
        // `::` names a nested type. Everything else (an identifier
        // declaring a local, `(` / `{` building a temporary) constructs.
        if (next != "&" && next != "*" && next != "::") {
          out->push_back(Diagnostic{
              source.path, tokens[i].line, "hot-alloc",
              "string-keyed std::" + tokens[i + 2].text +
                  " constructed inside a hot-path loop body; hoist it out "
                  "of the loop, or restructure onto a sorted vector / "
                  "interned ids (ROADMAP [perf])"});
          i = after - 1;
          continue;
        }
      }
    }

    // (b) A temporary std::string materialized just to probe a container:
    // `m.find(std::string(view))` and friends. Fires loop or no loop —
    // these probes live in helpers (GetOrAdd, TypeByName) that hot loops
    // call, so the allocation multiplies even when the call site looks
    // flat. The fix is heterogeneous lookup, not hoisting.
    if (tokens[i].text == "." && i + 6 < n && IsIdent(tokens[i + 1]) &&
        !tokens[i + 1].is_literal) {
      static const std::unordered_set<std::string> kProbeCalls = {
          "find", "count", "at", "contains", "erase"};
      if (kProbeCalls.count(tokens[i + 1].text) > 0 &&
          tokens[i + 2].text == "(" && tokens[i + 3].text == "std" &&
          tokens[i + 4].text == "::" && tokens[i + 5].text == "string" &&
          tokens[i + 6].text == "(") {
        out->push_back(Diagnostic{
            source.path, tokens[i + 1].line, "hot-alloc",
            "temporary std::string constructed to " + tokens[i + 1].text +
                "() into a container on the hot path; give the container a "
                "transparent hasher + std::equal_to<> (heterogeneous "
                "lookup) so string_view probes do not allocate"});
        i += 6;
        continue;
      }
    }

    // (c) String concatenation via binary `+` inside a loop body: a
    // string-literal operand is proof of string concat...
    if (in_loop[i] && tokens[i].text == "+") {
      const bool literal_operand =
          (i > 0 && tokens[i - 1].is_literal && tokens[i - 1].text == "<str>") ||
          (i + 1 < n && tokens[i + 1].is_literal &&
           tokens[i + 1].text == "<str>");
      if (literal_operand) {
        out->push_back(Diagnostic{
            source.path, tokens[i].line, "hot-alloc",
            "string concatenation with operator+ inside a hot-path loop "
            "body; build into a reserved buffer with append/push_back "
            "instead of materializing temporaries"});
        continue;
      }
    }

    // ...and a `std::string x = <expr with top-level +>;` declaration is
    // concat even when both operands are named strings.
    if (in_loop[i] && tokens[i].text == "std" && i + 3 < n &&
        tokens[i + 1].text == "::" && tokens[i + 2].text == "string" &&
        IsIdent(tokens[i + 3]) && i + 4 < n && tokens[i + 4].text == "=" &&
        !is_static_decl(i)) {
      int depth = 0;
      for (size_t j = i + 5; j < n; ++j) {
        if (tokens[j].is_literal) continue;
        const std::string& t = tokens[j].text;
        if (t == "(" || t == "{" || t == "[") ++depth;
        if (t == ")" || t == "}" || t == "]") --depth;
        if (depth == 0 && t == ";") break;
        if (depth == 0 && t == "+") {
          out->push_back(Diagnostic{
              source.path, tokens[i].line, "hot-alloc",
              "std::string built by concatenation inside a hot-path loop "
              "body; build into a reserved buffer with append/push_back "
              "instead of materializing temporaries"});
          break;
        }
      }
    }

    // (d) A function definition taking std::string by value when some
    // hot-path loop calls a function of that name. The sink idiom
    // (body std::moves the parameter) is exempt: the copy is the point.
    if (IsIdent(tokens[i]) && i + 1 < n && tokens[i + 1].text == "(" &&
        loop_called.count(tokens[i].text) > 0) {
      // Find the parameter list's closing ')'.
      size_t close = i + 2;
      int depth = 1;
      while (close < n && depth > 0) {
        if (!tokens[close].is_literal) {
          if (tokens[close].text == "(") ++depth;
          if (tokens[close].text == ")") --depth;
        }
        ++close;
      }
      if (depth != 0 || close >= n) continue;
      // A definition follows with `{` before any `;` (allowing const,
      // noexcept, override, trailing return types, ctor init lists).
      size_t body_open = close;
      int guard_depth = 0;
      bool is_definition = false;
      while (body_open < n) {
        const std::string& t = tokens[body_open].text;
        if (!tokens[body_open].is_literal) {
          if (t == "(") ++guard_depth;
          if (t == ")") --guard_depth;
          if (guard_depth == 0 && t == ";") break;
          if (guard_depth == 0 && t == "=") break;  // = default / = 0
          if (guard_depth == 0 && t == "{") {
            is_definition = true;
            break;
          }
        }
        ++body_open;
      }
      if (!is_definition) continue;
      // By-value std::string parameters inside [i+2, close).
      std::vector<std::pair<std::string, int>> by_value;  // name, line
      for (size_t p = i + 2; p + 3 < close; ++p) {
        if (tokens[p].is_literal || tokens[p].text != "std") continue;
        if (tokens[p + 1].text != "::" || tokens[p + 2].text != "string") {
          continue;
        }
        const Token& after = tokens[p + 3];
        if (after.is_literal || !IsIdent(after)) continue;  // &, *, &&, view
        by_value.emplace_back(after.text, after.line);
      }
      if (by_value.empty()) continue;
      // Scan the init list + body for std::move(<param>).
      size_t body_end = body_open + 1;
      depth = 1;
      while (body_end < n && depth > 0) {
        if (!tokens[body_end].is_literal) {
          if (tokens[body_end].text == "{") ++depth;
          if (tokens[body_end].text == "}") --depth;
        }
        ++body_end;
      }
      for (const auto& [param, line] : by_value) {
        bool moved = false;
        for (size_t p = close; p + 2 < body_end; ++p) {
          if (tokens[p].is_literal || tokens[p].text != "move") continue;
          if (tokens[p + 1].text == "(" && tokens[p + 2].text == param) {
            moved = true;
            break;
          }
        }
        if (moved) continue;
        out->push_back(Diagnostic{
            source.path, line, "hot-alloc",
            "function '" + tokens[i].text + "' is called from a hot-path "
                "loop but takes std::string parameter '" + param +
                "' by value without moving it; take const std::string& or "
                "std::string_view"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// blocking-in-loop: blocking calls inside the HTTP event-loop scope.
// ---------------------------------------------------------------------------

void CheckBlockingInLoop(const SourceFile& source, const TokenizedFile& file,
                         std::vector<Diagnostic>* out) {
  if (!IsEventLoopScope(source.path)) return;
  static const std::unordered_set<std::string> kSleepCalls = {
      "sleep_for", "sleep_until", "sleep", "usleep", "nanosleep"};
  static const std::unordered_set<std::string> kFileIoCalls = {
      "fopen",  "freopen", "fread", "fwrite", "fgets", "fputs",
      "fprintf", "fscanf", "fflush", "fseek"};
  static const std::unordered_set<std::string> kFileStreams = {
      "ifstream", "ofstream", "fstream"};
  const std::vector<Token>& tokens = file.tokens;
  auto emit = [&](int line, const std::string& message) {
    out->push_back(Diagnostic{source.path, line, "blocking-in-loop", message});
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].is_literal) continue;
    const std::string& text = tokens[i].text;
    if (text == "HttpClient") {
      emit(tokens[i].line,
           "HttpClient named in event-loop scope; the client blocks on "
           "connect/send/recv and would stall every connection — forward "
           "through the Responder or a worker thread instead");
      continue;
    }
    if (kSleepCalls.count(text) > 0 && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      emit(tokens[i].line,
           "blocking sleep '" + text + "' in event-loop scope; the loop "
           "must only ever wait in epoll_wait — use timerfd-style timeouts "
           "or the server's idle-deadline machinery");
      continue;
    }
    if (text == "std" && i + 2 < tokens.size() &&
        tokens[i + 1].text == "::" &&
        kFileStreams.count(tokens[i + 2].text) > 0) {
      emit(tokens[i].line,
           "file stream std::" + tokens[i + 2].text + " in event-loop "
           "scope; file I/O blocks the loop — stage file work on a worker "
           "thread and hand results back through the Responder");
      continue;
    }
    if ((kFileIoCalls.count(text) > 0 || text == "system" ||
         text == "popen") &&
        IsBareCall(tokens, i)) {
      emit(tokens[i].line,
           "blocking call '" + text + "' in event-loop scope; file I/O and "
           "subprocesses stall every connection on the loop");
      continue;
    }
    // An unguarded read/write: the bare syscall as a whole statement, its
    // result discarded without (void). On the loop these must be checked
    // — a blocking fd or a short write silently wedges the loop.
    if ((text == "read" || text == "write") && IsBareCall(tokens, i)) {
      size_t k = i;
      bool global_qualified = false;
      if (i >= 1 && tokens[i - 1].text == "::" &&
          (i == 1 || !IsIdent(tokens[i - 2]))) {
        k = i - 1;
        global_qualified = true;
      }
      (void)global_qualified;
      bool statement_start =
          k == 0 || tokens[k - 1].text == ";" || tokens[k - 1].text == "{" ||
          tokens[k - 1].text == "}";
      if (!statement_start) continue;
      size_t j = i + 2;
      int depth = 1;
      while (j < tokens.size() && depth > 0) {
        if (!tokens[j].is_literal) {
          if (tokens[j].text == "(") ++depth;
          if (tokens[j].text == ")") --depth;
        }
        ++j;
      }
      if (depth != 0 || j >= tokens.size() || tokens[j].text != ";") continue;
      emit(tokens[i].line,
           "unguarded '" + text + "' in event-loop scope: the result is "
           "discarded, so a blocking fd or short transfer wedges the loop "
           "silently — check the return value or discard with (void) after "
           "proving the fd non-blocking");
    }
  }
}

// ---------------------------------------------------------------------------
// layer-violation: the module DAG check and file-level include cycles.
// ---------------------------------------------------------------------------

void CheckLayerEdges(const SourceFile& source,
                     const std::vector<IncludeDirective>& includes,
                     const LayerGraph& layers,
                     std::vector<Diagnostic>* out) {
  const std::string module = ModuleOfPath(source.path);
  if (module.empty()) return;  // tests and unrecognized roots are exempt
  if (!layers.Declares(module)) {
    out->push_back(Diagnostic{
        source.path, 1, "layer-violation",
        "module '" + module + "' is not declared in tools/lint/layers.txt; "
        "add it (with its allowed dependencies) so the layer DAG stays "
        "complete"});
    return;
  }
  for (const IncludeDirective& include : includes) {
    const std::string target = ModuleOfInclude(include.target);
    if (target.empty() || target == module) continue;
    if (!layers.Declares(target)) continue;  // not a project module
    if (layers.Allows(module, target)) continue;
    out->push_back(Diagnostic{
        source.path, include.line, "layer-violation",
        "undeclared cross-module include: module '" + module +
            "' may not include \"" + include.target + "\" (edge " + module +
            " -> " + target + " is not in tools/lint/layers.txt; move the "
            "shared piece down a layer or declare the edge deliberately)"});
  }
}

/// File-level include-cycle detection over the scanned set. Reports each
/// cycle once, rotated to start at its lexicographically-smallest member,
/// with the full path in the message.
void CheckIncludeCycles(
    const std::vector<SourceFile>& files,
    const std::vector<std::vector<IncludeDirective>>& includes,
    std::vector<Diagnostic>* out) {
  const size_t n = files.size();
  // Include spelling -> file index.
  std::unordered_map<std::string, size_t> by_spelling;
  for (size_t i = 0; i < n; ++i) {
    for (const std::string& spelling : IncludeSpellings(files[i].path)) {
      by_spelling.emplace(spelling, i);
    }
  }
  // Edges: (target file, line of the include directive).
  std::vector<std::vector<std::pair<size_t, int>>> graph(n);
  for (size_t i = 0; i < n; ++i) {
    for (const IncludeDirective& include : includes[i]) {
      auto it = by_spelling.find(include.target);
      if (it != by_spelling.end() && it->second != i) {
        graph[i].emplace_back(it->second, include.line);
      }
    }
  }
  // Iterative colored DFS; back edges close cycles.
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<size_t> stack;
  std::set<std::vector<size_t>> seen;
  struct Frame {
    size_t node;
    size_t next_edge = 0;
  };
  // Order roots by path so diagnostics are deterministic.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return files[a].path < files[b].path;
  });
  for (size_t root : order) {
    if (color[root] != 0) continue;
    std::vector<Frame> frames{Frame{root}};
    color[root] = 1;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_edge >= graph[frame.node].size()) {
        color[frame.node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const auto [next, line] = graph[frame.node][frame.next_edge++];
      if (color[next] == 1) {
        // Cycle: stack from `next` to the top.
        auto at = std::find(stack.begin(), stack.end(), next);
        std::vector<size_t> cycle(at, stack.end());
        // Canonical rotation for dedup + determinism.
        auto smallest = std::min_element(
            cycle.begin(), cycle.end(), [&](size_t a, size_t b) {
              return files[a].path < files[b].path;
            });
        std::rotate(cycle.begin(), smallest, cycle.end());
        if (!seen.insert(cycle).second) continue;
        std::string path_text;
        for (size_t member : cycle) {
          path_text += files[member].path + " -> ";
        }
        path_text += files[cycle.front()].path;
        // Anchor the diagnostic at the first member's include of the next
        // cycle member (or this back edge's line as a fallback).
        int anchor_line = line;
        const size_t first = cycle.front();
        const size_t second = cycle.size() > 1 ? cycle[1] : cycle.front();
        for (const auto& [target, include_line] : graph[first]) {
          if (target == second) {
            anchor_line = include_line;
            break;
          }
        }
        out->push_back(Diagnostic{
            files[first].path, anchor_line, "layer-violation",
            "include cycle: " + path_text + "; break the cycle by "
            "splitting the shared declarations into a lower header"});
      } else if (color[next] == 0) {
        color[next] = 1;
        stack.push_back(next);
        frames.push_back(Frame{next});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Central suppression filtering + the stale-suppression audit.
// ---------------------------------------------------------------------------

std::vector<Diagnostic> FilterSuppressionsAndAudit(
    const std::vector<SourceFile>& files,
    const std::vector<TokenizedFile>& tokenized,
    std::vector<Diagnostic> raw) {
  static const std::set<std::string> kKnownRules = {
      "ignored-status", "naked-sync",      "thread-hygiene",
      "config-deadline", "raw-parallelism", "raw-timing",
      "raw-process",     "raw-socket",      "layer-violation",
      "hot-alloc",       "blocking-in-loop"};
  std::unordered_map<std::string, const TokenizedFile*> by_path;
  for (size_t i = 0; i < files.size(); ++i) {
    by_path.emplace(files[i].path, &tokenized[i]);
  }
  // (file, line, entry) triples that matched at least one diagnostic.
  std::set<std::tuple<std::string, int, std::string>> used;
  std::vector<Diagnostic> kept;
  kept.reserve(raw.size());
  for (Diagnostic& diagnostic : raw) {
    auto file_it = by_path.find(diagnostic.file);
    bool suppressed = false;
    if (file_it != by_path.end()) {
      const auto& suppressions = file_it->second->suppressions;
      auto line_it = suppressions.find(diagnostic.line);
      if (line_it != suppressions.end()) {
        if (line_it->second.count(diagnostic.rule) > 0) {
          used.emplace(diagnostic.file, diagnostic.line, diagnostic.rule);
          suppressed = true;
        } else if (line_it->second.count("all") > 0) {
          used.emplace(diagnostic.file, diagnostic.line, "all");
          suppressed = true;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(diagnostic));
  }
  // Audit: every allow-comment must have fired.
  for (size_t i = 0; i < files.size(); ++i) {
    for (const auto& [line, entries] : tokenized[i].suppressions) {
      for (const std::string& entry : entries) {
        if (used.count({files[i].path, line, entry}) > 0) continue;
        std::string reason;
        if (entry != "all" && kKnownRules.count(entry) == 0) {
          reason = "names unknown rule '" + entry + "'";
        } else {
          reason = "suppresses nothing — no '" + entry +
                   "' diagnostic fires on this line anymore";
        }
        kept.push_back(Diagnostic{
            files[i].path, line, "stale-suppression",
            "stale allow(" + entry + ") comment " + reason +
                "; delete it so future regressions are not pre-excused"});
      }
    }
  }
  return kept;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

bool ParseLayerGraph(const std::string& text, LayerGraph* out,
                     std::string* error) {
  LayerGraph graph;
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  std::vector<std::tuple<int, std::string, std::string>> edges;
  while (std::getline(lines, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string module;
    if (!(fields >> module)) continue;  // blank / comment-only line
    if (module.back() != ':') {
      if (error != nullptr) {
        *error = "layers.txt line " + std::to_string(line_number) +
                 ": expected 'module:' but found '" + module + "'";
      }
      return false;
    }
    module.pop_back();
    if (module.empty()) {
      if (error != nullptr) {
        *error = "layers.txt line " + std::to_string(line_number) +
                 ": empty module name";
      }
      return false;
    }
    if (graph.allowed.count(module) > 0) {
      if (error != nullptr) {
        *error = "layers.txt line " + std::to_string(line_number) +
                 ": module '" + module + "' declared twice";
      }
      return false;
    }
    auto& deps = graph.allowed[module];
    std::string dep;
    while (fields >> dep) {
      deps.insert(dep);
      edges.emplace_back(line_number, module, dep);
    }
  }
  // Dependencies must themselves be declared modules (or the wildcard):
  // a typo'd dep would silently legalize nothing and confuse the report.
  for (const auto& [at, module, dep] : edges) {
    if (dep == "*" || graph.allowed.count(dep) > 0) continue;
    if (error != nullptr) {
      *error = "layers.txt line " + std::to_string(at) + ": module '" +
               module + "' depends on undeclared module '" + dep + "'";
    }
    return false;
  }
  *out = std::move(graph);
  return true;
}

std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files,
                             const LintOptions& options) {
  std::vector<TokenizedFile> tokenized;
  std::vector<std::vector<IncludeDirective>> includes;
  std::vector<std::vector<bool>> loop_masks;
  tokenized.reserve(files.size());
  includes.reserve(files.size());
  loop_masks.reserve(files.size());
  std::unordered_set<std::string> status_fns;
  std::unordered_set<std::string> loop_called;
  for (const SourceFile& file : files) {
    tokenized.push_back(Tokenize(file.content));
    includes.push_back(ExtractIncludes(file.content));
    loop_masks.push_back(LoopBodyMask(tokenized.back().tokens));
    CollectStatusFunctions(tokenized.back(), &status_fns);
    if (IsHotAllocScope(file.path)) {
      CollectLoopCalledFunctions(tokenized.back(), loop_masks.back(),
                                 &loop_called);
    }
  }
  std::vector<Diagnostic> diagnostics;
  for (size_t i = 0; i < files.size(); ++i) {
    CheckIgnoredStatus(files[i], tokenized[i], status_fns, &diagnostics);
    CheckNakedSync(files[i], tokenized[i], &diagnostics);
    CheckThreadHygiene(files[i], tokenized[i], &diagnostics);
    CheckConfigDeadline(files[i], tokenized[i], &diagnostics);
    CheckRawParallelism(files[i], tokenized[i], &diagnostics);
    CheckRawTiming(files[i], tokenized[i], &diagnostics);
    CheckRawProcess(files[i], tokenized[i], &diagnostics);
    CheckRawSocket(files[i], tokenized[i], &diagnostics);
    CheckHotAlloc(files[i], tokenized[i], loop_masks[i], loop_called,
                  &diagnostics);
    CheckBlockingInLoop(files[i], tokenized[i], &diagnostics);
    if (options.layers != nullptr) {
      CheckLayerEdges(files[i], includes[i], *options.layers, &diagnostics);
    }
  }
  CheckIncludeCycles(files, includes, &diagnostics);
  diagnostics =
      FilterSuppressionsAndAudit(files, tokenized, std::move(diagnostics));
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  // Identical duplicates (a line that trips the same rule twice with the
  // same message) add noise, not information.
  diagnostics.erase(
      std::unique(diagnostics.begin(), diagnostics.end(),
                  [](const Diagnostic& a, const Diagnostic& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      diagnostics.end());
  return diagnostics;
}

std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files) {
  return Lint(files, LintOptions{});
}

std::vector<SourceFile> CollectSources(const std::vector<std::string>& paths,
                                       std::string* error) {
  std::vector<std::string> collected;
  auto want_file = [](const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".cc";
  };
  auto skip_dir = [](const fs::path& path) {
    const std::string name = path.filename().string();
    return name == "corpus" || name == ".git" ||
           name.rfind("build", 0) == 0;
  };
  for (const std::string& root : paths) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      collected.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      if (error != nullptr) *error = "no such file or directory: " + root;
      return {};
    }
    fs::recursive_directory_iterator it(root, ec), end;
    while (it != end) {
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && want_file(it->path())) {
        collected.push_back(it->path().string());
      }
      it.increment(ec);
      if (ec) break;
    }
  }
  std::sort(collected.begin(), collected.end());
  std::vector<SourceFile> sources;
  sources.reserve(collected.size());
  for (const std::string& path : collected) {
    std::ifstream in(path);
    if (!in) {
      if (error != nullptr) *error = "cannot read: " + path;
      return {};
    }
    std::ostringstream content;
    content << in.rdbuf();
    sources.push_back(SourceFile{path, content.str()});
  }
  return sources;
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) + ": [" +
         diagnostic.rule + "] " + diagnostic.message;
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatJsonReport(size_t files_scanned,
                             const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << files_scanned
      << ",\n  \"violations\": " << diagnostics.size()
      << ",\n  \"diagnostics\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"file\": \"" << JsonEscape(d.file)
        << "\", \"line\": " << d.line
        << ", \"rule\": \"" << JsonEscape(d.rule)
        << "\", \"message\": \"" << JsonEscape(d.message) << "\"}";
  }
  out << (diagnostics.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

int RunLintCli(const std::vector<std::string>& args, std::string* out,
               std::string* err) {
  std::vector<std::string> paths;
  std::string layers_path;
  bool json = false;
  std::string json_path;
  for (const std::string& arg : args) {
    if (arg.rfind("--layers=", 0) == 0) {
      layers_path = arg.substr(9);
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      *err += "ceres_lint: unknown flag: " + arg + "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    *err += "usage: ceres_lint [--layers=FILE] [--json[=FILE]] "
            "<file-or-dir> [file-or-dir...]\n";
    return 2;
  }

  LayerGraph layers;
  LintOptions options;
  if (!layers_path.empty()) {
    std::ifstream in(layers_path);
    if (!in) {
      *err += "ceres_lint: cannot read layers file: " + layers_path + "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    std::string parse_error;
    if (!ParseLayerGraph(content.str(), &layers, &parse_error)) {
      *err += "ceres_lint: " + parse_error + "\n";
      return 2;
    }
    options.layers = &layers;
  }

  std::string collect_error;
  const std::vector<SourceFile> sources =
      CollectSources(paths, &collect_error);
  if (!collect_error.empty()) {
    *err += "ceres_lint: " + collect_error + "\n";
    return 2;
  }

  const std::vector<Diagnostic> diagnostics = Lint(sources, options);
  for (const Diagnostic& diagnostic : diagnostics) {
    *err += FormatDiagnostic(diagnostic) + "\n";
  }
  *err += "ceres_lint: scanned " + std::to_string(sources.size()) +
          " file(s), " + std::to_string(diagnostics.size()) +
          " violation(s)\n";
  if (json) {
    const std::string report = FormatJsonReport(sources.size(), diagnostics);
    if (json_path.empty()) {
      *out += report;
    } else {
      std::ofstream json_out(json_path);
      json_out << report;
      if (!json_out) {
        *err += "ceres_lint: cannot write JSON report: " + json_path + "\n";
        return 2;
      }
    }
  }
  return diagnostics.empty() ? 0 : 1;
}

}  // namespace ceres::lint
