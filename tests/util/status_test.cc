#include "util/status.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad page");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad page");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad page");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Status FailsThenPropagates(bool fail) {
  CERES_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status status = FailsThenPropagates(true);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "inner");
}

TEST(ResultDeathTest, AccessWithoutValueAborts) {
  Result<int> result = Status::Internal("boom");
  EXPECT_DEATH({ (void)result.value(); }, "non-OK status");
}

TEST(StatusTest, DeadlineAndCancelledFactories) {
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("x").ToString(),
            "DEADLINE_EXCEEDED: x");
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Cancelled("x").ToString(), "CANCELLED: x");
}

TEST(StatusTest, PrependContextKeepsCodeAndPrefixesMessage) {
  Status status =
      PrependContext(Status::NotFound("no such file"), "loading kb");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "loading kb: no such file");
}

TEST(StatusTest, PrependContextLeavesOkAndEmptyContextAlone) {
  EXPECT_TRUE(PrependContext(Status::Ok(), "ctx").ok());
  Status status = PrependContext(Status::Internal("msg"), "");
  EXPECT_EQ(status.message(), "msg");
}

Result<int> ParseEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd input");
  return x;
}

Result<int> DoubleEven(int x) {
  CERES_ASSIGN_OR_RETURN(int value, ParseEven(x));
  return value * 2;
}

Result<int> DoubleEvenWithContext(int x) {
  CERES_ASSIGN_OR_RETURN(int value, ParseEven(x), "doubling");
  return value * 2;
}

TEST(StatusTest, AssignOrReturnUnwrapsValue) {
  Result<int> result = DoubleEven(4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 8);
}

TEST(StatusTest, AssignOrReturnPropagatesError) {
  Result<int> result = DoubleEven(3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(), "odd input");
}

TEST(StatusTest, AssignOrReturnPrependsOptionalContext) {
  Result<int> result = DoubleEvenWithContext(3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "doubling: odd input");
}

TEST(StatusTest, AssignOrReturnAllowsExistingVariable) {
  int value = 0;
  auto assign = [&]() -> Status {
    CERES_ASSIGN_OR_RETURN(value, ParseEven(6));
    return Status::Ok();
  };
  ASSERT_TRUE(assign().ok());
  EXPECT_EQ(value, 6);
}

}  // namespace
}  // namespace ceres
