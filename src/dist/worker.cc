#include "dist/worker.h"

#include <errno.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <utility>

#include "robustness/resilient_loader.h"
#include "util/string_util.h"

namespace ceres::dist {

namespace {

/// Writes the first `n` bytes of `bytes` to `fd`, best-effort — the
/// kTruncatedResult fault wants exactly a torn frame on the wire, so write
/// errors are deliberately swallowed (the process is about to _exit).
void WritePrefix(int fd, const std::string& bytes, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, bytes.data() + off, n - off);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(w);
  }
}

Deadline ShardDeadline(const WorkerPipelineOptions& options) {
  if (options.shard_time_budget_ms <= 0) return Deadline::Infinite();
  return Deadline::After(
      std::chrono::milliseconds(options.shard_time_budget_ms));
}

/// Acts out `fault` at its trigger point inside the site loop. Never
/// returns for a firing fault: the worker process ends (or blocks forever,
/// for the watchdog to reap). `sites_done` is the number of fully
/// processed sites; faults fire halfway through the shard so the
/// coordinator has seen real heartbeats and progress first.
void MaybeActFault(ProcessFaultType fault, size_t sites_done,
                   size_t sites_total) {
  const size_t halfway = sites_total / 2;
  if (sites_done != halfway) return;
  switch (fault) {
    case ProcessFaultType::kWorkerCrash:
      _exit(3);
    case ProcessFaultType::kWorkerHang:
      // Silent forever: no heartbeats, no exit. pause() returns only on a
      // signal; SIGKILL from the watchdog is the one way out.
      for (;;) ::pause();
    case ProcessFaultType::kNone:
    case ProcessFaultType::kTruncatedResult:   // acts at result-write time
    case ProcessFaultType::kCorruptCheckpoint:  // coordinator-side fault
      break;
  }
}

}  // namespace

PipelineConfig MakeDistPipelineConfig(const WorkerPipelineOptions& options) {
  PipelineConfig config;
  config.cluster_pages = options.cluster_pages;
  config.min_cluster_size = options.min_cluster_size;
  return config;
}

Result<SiteResult> RunSiteForDist(const ShardSite& site,
                                  const KnowledgeBase& kb,
                                  const WorkerPipelineOptions& options,
                                  const Deadline& deadline) {
  PipelineConfig config = MakeDistPipelineConfig(options);
  config.deadline = deadline;
  ResilientLoadOptions load;
  load.max_quarantine_fraction = options.max_quarantine_fraction;
  CERES_ASSIGN_OR_RETURN(PipelineResult pipeline,
                         RunPipelineResilient(site.pages, kb, config, load),
                         StrCat("site ", site.site));
  SiteResult result;
  result.site = site.site;
  result.extractions = std::move(pipeline.extractions);
  result.pages = static_cast<int64_t>(site.pages.size());
  result.quarantined_pages =
      static_cast<int64_t>(pipeline.diagnostics.quarantined_pages.size());
  result.skipped_clusters =
      static_cast<int64_t>(pipeline.diagnostics.skipped_clusters.size());
  return result;
}

Result<ShardResult> RunShard(const ShardTask& task, const KnowledgeBase& kb) {
  const Deadline deadline = ShardDeadline(task.options);
  ShardResult result;
  result.shard = task.shard;
  result.sites.reserve(task.sites.size());
  for (const ShardSite& site : task.sites) {
    CERES_ASSIGN_OR_RETURN(
        SiteResult site_result,
        RunSiteForDist(site, kb, task.options, deadline),
        StrCat("shard ", task.shard));
    result.sites.push_back(std::move(site_result));
  }
  return result;
}

Status RunWorkerLoop(int in_fd, int out_fd, const KnowledgeBase& kb) {
  int64_t heartbeat_seq = 0;
  for (;;) {
    Result<Frame> frame = ReadFrame(in_fd);
    if (!frame.ok()) {
      // Clean EOF = the coordinator is gone; that is a normal way to stop.
      if (frame.status().code() == StatusCode::kNotFound) return Status::Ok();
      return PrependContext(frame.status(), "worker inbound");
    }
    if (frame->type == FrameType::kShutdown) return Status::Ok();
    if (frame->type != FrameType::kAssignShard) {
      return Status::Internal(StrCat("worker got unexpected ",
                                     FrameTypeName(frame->type), " frame"));
    }

    Result<ShardTask> task = DecodeShardTask(frame->payload);
    if (!task.ok()) {
      CERES_RETURN_IF_ERROR(WriteFrame(out_fd, FrameType::kWorkerError,
                                       task.status().ToString()));
      return PrependContext(task.status(), "decoding shard task");
    }

    HeartbeatMsg heartbeat;
    heartbeat.shard = task->shard;
    heartbeat.seq = heartbeat_seq++;
    CERES_RETURN_IF_ERROR(WriteFrame(out_fd, FrameType::kHeartbeat,
                                     EncodeHeartbeat(heartbeat)));

    const Deadline deadline = ShardDeadline(task->options);
    ShardResult result;
    result.shard = task->shard;
    result.sites.reserve(task->sites.size());
    bool shard_failed = false;
    for (size_t i = 0; i < task->sites.size(); ++i) {
      MaybeActFault(task->fault, i, task->sites.size());
      Result<SiteResult> site_result =
          RunSiteForDist(task->sites[i], kb, task->options, deadline);
      if (!site_result.ok()) {
        CERES_RETURN_IF_ERROR(
            WriteFrame(out_fd, FrameType::kWorkerError,
                       PrependContext(site_result.status(),
                                      StrCat("shard ", task->shard))
                           .ToString()));
        shard_failed = true;
        break;
      }
      result.sites.push_back(std::move(site_result.value()));
      ProgressMsg progress;
      progress.shard = task->shard;
      progress.sites_done = static_cast<int32_t>(i + 1);
      progress.sites_total = static_cast<int32_t>(task->sites.size());
      progress.site = task->sites[i].site;
      CERES_RETURN_IF_ERROR(WriteFrame(out_fd, FrameType::kProgress,
                                       EncodeProgress(progress)));
    }
    if (shard_failed) continue;  // the coordinator retries per its budget
    MaybeActFault(task->fault, task->sites.size(), task->sites.size());

    const std::string payload = EncodeShardResult(result);
    if (task->fault == ProcessFaultType::kTruncatedResult) {
      // The interrupted-pipe-write fault: half the encoded frame, then
      // gone. The coordinator's FrameBuffer must flag the torn stream.
      const std::string encoded = EncodeFrame(FrameType::kResult, payload);
      WritePrefix(out_fd, encoded, encoded.size() / 2);
      _exit(4);
    }
    CERES_RETURN_IF_ERROR(WriteFrame(out_fd, FrameType::kResult, payload));
  }
}

}  // namespace ceres::dist
