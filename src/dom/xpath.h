#ifndef CERES_DOM_XPATH_H_
#define CERES_DOM_XPATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "dom/dom_tree.h"
#include "util/status.h"

namespace ceres {

/// One step of an absolute XPath: a tag plus a 1-based index among same-tag
/// siblings, e.g. "div[3]".
///
/// The tag is an interned view (process StringPool): FromNode copies the
/// node's pooled tag and Parse interns, so steps are two words and equal
/// tags usually compare by pointer.
struct XPathStep {
  std::string_view tag;
  int index = 1;

  friend bool operator==(const XPathStep& a, const XPathStep& b) {
    return a.index == b.index &&
           (a.tag.data() == b.tag.data() ? a.tag.size() == b.tag.size()
                                         : a.tag == b.tag);
  }
};

/// Pooled rendered form of one step, e.g. "div[3]": rendered once per
/// distinct (tag, index) process-wide, interned, and memoized, so path
/// serialization composes cached step strings instead of re-rendering each
/// one. Thread-safe.
std::string_view RenderedXPathStep(const XPathStep& step);

/// An absolute XPath: the unique root-to-node address of a DOM node
/// (§2.1), e.g. "/html/body[1]/div[2]/span[1]".
class XPath {
 public:
  XPath() = default;
  explicit XPath(std::vector<XPathStep> steps) : steps_(std::move(steps)) {}

  /// Builds the absolute XPath of `id` within `doc`.
  static XPath FromNode(const DomDocument& doc, NodeId id);

  /// Parses "/html/body[1]/div[2]" form. The root step may omit the index.
  static Result<XPath> Parse(std::string_view text);

  const std::vector<XPathStep>& steps() const { return steps_; }
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  /// Serializes to "/tag[i]/tag[i]..." form. Index 1 on the leading "html"
  /// step is omitted for readability, matching common absolute-XPath style.
  std::string ToString() const;

  /// Finds the node addressed by this path in `doc`, or kInvalidNode when
  /// no such node exists (the path is not "extant on" the page, §3.1.2).
  NodeId Resolve(const DomDocument& doc) const;

  friend bool operator==(const XPath& a, const XPath& b) {
    return a.steps_ == b.steps_;
  }

 private:
  std::vector<XPathStep> steps_;
};

/// Step-level edit distance between two XPaths: insertions and deletions
/// cost 1; substituting a step costs 1 when the tags differ and 0.5 when
/// only the sibling index differs. This is the clustering distance of
/// §3.2.2 — paths into the same list ("td[4]" vs "td[9]") are near, paths
/// through different sections are far.
double XPathEditDistance(const XPath& a, const XPath& b);

/// If `a` and `b` have identical tags at every step and differ only in
/// sibling indices, returns the (0-based) step positions where the indices
/// differ; otherwise returns an empty vector and sets `*same_shape` false.
/// Used by negative sampling (§4.1) to recognize members of the same list.
std::vector<size_t> IndexOnlyDifferences(const XPath& a, const XPath& b,
                                         bool* same_shape);

/// Hash functor so XPath strings can key unordered containers cheaply.
struct XPathHash {
  size_t operator()(const XPath& path) const;
};

/// Per-document memo of XPath::FromNode / ToString results. Topic
/// identification and relation annotation address the same text nodes
/// repeatedly (once per candidate triple); rebuilding the root-to-node walk
/// and re-serializing it each time dominated their profiles. One cache per
/// (document, worker): lookups are lazy, entries live as long as the cache,
/// and the class is intentionally not thread-safe.
class XPathStringCache {
 public:
  explicit XPathStringCache(const DomDocument& doc) : doc_(&doc) {}

  /// The absolute XPath of `id`, built on first use.
  const XPath& Path(NodeId id);

  /// The serialized form of Path(id), built on first use. The reference
  /// stays valid for the cache's lifetime.
  const std::string& PathString(NodeId id);

 private:
  struct Entry {
    XPath path;
    std::string text;
    bool has_path = false;
    bool has_text = false;
  };

  Entry& EntryFor(NodeId id);

  const DomDocument* doc_;
  std::vector<Entry> entries_;
};

}  // namespace ceres

#endif  // CERES_DOM_XPATH_H_
