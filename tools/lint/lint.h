#ifndef CERES_TOOLS_LINT_LINT_H_
#define CERES_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

/// ceres_lint — the project's whole-program static analyzer, enforcing the
/// repo's architecture and discipline invariants over src/, tools/, and
/// bench/. It deliberately has no libclang dependency (only g++ ships in
/// the build image): files are tokenized with comment/string/preprocessor
/// stripping, `#include` directives are mined separately, and each rule
/// pattern-matches the token stream or the include graph. The rules are
/// tuned to the repo's idiom — precise on this codebase rather than
/// general over all C++.
///
/// The analyzer runs in two passes. Pass one mines whole-program facts
/// across every scanned file: the set of Status/Result-returning function
/// names, the set of function names called inside loop bodies on the
/// parse→feature hot path, the module-level `#include` graph, and the
/// file-level include graph. Pass two applies every rule per file against
/// those program-wide facts.
///
/// Single-file discipline rules (PR 3..7):
///   ignored-status   A call to a function declared as returning Status /
///                    Result<T> used as a bare expression statement. The
///                    declared-function set is mined from the scanned
///                    files themselves. Discard deliberately with
///                    `(void)Call();`.
///   naked-sync       `std::mutex` / `std::lock_guard` / `std::unique_lock`
///                    / `std::condition_variable` (and friends) named in
///                    the concurrency-critical scope (src/serve/, src/net/,
///                    src/util/parallel.h). That scope must use the
///                    checked wrappers from util/sync.h so every lock
///                    participates in lock-order deadlock detection.
///   thread-hygiene   `std::thread::detach()` or `sleep_for`/`sleep_until`
///                    polling in non-test code.
///   config-deadline  A `*Config` struct in src/core/, src/cluster/, or
///                    src/fusion/ without a `Deadline` member.
///   raw-parallelism  Raw `std::thread`, a `ParallelFor` call with a bare
///                    numeric thread count, or `ParallelConfig{<number>}`
///                    in src/core/.
///   raw-timing       `std::chrono::steady_clock` named in src/core/ or
///                    src/serve/ (src/obs/ excluded — it wraps the clock).
///   raw-process      `fork` / `vfork` / `exec*` / `waitpid` / `kill` /
///                    `_exit` called outside src/dist/ (tests exempt).
///   raw-socket       `socket` / `bind` / `listen` / `accept` / `accept4`
///                    / `connect` / `epoll_*` called outside src/net/
///                    (tests exempt). `poll` is deliberately not policed —
///                    src/dist/ waits on worker pipes with it.
///
/// Whole-program architecture rules (this file set is the layering
/// contract the [perf] arena pass and the multi-loop serving rungs build
/// on):
///   layer-violation  A cross-module `#include` edge not declared in the
///                    layer DAG (tools/lint/layers.txt): module A may
///                    include from module B only when layers.txt lists B
///                    among A's allowed dependencies ("*" = any, for
///                    driver layers like tools/ and bench/). Scanned
///                    modules missing from layers.txt are violations too.
///                    The same rule reports `#include` cycles at file
///                    granularity, with the full cycle path in the
///                    diagnostic (a cycle is a layering fault no DAG entry
///                    can legalize). Tests are exempt: they may reach any
///                    module.
///   hot-alloc        Allocation churn inside loop bodies on the
///                    parse→feature hot path (src/dom/, src/text/,
///                    src/cluster/, src/core/): construction of a
///                    string-keyed map/set (`std::map<std::string, ...>`
///                    and unordered/set variants) inside a loop body;
///                    `std::string` concatenation via binary `+` inside a
///                    loop body (a string-literal operand, or any `+` in a
///                    `std::string x = ...;` initializer); and a by-value
///                    `std::string` parameter on a function that some loop
///                    body on the hot path calls (mined whole-program) —
///                    unless the function body passes the parameter to
///                    `std::move` (the sink idiom keeps its copy).
///                    `static` locals are exempt (constructed once).
///   blocking-in-loop Blocking calls inside the HTTP event-loop scope
///                    (src/net/, excluding http_client.* — HttpClient is
///                    the deliberately-blocking client and must never be
///                    used from the loop): `sleep_*`/`usleep`/`nanosleep`,
///                    file I/O (fstream construction, fopen/fread/fwrite/
///                    fprintf and friends), `system`/`popen`, any mention
///                    of `HttpClient`, and a bare `read(...)`/`write(...)`
///                    whose result is discarded without `(void)` — an
///                    unguarded descriptor op that can block the loop.
///
/// Any diagnostic can be suppressed for one line with a trailing
/// `ceres-lint` allow-comment naming the rule slug (or `all`). Every
/// suppression must pay its way:
///   stale-suppression  An allow-comment that no longer matches any
///                      diagnostic on its line (or names an unknown rule).
///                      Stale suppressions hide future regressions behind
///                      an exemption nobody remembers; delete them. This
///                      audit is itself not suppressible.
namespace ceres::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  /// Rule slug ("ignored-status", "layer-violation", ...).
  std::string rule;
  std::string message;
};

/// One input to the linter. `path` decides rule scope (hot-path scope,
/// event-loop scope, test exemption) and module membership for the layer
/// rules; `content` is linted as-is, so callers may pair corpus content
/// with a synthetic path to pin a scope.
struct SourceFile {
  std::string path;
  std::string content;
};

/// The declared module-layer DAG: module -> modules it may include from.
/// "*" as a dependency allows every module (driver layers). A module may
/// always include itself; that edge needs no declaration.
struct LayerGraph {
  std::map<std::string, std::set<std::string>> allowed;

  bool Declares(const std::string& module) const {
    return allowed.count(module) > 0;
  }
  bool Allows(const std::string& from, const std::string& to) const {
    if (from == to) return true;
    auto it = allowed.find(from);
    if (it == allowed.end()) return false;
    return it->second.count(to) > 0 || it->second.count("*") > 0;
  }
};

/// Parses the layers.txt format: one `module: dep dep ...` per line,
/// `#` comments, blank lines ignored. Returns false (with `error` set)
/// on a malformed line or a dependency on an undeclared-and-undeclarable
/// name (deps must be declared modules or "*"; forward references are
/// fine — the whole file is read before edges are checked).
bool ParseLayerGraph(const std::string& text, LayerGraph* out,
                     std::string* error);

/// Options for Lint. Without a layer graph the cross-module edge check is
/// skipped (include-cycle detection always runs — a cycle is illegal under
/// every DAG).
struct LintOptions {
  const LayerGraph* layers = nullptr;
};

/// Lints `files` as one program: pass one mines Status-returning function
/// declarations, hot-path loop call sites, and the include graph across
/// all of them; pass two applies every rule per file. Diagnostics come
/// back sorted by (file, line, rule).
std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files,
                             const LintOptions& options);
std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files);

/// Recursively collects .h/.cc files under each of `paths` (a path may
/// also name a single file). Skips directories named "corpus" (the lint
/// self-test's deliberately-bad snippets) and any build output directory
/// (name starting with "build").
std::vector<SourceFile> CollectSources(const std::vector<std::string>& paths,
                                       std::string* error);

/// "file:line: [rule] message" — the grep/IDE-clickable rendering.
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// Machine-readable report: {"files_scanned": N, "violations": M,
/// "diagnostics": [{"file", "line", "rule", "message"}, ...]}.
/// Diagnostics keep their sorted order.
std::string FormatJsonReport(size_t files_scanned,
                             const std::vector<Diagnostic>& diagnostics);

/// The ceres_lint command-line driver, callable in-process so the exit
/// code contract is testable. Args (without argv[0]):
///   [--layers=FILE] [--json[=FILE]] <file-or-dir> [file-or-dir...]
/// Human-readable diagnostics and the summary line append to `err`; the
/// JSON report appends to `out` (or is written to FILE with --json=FILE).
/// Returns the process exit code:
///   0  clean — no findings
///   1  findings — one or more diagnostics
///   2  internal error — bad usage, unreadable path, malformed layers
///      file, or an unwritable --json destination
int RunLintCli(const std::vector<std::string>& args, std::string* out,
               std::string* err);

}  // namespace ceres::lint

#endif  // CERES_TOOLS_LINT_LINT_H_
