#!/usr/bin/env sh
# tier1.sh — the repo's tier-1 verification gate in one command.
#
# Configures and builds the tree (warnings-as-errors), runs the ceres_lint
# static-analysis gate, runs the full test suite, then runs the serve and
# chaos labels explicitly (they cover the online service and the
# fault-injection paths and must never be skipped by label filters).
#
#   tools/tier1.sh                     # regular build in ./build
#   CERES_SANITIZE=ON tools/tier1.sh   # address+UB sanitized build in
#                                      # ./build-asan (slower, catches
#                                      # memory errors on corrupt input)
#   CERES_SANITIZE=thread tools/tier1.sh
#                                      # ThreadSanitizer build in
#                                      # ./build-tsan; runs the serve +
#                                      # tsan test labels (the concurrent
#                                      # slice) and fails on any data race
#   CERES_SANITIZE=undefined tools/tier1.sh
#                                      # UBSan-only build in ./build-ubsan;
#                                      # runs the full suite — cheaper than
#                                      # the ASan tier, catches signed
#                                      # overflow / bad shifts / misaligned
#                                      # access on the hot paths
#
# Any extra arguments are passed to every ctest invocation, e.g.
#   tools/tier1.sh -j4
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

mode="${CERES_SANITIZE:-}"
if [ "$mode" = "ON" ]; then
  build_dir="$repo_root/build-asan"
  sanitize_flags='-DCERES_SANITIZE=address;undefined'
elif [ "$mode" = "thread" ]; then
  build_dir="$repo_root/build-tsan"
  sanitize_flags='-DCERES_SANITIZE=thread'
elif [ "$mode" = "undefined" ]; then
  build_dir="$repo_root/build-ubsan"
  sanitize_flags='-DCERES_SANITIZE=undefined'
else
  build_dir="$repo_root/build"
  sanitize_flags=''
fi

echo "== tier1: configure ($build_dir)"
# shellcheck disable=SC2086  # sanitize_flags is intentionally word-split
cmake -B "$build_dir" -S "$repo_root" -DCERES_WERROR=ON $sanitize_flags

echo "== tier1: build"
cmake --build "$build_dir" -j

# The lint target runs the whole-program pass (layer DAG from
# tools/lint/layers.txt) and persists the machine-readable report as
# LINT_report.json at the repo root.
echo "== tier1: lint gate (ceres_lint over src/ tools/ bench/)"
cmake --build "$build_dir" --target lint

if [ "$mode" = "thread" ]; then
  # The ThreadSanitizer slice: concurrency primitives + the serve path.
  # TSan halts the test with a non-zero exit on the first reported race.
  echo "== tier1: tsan label (ThreadSanitizer)"
  (cd "$build_dir" && ctest --output-on-failure -L tsan "$@")

  echo "== tier1: serve label (ThreadSanitizer)"
  (cd "$build_dir" && ctest --output-on-failure -L serve "$@")

  # The socket edge under TSan: event loop vs. responder sends vs. client
  # threads vs. drain — the loopback e2e suite races all four.
  echo "== tier1: net label (ThreadSanitizer)"
  (cd "$build_dir" && ctest --output-on-failure -L net "$@")

  # The coordinator forks workers and polls their pipes; the sanitized
  # bench proves the event loop and recovery path are race-free.
  echo "== tier1: dist recovery smoke (ThreadSanitizer)"
  "$build_dir/bench/dist_recovery" --smoke

  echo "== tier1: tsan gates passed"
  exit 0
fi

if [ "$mode" = "undefined" ]; then
  # The UBSan slice: the whole suite under -fsanitize=undefined. Signed
  # overflow, invalid shifts, and misaligned loads on the parse/feature
  # hot paths become hard failures here; the heavier per-label and bench
  # smoke passes stay with the default and ASan tiers.
  echo "== tier1: full test suite (UBSan)"
  (cd "$build_dir" && ctest --output-on-failure -j "$@")

  # The mapped-image KB reinterprets mmap'd bytes as typed records; UBSan
  # is the tier that would catch a misaligned section or aliasing slip.
  echo "== tier1: kb label (UBSan)"
  (cd "$build_dir" && ctest --output-on-failure -L kb "$@")

  echo "== tier1: pipeline throughput smoke (UBSan)"
  "$build_dir/bench/pipeline_throughput" --smoke

  echo "== tier1: ubsan gates passed"
  exit 0
fi

echo "== tier1: full test suite"
(cd "$build_dir" && ctest --output-on-failure -j "$@")

echo "== tier1: serve label"
(cd "$build_dir" && ctest --output-on-failure -L serve "$@")

echo "== tier1: chaos label"
(cd "$build_dir" && ctest --output-on-failure -L chaos "$@")

# HTTP front-end slice: the parser trust boundary, per-client admission,
# the near-dup page cache, and the loopback end-to-end drain guarantees.
echo "== tier1: net label"
(cd "$build_dir" && ctest --output-on-failure -L net "$@")

# Multi-process slice: wire protocol, checkpoints, and the coordinator's
# crash/hang/torn-frame recovery, merged byte-identical to single-process.
echo "== tier1: dist label"
(cd "$build_dir" && ctest --output-on-failure -L dist "$@")

# Out-of-core KB slice: image round-trip, corruption typing (every
# malformed image is a kDataLoss, never a crash), and heap-vs-mapped
# parity including full-pipeline output.
echo "== tier1: kb label"
(cd "$build_dir" && ctest --output-on-failure -L kb "$@")

# The scoring/fusion regression slice plus the observability instruments:
# these carry the eval-correctness fixes and the metrics/trace layer, and
# must never be filtered out of the gate.
echo "== tier1: eval/fusion/obs labels"
(cd "$build_dir" && ctest --output-on-failure -L 'eval|fusion|obs' "$@")

# Batch-parallelism gate: thread-count determinism always; the >=1.5x
# speedup-at-4-threads assertion binds only on hosts with >=4 hardware
# threads (the bench skips it, with a note, on smaller machines).
echo "== tier1: pipeline throughput smoke (parallel batch determinism)"
"$build_dir/bench/pipeline_throughput" --smoke

# Serve-path smoke: exact accounting, per-cell stage timings in the BENCH
# JSON, and typed shedding under an injected model fault.
echo "== tier1: serve throughput smoke (stage timings + fault burst)"
"$build_dir/bench/serve_throughput" --smoke

# Distributed-recovery smoke: crashed workers respawn, shards retry, and
# the merge stays byte-identical to the single-process reference.
echo "== tier1: dist recovery smoke (crash retry + checkpointing)"
"$build_dir/bench/dist_recovery" --smoke

# Out-of-core KB smoke: image map vs text parse, query parity at bench
# scale, and the forked-worker RSS probe.
echo "== tier1: kb load smoke (image map vs parse)"
"$build_dir/bench/kb_load" --smoke

# Network serving smoke: loopback HTTP over the sharded service — warm
# near-dup stream must hit the cache and beat the cold pass, drain must
# account for every request, and 429 shedding must balance exactly.
echo "== tier1: serve qps smoke (HTTP front-end + page cache)"
"$build_dir/bench/serve_qps" --smoke

echo "== tier1: all gates passed"
