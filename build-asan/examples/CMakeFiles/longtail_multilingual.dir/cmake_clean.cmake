file(REMOVE_RECURSE
  "CMakeFiles/longtail_multilingual.dir/longtail_multilingual.cpp.o"
  "CMakeFiles/longtail_multilingual.dir/longtail_multilingual.cpp.o.d"
  "longtail_multilingual"
  "longtail_multilingual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longtail_multilingual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
