#include "dom/dom_tree.h"

#include "util/string_pool.h"

namespace ceres {

DomDocument::DomDocument() {
  DomNode root;
  root.tag = util::StringPool::Global().Intern("html");
  root.parent = kInvalidNode;
  nodes_.push_back(std::move(root));
}

NodeId DomDocument::AddChild(NodeId parent, std::string_view tag) {
  CERES_CHECK(parent >= 0 && parent < size());
  NodeId id = size();
  DomNode node;
  node.tag = util::StringPool::Global().Intern(tag);
  node.parent = parent;
  node.child_position = nodes_[parent].child_count;
  int same_tag = 0;
  for (NodeId sibling = nodes_[parent].first_child; sibling != kInvalidNode;
       sibling = nodes_[sibling].next_sibling) {
    // Tags are pooled: equal content implies equal data() pointer.
    if (nodes_[sibling].tag.data() == node.tag.data()) ++same_tag;
  }
  node.sibling_index = same_tag + 1;
  node.prev_sibling = nodes_[parent].last_child;
  if (nodes_[parent].last_child != kInvalidNode) {
    nodes_[nodes_[parent].last_child].next_sibling = id;
  } else {
    nodes_[parent].first_child = id;
  }
  nodes_[parent].last_child = id;
  ++nodes_[parent].child_count;
  nodes_.push_back(node);
  return id;
}

void DomDocument::AddAttribute(NodeId id, std::string_view name,
                               std::string_view value) {
  CERES_CHECK(id >= 0 && id < size());
  DomNode& node = nodes_[id];
  if (node.attr_count == 0) {
    node.attr_begin = static_cast<uint32_t>(attrs_.size());
  }
  // A node's attributes form one contiguous range of the flat array, so
  // they must be appended while the node is still the most recent one to
  // receive attributes.
  CERES_CHECK(node.attr_begin + node.attr_count == attrs_.size());
  attrs_.push_back(DomAttribute{util::StringPool::Global().Intern(name),
                                arena_.Append(value)});
  ++node.attr_count;
}

void DomDocument::SetText(NodeId id, std::string_view text) {
  CERES_CHECK(id >= 0 && id < size());
  nodes_[id].text = arena_.Append(text);
}

void DomDocument::AppendTextSegment(NodeId id, std::string_view segment) {
  CERES_CHECK(id >= 0 && id < size());
  DomNode& node = nodes_[id];
  node.text = arena_.ExtendTail(node.text, " ", segment);
}

void DomDocument::ReserveFor(size_t source_bytes) {
  // Synthetic and real pages land around 40-90 source bytes per element
  // and one attribute for every other element; reserving on those ratios
  // turns per-append doubling into one up-front allocation each.
  nodes_.reserve(source_bytes / 48 + 16);
  attrs_.reserve(source_bytes / 96 + 8);
}

std::vector<NodeId> DomDocument::TextFields() const {
  size_t count = 0;
  for (NodeId id = 0; id < size(); ++id) {
    if (nodes_[id].HasText()) ++count;
  }
  std::vector<NodeId> out;
  out.reserve(count);
  for (NodeId id = 0; id < size(); ++id) {
    if (nodes_[id].HasText()) out.push_back(id);
  }
  return out;
}

bool DomDocument::IsAncestorOrSelf(NodeId ancestor, NodeId descendant) const {
  NodeId cur = descendant;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

int DomDocument::Depth(NodeId id) const {
  int depth = 0;
  NodeId cur = node(id).parent;
  while (cur != kInvalidNode) {
    ++depth;
    cur = nodes_[cur].parent;
  }
  return depth;
}

}  // namespace ceres
