// Table 4 — Per-predicate precision/recall/F1 across ALL mentions (not
// page hits), VERTEX++ vs CERES-FULL, on the four SWDE-style verticals.
// Also prints the feature-ablation rows called out in DESIGN.md
// (structural-only and text-only CERES-Full variants, per vertical).
//
// Paper reference values are printed after each vertical block.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace {

using namespace ceres;         // NOLINT(build/namespaces)
using namespace ceres::bench;  // NOLINT(build/namespaces)

std::map<PredicateId, eval::Prf> CeresByPredicate(
    const ParsedCorpus& corpus, const std::vector<PredicateId>& predicates,
    const FeatureConfig& features) {
  std::vector<std::map<PredicateId, eval::Prf>> per_site(
      corpus.sites.size());
  ForEachSite(corpus, [&](size_t s) {
    const ParsedSite& site = corpus.sites[s];
    Split split = HalfSplit(site.pages.size());
    PipelineConfig config = MakeConfig(System::kCeresFull, split);
    config.features = features;
    PipelineResult result = RunSite(site, corpus.corpus.seed_kb, config);
    eval::ScoreOptions options;
    options.pages = split.eval;
    options.predicates = predicates;
    options.confidence_threshold = 0.5;
    per_site[s] = eval::ScoreExtractionsByPredicate(result.extractions,
                                                    site.truth, options);
  });
  std::map<PredicateId, eval::Prf> total;
  for (const auto& site_map : per_site) {
    for (const auto& [predicate, prf] : site_map) total[predicate] += prf;
  }
  return total;
}

std::map<PredicateId, eval::Prf> VertexByPredicate(
    const ParsedCorpus& corpus, const std::vector<PredicateId>& predicates) {
  std::map<PredicateId, eval::Prf> total;
  for (const ParsedSite& site : corpus.sites) {
    Split split = HalfSplit(site.pages.size());
    std::vector<Extraction> extractions = RunVertex(site, split);
    eval::ScoreOptions options;
    options.pages = split.eval;
    options.predicates = predicates;
    for (const auto& [predicate, prf] : eval::ScoreExtractionsByPredicate(
             extractions, site.truth, options)) {
      total[predicate] += prf;
    }
  }
  return total;
}

std::string PredicateLabel(const Ontology& ontology, PredicateId predicate) {
  if (predicate == kNamePredicate) return "Title/Name";
  return ontology.predicate(predicate).name;
}

void Cells(const eval::Prf& prf, bool available,
           std::vector<std::string>* row) {
  row->push_back(eval::RatioOrNa(available, prf.precision()));
  row->push_back(eval::RatioOrNa(available, prf.recall()));
  row->push_back(eval::RatioOrNa(available, prf.f1()));
}

}  // namespace

int main() {
  const double scale = synth::EnvScale();
  std::printf(
      "Table 4: per-predicate P/R/F1 over all mentions, Vertex++ vs "
      "CERES-Full (scale=%.2f)\nAblation columns: CERES-Full with "
      "structural-only (S) and text-only (T) features.\n\n",
      scale);

  for (synth::SwdeVertical vertical :
       {synth::SwdeVertical::kMovie, synth::SwdeVertical::kNbaPlayer,
        synth::SwdeVertical::kUniversity, synth::SwdeVertical::kBook}) {
    std::fprintf(stderr, "[table4] %s...\n",
                 SwdeVerticalName(vertical).c_str());
    ParsedCorpus corpus =
        ParseCorpus(synth::MakeSwdeCorpus(vertical, scale));
    std::vector<PredicateId> predicates =
        EvalPredicates(corpus.corpus, /*include_name=*/true);

    std::map<PredicateId, eval::Prf> vertex =
        VertexByPredicate(corpus, predicates);
    FeatureConfig both;
    std::map<PredicateId, eval::Prf> full =
        CeresByPredicate(corpus, predicates, both);
    FeatureConfig structural_only;
    structural_only.text_features = false;
    std::map<PredicateId, eval::Prf> s_only =
        CeresByPredicate(corpus, predicates, structural_only);
    FeatureConfig text_only;
    text_only.structural_features = false;
    std::map<PredicateId, eval::Prf> t_only =
        CeresByPredicate(corpus, predicates, text_only);

    std::printf("== %s ==\n", SwdeVerticalName(vertical).c_str());
    eval::TableReport table({"Predicate", "Vx P", "Vx R", "Vx F1", "CF P",
                             "CF R", "CF F1", "S F1", "T F1"});
    eval::Prf vertex_total;
    eval::Prf full_total;
    for (PredicateId predicate : predicates) {
      std::vector<std::string> row{
          PredicateLabel(corpus.corpus.seed_kb.ontology(), predicate)};
      const eval::Prf& v = vertex[predicate];
      const eval::Prf& f = full[predicate];
      // "NA" when the distantly supervised system never attempted the
      // predicate (e.g. MPAA rating, absent from the seed KB).
      bool f_available = f.tp + f.fp > 0 || predicate == kNamePredicate;
      Cells(v, true, &row);
      Cells(f, f_available, &row);
      row.push_back(eval::FormatRatio(s_only[predicate].f1()));
      row.push_back(eval::FormatRatio(t_only[predicate].f1()));
      table.AddRow(row);
      vertex_total += v;
      if (f_available) full_total += f;
    }
    std::vector<std::string> total_row{"All"};
    Cells(vertex_total, true, &total_row);
    Cells(full_total, true, &total_row);
    total_row.push_back(eval::FormatRatio(SumPrf(s_only).f1()));
    total_row.push_back(eval::FormatRatio(SumPrf(t_only).f1()));
    table.AddRow(total_row);
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "Paper (Table 4, averages): Movie Vx 0.97/0.97 CF 0.97/0.99; NBA Vx "
      "1.00/1.00 CF 0.98/0.98; University Vx 0.99/0.98 CF 0.87/0.94; Book "
      "Vx 0.93/0.93 CF 0.94/0.63 (P/R).\n");
  return 0;
}
