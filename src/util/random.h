#ifndef CERES_UTIL_RANDOM_H_
#define CERES_UTIL_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace ceres {

/// Deterministic pseudo-random source used throughout the synthetic data
/// generators and training-example samplers.
///
/// All randomness in the library flows through explicitly seeded Rng
/// instances so that every corpus, model, and benchmark result is exactly
/// reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    CERES_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    CERES_CHECK(n > 0);
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Poisson-distributed count with the given mean.
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Returns a uniformly chosen element of `items`. Requires non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    CERES_CHECK(!items.empty());
    return items[Index(items.size())];
  }

  /// Shuffles `items` in place (Fisher–Yates via std::shuffle).
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// Derives an independent child generator; used to give each site /
  /// page / module its own stream so edits in one place don't perturb
  /// unrelated data.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ceres

#endif  // CERES_UTIL_RANDOM_H_
