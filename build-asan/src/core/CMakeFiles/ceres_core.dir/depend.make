# Empty dependencies file for ceres_core.
# This may be replaced when dependencies are built.
