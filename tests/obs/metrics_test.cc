#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ceres::obs {
namespace {

/// Saves and restores the process-wide enable flag so tests that flip it
/// cannot leak state into each other.
class EnabledFlagGuard {
 public:
  EnabledFlagGuard() : saved_(Enabled()) {}
  ~EnabledFlagGuard() { SetEnabled(saved_); }

 private:
  bool saved_;
};

TEST(ObsEnabledTest, DefaultsToOffAndToggles) {
  EnabledFlagGuard guard;
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
}

TEST(CounterTest, IncrementsAndReadsBack) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(2);
  EXPECT_EQ(gauge.Value(), 2);
}

TEST(HistogramTest, CountSumMeanMinMax) {
  Histogram histogram({10, 100, 1000});
  EXPECT_EQ(histogram.Count(), 0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 0.0);
  EXPECT_EQ(histogram.Min(), 0);
  EXPECT_EQ(histogram.Max(), 0);
  histogram.Record(5);
  histogram.Record(50);
  histogram.Record(5000);  // Overflow bucket.
  EXPECT_EQ(histogram.Count(), 3);
  EXPECT_EQ(histogram.Sum(), 5055);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 5055.0 / 3.0);
  EXPECT_EQ(histogram.Min(), 5);
  EXPECT_EQ(histogram.Max(), 5000);
  EXPECT_EQ(histogram.BucketCount(0), 1);
  EXPECT_EQ(histogram.BucketCount(1), 1);
  EXPECT_EQ(histogram.BucketCount(2), 0);
  EXPECT_EQ(histogram.BucketCount(3), 1);  // Overflow.
}

TEST(HistogramTest, PercentileInterpolatesWithinBuckets) {
  Histogram histogram({100});
  for (int i = 0; i < 100; ++i) histogram.Record(50);
  // Every sample in [0, 100]: the median interpolates inside that bucket.
  const double p50 = histogram.Percentile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 100.0);
  // Quantiles are monotone in p.
  EXPECT_LE(histogram.Percentile(0.1), histogram.Percentile(0.9));
  // Empty histogram reports 0.
  Histogram empty({100});
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
}

TEST(HistogramTest, OverflowBucketUsesObservedMaxAsUpperEdge) {
  Histogram histogram({10});
  histogram.Record(1000);
  histogram.Record(2000);
  // Both samples in the overflow bucket; estimates must not exceed the
  // observed max.
  EXPECT_LE(histogram.Percentile(0.99), 2000.0);
  EXPECT_GT(histogram.Percentile(0.99), 10.0);
}

TEST(HistogramTest, DefaultLatencyAndSizeBucketsAreStrictlyIncreasing) {
  for (const std::vector<int64_t>* bounds :
       {&LatencyBucketsUs(), &SizeBuckets()}) {
    ASSERT_FALSE(bounds->empty());
    for (size_t i = 1; i < bounds->size(); ++i) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
  }
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  EXPECT_EQ(counter, registry.GetCounter("c"));
  EXPECT_NE(counter, registry.GetCounter("other"));
  Histogram* histogram = registry.GetHistogram("h");
  EXPECT_EQ(histogram, registry.GetHistogram("h"));
  // Bounds are applied on first creation only.
  Histogram* sized = registry.GetHistogram("sized", {1, 2, 3});
  EXPECT_EQ(sized->bounds().size(), 3u);
  EXPECT_EQ(registry.GetHistogram("sized"), sized);
}

TEST(MetricsRegistryTest, CounterValueReportsZeroForUnknownName) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("never_created"), 0);
  registry.GetCounter("created")->Increment(3);
  EXPECT_EQ(registry.CounterValue("created"), 3);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsPointers) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Increment(5);
  gauge->Set(7);
  histogram->Record(11);
  registry.Reset();
  // Handed-out pointers stay valid and identical; values are zero.
  EXPECT_EQ(registry.GetCounter("c"), counter);
  EXPECT_EQ(registry.GetGauge("g"), gauge);
  EXPECT_EQ(registry.GetHistogram("h"), histogram);
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(), 0);
  EXPECT_EQ(histogram->Max(), 0);
  counter->Increment();
  EXPECT_EQ(registry.CounterValue("c"), 1);
}

TEST(MetricsRegistryTest, JsonExportNamesEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("ceres_test_events_total")->Increment(2);
  registry.GetGauge("ceres_test_depth")->Set(4);
  registry.GetHistogram("ceres_test_latency_us")->Record(100);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"ceres_test_events_total\":2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ceres_test_depth\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ceres_test_latency_us\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, PrometheusExportHasTypesAndCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("ceres_test_events_total")->Increment(2);
  Histogram* histogram = registry.GetHistogram("ceres_test_latency_us",
                                               {10, 100});
  histogram->Record(5);
  histogram->Record(50);
  histogram->Record(500);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE ceres_test_events_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ceres_test_events_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ceres_test_latency_us histogram"),
            std::string::npos);
  // Cumulative le buckets: 1, 2, then +Inf carrying the full count.
  EXPECT_NE(text.find("le=\"10\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("le=\"100\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("ceres_test_latency_us_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("shared");
  Histogram* histogram = registry.GetHistogram("latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(t * kPerThread + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
  EXPECT_EQ(histogram->Min(), 0);
  EXPECT_EQ(histogram->Max(), kThreads * kPerThread - 1);
}

TEST(MetricsRegistryTest, ConcurrentGetOfOneNameYieldsOneInstrument) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[static_cast<size_t>(t)] = registry.GetCounter("contended");
      seen[static_cast<size_t>(t)]->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_EQ(registry.CounterValue("contended"), kThreads);
}

TEST(MetricsRegistryTest, DefaultRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace ceres::obs
