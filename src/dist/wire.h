#ifndef CERES_DIST_WIRE_H_
#define CERES_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "robustness/fault_injector.h"
#include "robustness/resilient_loader.h"
#include "util/status.h"

/// The coordinator/worker wire protocol (see DESIGN.md "Distributed batch
/// extraction").
///
/// Every message is one length-prefixed frame:
///
///   [magic u8 = 0xCE][type u8][payload_len u32le][payload bytes]
///   [checksum u64le = Fnv1a64(payload)]
///
/// The checksum turns a torn pipe write or a flipped byte into a typed
/// kInternal error instead of a silently wrong shard result; a clean EOF at
/// a frame boundary is kNotFound so callers can tell "peer finished" from
/// "peer died mid-frame". Payloads are encoded with WireWriter/WireReader —
/// fixed-width little-endian integers, doubles as IEEE-754 bit patterns
/// (byte-exact round trip, required for the byte-identical merge
/// guarantee), and u32-length-prefixed strings.
namespace ceres::dist {

/// Frame kinds of the coordinator/worker protocol.
enum class FrameType : uint8_t {
  /// Coordinator -> worker: a ShardTask payload.
  kAssignShard = 1,
  /// Worker -> coordinator: liveness signal (HeartbeatMsg).
  kHeartbeat = 2,
  /// Worker -> coordinator: per-site progress (ProgressMsg); doubles as a
  /// heartbeat.
  kProgress = 3,
  /// Worker -> coordinator: the finished ShardResult.
  kResult = 4,
  /// Coordinator -> worker: exit cleanly.
  kShutdown = 5,
  /// Worker -> coordinator: shard-scoped failure message (string payload);
  /// the coordinator retries the shard per its budget.
  kWorkerError = 6,
};

/// Human-readable frame-type name ("assign-shard", ...).
const char* FrameTypeName(FrameType type);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Frames over this size are rejected as corrupt before any allocation —
/// a garbled length prefix must not become a 4 GB allocation.
inline constexpr uint32_t kMaxFramePayloadBytes = 256u << 20;

/// Encodes a complete frame (header + payload + checksum) into bytes.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Blocking frame write with EINTR/partial-write handling. EPIPE (peer
/// died) comes back as kInternal, not a process-killing SIGPIPE — callers
/// must have SIGPIPE ignored (the coordinator does this for the run).
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Blocking frame read. kNotFound on clean EOF at a frame boundary;
/// kInternal on truncation mid-frame, bad magic, oversized length, or
/// checksum mismatch.
Result<Frame> ReadFrame(int fd);

/// Incremental frame decoder for the coordinator's poll loop: bytes arrive
/// in arbitrary chunks from a non-blocking fd, complete frames come out.
class FrameBuffer {
 public:
  void Append(const char* data, size_t n) { buffer_.append(data, n); }

  /// Extracts the next complete frame. Ok = frame written to `out`;
  /// kNotFound = need more bytes (not an error); kInternal = the stream is
  /// corrupt (bad magic / oversized length / checksum mismatch) and the
  /// connection must be abandoned.
  Status Next(Frame* out);

  /// Bytes currently buffered (a non-zero value at EOF means the peer died
  /// mid-frame).
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

// ---------------------------------------------------------------------------
// Payload encoding primitives.
// ---------------------------------------------------------------------------

/// Append-only binary encoder for frame payloads and checkpoints.
class WireWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern: decoding reproduces the exact double.
  void PutF64(double v);
  void PutStr(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over an encoded payload. Every accessor returns
/// kInternal("payload underrun") past the end, so a truncated or garbled
/// payload decodes into a typed error, never out-of-bounds reads.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I32(int32_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  Status Str(std::string* s);

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Protocol payloads.
// ---------------------------------------------------------------------------

/// One website of a shard: the unit the worker pipelines independently.
struct ShardSite {
  std::string site;
  std::vector<RawPage> pages;
};

/// The serializable pipeline knobs a worker applies to every site of its
/// shard. Deliberately small: both the worker and the coordinator's
/// single-process reference path build their PipelineConfig from this one
/// struct (worker.h MakeDistPipelineConfig), which is what makes the
/// distributed merge byte-identical to a single-process run.
struct WorkerPipelineOptions {
  bool cluster_pages = true;
  uint32_t min_cluster_size = 5;
  /// Resilient-load quarantine budget applied per site.
  double max_quarantine_fraction = 0.5;
  /// Per-shard time budget in milliseconds; 0 = unlimited. Non-zero
  /// budgets trade the byte-identical guarantee for bounded shard latency.
  int64_t shard_time_budget_ms = 0;
};

/// Coordinator -> worker: run these sites as shard `shard`.
struct ShardTask {
  int32_t shard = 0;
  /// 1-based attempt number, echoed into diagnostics and used to key the
  /// process-fault plan.
  int32_t attempt = 1;
  /// The fault this worker must act out on this attempt (kNone normally).
  ProcessFaultType fault = ProcessFaultType::kNone;
  WorkerPipelineOptions options;
  std::vector<ShardSite> sites;
};

/// Worker liveness signal.
struct HeartbeatMsg {
  int32_t shard = -1;
  int64_t seq = 0;
};

/// Worker per-site progress (also refreshes the liveness watchdog).
struct ProgressMsg {
  int32_t shard = 0;
  int32_t sites_done = 0;
  int32_t sites_total = 0;
  std::string site;
};

/// One site's pipeline outcome inside a shard result.
struct SiteResult {
  std::string site;
  std::vector<Extraction> extractions;
  int64_t pages = 0;
  int64_t quarantined_pages = 0;
  int64_t skipped_clusters = 0;
};

/// Worker -> coordinator: everything the merge needs from one shard. Also
/// the unit of checkpointing (checkpoint.h persists exactly this).
struct ShardResult {
  int32_t shard = 0;
  std::vector<SiteResult> sites;
};

std::string EncodeShardTask(const ShardTask& task);
Result<ShardTask> DecodeShardTask(std::string_view payload);

std::string EncodeHeartbeat(const HeartbeatMsg& msg);
Result<HeartbeatMsg> DecodeHeartbeat(std::string_view payload);

std::string EncodeProgress(const ProgressMsg& msg);
Result<ProgressMsg> DecodeProgress(std::string_view payload);

std::string EncodeShardResult(const ShardResult& result);
Result<ShardResult> DecodeShardResult(std::string_view payload);

}  // namespace ceres::dist

#endif  // CERES_DIST_WIRE_H_
