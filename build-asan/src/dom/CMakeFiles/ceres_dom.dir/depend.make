# Empty dependencies file for ceres_dom.
# This may be replaced when dependencies are built.
