#ifndef CERES_BASELINES_CERES_BASELINE_H_
#define CERES_BASELINES_CERES_BASELINE_H_

#include <vector>

#include "core/features.h"
#include "core/types.h"
#include "dom/dom_tree.h"
#include "kb/knowledge_base.h"
#include "ml/logistic_regression.h"
#include "util/status.h"

namespace ceres {

/// Configuration of the classic distant-supervision baseline (§5.2
/// baseline 2), which applies the original DS assumption: any pair of
/// co-mentioned entities holding a KB relation is annotated.
struct PairBaselineConfig {
  /// Negative pair examples per positive.
  int negatives_per_positive = 3;
  /// Hard cap on generated pair annotations. The quadratic blow-up of the
  /// pair formulation is real (the paper's run on the Movie vertical
  /// exhausted 32 GB); exceeding the cap aborts with kResourceExhausted so
  /// benches can report the NA outcome instead of thrashing.
  int64_t max_pair_annotations = 2'000'000;
  /// Memory budget for the materialized training examples (bytes of sparse
  /// feature storage); 0 = unlimited. Exceeding it aborts with
  /// kResourceExhausted — the paper's 32 GB OOM, parameterized.
  int64_t max_training_bytes = 0;
  /// Cap on candidate entity fields considered per page at extraction time
  /// (the paper identifies candidates by string-matching against the KB).
  int max_candidate_fields_per_page = 400;
  double confidence_threshold = 0.5;
  uint64_t seed = 7;
  LogRegConfig logreg;
};

/// Result of the baseline run.
struct PairBaselineResult {
  std::vector<Extraction> extractions;
  int64_t num_annotations = 0;
};

/// Trains and applies the pair-based distantly supervised extractor.
///
/// Annotation: for every page and every pair of entity mentions (n1, n2)
/// whose entities hold a KB relation r, the node pair is labelled r;
/// features are the concatenation of both nodes' features. Extraction
/// scores all candidate pairs per page. Both phases are quadratic in page
/// entity density — exactly the failure the Detail-Page DS assumption
/// removes.
Result<PairBaselineResult> RunPairBaseline(
    const std::vector<DomDocument>& pages, const KnowledgeBase& kb,
    const std::vector<PageIndex>& annotation_pages,
    const std::vector<PageIndex>& extraction_pages,
    const PairBaselineConfig& config = {});

}  // namespace ceres

#endif  // CERES_BASELINES_CERES_BASELINE_H_
