#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "dom/html_parser.h"
#include "synth/truth.h"
#include "testing/fixtures.h"

namespace ceres::eval {
namespace {

using ceres::testing::ParseOrDie;
using ceres::testing::TinyMovieKb;

// Builds a one-page truth by hand: node 1 asserts directedBy "Spike Lee",
// node 2 asserts genre "Comedy".
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pages_.push_back(ParseOrDie(
        "<body><h1>Do the Right Thing</h1><div>Spike Lee</div>"
        "<span>Comedy</span><p>noise</p></body>"));
    generated_.topic = kb_.right_thing;
    generated_.topic_name = "Do the Right Thing";
    generated_.topic_xpath = "/html/body[1]/h1[1]";
    generated_.facts.push_back(synth::GroundTruthFact{
        "/html/body[1]/h1[1]", kNamePredicate, "Do the Right Thing",
        kb_.right_thing});
    generated_.facts.push_back(synth::GroundTruthFact{
        "/html/body[1]/div[1]", kb_.directed, "Spike Lee", kb_.lee});
    generated_.facts.push_back(synth::GroundTruthFact{
        "/html/body[1]/span[1]", kb_.genre, "Comedy", kb_.comedy});
    truth_ = synth::BuildSiteTruth({generated_}, pages_);

    h1_ = Find("Do the Right Thing");
    lee_node_ = Find("Spike Lee");
    comedy_node_ = Find("Comedy");
    noise_node_ = Find("noise");
  }

  NodeId Find(const std::string& text) {
    for (NodeId id = 0; id < pages_[0].size(); ++id) {
      if (pages_[0].node(id).text == text) return id;
    }
    return kInvalidNode;
  }

  Extraction Make(NodeId node, PredicateId predicate, double confidence,
                  const std::string& subject = "Do the Right Thing") {
    return Extraction{0, node, predicate, subject,
                      std::string(pages_[0].node(node).text), confidence};
  }

  TinyMovieKb kb_;
  std::vector<DomDocument> pages_;
  synth::GeneratedPage generated_;
  SiteTruth truth_;
  NodeId h1_, lee_node_, comedy_node_, noise_node_;
};

TEST_F(MetricsTest, TruthResolvedCleanly) {
  EXPECT_EQ(truth_.unresolved, 0);
  ASSERT_EQ(truth_.pages.size(), 1u);
  EXPECT_EQ(truth_.pages[0].topic_node, h1_);
  EXPECT_TRUE(truth_.pages[0].Asserts(lee_node_, kb_.directed));
  EXPECT_FALSE(truth_.pages[0].Asserts(lee_node_, kb_.genre));
}

TEST_F(MetricsTest, PerfectExtractionScoresPerfectly) {
  std::vector<Extraction> extractions{
      Make(h1_, kNamePredicate, 1.0),
      Make(lee_node_, kb_.directed, 0.9),
      Make(comedy_node_, kb_.genre, 0.8),
  };
  Prf prf = ScoreExtractions(extractions, truth_);
  EXPECT_EQ(prf.tp, 3);
  EXPECT_EQ(prf.fp, 0);
  EXPECT_EQ(prf.fn, 0);
  EXPECT_DOUBLE_EQ(prf.f1(), 1.0);
}

TEST_F(MetricsTest, WrongNodeIsFalsePositiveAndMissFalseNegative) {
  std::vector<Extraction> extractions{
      Make(noise_node_, kb_.directed, 0.9),
  };
  Prf prf = ScoreExtractions(extractions, truth_);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 1);
  EXPECT_EQ(prf.fn, 3);  // All three asserted facts missed.
}

TEST_F(MetricsTest, WrongSubjectFailsWhenChecked) {
  std::vector<Extraction> extractions{
      Make(lee_node_, kb_.directed, 0.9, "Crooklyn"),
  };
  Prf strict = ScoreExtractions(extractions, truth_);
  EXPECT_EQ(strict.tp, 0);
  EXPECT_EQ(strict.fp, 1);
  ScoreOptions loose;
  loose.check_subject = false;
  Prf relaxed = ScoreExtractions(extractions, truth_, loose);
  EXPECT_EQ(relaxed.tp, 1);
}

TEST_F(MetricsTest, ConfidenceThresholdApplied) {
  std::vector<Extraction> extractions{
      Make(lee_node_, kb_.directed, 0.4),
  };
  ScoreOptions options;
  options.confidence_threshold = 0.5;
  Prf prf = ScoreExtractions(extractions, truth_, options);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 0);   // Below threshold: not counted at all.
  EXPECT_EQ(prf.fn, 3);
}

TEST_F(MetricsTest, PredicateFilterRestrictsScoring) {
  std::vector<Extraction> extractions{
      Make(lee_node_, kb_.directed, 0.9),
      Make(noise_node_, kb_.genre, 0.9),  // Wrong, but filtered out.
  };
  ScoreOptions options;
  options.predicates = {kb_.directed};
  Prf prf = ScoreExtractions(extractions, truth_, options);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 0);
  EXPECT_EQ(prf.fn, 0);
}

TEST_F(MetricsTest, PerPredicateBreakdown) {
  std::vector<Extraction> extractions{
      Make(lee_node_, kb_.directed, 0.9),
      Make(noise_node_, kb_.genre, 0.9),
  };
  auto by_predicate = ScoreExtractionsByPredicate(extractions, truth_);
  EXPECT_EQ(by_predicate[kb_.directed].tp, 1);
  EXPECT_EQ(by_predicate[kb_.genre].fp, 1);
  EXPECT_EQ(by_predicate[kb_.genre].fn, 1);
  EXPECT_EQ(by_predicate[kNamePredicate].fn, 1);
}

TEST_F(MetricsTest, PageHitScoringTakesBestPerPredicate) {
  // Two genre extractions: wrong one with low confidence, right one high.
  std::vector<Extraction> extractions{
      Make(noise_node_, kb_.genre, 0.3),
      Make(comedy_node_, kb_.genre, 0.9),
  };
  Prf prf = ScorePageHits(extractions, truth_);
  // genre hit; directedBy + NAME missed.
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 0);
  EXPECT_EQ(prf.fn, 2);
}

TEST_F(MetricsTest, PageHitWrongBestCountsOnce) {
  std::vector<Extraction> extractions{
      Make(noise_node_, kb_.genre, 0.9),
      Make(comedy_node_, kb_.genre, 0.3),
  };
  Prf prf = ScorePageHits(extractions, truth_);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 1);
  EXPECT_EQ(prf.fn, 3);
}

TEST_F(MetricsTest, AnnotationScoring) {
  std::vector<Annotation> annotations{
      Annotation{0, lee_node_, kb_.directed, kb_.lee},     // Correct.
      Annotation{0, noise_node_, kb_.genre, kb_.comedy},   // Wrong node.
  };
  Prf prf = ScoreAnnotations(annotations, truth_, kb_.kb);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 1);
  // Recall denominator: facts in the KB that were assertable: directedBy
  // (annotated, correct) and genre (missed). Both are in TinyMovieKb.
  EXPECT_EQ(prf.fn, 1);
}

TEST_F(MetricsTest, TopicScoring) {
  // Correct prediction by name match on page 0.
  std::vector<EntityId> predicted{kb_.right_thing};
  Prf prf = ScoreTopics(predicted, truth_, kb_.kb);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 0);
  EXPECT_EQ(prf.fn, 0);

  std::vector<EntityId> wrong{kb_.crooklyn};
  prf = ScoreTopics(wrong, truth_, kb_.kb);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 1);
  EXPECT_EQ(prf.fn, 1);

  std::vector<EntityId> none{kInvalidEntity};
  prf = ScoreTopics(none, truth_, kb_.kb);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 0);
  EXPECT_EQ(prf.fn, 1);
}

TEST_F(MetricsTest, DuplicateExtractionsCountAsOneTruePositive) {
  // The extractor can emit the same (page, node, predicate) more than once
  // (e.g. once per candidate subject mention). Repetition is not new
  // evidence: one TP, not one per copy.
  std::vector<Extraction> extractions{
      Make(lee_node_, kb_.directed, 0.9),
      Make(lee_node_, kb_.directed, 0.7),
  };
  auto by_predicate = ScoreExtractionsByPredicate(extractions, truth_);
  EXPECT_EQ(by_predicate[kb_.directed].tp, 1);
  EXPECT_EQ(by_predicate[kb_.directed].fp, 0);
  EXPECT_EQ(by_predicate[kb_.directed].fn, 0);
  Prf total = ScoreExtractions(extractions, truth_);
  EXPECT_EQ(total.tp, 1);
  EXPECT_EQ(total.fn, 2);  // NAME and genre still missed.
}

TEST_F(MetricsTest, DuplicateAnnotationsCountAsOneTruePositive) {
  std::vector<Annotation> annotations{
      Annotation{0, lee_node_, kb_.directed, kb_.lee},
      Annotation{0, lee_node_, kb_.directed, kb_.lee},
  };
  auto by_predicate =
      ScoreAnnotationsByPredicate(annotations, truth_, kb_.kb);
  EXPECT_EQ(by_predicate[kb_.directed].tp, 1);
  EXPECT_EQ(by_predicate[kb_.directed].fp, 0);
  EXPECT_EQ(by_predicate[kb_.directed].fn, 0);
}

TEST_F(MetricsTest, ThresholdKeepsExtractionAtExactBoundary) {
  // The skip is strict (`confidence < threshold`): an extraction exactly
  // at the threshold still scores.
  std::vector<Extraction> extractions{Make(lee_node_, kb_.directed, 0.5)};
  ScoreOptions options;
  options.confidence_threshold = 0.5;
  Prf prf = ScoreExtractions(extractions, truth_, options);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 0);
}

TEST_F(MetricsTest, PageFilterRestrictsScoringToListedPages) {
  // Two identical pages; the only extraction lands on page 1. Filtering to
  // page 0 must both ignore the extraction and count only page 0's facts
  // in the recall denominator.
  std::vector<DomDocument> pages;
  pages.push_back(ParseOrDie(
      "<body><h1>Do the Right Thing</h1><div>Spike Lee</div>"
      "<span>Comedy</span><p>noise</p></body>"));
  pages.push_back(ParseOrDie(
      "<body><h1>Do the Right Thing</h1><div>Spike Lee</div>"
      "<span>Comedy</span><p>noise</p></body>"));
  SiteTruth truth = synth::BuildSiteTruth({generated_, generated_}, pages);
  std::vector<Extraction> extractions{
      Extraction{1, lee_node_, kb_.directed, "Do the Right Thing",
                 "Spike Lee", 0.9}};
  ScoreOptions options;
  options.pages = {0};
  Prf prf = ScoreExtractions(extractions, truth, options);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 0);
  EXPECT_EQ(prf.fn, 3);
  options.pages = {1};
  prf = ScoreExtractions(extractions, truth, options);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fn, 2);
}

TEST_F(MetricsTest, TopicScoringToleratesShortPredictionVector) {
  // A prediction vector covering only a prefix of the site (here: no pages
  // at all) means "no topic identified" for the uncovered pages, not an
  // out-of-bounds read.
  Prf prf = ScoreTopics({}, truth_, kb_.kb);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 0);
  EXPECT_EQ(prf.fn, 1);
}

TEST_F(MetricsTest, PrfArithmetic) {
  Prf prf;
  prf.tp = 3;
  prf.fp = 1;
  prf.fn = 2;
  EXPECT_DOUBLE_EQ(prf.precision(), 0.75);
  EXPECT_DOUBLE_EQ(prf.recall(), 0.6);
  EXPECT_NEAR(prf.f1(), 2 * 0.75 * 0.6 / 1.35, 1e-12);
  Prf zero;
  EXPECT_DOUBLE_EQ(zero.precision(), 0.0);
  EXPECT_DOUBLE_EQ(zero.recall(), 0.0);
  EXPECT_DOUBLE_EQ(zero.f1(), 0.0);
}

}  // namespace
}  // namespace ceres::eval
