#ifndef CERES_CORE_ENTITY_MATCHER_H_
#define CERES_CORE_ENTITY_MATCHER_H_

#include "core/types.h"
#include "dom/dom_tree.h"
#include "kb/knowledge_base.h"

namespace ceres {

/// Finds all KB entity mentions on a page (§3.1.1 step 1): every text field
/// is matched against the KB's name index with fuzzy matching, yielding the
/// pageSet and the node locations of each entity's mentions. A single field
/// may match many entities ("Pilot") and a single entity may be mentioned in
/// many fields (Spike Lee in the director, writer, and cast sections).
PageMentions MatchPageMentions(const DomDocument& page,
                               const KnowledgeBase& kb);

}  // namespace ceres

#endif  // CERES_CORE_ENTITY_MATCHER_H_
