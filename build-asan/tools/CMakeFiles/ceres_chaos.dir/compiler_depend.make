# Empty compiler generated dependencies file for ceres_chaos.
# This may be replaced when dependencies are built.
