#ifndef CERES_SYNTH_TRUTH_H_
#define CERES_SYNTH_TRUTH_H_

#include <vector>

#include "dom/dom_tree.h"
#include "eval/metrics.h"
#include "synth/site_generator.h"

namespace ceres::synth {

/// Resolves the generator's XPath ground-truth labels against the parsed
/// documents, producing the node-level eval::SiteTruth the scoring layer
/// consumes. XPaths that fail to resolve (should not happen given the
/// serializer round-trip guarantee) are dropped and counted in
/// `SiteTruth::unresolved`.
///
/// This adapter lives in synth/ — not eval/ — on purpose: eval scores
/// against SiteTruth without knowing where truth comes from, so a real
/// hand-labeled corpus can feed the same metrics without dragging the
/// synthetic generator into the scoring layer.
eval::SiteTruth BuildSiteTruth(const std::vector<GeneratedPage>& generated,
                               const std::vector<DomDocument>& parsed);

}  // namespace ceres::synth

#endif  // CERES_SYNTH_TRUTH_H_
