#include "kb/knowledge_base.h"

#include <algorithm>

#include "obs/metrics.h"
#include "text/normalize.h"
#include "util/logging.h"

namespace ceres {

EntityId KnowledgeBase::AddEntity(TypeId type, std::string_view name) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(type >= 0 && type < ontology_.num_types());
  EntityId id = static_cast<EntityId>(entities_.size());
  entities_.push_back(Entity{id, type, std::string(name), {}});
  return id;
}

void KnowledgeBase::AddAlias(EntityId id, std::string_view alias) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(id >= 0 && id < num_entities());
  entities_[static_cast<size_t>(id)].aliases.emplace_back(alias);
}

void KnowledgeBase::AddTriple(EntityId subject, PredicateId predicate,
                              EntityId object) {
  CERES_CHECK(!frozen_);
  CERES_CHECK(subject >= 0 && subject < num_entities());
  CERES_CHECK(object >= 0 && object < num_entities());
  CERES_CHECK(predicate >= 0 && predicate < ontology_.num_predicates());
  triples_.push_back(Triple{subject, predicate, object});
}

void KnowledgeBase::Freeze() {
  CERES_CHECK(!frozen_);
  // Deduplicate triples.
  std::sort(triples_.begin(), triples_.end(),
            [](const Triple& a, const Triple& b) {
              if (a.subject != b.subject) return a.subject < b.subject;
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              return a.object < b.object;
            });
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());

  for (const Entity& entity : entities_) {
    name_index_.Add(entity.name, entity.id);
    for (const std::string& alias : entity.aliases) {
      name_index_.Add(alias, entity.id);
    }
  }
  // CSR subject index over the (now sorted) triple array: a counting pass
  // then a prefix sum, so TriplesWithSubject is an O(1) span handout.
  subject_offsets_.assign(entities_.size() + 1, 0);
  std::string key;
  for (const Triple& triple : triples_) {
    ++subject_offsets_[static_cast<size_t>(triple.subject) + 1];
    objects_by_subject_[triple.subject].insert(triple.object);
    NormalizeTextInto(entities_[static_cast<size_t>(triple.object)].name,
                      &key);
    if (!key.empty()) ++object_string_triple_count_[key];
  }
  for (size_t s = 1; s < subject_offsets_.size(); ++s) {
    subject_offsets_[s] += subject_offsets_[s - 1];
  }
  frozen_ = true;
}

const Entity& KnowledgeBase::entity(EntityId id) const {
  CERES_CHECK(id >= 0 && id < num_entities());
  return entities_[static_cast<size_t>(id)];
}

int64_t KnowledgeBase::CountEntitiesOfType(TypeId type) const {
  int64_t count = 0;
  for (const Entity& entity : entities_) {
    if (entity.type == type) ++count;
  }
  return count;
}

int64_t KnowledgeBase::CountPredicatesForSubjectType(TypeId type) const {
  std::unordered_set<PredicateId> seen;
  for (const Triple& triple : triples_) {
    if (entities_[static_cast<size_t>(triple.subject)].type == type) {
      seen.insert(triple.predicate);
    }
  }
  return static_cast<int64_t>(seen.size());
}

std::span<const EntityId> KnowledgeBase::MatchMentionsView(
    std::string_view text) const {
  CERES_CHECK(frozen_);
  std::span<const EntityId> hit = name_index_.MatchView(text);
  // Same one-branch guard as FuzzyMatcher::MatchView: KB mention lookups
  // are the entity-matching hot path, so the disabled cost is one relaxed
  // load.
  if (obs::Enabled()) {
    static obs::Counter* const lookups =
        obs::MetricsRegistry::Default().GetCounter(
            "ceres_kb_mention_lookups_total");
    static obs::Counter* const hits =
        obs::MetricsRegistry::Default().GetCounter(
            "ceres_kb_mention_hits_total");
    lookups->Increment();
    if (!hit.empty()) hits->Increment();
  }
  return hit;
}

std::vector<EntityId> KnowledgeBase::MatchMentions(
    std::string_view text) const {
  std::span<const EntityId> hit = MatchMentionsView(text);
  return std::vector<EntityId>(hit.begin(), hit.end());
}

std::span<const Triple> KnowledgeBase::TriplesWithSubject(
    EntityId subject) const {
  CERES_CHECK(frozen_);
  if (subject < 0 || subject >= num_entities()) return {};
  const size_t begin = subject_offsets_[static_cast<size_t>(subject)];
  const size_t end = subject_offsets_[static_cast<size_t>(subject) + 1];
  return std::span<const Triple>(triples_.data() + begin, end - begin);
}

const std::unordered_set<EntityId>& KnowledgeBase::ObjectsOfSubject(
    EntityId subject) const {
  CERES_CHECK(frozen_);
  auto it = objects_by_subject_.find(subject);
  return it == objects_by_subject_.end() ? empty_set_ : it->second;
}

std::vector<PredicateId> KnowledgeBase::PredicatesBetween(
    EntityId subject, EntityId object) const {
  std::vector<PredicateId> out;
  for (const Triple& triple : TriplesWithSubject(subject)) {
    if (triple.object == object) out.push_back(triple.predicate);
  }
  return out;
}

bool KnowledgeBase::HasTriple(EntityId subject, PredicateId predicate,
                              EntityId object) const {
  // The subject slice is sorted by (predicate, object), so membership is a
  // binary search rather than a scan over the subject's triples.
  std::span<const Triple> slice = TriplesWithSubject(subject);
  const Triple probe{subject, predicate, object};
  return std::binary_search(slice.begin(), slice.end(), probe,
                            [](const Triple& a, const Triple& b) {
                              if (a.predicate != b.predicate) {
                                return a.predicate < b.predicate;
                              }
                              return a.object < b.object;
                            });
}

std::unordered_set<std::string> KnowledgeBase::CommonObjectStrings(
    double fraction, int64_t min_count) const {
  CERES_CHECK(frozen_);
  std::unordered_set<std::string> out;
  if (triples_.empty()) return out;
  const double threshold =
      std::max(fraction * static_cast<double>(triples_.size()),
               static_cast<double>(min_count));
  for (const auto& [key, count] : object_string_triple_count_) {
    if (static_cast<double>(count) >= threshold) out.insert(key);
  }
  return out;
}

}  // namespace ceres
