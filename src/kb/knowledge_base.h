#ifndef CERES_KB_KNOWLEDGE_BASE_H_
#define CERES_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "kb/kb_image.h"
#include "kb/ontology.h"
#include "text/fuzzy_matcher.h"
#include "util/status.h"

namespace ceres {

/// Identifier of an entity within a KnowledgeBase.
using EntityId = int64_t;
inline constexpr EntityId kInvalidEntity = -1;

/// Zero-copy view of an entity's aliases. Dereferencing yields
/// string_views into the KB's storage (the frozen image's string blob, or
/// the build-phase owning strings); views stay valid for the KB's
/// lifetime once frozen, and until the next mutation before that.
class KbAliasRange {
 public:
  KbAliasRange() = default;
  /// Frozen form: `count` refs into the image string blob.
  KbAliasRange(const KbStringRef* refs, size_t count, const char* blob)
      : refs_(refs), count_(count), blob_(blob) {}
  /// Build-phase form: a view over the owning alias vector.
  explicit KbAliasRange(const std::vector<std::string>* build)
      : build_(build), count_(build->size()) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::string_view operator[](size_t i) const {
    if (build_ != nullptr) return (*build_)[i];
    return std::string_view(blob_ + refs_[i].offset,
                            static_cast<size_t>(refs_[i].length));
  }

  class Iterator {
   public:
    Iterator(const KbAliasRange* range, size_t index)
        : range_(range), index_(index) {}
    std::string_view operator*() const { return (*range_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return index_ != other.index_;
    }

   private:
    const KbAliasRange* range_;
    size_t index_;
  };
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, count_); }

 private:
  const std::vector<std::string>* build_ = nullptr;
  const KbStringRef* refs_ = nullptr;
  size_t count_ = 0;
  const char* blob_ = nullptr;
};

/// One entity of the seed KB: a typed node with a canonical name and
/// optional aliases. Literal values (dates, numbers) are entities of
/// literal types so that all triple objects have matchable surface strings.
///
/// Entity is a cheap non-owning view (returned by value from
/// KnowledgeBase::entity): `name` and the aliases point into the KB's
/// frozen image (or build storage) rather than owning copies.
struct Entity {
  EntityId id = kInvalidEntity;
  TypeId type = kInvalidType;
  std::string_view name;
  KbAliasRange aliases;
};

/// One (subject, predicate, object) fact (§2.1). Stored verbatim in the
/// frozen image's triples section (fixed 24-byte records).
struct Triple {
  EntityId subject = kInvalidEntity;
  PredicateId predicate = kInvalidPredicate;
  EntityId object = kInvalidEntity;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};
static_assert(sizeof(Triple) == 24);
static_assert(std::is_trivially_copyable_v<Triple>);

/// The seed knowledge base: an entity catalog plus an indexed triple store.
///
/// Build phase: AddEntity / AddAlias / AddTriple in any order, then call
/// Freeze() once. Freeze serializes the whole KB — entities, sorted
/// triples, CSR subject index, per-subject object sets, the normalized
/// name index, and object-string statistics — into one flat image buffer
/// (kb/kb_image.h), and all query methods serve from that image. A frozen
/// KB can be written out with SaveImage and re-opened out-of-core with
/// OpenImage, which mmap's the file read-only in O(1) and serves the same
/// queries from the mapping, byte-identical to the heap-frozen path (they
/// are literally the same bytes). Forked workers mapping one image share
/// its pages copy-on-write.
///
/// The only divergence between the two backings is the name-index
/// accelerator: a heap-frozen KB builds a FuzzyMatcher hash index at
/// Freeze() (the entity-matching hot path), while a mapped KB binary-
/// searches the image's sorted key section so that open stays O(1); both
/// produce identical match lists.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(Ontology ontology)
      : ontology_(std::move(ontology)) {}
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  const Ontology& ontology() const { return ontology_; }

  /// Registers an entity and returns its id.
  EntityId AddEntity(TypeId type, std::string_view name);

  /// Adds an alternative surface name for an existing entity.
  void AddAlias(EntityId id, std::string_view alias);

  /// Adds a fact; subject/object must be registered entities. Duplicate
  /// triples are collapsed at Freeze() time.
  void AddTriple(EntityId subject, PredicateId predicate, EntityId object);

  /// Builds all indexes and serializes the frozen state into the image
  /// buffer. Must be called exactly once, after loading.
  void Freeze();
  bool frozen() const { return frozen_; }

  // --- Out-of-core image -----------------------------------------------

  struct OpenOptions {
    /// Verify the payload checksum and every stored ref on open. O(n) in
    /// the image size; leave false for the O(1) serving path (the header
    /// checksum and section table are always verified).
    bool verify_checksum = false;
  };

  /// Opens a KB image file (written by SaveImage / ceres_kb_build) as a
  /// read-only mapping. O(1) in KB size unless verify_checksum. Corrupt,
  /// truncated, or wrong-version files yield a typed kDataLoss status.
  static Result<KnowledgeBase> OpenImage(const std::string& path,
                                         OpenOptions options);
  static Result<KnowledgeBase> OpenImage(const std::string& path) {
    return OpenImage(path, OpenOptions());
  }

  /// Writes the frozen image to `path` (temp file + rename).
  Status SaveImage(const std::string& path) const;

  /// The raw frozen image bytes (header + sections). Valid while frozen.
  std::span<const char> image_bytes() const {
    return std::span<const char>(image_.data(), image_.size());
  }

  /// True when this KB serves from a read-only file mapping rather than
  /// a heap buffer.
  bool mapped() const { return mapped_; }

  // --- Catalog queries -------------------------------------------------

  int64_t num_entities() const {
    return frozen_ ? static_cast<int64_t>(entities_.size())
                   : static_cast<int64_t>(build_entities_.size());
  }
  int64_t num_triples() const {
    return frozen_ ? static_cast<int64_t>(triples_.size())
                   : static_cast<int64_t>(build_triples_.size());
  }
  /// The entity record as a non-owning view (see Entity).
  Entity entity(EntityId id) const;
  std::span<const Triple> triples() const {
    return frozen_ ? triples_ : std::span<const Triple>(build_triples_);
  }

  /// Entities per type; used by the Table 2 report.
  int64_t CountEntitiesOfType(TypeId type) const;
  /// Distinct predicates whose subject type is `type`.
  int64_t CountPredicatesForSubjectType(TypeId type) const;

  // --- Matching (requires frozen) --------------------------------------

  /// All entity ids whose name or alias fuzzily matches `text` (§3.1.1
  /// step 1). May return many ids for ambiguous strings. The span aliases
  /// the name index and stays valid for the KB's lifetime; matching
  /// normalizes into per-thread scratch, so concurrent calls are safe and
  /// allocation-free.
  std::span<const EntityId> MatchMentionsView(std::string_view text) const;

  /// Copying variant of MatchMentionsView for callers that keep the result.
  std::vector<EntityId> MatchMentions(std::string_view text) const;

  // --- Triple queries (require frozen) ----------------------------------

  /// Triples with the given subject. Freeze() sorts triples by (subject,
  /// predicate, object) and indexes them CSR-style, so this is a view into
  /// the contiguous per-subject slice of triples() — no copy. Valid for the
  /// KB's lifetime.
  std::span<const Triple> TriplesWithSubject(EntityId subject) const;

  /// Objects of any triple with the given subject — the entitySet of
  /// Equation (1). Sorted ascending, no duplicates (membership is a
  /// binary search); a CSR view into the image, valid for the KB's
  /// lifetime.
  std::span<const EntityId> ObjectsOfSubject(EntityId subject) const;

  /// All predicates r such that (subject, r, object) is in the KB.
  std::vector<PredicateId> PredicatesBetween(EntityId subject,
                                             EntityId object) const;

  bool HasTriple(EntityId subject, PredicateId predicate,
                 EntityId object) const;

  /// Normalized object strings that appear in at least `fraction` of all
  /// triples — the common-string topic filter of §3.1.1 (paper example:
  /// 0.01%). `min_count` floors the threshold so that small KBs (where
  /// 0.01% is under one triple) don't filter every string.
  std::unordered_set<std::string> CommonObjectStrings(
      double fraction, int64_t min_count = 1) const;

 private:
  /// Owning storage for the build phase only; dropped at Freeze(). A
  /// deque keeps entity records pointer-stable so pre-freeze entity()
  /// views survive later AddEntity calls.
  struct BuildEntity {
    TypeId type = kInvalidType;
    std::string name;
    std::vector<std::string> aliases;
  };

  /// Caches typed section spans out of image_.
  void AttachImage();
  /// Exact lookup of a normalized key in the image's sorted key section.
  std::span<const EntityId> LookupNameKey(std::string_view normalized) const;
  /// O(1) consistency checks between typed section sizes.
  static Status ValidateImageStructure(const KbImage& image);

  Ontology ontology_;
  bool frozen_ = false;
  bool mapped_ = false;

  std::deque<BuildEntity> build_entities_;
  std::vector<Triple> build_triples_;

  /// The frozen state: one flat buffer (owned or mapped); the spans below
  /// are typed views into its sections.
  KbImage image_;
  std::span<const KbEntityRecord> entities_;
  std::span<const KbStringRef> alias_refs_;
  std::span<const Triple> triples_;
  std::span<const uint64_t> subject_offsets_;
  std::span<const uint64_t> object_offsets_;
  std::span<const EntityId> objects_;
  std::span<const KbNameKey> name_keys_;
  std::span<const EntityId> name_ids_;
  std::span<const KbObjectStringCount> object_string_counts_;
  const char* strings_ = nullptr;

  /// Hash-lookup accelerator for MatchMentionsView, built by Freeze()
  /// only (building it on OpenImage would make open O(n)).
  FuzzyMatcher name_index_;
  bool has_name_index_ = false;
};

}  // namespace ceres

#endif  // CERES_KB_KNOWLEDGE_BASE_H_
