# Empty dependencies file for classifier_ablation.
# This may be replaced when dependencies are built.
