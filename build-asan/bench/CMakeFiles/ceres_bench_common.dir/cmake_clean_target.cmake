file(REMOVE_RECURSE
  "../lib/libceres_bench_common.a"
)
