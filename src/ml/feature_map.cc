#include "ml/feature_map.h"

#include "util/logging.h"

namespace ceres {

int32_t FeatureMap::GetOrAdd(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  if (frozen_) return -1;
  int32_t id = size();
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

int32_t FeatureMap::Get(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

const std::string& FeatureMap::Name(int32_t index) const {
  CERES_CHECK(index >= 0 && index < size());
  return names_[static_cast<size_t>(index)];
}

}  // namespace ceres
