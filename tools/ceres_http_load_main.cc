// ceres_http_load — multi-connection load driver for ceres_httpd.
//
// Opens --clients concurrent connections and drives --requests total
// requests through them closed-loop (each client fires its next request
// as soon as the previous response lands). Default mode reuses each
// client's keep-alive connection; --per-request closes and reconnects
// around every request, which is exactly the pair of modes the serving
// bench compares.
//
// Targets /healthz by default (socket-edge load with negligible server
// work). --site S switches to POST /extract?site=S with --body-file (or
// a small built-in page) as the HTML payload.
//
// Prints QPS, client-observed latency percentiles, and a status-code
// histogram. Exit status 0 when every request got an HTTP response
// (whatever its status), 1 on any transport error.
//
// Usage:
//   ceres_http_load --port N [--host 127.0.0.1] [--clients 4]
//                   [--requests 1000] [--path /healthz] [--site S]
//                   [--body-file F] [--per-request]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int clients = 4;
  int requests = 1000;
  std::string path = "/healthz";
  std::string site;
  std::string body_file;
  bool per_request = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ceres_http_load --port N [--host H] [--clients N]\n"
               "  [--requests N] [--path P] [--site S] [--body-file F]\n"
               "  [--per-request]\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--host" && next(&value)) {
      options->host = value;
    } else if (arg == "--port" && next(&value)) {
      options->port =
          static_cast<uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--clients" && next(&value)) {
      options->clients =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--requests" && next(&value)) {
      options->requests =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (arg == "--path" && next(&value)) {
      options->path = value;
    } else if (arg == "--site" && next(&value)) {
      options->site = value;
    } else if (arg == "--body-file" && next(&value)) {
      options->body_file = value;
    } else if (arg == "--per-request") {
      options->per_request = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return options->port != 0 && options->clients >= 1 &&
         options->requests >= 1;
}

int64_t Percentile(std::vector<int64_t>* sorted_micros, double p) {
  if (sorted_micros->empty()) return 0;
  const size_t index = std::min(
      sorted_micros->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_micros->size())));
  return (*sorted_micros)[index];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  net::HttpRequest request;
  if (!options.site.empty()) {
    request.method = "POST";
    request.target = StrCat("/extract?site=", options.site);
    if (!options.body_file.empty()) {
      std::ifstream in(options.body_file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", options.body_file.c_str());
        return 2;
      }
      std::ostringstream content;
      content << in.rdbuf();
      request.body = content.str();
    } else {
      request.body =
          "<html><body><h1>Sample Film</h1>"
          "<span>Directed by A Director</span></body></html>";
    }
  } else {
    request.method = "GET";
    request.target = options.path;
  }
  request.version = "HTTP/1.1";

  std::atomic<int> next_index{0};
  std::atomic<int64_t> transport_errors{0};
  std::atomic<int64_t> reconnects{0};
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(options.clients));
  std::vector<std::map<int, int64_t>> status_counts(
      static_cast<size_t>(options.clients));

  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      net::HttpClient client(options.host, options.port);
      for (;;) {
        if (next_index.fetch_add(1) >= options.requests) break;
        const Clock::time_point start = Clock::now();
        Result<net::HttpResponse> response = client.Roundtrip(request);
        latencies[static_cast<size_t>(c)].push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count());
        if (!response.ok()) {
          transport_errors.fetch_add(1);
          client.Close();
          continue;
        }
        ++status_counts[static_cast<size_t>(c)][response->status];
        if (options.per_request) client.Close();
      }
      reconnects.fetch_add(client.reconnects());
    });
  }
  for (std::thread& client : clients) client.join();
  const double wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::now() - t0)
          .count();

  std::vector<int64_t> all_latencies;
  std::map<int, int64_t> statuses;
  for (int c = 0; c < options.clients; ++c) {
    all_latencies.insert(all_latencies.end(),
                         latencies[static_cast<size_t>(c)].begin(),
                         latencies[static_cast<size_t>(c)].end());
    for (const auto& [status, count] : status_counts[static_cast<size_t>(c)]) {
      statuses[status] += count;
    }
  }
  std::sort(all_latencies.begin(), all_latencies.end());

  std::printf("requests   %d (%s)\n", options.requests,
              options.per_request ? "connection-per-request" : "keep-alive");
  std::printf("wall       %.3f s\n", wall_seconds);
  std::printf("qps        %.1f\n",
              static_cast<double>(options.requests) / wall_seconds);
  std::printf("latency    p50 %lld us   p95 %lld us   p99 %lld us\n",
              static_cast<long long>(Percentile(&all_latencies, 0.50)),
              static_cast<long long>(Percentile(&all_latencies, 0.95)),
              static_cast<long long>(Percentile(&all_latencies, 0.99)));
  for (const auto& [status, count] : statuses) {
    std::printf("status %d  %lld\n", status,
                static_cast<long long>(count));
  }
  std::printf("reconnects %lld  transport_errors %lld\n",
              static_cast<long long>(reconnects.load()),
              static_cast<long long>(transport_errors.load()));
  return transport_errors.load() == 0 ? 0 : 1;
}
