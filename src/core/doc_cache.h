#ifndef CERES_CORE_DOC_CACHE_H_
#define CERES_CORE_DOC_CACHE_H_

#include <string>
#include <vector>

#include "dom/dom_tree.h"

namespace ceres {

/// Per-document memo of NormalizeText over node text. The featurizer's
/// nearby-node search normalizes the same label nodes once per featurized
/// field — hundreds of times per page — so training and extraction hand one
/// of these (per document, per worker) to FeatureExtractor::Extract.
/// Lookups are lazy; the class is intentionally not thread-safe.
class NormalizedTextCache {
 public:
  explicit NormalizedTextCache(const DomDocument& doc) : doc_(&doc) {}

  /// The normalized direct text of `id`, built on first use. The reference
  /// stays valid for the cache's lifetime.
  const std::string& Normalized(NodeId id);

 private:
  struct Entry {
    std::string text;
    bool filled = false;
  };

  const DomDocument* doc_;
  std::vector<Entry> entries_;
};

}  // namespace ceres

#endif  // CERES_CORE_DOC_CACHE_H_
