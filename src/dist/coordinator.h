#ifndef CERES_DIST_COORDINATOR_H_
#define CERES_DIST_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dist/wire.h"
#include "fusion/knowledge_fusion.h"
#include "kb/knowledge_base.h"
#include "kb/ontology.h"
#include "robustness/fault_injector.h"
#include "util/deadline.h"
#include "util/status.h"

/// The coordinator side of distributed batch extraction (see DESIGN.md
/// "Distributed batch extraction").
///
/// The coordinator shards a corpus by site hash, runs shards on a pool of
/// worker processes over pipes (wire.h protocol), and survives worker
/// crashes, hangs, and torn frames: a deadline-based watchdog reclaims
/// silent workers, failed shards retry under exponential backoff with a
/// per-shard attempt budget, exhausted shards land in quarantine, and
/// per-shard checkpoints make a restarted run skip completed work. The
/// surviving shards merge through fusion::FuseExtractions byte-identical
/// to a single-process run over the same corpus.
namespace ceres::dist {

/// Configuration of RunDistributedExtraction.
struct DistConfig {
  /// Worker processes to keep alive while shards remain.
  int num_workers = 2;
  /// Shard count; 0 = one shard per distinct site. Sites map to shards by
  /// ShardOfSite (stable FNV-1a hash), so the sharding — and therefore the
  /// checkpoint layout — is reproducible across runs and processes.
  int num_shards = 0;
  /// A shard is quarantined after this many failed attempts.
  int max_attempts_per_shard = 3;
  /// Watchdog: a worker with an assigned shard that has sent no frame for
  /// this long is presumed hung, killed, and its shard retried.
  std::chrono::milliseconds worker_liveness_timeout{2000};
  /// Exponential retry backoff: attempt n re-dispatches no sooner than
  /// base * 2^(n-1) after the failure, capped at `retry_backoff_max`.
  std::chrono::milliseconds retry_backoff_base{10};
  std::chrono::milliseconds retry_backoff_max{500};
  /// Directory for per-shard checkpoints (created if missing); empty
  /// disables checkpointing. A rerun with the same corpus, sharding, and
  /// directory loads completed shards instead of re-running them.
  std::string checkpoint_dir;
  /// Pipeline knobs applied by every worker to every site; the single
  /// source the single-process reference path also uses (worker.h).
  WorkerPipelineOptions pipeline;
  /// Fusion pass over the merged per-site extractions. Its deadline is
  /// tightened to the run deadline automatically.
  fusion::FusionConfig fusion;
  /// Planned process faults for chaos tests and bench/dist_recovery.
  /// Worker-acted faults travel inside the assign-shard frame; the
  /// checkpoint fault is acted by the coordinator itself.
  ProcessFaultPlan faults;
  /// Whole-run budget. On expiry the run degrades gracefully: workers are
  /// stopped, unfinished shards are recorded, completed shards still merge.
  Deadline deadline;
  /// Non-empty = spawn workers by fork+exec of this argv (a `ceres_dist
  /// --worker` style command reading frames on stdin, writing frames on
  /// stdout, with its own KB). Empty = fork only: the child runs
  /// RunWorkerLoop in-process on a copy-on-write view of the caller's KB.
  std::vector<std::string> worker_command;
};

/// One failed shard attempt, in failure order.
struct ShardFailure {
  int32_t shard = -1;
  /// 1-based attempt number that failed.
  int32_t attempt = 0;
  Status reason;
};

/// A shard that exhausted its attempt budget.
struct QuarantinedShard {
  int32_t shard = -1;
  int32_t attempts = 0;
  /// Sites lost with the shard, in corpus order.
  std::vector<std::string> sites;
  Status last_error;
};

/// Everything a distributed run dropped, retried, or recovered — the
/// process-level analogue of PipelineDiagnostics.
struct DistDiagnostics {
  /// Every failed attempt, typed (worker death, watchdog kill, torn
  /// frame, worker-reported pipeline error), in failure order.
  std::vector<ShardFailure> failures;
  /// Shards that exhausted max_attempts_per_shard, shard-id order.
  std::vector<QuarantinedShard> quarantined_shards;
  /// Shards still pending or running when the run deadline expired,
  /// shard-id order.
  std::vector<int32_t> unfinished_shards;
  /// Re-dispatches after a failed attempt (first attempts not counted).
  int64_t retries = 0;
  /// Worker processes lost to a crash, corrupt stream, or watchdog kill
  /// and replaced (a surviving idle worker may absorb the retried shard,
  /// so this counts deaths, not literal respawns).
  int64_t worker_restarts = 0;
  /// Shards that produced a merged result this run (checkpoint loads
  /// included).
  int64_t shards_completed = 0;
  /// Completed shards satisfied from a valid checkpoint instead of work.
  int64_t shards_from_checkpoint = 0;
  /// Bytes of checkpoint data written this run.
  int64_t checkpoint_bytes = 0;
  /// True when the run deadline expired before all shards finished.
  bool deadline_expired = false;

  /// Multi-line human-readable rendering for logs and CLI tools.
  std::string Summary() const;
};

/// Result of a distributed (or single-process reference) run.
struct DistResult {
  /// Completed shards, shard-id order.
  std::vector<ShardResult> shards;
  /// Per-site extractions of completed shards, corpus order — the fusion
  /// input, exposed for byte-identical comparison in tests.
  std::vector<fusion::SiteExtractions> site_extractions;
  /// Cross-site fusion over `site_extractions`.
  fusion::FusionResult fused;
  DistDiagnostics diagnostics;
};

/// The shard a site belongs to: stable FNV-1a hash of the site name modulo
/// `num_shards`. Agreeing across processes and runs is what makes
/// checkpoints resumable, so this must never depend on std::hash.
int32_t ShardOfSite(std::string_view site, int32_t num_shards);

/// Runs distributed extraction over `corpus` (one entry per site; pages
/// are raw HTML, parsed worker-side by the resilient loader).
///
/// Degrades, not fails: worker faults become retries, quarantined shards,
/// or unfinished shards in the diagnostics, and the merge covers whatever
/// completed. Returns an error Status only for malformed configuration or
/// an unusable checkpoint directory.
Result<DistResult> RunDistributedExtraction(
    const std::vector<ShardSite>& corpus, const KnowledgeBase& kb,
    const Ontology& ontology, const DistConfig& config = {});

/// The single-process reference: identical sharding, per-site pipeline,
/// and merge, with no processes, faults, or checkpoints. A fault-free
/// distributed run must match this byte for byte (site_extractions and
/// fused alike); chaos tests compare against it after recovery.
Result<DistResult> RunSingleProcess(const std::vector<ShardSite>& corpus,
                                    const KnowledgeBase& kb,
                                    const Ontology& ontology,
                                    const DistConfig& config = {});

}  // namespace ceres::dist

#endif  // CERES_DIST_COORDINATOR_H_
