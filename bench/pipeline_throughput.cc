// pipeline_throughput — batch-pipeline scaling sweep.
//
// Builds a multi-template synthetic corpus (several SWDE-style movie sites
// concatenated into one page set, so template clustering yields several
// independent clusters), then runs the full offline pipeline
// (cluster -> topic -> annotate -> train -> extract) at 1/2/4/8 threads and
// reports pages/sec and speedup vs the serial run as BENCH JSON lines:
//
//   BENCH {"bench":"pipeline_throughput","threads":4,...}
//
// Invariants (exit 1 on violation):
//   * the corpus clusters into at least two template clusters (otherwise
//     the sweep would not exercise cluster-level parallelism);
//   * every multi-threaded run's PipelineResult — cluster assignment,
//     topics, annotations, annotated pages, extractions, diagnostics
//     counters and typed skips — is identical to the serial run's;
//   * speedup gates, applied only when the host has at least as many
//     hardware threads as the swept thread count (they are printed as
//     SKIPPED otherwise): --smoke requires >= 1.5x at 4 threads; the full
//     sweep requires >= 3x at 8 threads.
//
// Usage: pipeline_throughput [--smoke] [--persist [path]]
//   --smoke: small corpus + the 4-thread gate; wired into tools/tier1.sh.
//   --persist: also write the BENCH lines to BENCH_pipeline_throughput.json
//              (or `path`) for a committed result trail.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline.h"
#include "obs/trace.h"
#include "synth/corpora.h"
#include "util/alloc_counter.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

int g_violations = 0;

// Allocation-count ceilings for the serial smoke/full runs, per page.
// Measured after the arena-DOM / interned-string / hashed-feature-ID layout
// landed (see EXPERIMENTS.md for the before/after table): ParseHtml runs at
// ~11 allocations per page and the full pipeline at ~510. The pre-refactor
// layout ran at 194 / 4888, so a regression to per-string allocation trips
// the gate immediately.
constexpr double kMaxParseAllocsPerPage = 35.0;
constexpr double kMaxPipelineAllocsPerPage = 900.0;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
    ++g_violations;
  }
}

bool SameExtractions(const std::vector<Extraction>& a,
                     const std::vector<Extraction>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].page != b[i].page || a[i].node != b[i].node ||
        a[i].predicate != b[i].predicate || a[i].subject != b[i].subject ||
        a[i].object != b[i].object || a[i].confidence != b[i].confidence) {
      return false;
    }
  }
  return true;
}

bool SameAnnotations(const std::vector<Annotation>& a,
                     const std::vector<Annotation>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].page != b[i].page || a[i].node != b[i].node ||
        a[i].predicate != b[i].predicate || a[i].object != b[i].object) {
      return false;
    }
  }
  return true;
}

bool SameDiagnostics(const PipelineDiagnostics& a,
                     const PipelineDiagnostics& b) {
  for (int s = 0; s < kNumPipelineStages; ++s) {
    if (a.stages[s].attempted != b.stages[s].attempted ||
        a.stages[s].completed != b.stages[s].completed ||
        a.stages[s].skipped != b.stages[s].skipped) {
      return false;
    }
  }
  if (a.run_deadline_expired != b.run_deadline_expired) return false;
  if (a.skipped_clusters.size() != b.skipped_clusters.size()) return false;
  for (size_t i = 0; i < a.skipped_clusters.size(); ++i) {
    if (a.skipped_clusters[i].cluster != b.skipped_clusters[i].cluster ||
        a.skipped_clusters[i].stage != b.skipped_clusters[i].stage) {
      return false;
    }
  }
  return true;
}

// Full-result equality against the serial baseline: everything benches and
// callers consume must be byte-identical at any thread count.
bool SameResult(const PipelineResult& a, const PipelineResult& b) {
  return a.cluster_of_page == b.cluster_of_page &&
         a.topic_of_page == b.topic_of_page &&
         a.topic_node_of_page == b.topic_node_of_page &&
         SameAnnotations(a.annotations, b.annotations) &&
         a.annotated_pages == b.annotated_pages &&
         SameExtractions(a.extractions, b.extractions) &&
         a.models.size() == b.models.size() &&
         SameDiagnostics(a.diagnostics, b.diagnostics);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool persist = false;
  std::string persist_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--persist") == 0) {
      persist = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') persist_path = argv[++i];
    }
  }

  // Several distinct-template sites concatenated into one page set: the
  // clustering stage recovers them as independent clusters, which is the
  // unit of batch parallelism.
  const double scale = smoke ? 0.25 : synth::EnvScale();
  const size_t num_sites = smoke ? 3 : 4;
  synth::Corpus corpus =
      synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie, scale, /*seed=*/42);
  // Allocation accounting for the parse half of the parse->feature path:
  // ParseCorpus reads the counter around each ParseHtml call, so the
  // number excludes synthetic ground-truth resolution. Counters read zero
  // under sanitizer builds (replacement compiled out); the gate below only
  // binds when counting is live.
  bench::ParsedCorpus parsed =
      bench::ParseCorpus(std::move(corpus), &util::AllocationCount);
  const uint64_t parse_allocs = parsed.parse_allocs;
  // Zero total allocations this deep into main() means the counting
  // operator-new replacement is compiled out (sanitizer build).
  const bool alloc_counting_live = util::AllocationCount() != 0;

  size_t parsed_pages = 0;
  for (const bench::ParsedSite& site : parsed.sites) {
    parsed_pages += site.pages.size();
  }
  const double parse_allocs_per_page =
      parsed_pages > 0 ? static_cast<double>(parse_allocs) / parsed_pages : 0;

  std::vector<DomDocument> pages;
  for (size_t s = 0; s < parsed.sites.size() && s < num_sites; ++s) {
    for (DomDocument& page : parsed.sites[s].pages) {
      pages.push_back(std::move(page));
    }
  }
  const size_t num_pages = pages.size();
  std::printf("pipeline_throughput: %zu pages from %zu sites (%s)\n",
              num_pages, num_sites, smoke ? "smoke" : "full");

  const bench::Split split = bench::HalfSplit(num_pages);
  const unsigned hardware = std::thread::hardware_concurrency();

  bench::BenchJson bench_json("pipeline_throughput");
  PipelineResult serial;
  double serial_seconds = 0;
  const int sweep[] = {1, 2, 4, 8};
  for (int threads : sweep) {
    PipelineConfig config =
        bench::MakeConfig(bench::System::kCeresFull, split);
    config.parallel.threads = threads;
    // Per-run trace tree: spans are always recorded when a tree is attached,
    // independent of obs::Enabled(), so the counter hot paths stay disabled
    // and the sweep measures the same code the no-observability run does.
    obs::TraceTree trace;
    config.trace = &trace;
    const uint64_t allocs_before_run = util::AllocationCount();
    const auto start = std::chrono::steady_clock::now();
    Result<PipelineResult> run =
        RunPipeline(pages, parsed.corpus.seed_kb, config);
    const uint64_t run_allocs = util::AllocationCount() - allocs_before_run;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    Require(run.ok(), "RunPipeline returned an error");
    if (!run.ok()) {
      std::fprintf(stderr, "  %s\n", run.status().ToString().c_str());
      return 1;
    }

    bool identical = true;
    if (threads == 1) {
      serial = std::move(run).value();
      serial_seconds = seconds;
      int num_clusters = 0;
      for (int cluster : serial.cluster_of_page) {
        num_clusters = std::max(num_clusters, cluster + 1);
      }
      std::printf("  clusters: %d, extractions: %zu, models: %zu\n",
                  num_clusters, serial.extractions.size(),
                  serial.models.size());
      Require(num_clusters >= 2,
              "corpus must cluster into >= 2 template clusters");
      Require(!serial.extractions.empty(),
              "serial run produced no extractions");
    } else {
      identical = SameResult(run.value(), serial);
      Require(identical, "multi-threaded result differs from serial run");
    }

    const double pages_per_sec =
        seconds > 0 ? static_cast<double>(num_pages) / seconds : 0;
    const double speedup = seconds > 0 ? serial_seconds / seconds : 0;
    // Stage timings are summed across clusters, so with N workers the
    // per-stage totals can exceed wall-clock seconds.
    const int64_t clustering_us = trace.TotalMicros({"pipeline", "clustering"});
    const int64_t topic_us =
        trace.TotalMicros({"pipeline", "clusters", "cluster", "topic"});
    const int64_t annotate_us =
        trace.TotalMicros({"pipeline", "clusters", "cluster", "annotate"});
    const int64_t train_us =
        trace.TotalMicros({"pipeline", "clusters", "cluster", "train"});
    const int64_t extract_us =
        trace.TotalMicros({"pipeline", "clusters", "cluster", "extract"});
    const double run_allocs_per_page =
        num_pages > 0 ? static_cast<double>(run_allocs) / num_pages : 0;
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"pipeline_throughput\",\"mode\":\"%s\","
        "\"threads\":%d,\"pages\":%zu,\"seconds\":%.3f,"
        "\"pages_per_sec\":%.1f,\"speedup\":%.2f,"
        "\"hardware_concurrency\":%u,\"identical_to_serial\":%s,"
        "\"stage_us\":{\"clustering\":%lld,\"topic\":%lld,"
        "\"annotate\":%lld,\"train\":%lld,\"extract\":%lld},"
        "\"allocs\":{\"counting\":%s,\"parse_per_page\":%.0f,"
        "\"pipeline_per_page\":%.0f}}",
        smoke ? "smoke" : "full", threads, num_pages, seconds, pages_per_sec,
        speedup, hardware, identical ? "true" : "false",
        static_cast<long long>(clustering_us),
        static_cast<long long>(topic_us),
        static_cast<long long>(annotate_us),
        static_cast<long long>(train_us),
        static_cast<long long>(extract_us),
        alloc_counting_live ? "true" : "false", parse_allocs_per_page,
        run_allocs_per_page);
    bench_json.Emit(line);
    Require(clustering_us + topic_us + annotate_us + train_us + extract_us > 0,
            "trace recorded no stage timings");

    // Allocation gate: checkable even on a 1-core host, where the speedup
    // gates are skipped. The ceilings hold the arena-DOM + hashed-feature-ID
    // layout's win (the string-heavy layout measured ~5-10x above them; see
    // EXPERIMENTS.md). Only the serial run is gated — worker pools add a
    // small per-thread constant — and only when counting is live (the
    // operator-new replacement is compiled out under sanitizers).
    if (threads == 1 && alloc_counting_live) {
      Require(parse_allocs_per_page <= kMaxParseAllocsPerPage,
              "parse allocations per page above ceiling");
      Require(run_allocs_per_page <= kMaxPipelineAllocsPerPage,
              "pipeline allocations per page above ceiling");
    }

    // Speedup gates only bind when the host can actually run that many
    // workers; a 1-core CI box still checks determinism above.
    if (smoke && threads == 4) {
      if (hardware >= 4) {
        Require(speedup >= 1.5, "smoke: speedup at 4 threads below 1.5x");
      } else {
        std::printf("  SKIPPED speedup gate (4 threads > %u hardware)\n",
                    hardware);
      }
    }
    if (!smoke && threads == 8) {
      if (hardware >= 8) {
        Require(speedup >= 3.0, "full: speedup at 8 threads below 3x");
      } else {
        std::printf("  SKIPPED speedup gate (8 threads > %u hardware)\n",
                    hardware);
      }
    }
  }

  if (persist && !bench_json.Persist(persist_path)) ++g_violations;
  if (g_violations > 0) {
    std::fprintf(stderr, "pipeline_throughput: %d violation(s)\n",
                 g_violations);
    return 1;
  }
  std::printf("pipeline_throughput: OK\n");
  return 0;
}
