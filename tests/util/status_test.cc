#include "util/status.h"

#include <gtest/gtest.h>

namespace ceres {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad page");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad page");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad page");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Status FailsThenPropagates(bool fail) {
  CERES_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status status = FailsThenPropagates(true);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "inner");
}

TEST(ResultDeathTest, AccessWithoutValueAborts) {
  Result<int> result = Status::Internal("boom");
  EXPECT_DEATH({ (void)result.value(); }, "non-OK status");
}

}  // namespace
}  // namespace ceres
