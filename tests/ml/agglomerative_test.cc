#include "ml/agglomerative.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/random.h"

namespace ceres {
namespace {

TEST(AgglomerativeTest, TwoObviousClusters) {
  // Points on a line: {0, 1, 2} and {100, 101}.
  std::vector<double> points{0, 1, 2, 100, 101};
  auto distance = [&](size_t a, size_t b) {
    return std::fabs(points[a] - points[b]);
  };
  std::vector<int> labels = AgglomerativeCluster(points.size(), distance, 2);
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  // Cluster 0 is the larger one.
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[3], 1);
}

TEST(AgglomerativeTest, TargetEqualsItemsIsIdentity) {
  auto distance = [](size_t, size_t) { return 1.0; };
  std::vector<int> labels = AgglomerativeCluster(4, distance, 4);
  std::set<int> unique(labels.begin(), labels.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(AgglomerativeTest, SingleClusterMergesAll) {
  std::vector<double> points{0, 5, 50, 100};
  auto distance = [&](size_t a, size_t b) {
    return std::fabs(points[a] - points[b]);
  };
  std::vector<int> labels = AgglomerativeCluster(points.size(), distance, 1);
  for (int label : labels) EXPECT_EQ(label, 0);
}

TEST(AgglomerativeTest, EmptyAndSingleton) {
  auto distance = [](size_t, size_t) { return 0.0; };
  EXPECT_TRUE(AgglomerativeCluster(0, distance, 1).empty());
  EXPECT_EQ(AgglomerativeCluster(1, distance, 1),
            (std::vector<int>{0}));
}

TEST(AgglomerativeTest, SingleLinkageChains) {
  // A chain 0-1-2-3 with unit gaps plus an outlier at 100: single linkage
  // keeps the chain together.
  std::vector<double> points{0, 1, 2, 3, 100};
  auto distance = [&](size_t a, size_t b) {
    return std::fabs(points[a] - points[b]);
  };
  std::vector<int> labels = AgglomerativeCluster(points.size(), distance, 2,
                                                 Linkage::kSingle);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_NE(labels[0], labels[4]);
}

TEST(AgglomerativeTest, CompleteLinkageSplitsChain) {
  // With complete linkage and 3 clusters, a long chain breaks apart while
  // tight pairs stay together.
  std::vector<double> points{0, 1, 10, 11, 20, 21};
  auto distance = [&](size_t a, size_t b) {
    return std::fabs(points[a] - points[b]);
  };
  std::vector<int> labels = AgglomerativeCluster(points.size(), distance, 3,
                                                 Linkage::kComplete);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_EQ(labels[4], labels[5]);
  std::set<int> unique(labels.begin(), labels.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(AgglomerativeTest, LabelsOrderedByClusterSize) {
  // 4 items close together, 2 medium, 1 far.
  std::vector<double> points{0, 1, 2, 3, 50, 51, 200};
  auto distance = [&](size_t a, size_t b) {
    return std::fabs(points[a] - points[b]);
  };
  std::vector<int> labels = AgglomerativeCluster(points.size(), distance, 3);
  EXPECT_EQ(labels[0], 0);   // Biggest cluster gets label 0.
  EXPECT_EQ(labels[4], 1);   // Then the pair.
  EXPECT_EQ(labels[6], 2);   // Singleton last.
}

TEST(AgglomerativePropertyTest, PartitionIsValid) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.Uniform(1, 30));
    size_t k = static_cast<size_t>(rng.Uniform(1, static_cast<int64_t>(n)));
    std::vector<double> points(n);
    for (double& p : points) p = rng.UniformDouble() * 100;
    auto distance = [&](size_t a, size_t b) {
      return std::fabs(points[a] - points[b]);
    };
    std::vector<int> labels = AgglomerativeCluster(n, distance, k);
    ASSERT_EQ(labels.size(), n);
    std::set<int> unique(labels.begin(), labels.end());
    EXPECT_EQ(unique.size(), k);
    for (int label : labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, static_cast<int>(k));
    }
  }
}

}  // namespace
}  // namespace ceres
