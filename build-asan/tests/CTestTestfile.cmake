# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/text_test[1]_include.cmake")
include("/root/repo/build-asan/tests/dom_test[1]_include.cmake")
include("/root/repo/build-asan/tests/kb_test[1]_include.cmake")
include("/root/repo/build-asan/tests/ml_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cluster_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_test[1]_include.cmake")
include("/root/repo/build-asan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-asan/tests/synth_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fusion_test[1]_include.cmake")
include("/root/repo/build-asan/tests/eval_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-asan/tests/chaos_test[1]_include.cmake")
