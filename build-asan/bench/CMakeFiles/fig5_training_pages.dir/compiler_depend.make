# Empty compiler generated dependencies file for fig5_training_pages.
# This may be replaced when dependencies are built.
