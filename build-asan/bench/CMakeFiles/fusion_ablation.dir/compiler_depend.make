# Empty compiler generated dependencies file for fusion_ablation.
# This may be replaced when dependencies are built.
