file(REMOVE_RECURSE
  "libceres_fusion.a"
)
