// Corpus: batch-pipeline code that hard-codes its own thread count (the
// test lints this content under a src/core/ path). Exactly one
// raw-parallelism violation — the literal-count ParallelFor; the overload
// taking the caller's ParallelConfig is the compliant form.
// Never compiled — linted by tests/lint/ceres_lint_test.cc.

#include <vector>

#include "util/parallel.h"

namespace ceres {

void ScoreAll(const std::vector<int>& pages, const ParallelConfig& config) {
  ParallelFor(pages.size(), 8, [&](size_t i) {  // BAD: count picked here
    (void)pages[i];
  });
  ParallelFor(pages.size(), config, [&](size_t i) {  // caller's budget
    (void)pages[i];
  });
}

}  // namespace ceres
