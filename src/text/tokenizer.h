#ifndef CERES_TEXT_TOKENIZER_H_
#define CERES_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ceres {

/// Splits `text` into normalized word tokens (the words of
/// NormalizeText(text)). Used for frequent-string mining in the node-text
/// feature generator (§4.2).
std::vector<std::string> Tokenize(std::string_view text);

/// Word-level shingles of size `k` over the normalized tokens of `text`,
/// joined with single spaces. Returns whole-token list as one shingle when
/// there are fewer than `k` tokens. Requires k >= 1.
std::vector<std::string> WordShingles(std::string_view text, size_t k);

}  // namespace ceres

#endif  // CERES_TEXT_TOKENIZER_H_
