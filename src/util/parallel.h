#ifndef CERES_UTIL_PARALLEL_H_
#define CERES_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace ceres {

/// How a batch loop may fan out. Carried by stage configs (pipeline,
/// feature mining, extraction) so callers decide the thread budget once and
/// every layer below honors it; call sites never hard-code thread counts.
struct ParallelConfig {
  /// Worker threads; 0 = hardware concurrency.
  int threads = 0;
  /// Sequential fast path: no worker threads are spawned unless every
  /// worker would receive at least this many items. Spawning a thread per
  /// handful of cheap items costs more than it saves; stages with tiny
  /// per-item work set this higher.
  size_t min_items_per_thread = 1;

  /// A config that always runs inline on the calling thread. Used by
  /// nested loops whose parent already fanned out.
  static ParallelConfig Sequential() {
    ParallelConfig config;
    config.threads = 1;
    return config;
  }

  /// Worker threads ParallelFor would use for `n` items: the resolved
  /// thread count, capped so each worker gets at least
  /// `min_items_per_thread` items (and never more workers than items).
  size_t WorkerCount(size_t n) const {
    if (n == 0) return 0;
    size_t workers =
        threads > 0 ? static_cast<size_t>(threads)
                    : std::max(1u, std::thread::hardware_concurrency());
    if (workers > n) workers = n;
    if (min_items_per_thread > 1) {
      const size_t by_items = std::max<size_t>(1, n / min_items_per_thread);
      if (workers > by_items) workers = by_items;
    }
    return workers;
  }
};

/// Runs `body(i)` for every i in [0, n) across the workers allowed by
/// `config` (see ParallelConfig::WorkerCount; a resolved count of one runs
/// inline with no threads spawned). Work is claimed dynamically via an
/// atomic counter, so uneven per-item costs (per-cluster pipeline runs)
/// balance naturally. The caller must ensure `body` is safe to run
/// concurrently for distinct indices; results should be written to
/// pre-sized per-index slots so no synchronization is needed.
///
/// If `body` throws, the first exception is captured and rethrown on the
/// calling thread after all workers have joined (an exception escaping a
/// worker thread would otherwise std::terminate the process). Remaining
/// unclaimed indices are abandoned once a failure is recorded; in-flight
/// iterations on other workers still run to completion.
inline void ParallelFor(size_t n, const ParallelConfig& config,
                        const std::function<void(size_t)>& body) {
  if (n == 0) return;
  const size_t worker_count = config.WorkerCount(n);
  if (worker_count <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_exception;
  CheckedMutex exception_mutex{"ParallelFor.exception_mutex"};
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&]() {
      while (!failed.load(std::memory_order_relaxed)) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          body(i);
        } catch (...) {
          MutexLock lock(exception_mutex);
          if (first_exception == nullptr) {
            first_exception = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

/// Raw-thread-count compatibility overload (0 = hardware concurrency).
/// Prefer the ParallelConfig overload in library code; stage configs carry
/// one so thread budgets flow from the caller.
inline void ParallelFor(size_t n, int threads,
                        const std::function<void(size_t)>& body) {
  ParallelConfig config;
  config.threads = threads;
  ParallelFor(n, config, body);
}

}  // namespace ceres

#endif  // CERES_UTIL_PARALLEL_H_
