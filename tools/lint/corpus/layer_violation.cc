// Corpus: a leaf module reaching up the stack (the test lints this
// content under a src/dom/ path with the layer graph enabled). Exactly
// one layer-violation — the dom -> net include; the same-module include
// and the declared dom -> util edge are compliant. Never compiled —
// linted by tests/lint/ceres_lint_test.cc.

#include "dom/dom_tree.h"        // same module: always allowed
#include "net/http_server.h"     // BAD: dom may not depend on net
#include "util/status.h"         // declared edge dom -> util

namespace ceres {

void Render() {}

}  // namespace ceres
