#ifndef CERES_UTIL_MMAP_FILE_H_
#define CERES_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace ceres {

/// A read-only memory-mapped file (RAII, move-only).
///
/// Open() maps the whole file MAP_PRIVATE | PROT_READ in O(1) regardless of
/// file size; pages fault in lazily on first touch and, across fork(),
/// children share the parent's page-cache pages copy-on-write — the point
/// of the out-of-core KB image. The mapping (and every pointer or
/// string_view derived from data()) stays valid until the MappedFile is
/// destroyed or moved-from.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Fails with kNotFound when the file does not
  /// exist and kInternal on OS-level map errors. An empty file maps to a
  /// valid zero-length view (data() == nullptr, size() == 0).
  static Result<MappedFile> Open(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return mapped_; }

 private:
  void Reset();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace ceres

#endif  // CERES_UTIL_MMAP_FILE_H_
