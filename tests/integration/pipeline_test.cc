// End-to-end integration tests: synthetic corpus -> parse -> full CERES
// pipeline -> evaluation against generator ground truth.

#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "dom/html_parser.h"
#include "eval/metrics.h"
#include "synth/corpora.h"
#include "synth/kb_builder.h"
#include "synth/truth.h"

namespace ceres {
namespace {

struct ParsedSite {
  std::vector<DomDocument> pages;
  eval::SiteTruth truth;
};

ParsedSite ParseSite(const std::vector<synth::GeneratedPage>& generated) {
  ParsedSite site;
  for (const synth::GeneratedPage& page : generated) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    EXPECT_TRUE(parsed.ok());
    site.pages.push_back(std::move(parsed).value());
  }
  site.truth = synth::BuildSiteTruth(generated, site.pages);
  EXPECT_EQ(site.truth.unresolved, 0);
  return site;
}

class PipelineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::MovieWorldConfig config;
    config.scale = 0.25;
    world_ = new synth::World(synth::BuildMovieWorld(config));
    synth::SeedKbConfig kb_config;
    kb_config.default_coverage = 0.9;
    seed_kb_ = new KnowledgeBase(synth::BuildSeedKb(*world_, kb_config));

    synth::SiteSpec spec;
    spec.name = "integration.example";
    spec.seed = 21;
    spec.tmpl.topic_type = "film";
    spec.tmpl.css_prefix = "it";
    spec.tmpl.num_recommendations = 3;
    spec.tmpl.sections = {
        {synth::pred::kFilmDirectedBy, "director",
         synth::SectionLayout::kRow, 0.05, 3},
        {synth::pred::kFilmWrittenBy, "writer", synth::SectionLayout::kRow,
         0.05, 4},
        {synth::pred::kFilmHasCastMember, "cast",
         synth::SectionLayout::kList, 0.05, 15},
        {synth::pred::kFilmHasGenre, "genre", synth::SectionLayout::kList,
         0.05, 5},
        {synth::pred::kFilmReleaseDate, "release_date",
         synth::SectionLayout::kRow, 0.05, 1},
    };
    TypeId film = *world_->kb.ontology().TypeByName("film");
    const auto& films = world_->OfType(film);
    spec.topics.assign(films.begin(), films.begin() + 80);
    generated_ = new std::vector<synth::GeneratedPage>(
        GenerateSite(*world_, spec));
  }

  static void TearDownTestSuite() {
    delete generated_;
    delete seed_kb_;
    delete world_;
    generated_ = nullptr;
    seed_kb_ = nullptr;
    world_ = nullptr;
  }

  static synth::World* world_;
  static KnowledgeBase* seed_kb_;
  static std::vector<synth::GeneratedPage>* generated_;
};

synth::World* PipelineIntegrationTest::world_ = nullptr;
KnowledgeBase* PipelineIntegrationTest::seed_kb_ = nullptr;
std::vector<synth::GeneratedPage>* PipelineIntegrationTest::generated_ =
    nullptr;

TEST_F(PipelineIntegrationTest, FullPipelineReachesHighQuality) {
  ParsedSite site = ParseSite(*generated_);
  PipelineConfig config;
  Result<PipelineResult> result = RunPipeline(site.pages, *seed_kb_, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->annotated_pages.size(), 40u);
  EXPECT_GT(result->extractions.size(), 300u);

  eval::ScoreOptions options;
  options.confidence_threshold = 0.5;
  eval::Prf prf = eval::ScoreExtractions(result->extractions, site.truth,
                                         options);
  EXPECT_GT(prf.precision(), 0.85) << "tp=" << prf.tp << " fp=" << prf.fp;
  EXPECT_GT(prf.recall(), 0.6) << "tp=" << prf.tp << " fn=" << prf.fn;
}

TEST_F(PipelineIntegrationTest, TopicIdentificationIsAccurate) {
  ParsedSite site = ParseSite(*generated_);
  PipelineConfig config;
  Result<PipelineResult> result = RunPipeline(site.pages, *seed_kb_, config);
  ASSERT_TRUE(result.ok());
  eval::Prf prf =
      eval::ScoreTopics(result->topic_of_page, site.truth, *seed_kb_);
  EXPECT_GT(prf.precision(), 0.9);
  EXPECT_GT(prf.recall(), 0.7);
}

TEST_F(PipelineIntegrationTest, AnnotationPrecisionHigh) {
  ParsedSite site = ParseSite(*generated_);
  PipelineConfig config;
  Result<PipelineResult> result = RunPipeline(site.pages, *seed_kb_, config);
  ASSERT_TRUE(result.ok());
  eval::Prf prf = eval::ScoreAnnotations(result->annotations, site.truth,
                                         *seed_kb_);
  EXPECT_GT(prf.precision(), 0.9);
}

TEST_F(PipelineIntegrationTest, TrainEvalSplitExtractsOnUnseenHalf) {
  ParsedSite site = ParseSite(*generated_);
  PipelineConfig config;
  for (size_t i = 0; i < site.pages.size(); ++i) {
    if (i % 2 == 0) {
      config.annotation_pages.push_back(static_cast<PageIndex>(i));
    } else {
      config.extraction_pages.push_back(static_cast<PageIndex>(i));
    }
  }
  Result<PipelineResult> result = RunPipeline(site.pages, *seed_kb_, config);
  ASSERT_TRUE(result.ok());
  for (const Extraction& extraction : result->extractions) {
    EXPECT_EQ(extraction.page % 2, 1);  // Only eval pages.
  }
  eval::ScoreOptions options;
  options.pages = config.extraction_pages;
  options.confidence_threshold = 0.5;
  eval::Prf prf = eval::ScoreExtractions(result->extractions, site.truth,
                                         options);
  EXPECT_GT(prf.precision(), 0.8);
}

TEST_F(PipelineIntegrationTest, RejectsBadConfigs) {
  ParsedSite site = ParseSite(*generated_);
  PipelineConfig config;
  config.annotation_pages = {99999};
  EXPECT_EQ(RunPipeline(site.pages, *seed_kb_, config).status().code(),
            StatusCode::kInvalidArgument);
  PipelineConfig config2;
  EXPECT_EQ(RunPipeline({}, *seed_kb_, config2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PipelineIntegrationTest, DeterministicEndToEnd) {
  ParsedSite site = ParseSite(*generated_);
  PipelineConfig config;
  Result<PipelineResult> a = RunPipeline(site.pages, *seed_kb_, config);
  Result<PipelineResult> b = RunPipeline(site.pages, *seed_kb_, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->annotations.size(), b->annotations.size());
  ASSERT_EQ(a->extractions.size(), b->extractions.size());
  for (size_t i = 0; i < a->extractions.size(); ++i) {
    EXPECT_EQ(a->extractions[i].node, b->extractions[i].node);
    EXPECT_DOUBLE_EQ(a->extractions[i].confidence,
                     b->extractions[i].confidence);
  }
}

TEST(PipelineClusteringTest, MixedTemplateSiteHandledPerCluster) {
  synth::Corpus corpus = synth::MakeImdbCorpus(0.12);
  std::vector<DomDocument> pages;
  for (const synth::GeneratedPage& page : corpus.sites[0].pages) {
    Result<DomDocument> parsed = ParseHtml(page.html);
    ASSERT_TRUE(parsed.ok());
    pages.push_back(std::move(parsed).value());
  }
  PipelineConfig config;
  Result<PipelineResult> result = RunPipeline(pages, corpus.seed_kb, config);
  ASSERT_TRUE(result.ok());
  // More than one template cluster must have been found.
  int max_cluster = 0;
  for (int cluster : result->cluster_of_page) {
    max_cluster = std::max(max_cluster, cluster);
  }
  EXPECT_GE(max_cluster, 1);
  EXPECT_GT(result->extractions.size(), 100u);
}

}  // namespace
}  // namespace ceres
