#include "synth/corpora.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "synth/kb_builder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres::synth {

namespace {

int PagesPerSite(double scale, int base = 120) {
  return std::max(12, static_cast<int>(std::lround(base * scale)));
}

// Slice of `roster` starting at fraction `start_frac`, wrapping around.
std::vector<EntityId> SliceTopics(const std::vector<EntityId>& roster,
                                  double start_frac, int count) {
  std::vector<EntityId> out;
  if (roster.empty()) return out;
  size_t start = static_cast<size_t>(start_frac *
                                     static_cast<double>(roster.size()));
  for (int i = 0; i < count; ++i) {
    out.push_back(roster[(start + static_cast<size_t>(i)) % roster.size()]);
  }
  return out;
}

PredicateSection Row(const std::string& predicate, const std::string& label,
                     double missing = 0.03) {
  return PredicateSection{predicate, label, SectionLayout::kRow, missing, 30};
}
PredicateSection List(const std::string& predicate, const std::string& label,
                      int max_values = 30, double missing = 0.03) {
  return PredicateSection{predicate, label, SectionLayout::kList, missing,
                          max_values};
}
PredicateSection Table(const std::string& predicate, const std::string& label,
                       int max_values = 30, double missing = 0.03) {
  return PredicateSection{predicate, label, SectionLayout::kTable, missing,
                          max_values};
}

// ---------------------------------------------------------------------------
// SWDE verticals
// ---------------------------------------------------------------------------

TemplateSpec SwdeMovieTemplate(int site) {
  TemplateSpec tmpl;
  tmpl.css_prefix = StrCat("mv", site);
  tmpl.topic_type = "film";
  tmpl.title_year_suffix = site % 3 == 0;
  tmpl.page_noise_prob = 0.08;
  tmpl.sections.push_back(site % 2 == 0
                              ? Row(pred::kFilmDirectedBy, "director")
                              : Table(pred::kFilmDirectedBy, "director", 4));
  tmpl.sections.push_back(site % 2 == 1
                              ? List(pred::kFilmHasGenre, "genre", 6)
                              : Row(pred::kFilmHasGenre, "genre"));
  tmpl.sections.push_back(Row(pred::kFilmMpaaRating, "type"));
  if (site % 2 == 0) {
    tmpl.sections.push_back(Row(pred::kFilmReleaseDate, "release_date"));
  }
  // Every real movie detail page lists its cast (it is simply not among
  // the evaluated SWDE attributes).
  tmpl.sections.push_back(site % 3 == 0
                              ? Table(pred::kFilmHasCastMember, "cast", 12)
                              : List(pred::kFilmHasCastMember, "cast", 12));
  if (site == 2 || site == 5 || site == 8) tmpl.num_recommendations = 3;
  return tmpl;
}

TemplateSpec SwdeBookTemplate(int site) {
  TemplateSpec tmpl;
  tmpl.css_prefix = StrCat("bk", site);
  tmpl.topic_type = "book";
  tmpl.page_noise_prob = 0.08;
  tmpl.sections.push_back(site % 2 == 0
                              ? Row(pred::kBookAuthor, "author")
                              : List(pred::kBookAuthor, "author", 3));
  tmpl.sections.push_back(Row(pred::kBookPublisher, "publisher"));
  tmpl.sections.push_back(Row(pred::kBookPubDate, "publication_date"));
  tmpl.sections.push_back(Row(pred::kBookIsbn, "isbn", site % 4 == 1 ? 0.15
                                                                     : 0.03));
  return tmpl;
}

TemplateSpec SwdeNbaTemplate(int site) {
  TemplateSpec tmpl;
  tmpl.css_prefix = StrCat("nba", site);
  tmpl.topic_type = "player";
  tmpl.page_noise_prob = 0.06;
  if (site % 2 == 0) {
    tmpl.sections.push_back(Row(pred::kPlayerTeam, "team"));
    tmpl.sections.push_back(Row(pred::kPlayerHeight, "height"));
    tmpl.sections.push_back(Row(pred::kPlayerWeight, "weight"));
  } else {
    tmpl.sections.push_back(Table(pred::kPlayerTeam, "team", 1));
    tmpl.sections.push_back(Table(pred::kPlayerHeight, "height", 1));
    tmpl.sections.push_back(Table(pred::kPlayerWeight, "weight", 1));
  }
  return tmpl;
}

TemplateSpec SwdeUniversityTemplate(int site) {
  TemplateSpec tmpl;
  tmpl.css_prefix = StrCat("uni", site);
  tmpl.topic_type = "university";
  tmpl.page_noise_prob = 0.06;
  tmpl.sections.push_back(Row(pred::kUniversityType, "type"));
  tmpl.sections.push_back(Row(pred::kUniversityPhone, "phone"));
  tmpl.sections.push_back(Row(pred::kUniversityWebsite, "website"));
  // The §5.3 failure site: both Type values in a search box on every page.
  if (site == 4) tmpl.search_box_values = true;
  return tmpl;
}

}  // namespace

std::string SwdeVerticalName(SwdeVertical vertical) {
  switch (vertical) {
    case SwdeVertical::kMovie:
      return "Movie";
    case SwdeVertical::kBook:
      return "Book";
    case SwdeVertical::kNbaPlayer:
      return "NBA Player";
    case SwdeVertical::kUniversity:
      return "University";
  }
  return "?";
}

Corpus MakeSwdeCorpus(SwdeVertical vertical, double scale, uint64_t seed) {
  const int pages = PagesPerSite(scale);
  switch (vertical) {
    case SwdeVertical::kMovie: {
      MovieWorldConfig wc;
      wc.seed = seed;
      wc.scale = std::max(0.3, scale);
      World world = BuildMovieWorld(wc);
      SeedKbConfig kb_config;
      kb_config.seed = seed + 1;
      kb_config.default_coverage = 0.85;
      // The paper's KB lacks MPAA-Rating seed data entirely (Table 3 note).
      kb_config.coverage[pred::kFilmMpaaRating] = 0.0;
      KnowledgeBase seed_kb = BuildSeedKb(world, kb_config);
      Corpus corpus(std::move(world), std::move(seed_kb));
      Result<TypeId> film = corpus.world.kb.ontology().TypeByName("film");
      const auto& films = corpus.world.OfType(*film);
      const int site_pages = std::min<int>(pages,
                                           static_cast<int>(films.size()));
      for (int s = 0; s < 10; ++s) {
        SiteSpec spec;
        spec.name = StrCat("movies", s, ".example.com");
        spec.seed = seed + 10 + static_cast<uint64_t>(s);
        spec.tmpl = SwdeMovieTemplate(s);
        spec.topics = SliceTopics(films, 0.07 * s, site_pages);
        corpus.sites.push_back(SyntheticSite{
            spec.name, "SWDE movie site", GenerateSite(corpus.world, spec)});
      }
      corpus.eval_predicates = {pred::kFilmDirectedBy, pred::kFilmHasGenre,
                                pred::kFilmMpaaRating};
      return corpus;
    }
    case SwdeVertical::kBook: {
      BookWorldConfig wc;
      wc.seed = seed;
      wc.scale = std::max(0.3, scale);
      World world = BuildBookWorld(wc);
      Result<TypeId> book = world.kb.ontology().TypeByName("book");
      const auto& books = world.OfType(*book);
      const int site_pages =
          std::min<int>(pages, static_cast<int>(books.size()));
      // Per-site roster offsets chosen to spread KB overlap from total
      // through a handful of pages down to zero (Figure 4).
      const double offsets[10] = {0.0,  0.05, 0.10, 0.15, 0.18,
                                  0.19, 0.35, 0.55, 0.85, 0.96};
      std::vector<SiteSpec> specs;
      for (int s = 0; s < 10; ++s) {
        SiteSpec spec;
        spec.name = StrCat("books", s, ".example.com");
        spec.seed = seed + 10 + static_cast<uint64_t>(s);
        spec.tmpl = SwdeBookTemplate(s);
        spec.topics = SliceTopics(books, offsets[s], site_pages);
        specs.push_back(std::move(spec));
      }
      std::vector<GeneratedPage> first_site =
          GenerateSite(world, specs[0]);
      KnowledgeBase seed_kb = BuildSeedKbFromPages(world, first_site);
      Corpus corpus(std::move(world), std::move(seed_kb));
      corpus.sites.push_back(SyntheticSite{specs[0].name, "SWDE book site",
                                           std::move(first_site)});
      for (int s = 1; s < 10; ++s) {
        corpus.sites.push_back(
            SyntheticSite{specs[s].name, "SWDE book site",
                          GenerateSite(corpus.world, specs[s])});
      }
      corpus.eval_predicates = {pred::kBookAuthor, pred::kBookPublisher,
                                pred::kBookPubDate, pred::kBookIsbn};
      return corpus;
    }
    case SwdeVertical::kNbaPlayer: {
      NbaWorldConfig wc;
      wc.seed = seed;
      wc.num_players = pages;  // Every site covers the whole league.
      wc.scale = 1.0;
      World world = BuildNbaWorld(wc);
      Result<TypeId> player = world.kb.ontology().TypeByName("player");
      const auto& players = world.OfType(*player);
      std::vector<SiteSpec> specs;
      for (int s = 0; s < 10; ++s) {
        SiteSpec spec;
        spec.name = StrCat("nba", s, ".example.com");
        spec.seed = seed + 10 + static_cast<uint64_t>(s);
        spec.tmpl = SwdeNbaTemplate(s);
        spec.topics = SliceTopics(players, 0.0,
                                  static_cast<int>(players.size()));
        specs.push_back(std::move(spec));
      }
      std::vector<GeneratedPage> first_site = GenerateSite(world, specs[0]);
      KnowledgeBase seed_kb = BuildSeedKbFromPages(world, first_site);
      Corpus corpus(std::move(world), std::move(seed_kb));
      corpus.sites.push_back(SyntheticSite{specs[0].name, "SWDE NBA site",
                                           std::move(first_site)});
      for (int s = 1; s < 10; ++s) {
        corpus.sites.push_back(
            SyntheticSite{specs[s].name, "SWDE NBA site",
                          GenerateSite(corpus.world, specs[s])});
      }
      corpus.eval_predicates = {pred::kPlayerTeam, pred::kPlayerHeight,
                                pred::kPlayerWeight};
      return corpus;
    }
    case SwdeVertical::kUniversity: {
      UniversityWorldConfig wc;
      wc.seed = seed;
      wc.num_universities = std::max(40, pages + pages / 3);
      wc.scale = 1.0;
      World world = BuildUniversityWorld(wc);
      Result<TypeId> uni = world.kb.ontology().TypeByName("university");
      const auto& unis = world.OfType(*uni);
      const int site_pages =
          std::min<int>(pages, static_cast<int>(unis.size()));
      std::vector<SiteSpec> specs;
      for (int s = 0; s < 10; ++s) {
        SiteSpec spec;
        spec.name = StrCat("colleges", s, ".example.com");
        spec.seed = seed + 10 + static_cast<uint64_t>(s);
        spec.tmpl = SwdeUniversityTemplate(s);
        spec.topics = SliceTopics(unis, 0.02 * s, site_pages);
        specs.push_back(std::move(spec));
      }
      std::vector<GeneratedPage> first_site = GenerateSite(world, specs[0]);
      KnowledgeBase seed_kb = BuildSeedKbFromPages(world, first_site);
      Corpus corpus(std::move(world), std::move(seed_kb));
      corpus.sites.push_back(SyntheticSite{specs[0].name,
                                           "SWDE university site",
                                           std::move(first_site)});
      for (int s = 1; s < 10; ++s) {
        corpus.sites.push_back(
            SyntheticSite{specs[s].name, "SWDE university site",
                          GenerateSite(corpus.world, specs[s])});
      }
      corpus.eval_predicates = {pred::kUniversityType, pred::kUniversityPhone,
                                pred::kUniversityWebsite};
      return corpus;
    }
  }
  CERES_CHECK_MSG(false, "unreachable vertical");
  std::abort();
}

// ---------------------------------------------------------------------------
// IMDb-like corpus (§5.1.2)
// ---------------------------------------------------------------------------

namespace {

TemplateSpec ImdbFilmTemplate() {
  TemplateSpec tmpl;
  tmpl.css_prefix = "imf";
  tmpl.topic_type = "film";
  tmpl.title_year_suffix = true;
  tmpl.page_noise_prob = 0.15;
  tmpl.num_recommendations = 4;
  tmpl.sections.push_back(Row(pred::kFilmDirectedBy, "director"));
  tmpl.sections.push_back(Row(pred::kFilmWrittenBy, "writer"));
  tmpl.sections.push_back(Table(pred::kFilmHasCastMember, "cast", 25));
  tmpl.sections.push_back(List(pred::kFilmHasGenre, "genre", 6));
  tmpl.sections.push_back(Row(pred::kFilmReleaseDate, "release_date"));
  tmpl.sections.push_back(Row(pred::kFilmReleaseYear, "year"));
  return tmpl;
}

TemplateSpec ImdbPersonTemplate() {
  TemplateSpec tmpl;
  tmpl.css_prefix = "imp";
  tmpl.topic_type = "person";
  tmpl.page_noise_prob = 0.15;
  tmpl.num_recommendations = 3;
  tmpl.known_for = true;
  tmpl.on_video_list = true;
  tmpl.projects_in_development = true;
  tmpl.sections.push_back(Row(pred::kPersonAlias, "alias"));
  tmpl.sections.push_back(Row(pred::kPersonBirthDate, "born"));
  tmpl.sections.push_back(Row(pred::kPersonBirthPlace, "birthplace"));
  tmpl.sections.push_back(List(pred::kPersonActedIn, "cast", 25));
  tmpl.sections.push_back(List(pred::kPersonDirectorOf, "director", 12));
  tmpl.sections.push_back(List(pred::kPersonWriterOf, "writer", 12));
  tmpl.sections.push_back(
      List(pred::kPersonProducerOf, "producer", 10, /*missing=*/0.45));
  tmpl.sections.push_back(List(pred::kPersonMusicFor, "music", 8));
  return tmpl;
}

TemplateSpec ImdbEpisodeTemplate() {
  TemplateSpec tmpl;
  tmpl.css_prefix = "ime";
  tmpl.topic_type = "tv_episode";
  tmpl.page_noise_prob = 0.1;
  tmpl.sections.push_back(Row(pred::kEpisodeSeries, "series"));
  tmpl.sections.push_back(Row(pred::kEpisodeSeason, "season"));
  tmpl.sections.push_back(Row(pred::kEpisodeNumber, "episode"));
  return tmpl;
}

}  // namespace

Corpus MakeImdbCorpus(double scale, uint64_t seed) {
  MovieWorldConfig wc;
  wc.seed = seed;
  wc.scale = std::max(0.3, scale);
  World world = BuildMovieWorld(wc);
  SeedKbConfig kb_config;
  kb_config.seed = seed + 1;
  // Footnote 10 coverage profile: cast links sparse, genres rich, and the
  // whole KB biased toward popular entities.
  kb_config.popularity_bias = true;
  kb_config.default_coverage = 0.9;
  kb_config.coverage[pred::kFilmHasCastMember] = 0.35;
  kb_config.coverage[pred::kPersonActedIn] = 0.35;
  kb_config.coverage[pred::kPersonProducerOf] = 0.3;
  kb_config.coverage[pred::kFilmProducedBy] = 0.3;
  kb_config.coverage[pred::kPersonMusicFor] = 0.4;
  kb_config.coverage[pred::kFilmMusicBy] = 0.4;
  kb_config.coverage[pred::kFilmDirectedBy] = 0.8;
  kb_config.coverage[pred::kPersonDirectorOf] = 0.8;
  kb_config.coverage[pred::kFilmHasGenre] = 0.8;
  kb_config.coverage[pred::kFilmMpaaRating] = 0.0;
  KnowledgeBase seed_kb = BuildSeedKb(world, kb_config);
  Corpus corpus(std::move(world), std::move(seed_kb));

  Result<TypeId> film = corpus.world.kb.ontology().TypeByName("film");
  Result<TypeId> person = corpus.world.kb.ontology().TypeByName("person");
  Result<TypeId> episode = corpus.world.kb.ontology().TypeByName("tv_episode");

  const int film_pages = PagesPerSite(scale, 260);
  const int person_pages = PagesPerSite(scale, 120);
  const int episode_pages = PagesPerSite(scale, 60);

  SyntheticSite site;
  site.name = "imdb.example.com";
  site.focus = "Complex movie/person/TV site";

  SiteSpec film_spec;
  film_spec.name = site.name;
  film_spec.seed = seed + 10;
  film_spec.tmpl = ImdbFilmTemplate();
  film_spec.topics = SliceTopics(corpus.world.OfType(*film), 0.0, film_pages);
  std::vector<GeneratedPage> pages = GenerateSite(corpus.world, film_spec);

  SiteSpec person_spec;
  person_spec.name = site.name;
  person_spec.seed = seed + 11;
  person_spec.tmpl = ImdbPersonTemplate();
  person_spec.topics =
      SliceTopics(corpus.world.OfType(*person), 0.0, person_pages);
  std::vector<GeneratedPage> person_pages_vec =
      GenerateSite(corpus.world, person_spec);
  pages.insert(pages.end(),
               std::make_move_iterator(person_pages_vec.begin()),
               std::make_move_iterator(person_pages_vec.end()));

  SiteSpec episode_spec;
  episode_spec.name = site.name;
  episode_spec.seed = seed + 12;
  episode_spec.tmpl = ImdbEpisodeTemplate();
  episode_spec.topics =
      SliceTopics(corpus.world.OfType(*episode), 0.0, episode_pages);
  std::vector<GeneratedPage> episode_pages_vec =
      GenerateSite(corpus.world, episode_spec);
  pages.insert(pages.end(),
               std::make_move_iterator(episode_pages_vec.begin()),
               std::make_move_iterator(episode_pages_vec.end()));

  site.pages = std::move(pages);
  corpus.sites.push_back(std::move(site));
  for (const PredicateDecl& predicate :
       corpus.world.kb.ontology().predicates()) {
    corpus.eval_predicates.push_back(predicate.name);
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// Long-tail corpus (§5.1.3, Table 8)
// ---------------------------------------------------------------------------

namespace {

struct LongTailSiteCfg {
  const char* name;
  const char* focus;
  Locale locale;
  int base_pages;        // Scaled page count at scale 1.
  double roster_start;   // Popularity band of the topic slice.
  // Quirks.
  bool person_pages = false;      // Person-topic site.
  bool merged_filmography = false;
  bool all_genres_nav = false;
  double shuffle = 0.0;
  bool daily_charts = false;
  bool episodes_mixed = false;    // Some topics are TV episodes.
  int non_detail = 0;             // Non-detail page count at scale 1.
  bool music_focus = false;
  int recommendations = 0;
};

// 33 sites mirroring Table 8's spread of focus, language, size, overlap,
// and failure modes.
const LongTailSiteCfg kLongTailSites[] = {
    {"themoviedb.org", "General film information", Locale::kEnglish, 140,
     0.0, false, false, false, 0.0, false, false, 0, false, 3},
    {"blaxploitation.com", "Blaxploitation films", Locale::kEnglish, 20,
     0.1},
    {"danksefilm.com", "Danish films", Locale::kDanish, 36, 0.15},
    {"archiviodelcinemaitaliano.it", "Italian films", Locale::kItalian, 28,
     0.2},
    {"filmitalia.org", "Italian films", Locale::kItalian, 32, 0.18},
    {"kmdb.or.kr", "Korean films", Locale::kEnglish, 18, 0.82},
    {"britflicks.com", "British films", Locale::kEnglish, 30, 0.25},
    {"rottentomatoes.com", "Film reviews", Locale::kEnglish, 160, 0.0,
     false, false, false, 0.0, false, false, 24, false, 4},
    {"moviecrow.com", "Indian films", Locale::kEnglish, 18, 0.3},
    {"nfb.ca", "Canadian films", Locale::kEnglish, 90, 0.22},
    {"kinobox.cz", "Czech films", Locale::kCzech, 90, 0.2},
    {"samdb.co.za", "South African films", Locale::kEnglish, 14, 0.75,
     false, false, false, 0.0, false, true},
    {"dianying.com", "Chinese films", Locale::kEnglish, 60, 0.35, false,
     false, false, 0.0, false, true},
    {"giantscreencinema.com", "IMAX films", Locale::kEnglish, 16, 0.4},
    {"myanimelist.net", "Animated films", Locale::kEnglish, 40, 0.45,
     false, false, false, 0.5, false, true},
    {"hkmdb.com", "Hong Kong films", Locale::kEnglish, 40, 0.5, false,
     false, false, 0.55},
    {"bollywoodmdb.com", "Bollywood films", Locale::kEnglish, 22, 0.55,
     false, false, false, 0.55},
    {"soundtrackcollector.com", "Movie soundtracks", Locale::kEnglish, 30,
     0.3, false, false, false, 0.55, false, false, 0, true},
    {"spicyonion.com", "Indian films", Locale::kEnglish, 32, 0.4, true,
     true},
    {"shortfilmcentral.com", "Short films", Locale::kEnglish, 110, 0.6,
     false, false, false, 0.5},
    {"filmindonesia.or.id", "Indonesian films", Locale::kIndonesian, 24,
     0.5, true, true},
    {"the-numbers.com", "Financial performance", Locale::kEnglish, 150,
     0.05, false, false, false, 0.0, true, false, 10},
    {"sodasandpopcorn.com", "Nigerian films", Locale::kEnglish, 18, 0.7,
     false, false, false, 0.6, false, false, 6},
    {"christianfilmdatabase.com", "Christian films", Locale::kEnglish, 22,
     0.45, false, false, true},
    {"jfdb.jp", "Japanese films", Locale::kEnglish, 16, 0.72, false, false,
     false, 0.55},
    {"kvikmyndavefurinn.is", "Icelandic films", Locale::kIcelandic, 14,
     0.7, false, false, false, 0.55},
    {"laborfilms.com", "Labor movement films", Locale::kEnglish, 14, 0.6,
     false, false, true, 0.55},
    {"africa-archive.com", "African films", Locale::kEnglish, 16, 0.8,
     false, false, false, 0.5},
    {"colonialfilm.org.uk", "Colonial-era films", Locale::kEnglish, 18,
     0.85, false, false, false, 0.7, false, true},
    {"sfd.sfu.sk", "Slovak films", Locale::kSlovak, 16, 0.87, false, false,
     false, 0.7},
    {"bcdb.com", "Animated films", Locale::kEnglish, 12, 0.96},
    {"bmxmdb.com", "BMX films", Locale::kEnglish, 12, 0.975},
    {"boxofficemojo.com", "Financial performance", Locale::kEnglish, 0,
     0.0, false, false, false, 0.0, true, false, 150},
};

TemplateSpec LongTailTemplate(const LongTailSiteCfg& cfg, int index) {
  TemplateSpec tmpl;
  tmpl.locale = cfg.locale;
  tmpl.css_prefix = StrCat("lt", index);
  tmpl.section_shuffle_prob = cfg.shuffle;
  // Heavily shuffled templates come with weak labels: with neither stable
  // structure nor distinctive text anchors, the learner has nothing to
  // hold on to (the paper's 23% template-variety error class).
  tmpl.weak_labels = cfg.shuffle >= 0.5;
  tmpl.page_noise_prob = 0.12;
  tmpl.num_recommendations = cfg.recommendations;
  tmpl.all_genres_nav = cfg.all_genres_nav;
  tmpl.daily_charts = cfg.daily_charts;
  if (cfg.person_pages) {
    tmpl.topic_type = "person";
    tmpl.merged_filmography = cfg.merged_filmography;
    tmpl.sections.push_back(Row(pred::kPersonBirthDate, "born", 0.2));
    tmpl.sections.push_back(Row(pred::kPersonBirthPlace, "birthplace", 0.2));
    tmpl.sections.push_back(List(pred::kPersonActedIn, "cast", 20));
    tmpl.sections.push_back(List(pred::kPersonDirectorOf, "director", 10));
    tmpl.sections.push_back(List(pred::kPersonWriterOf, "writer", 10));
    return tmpl;
  }
  tmpl.topic_type = "film";
  tmpl.title_year_suffix = index % 4 == 0;
  if (cfg.music_focus) {
    tmpl.sections.push_back(Row(pred::kFilmMusicBy, "music"));
    tmpl.sections.push_back(Row(pred::kFilmReleaseYear, "year"));
    tmpl.sections.push_back(Row(pred::kFilmDirectedBy, "director", 0.2));
    return tmpl;
  }
  tmpl.sections.push_back(index % 2 == 0
                              ? Row(pred::kFilmDirectedBy, "director")
                              : Table(pred::kFilmDirectedBy, "director", 3));
  // Under weak labels the writer row is frequently missing, tilting the
  // class prior: the indistinguishable director/writer rows then resolve
  // confidently — and wrongly — toward director (the paper's 23%
  // template-variety error class).
  tmpl.sections.push_back(
      Row(pred::kFilmWrittenBy, "writer", tmpl.weak_labels ? 0.5 : 0.15));
  tmpl.sections.push_back(index % 3 == 0
                              ? Table(pred::kFilmHasCastMember, "cast", 18)
                              : List(pred::kFilmHasCastMember, "cast", 18));
  if (!cfg.all_genres_nav) {
    tmpl.sections.push_back(List(pred::kFilmHasGenre, "genre", 5));
  }
  if (!cfg.daily_charts) {
    // Chart sites render the release date inside the chart table instead.
    tmpl.sections.push_back(
        Row(pred::kFilmReleaseDate, "release_date",
            tmpl.weak_labels ? 0.45 : 0.1));
  }
  tmpl.sections.push_back(Row(pred::kFilmReleaseYear, "year", 0.1));
  return tmpl;
}

}  // namespace

Corpus MakeLongTailCorpus(double scale, uint64_t seed) {
  MovieWorldConfig wc;
  wc.seed = seed;
  wc.scale = std::max(0.5, 1.5 * scale);
  World world = BuildMovieWorld(wc);
  SeedKbConfig kb_config;
  kb_config.seed = seed + 1;
  kb_config.popularity_bias = true;
  kb_config.default_coverage = 0.55;
  kb_config.coverage[pred::kFilmHasCastMember] = 0.3;
  kb_config.coverage[pred::kPersonActedIn] = 0.3;
  kb_config.coverage[pred::kPersonMusicFor] = 0.2;
  kb_config.coverage[pred::kFilmMusicBy] = 0.2;
  kb_config.coverage[pred::kFilmMpaaRating] = 0.0;
  KnowledgeBase seed_kb = BuildSeedKb(world, kb_config);
  Corpus corpus(std::move(world), std::move(seed_kb));

  const Ontology& ontology = corpus.world.kb.ontology();
  const auto& films = corpus.world.OfType(*ontology.TypeByName("film"));
  const auto& persons = corpus.world.OfType(*ontology.TypeByName("person"));
  const auto& episodes =
      corpus.world.OfType(*ontology.TypeByName("tv_episode"));

  int index = 0;
  for (const LongTailSiteCfg& cfg : kLongTailSites) {
    SiteSpec spec;
    spec.name = cfg.name;
    spec.seed = seed + 50 + static_cast<uint64_t>(index);
    spec.tmpl = LongTailTemplate(cfg, index);
    int pages = cfg.base_pages == 0
                    ? 0
                    : std::max(8, static_cast<int>(std::lround(
                                      cfg.base_pages * scale)));
    const auto& roster = cfg.person_pages ? persons : films;
    spec.topics = SliceTopics(roster, cfg.roster_start, pages);
    if (cfg.episodes_mixed && !episodes.empty()) {
      // Replace a third of the topics with TV episodes rendered through the
      // same film template (the type-confusion failure of §5.5.1).
      std::vector<EntityId> mixed =
          SliceTopics(episodes, cfg.roster_start, pages / 3);
      for (size_t i = 0; i < mixed.size() && i < spec.topics.size(); ++i) {
        spec.topics[i * 3 % spec.topics.size()] = mixed[i];
      }
    }
    spec.num_non_detail_pages = static_cast<int>(
        std::lround(cfg.non_detail * scale));
    corpus.sites.push_back(SyntheticSite{
        cfg.name, cfg.focus, GenerateSite(corpus.world, spec)});
    ++index;
  }
  for (const PredicateDecl& predicate : ontology.predicates()) {
    corpus.eval_predicates.push_back(predicate.name);
  }
  return corpus;
}

double EnvScale() {
  const char* raw = std::getenv("CERES_SCALE");
  if (raw == nullptr || *raw == '\0') return 1.0;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw || value <= 0) return 1.0;
  return value;
}

}  // namespace ceres::synth
