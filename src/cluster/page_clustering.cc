#include "cluster/page_clustering.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace ceres {

namespace {

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::unordered_set<uint64_t> PageSignature(const DomDocument& page,
                                           size_t max_size) {
  std::unordered_set<uint64_t> signature;
  // Tag path per node, built incrementally: path(node) = path(parent)/tag.
  // Each path is sized exactly and appended into, so the per-node cost is
  // one allocation (no operator+ temporaries).
  std::vector<std::string> paths(static_cast<size_t>(page.size()));
  for (NodeId id = 0; id < page.size(); ++id) {
    const DomNode& node = page.node(id);
    std::string& path = paths[static_cast<size_t>(id)];
    if (node.parent == kInvalidNode) {
      path = node.tag;
    } else {
      const std::string& parent = paths[static_cast<size_t>(node.parent)];
      path.reserve(parent.size() + 1 + node.tag.size());
      path.append(parent);
      path.push_back('/');
      path.append(node.tag);
    }
    if (signature.size() < max_size) {
      signature.insert(HashString(path));
    }
  }
  return signature;
}

double SignatureSimilarity(const std::unordered_set<uint64_t>& a,
                           const std::unordered_set<uint64_t>& b) {
  if (a.empty() && b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t intersection = 0;
  for (uint64_t h : small) {
    if (large.count(h) > 0) ++intersection;
  }
  return static_cast<double>(intersection) /
         static_cast<double>(a.size() + b.size() - intersection);
}

std::vector<int> ClusterPages(const std::vector<DomDocument>& pages,
                              const PageClusteringConfig& config) {
  std::vector<int> raw_labels(pages.size(), -1);
  std::vector<std::unordered_set<uint64_t>> leaders;
  std::vector<size_t> counts;
  for (size_t i = 0; i < pages.size(); ++i) {
    int assigned = -1;
    if (config.deadline.expired()) {
      // Out of budget: remaining pages become singleton clusters rather
      // than paying further signature comparisons.
      assigned = static_cast<int>(leaders.size());
      leaders.emplace_back();
      counts.push_back(0);
    } else {
      std::unordered_set<uint64_t> signature =
          PageSignature(pages[i], config.max_signature_size);
      for (size_t c = 0; c < leaders.size(); ++c) {
        if (SignatureSimilarity(signature, leaders[c]) >=
            config.similarity_threshold) {
          assigned = static_cast<int>(c);
          break;
        }
      }
      if (assigned < 0) {
        assigned = static_cast<int>(leaders.size());
        leaders.push_back(std::move(signature));
        counts.push_back(0);
      }
    }
    raw_labels[i] = assigned;
    ++counts[static_cast<size_t>(assigned)];
  }
  // Re-rank so cluster 0 is the largest.
  std::vector<size_t> order(leaders.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return counts[a] > counts[b]; });
  std::vector<int> rank(leaders.size());
  for (size_t r = 0; r < order.size(); ++r) {
    rank[order[r]] = static_cast<int>(r);
  }
  for (int& label : raw_labels) label = rank[static_cast<size_t>(label)];
  return raw_labels;
}

}  // namespace ceres
