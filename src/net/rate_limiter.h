#ifndef CERES_NET_RATE_LIMITER_H_
#define CERES_NET_RATE_LIMITER_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "util/sync.h"

namespace ceres::net {

/// Token-bucket admission policy for the HTTP front-end, keyed per client
/// (the server keys by peer address). A request spends one token; tokens
/// refill continuously at `tokens_per_second` up to `burst`. A zero or
/// negative rate disables limiting (every request admitted).
struct TokenBucketConfig {
  double tokens_per_second = 0.0;
  double burst = 16.0;
};

/// Thread-safe keyed token buckets. Time is injected (microseconds from
/// any monotonic origin) so tests can drive refill deterministically and
/// the server can reuse its event-loop clock reads.
class RateLimiter {
 public:
  explicit RateLimiter(TokenBucketConfig config) : config_(config) {}

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// True when `key` may proceed at `now_us`; false means shed (429).
  bool Admit(const std::string& key, int64_t now_us);

  /// Buckets currently tracked (bounded; stale full buckets are swept).
  size_t tracked_keys() const;

 private:
  /// Sweep threshold: when the table grows past this, full buckets are
  /// dropped (a full bucket reconstructs exactly on next sight, so
  /// dropping it never changes admission decisions).
  static constexpr size_t kSweepAt = 4096;

  struct Bucket {
    double tokens = 0.0;
    int64_t last_us = 0;
  };

  const TokenBucketConfig config_;
  mutable CheckedMutex mu_{"RateLimiter.mu"};
  std::unordered_map<std::string, Bucket> buckets_ CERES_GUARDED_BY(mu_);
};

}  // namespace ceres::net

#endif  // CERES_NET_RATE_LIMITER_H_
