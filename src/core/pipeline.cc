#include "core/pipeline.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/entity_matcher.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ceres {

namespace {

// Resolves the "empty means all" page-set convention.
std::vector<PageIndex> ResolvePageSet(const std::vector<PageIndex>& requested,
                                      size_t num_pages) {
  if (!requested.empty()) return requested;
  std::vector<PageIndex> all(num_pages);
  for (size_t i = 0; i < num_pages; ++i) all[i] = static_cast<PageIndex>(i);
  return all;
}

}  // namespace

Result<PipelineResult> RunPipeline(const std::vector<DomDocument>& pages,
                                   const KnowledgeBase& kb,
                                   const PipelineConfig& config) {
  if (!kb.frozen()) {
    return Status::FailedPrecondition("knowledge base must be frozen");
  }
  if (pages.empty()) {
    return Status::InvalidArgument("no pages given");
  }
  for (PageIndex page : config.annotation_pages) {
    if (page < 0 || static_cast<size_t>(page) >= pages.size()) {
      return Status::InvalidArgument(
          StrCat("annotation page out of range: ", page));
    }
  }
  for (PageIndex page : config.extraction_pages) {
    if (page < 0 || static_cast<size_t>(page) >= pages.size()) {
      return Status::InvalidArgument(
          StrCat("extraction page out of range: ", page));
    }
  }

  PipelineResult result;
  result.topic_of_page.assign(pages.size(), kInvalidEntity);
  result.topic_node_of_page.assign(pages.size(), kInvalidNode);

  // 1. Template clustering.
  if (config.cluster_pages) {
    result.cluster_of_page = ClusterPages(pages, config.clustering);
  } else {
    result.cluster_of_page.assign(pages.size(), 0);
  }
  int num_clusters = 0;
  for (int cluster : result.cluster_of_page) {
    num_clusters = std::max(num_clusters, cluster + 1);
  }

  const std::vector<PageIndex> annotation_pages =
      ResolvePageSet(config.annotation_pages, pages.size());
  const std::vector<PageIndex> extraction_pages =
      ResolvePageSet(config.extraction_pages, pages.size());

  for (int cluster = 0; cluster < num_clusters; ++cluster) {
    // Global page indices of this cluster, split into the annotation and
    // extraction roles.
    std::vector<PageIndex> cluster_annotation;
    std::vector<PageIndex> cluster_extraction;
    for (PageIndex page : annotation_pages) {
      if (result.cluster_of_page[static_cast<size_t>(page)] == cluster) {
        cluster_annotation.push_back(page);
      }
    }
    for (PageIndex page : extraction_pages) {
      if (result.cluster_of_page[static_cast<size_t>(page)] == cluster) {
        cluster_extraction.push_back(page);
      }
    }
    if (cluster_annotation.size() < config.min_cluster_size) continue;
    LogInfo(StrCat("cluster ", cluster, ": ", cluster_annotation.size(),
                   " annotation pages, ", cluster_extraction.size(),
                   " extraction pages"));

    std::vector<const DomDocument*> annotation_docs;
    annotation_docs.reserve(cluster_annotation.size());
    for (PageIndex page : cluster_annotation) {
      annotation_docs.push_back(&pages[static_cast<size_t>(page)]);
    }

    // Optional pre-filter: skip clusters that do not look like detail
    // pages at all (chart/index clusters).
    if (config.filter_non_detail_clusters &&
        !LooksLikeDetailPages(annotation_docs, config.detail_detector)) {
      LogInfo(StrCat("cluster ", cluster,
                     ": does not look like detail pages; skipping"));
      continue;
    }

    // 2. Entity matching + topic identification on annotation pages.
    std::vector<PageMentions> mentions;
    mentions.reserve(annotation_docs.size());
    for (const DomDocument* doc : annotation_docs) {
      mentions.push_back(MatchPageMentions(*doc, kb));
    }
    TopicResult topics =
        IdentifyTopics(annotation_docs, mentions, kb, config.topic);
    for (size_t i = 0; i < cluster_annotation.size(); ++i) {
      const size_t page = static_cast<size_t>(cluster_annotation[i]);
      result.topic_of_page[page] = topics.topic[i];
      result.topic_node_of_page[page] = topics.topic_node[i];
    }

    // 3. Relation annotation (Algorithm 2). Local indices map 1:1 onto
    // annotation_docs; translate to global page indices afterwards.
    AnnotationResult annotation =
        AnnotateRelations(annotation_docs, mentions, topics, kb,
                          config.annotator);
    if (annotation.annotations.empty()) {
      LogInfo(StrCat("cluster ", cluster, ": no annotations; skipping"));
      continue;
    }
    std::vector<Annotation> local_annotations = annotation.annotations;
    for (Annotation& a : annotation.annotations) {
      a.page = cluster_annotation[static_cast<size_t>(a.page)];
      result.annotations.push_back(a);
    }
    for (PageIndex local : annotation.annotated_pages) {
      result.annotated_pages.push_back(
          cluster_annotation[static_cast<size_t>(local)]);
    }

    // 4. Training on the cluster's annotated pages.
    FeatureExtractor featurizer(annotation_docs, config.features);
    Result<TrainedModel> trained =
        TrainExtractor(annotation_docs, local_annotations, featurizer,
                       kb.ontology(), config.training);
    if (!trained.ok()) {
      LogInfo(StrCat("cluster ", cluster,
                     ": training failed: ", trained.status().ToString()));
      continue;
    }

    // 5. Extraction over the cluster's extraction pages.
    std::vector<const DomDocument*> extraction_docs;
    extraction_docs.reserve(cluster_extraction.size());
    for (PageIndex page : cluster_extraction) {
      extraction_docs.push_back(&pages[static_cast<size_t>(page)]);
    }
    std::vector<Extraction> extracted =
        ExtractFromPages(extraction_docs, cluster_extraction,
                         &trained.value(), featurizer, config.extraction);
    result.extractions.insert(result.extractions.end(), extracted.begin(),
                              extracted.end());
    result.models.push_back(
        ClusterModel{cluster, std::move(trained).value()});
  }

  std::sort(result.annotated_pages.begin(), result.annotated_pages.end());
  return result;
}

}  // namespace ceres
