#include "dom/xpath.h"

#include <algorithm>
#include <charconv>
#include <string>

#include "util/string_pool.h"
#include "util/string_util.h"
#include "util/sync.h"

namespace ceres {

namespace {

// Process-wide memo of rendered XPath steps. The step vocabulary of a
// template site is tiny (tags x small sibling indices), while every page of
// the site re-serializes the same root-to-node paths; caching the rendered
// "tag[i]" fragments turns per-step std::to_string churn into a table probe.
class StepRenderCache {
 public:
  static StepRenderCache& Global() {
    static StepRenderCache* cache = new StepRenderCache();
    return *cache;
  }

  std::string_view Render(const XPathStep& step) {
    // Content-keyed (tag bytes + index): pooled and unpooled tags with the
    // same content share an entry.
    uint64_t key = Fnv1a64(step.tag);
    key ^= static_cast<uint64_t>(step.index) + 0x9e3779b97f4a7c15ull;
    key *= 0x100000001b3ull;
    MutexLock lock(mu_);
    size_t mask = slots_.size() - 1;
    size_t i = key & mask;
    while (slots_[i].rendered.data() != nullptr) {
      if (slots_[i].key == key && slots_[i].index == step.index &&
          slots_[i].tag == step.tag) {
        return slots_[i].rendered;
      }
      i = (i + 1) & mask;
    }
    if ((used_ + 1) * 4 >= slots_.size() * 3) {
      Grow();
      mask = slots_.size() - 1;
      i = key & mask;
      while (slots_[i].rendered.data() != nullptr) i = (i + 1) & mask;
    }
    std::string text(step.tag);
    text += '[';
    text += std::to_string(step.index);
    text += ']';
    util::StringPool& pool = util::StringPool::Global();
    slots_[i] = Slot{key, pool.Intern(step.tag), step.index,
                     pool.Intern(text)};
    ++used_;
    return slots_[i].rendered;
  }

 private:
  struct Slot {
    uint64_t key = 0;
    std::string_view tag;
    int index = 0;
    std::string_view rendered;  // null data() == free slot
  };

  StepRenderCache() { slots_.resize(1 << 8); }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.rendered.data() == nullptr) continue;
      size_t i = slot.key & mask;
      while (slots_[i].rendered.data() != nullptr) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  CheckedMutex mu_{"xpath_step_render"};
  std::vector<Slot> slots_;
  size_t used_ = 0;
};

}  // namespace

std::string_view RenderedXPathStep(const XPathStep& step) {
  return StepRenderCache::Global().Render(step);
}

XPath XPath::FromNode(const DomDocument& doc, NodeId id) {
  std::vector<XPathStep> reversed;
  NodeId cur = id;
  while (cur != kInvalidNode) {
    const DomNode& node = doc.node(cur);
    reversed.push_back(XPathStep{node.tag, node.sibling_index});
    cur = node.parent;
  }
  std::reverse(reversed.begin(), reversed.end());
  return XPath(std::move(reversed));
}

Result<XPath> XPath::Parse(std::string_view text) {
  if (text.empty() || text[0] != '/') {
    return Status::InvalidArgument(
        StrCat("absolute XPath must start with '/': ", text));
  }
  std::vector<XPathStep> steps;
  size_t pos = 1;
  while (pos < text.size()) {
    size_t end = text.find('/', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view part = text.substr(pos, end - pos);
    if (part.empty()) {
      return Status::InvalidArgument(StrCat("empty XPath step in: ", text));
    }
    XPathStep step;
    size_t bracket = part.find('[');
    if (bracket == std::string_view::npos) {
      step.tag = util::StringPool::Global().Intern(part);
      step.index = 1;
    } else {
      if (part.back() != ']' || bracket + 2 > part.size()) {
        return Status::InvalidArgument(StrCat("malformed step: ", part));
      }
      step.tag = util::StringPool::Global().Intern(part.substr(0, bracket));
      std::string_view digits = part.substr(bracket + 1,
                                            part.size() - bracket - 2);
      int value = 0;
      auto [ptr, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), value);
      if (ec != std::errc() || ptr != digits.data() + digits.size() ||
          value < 1) {
        return Status::InvalidArgument(StrCat("bad step index: ", part));
      }
      step.index = value;
    }
    if (step.tag.empty()) {
      return Status::InvalidArgument(StrCat("empty tag in step: ", part));
    }
    steps.push_back(std::move(step));
    pos = end + 1;
  }
  if (steps.empty()) {
    return Status::InvalidArgument("XPath has no steps");
  }
  return XPath(std::move(steps));
}

std::string XPath::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps_.size(); ++i) {
    out += '/';
    if (i == 0 && steps_[i].index == 1) {
      // Index 1 on the leading "html" step is omitted for readability,
      // matching common absolute-XPath style.
      out += steps_[i].tag;
    } else {
      out += RenderedXPathStep(steps_[i]);
    }
  }
  return out;
}

NodeId XPath::Resolve(const DomDocument& doc) const {
  if (steps_.empty()) return kInvalidNode;
  const DomNode& root = doc.node(doc.root());
  if (steps_[0].tag != root.tag || steps_[0].index != 1) return kInvalidNode;
  NodeId cur = doc.root();
  for (size_t depth = 1; depth < steps_.size(); ++depth) {
    const XPathStep& step = steps_[depth];
    NodeId next = kInvalidNode;
    for (NodeId child : doc.children(cur)) {
      const DomNode& child_node = doc.node(child);
      if (child_node.tag == step.tag &&
          child_node.sibling_index == step.index) {
        next = child;
        break;
      }
    }
    if (next == kInvalidNode) return kInvalidNode;
    cur = next;
  }
  return cur;
}

double XPathEditDistance(const XPath& a, const XPath& b) {
  const auto& sa = a.steps();
  const auto& sb = b.steps();
  const size_t n = sa.size();
  const size_t m = sb.size();
  // Depth-weighted index substitution: differing sibling indices near the
  // leaf (two entries of one value list) are nearly free, while differing
  // indices high in the tree (sibling page sections, e.g. the main genre
  // list vs a recommendation card) cost almost a full edit. This is what
  // lets the §3.2.2 clustering put list members together yet keep
  // recommendation-block copies apart.
  const double denom =
      std::max<double>(1.0, static_cast<double>((n - 1) + (m - 1)));
  std::vector<double> prev(m + 1);
  std::vector<double> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      double sub_cost;
      if (sa[i - 1] == sb[j - 1]) {
        sub_cost = 0.0;
      } else if (sa[i - 1].tag == sb[j - 1].tag) {
        const double progress =
            static_cast<double>((i - 1) + (j - 1)) / denom;
        sub_cost = 1.0 - 0.75 * progress;
      } else {
        sub_cost = 1.0;
      }
      cur[j] = std::min({prev[j] + 1.0, cur[j - 1] + 1.0,
                         prev[j - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::vector<size_t> IndexOnlyDifferences(const XPath& a, const XPath& b,
                                         bool* same_shape) {
  *same_shape = false;
  if (a.size() != b.size()) return {};
  std::vector<size_t> positions;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.steps()[i].tag != b.steps()[i].tag) return {};
    if (a.steps()[i].index != b.steps()[i].index) positions.push_back(i);
  }
  *same_shape = true;
  return positions;
}

XPathStringCache::Entry& XPathStringCache::EntryFor(NodeId id) {
  if (entries_.empty()) {
    entries_.resize(static_cast<size_t>(doc_->size()));
  }
  return entries_[static_cast<size_t>(id)];
}

const XPath& XPathStringCache::Path(NodeId id) {
  Entry& entry = EntryFor(id);
  if (!entry.has_path) {
    entry.path = XPath::FromNode(*doc_, id);
    entry.has_path = true;
  }
  return entry.path;
}

const std::string& XPathStringCache::PathString(NodeId id) {
  Entry& entry = EntryFor(id);
  if (!entry.has_text) {
    entry.text = Path(id).ToString();
    entry.has_text = true;
  }
  return entry.text;
}

size_t XPathHash::operator()(const XPath& path) const {
  size_t h = 1469598103934665603ull;  // FNV offset basis.
  for (const XPathStep& step : path.steps()) {
    for (char c : step.tag) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= static_cast<size_t>(step.index);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ceres
