#ifndef CERES_DOM_HTML_PARSER_H_
#define CERES_DOM_HTML_PARSER_H_

#include <string_view>

#include "dom/dom_tree.h"
#include "util/status.h"

namespace ceres {

/// Options for ParseHtml.
struct HtmlParseOptions {
  /// When true (default) the contents of <script> and <style> elements are
  /// discarded; semi-structured extraction never reads them.
  bool skip_script_content = true;
  /// Maximum element count before the parser gives up with
  /// kResourceExhausted; guards against pathological inputs.
  int max_nodes = 1 << 20;
};

/// Parses tag-soup HTML into a DomDocument.
///
/// The parser is tolerant by design, mirroring what a production wrapper
/// system faces in the wild:
///  * unclosed elements are closed implicitly (li/p/td/tr/th/dt/dd/option
///    auto-close their own kind; everything left open is closed at EOF);
///  * stray close tags with no matching open element are ignored;
///  * void elements (br, img, meta, ...) never take children;
///  * comments and doctype declarations are skipped;
///  * character entities (&amp;, &#233;, &#x1F600;, ...) are decoded.
///
/// Character data attaches to the nearest open element as its `text` field,
/// whitespace-normalized, so a node's `text` is the "full text in a DOM node"
/// the paper matches entities against.
Result<DomDocument> ParseHtml(std::string_view html,
                              const HtmlParseOptions& options = {});

/// Decodes HTML character entities in `text` (named subset + numeric).
std::string DecodeEntities(std::string_view text);

}  // namespace ceres

#endif  // CERES_DOM_HTML_PARSER_H_
