# Empty compiler generated dependencies file for table6_imdb_annotation.
# This may be replaced when dependencies are built.
