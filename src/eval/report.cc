#include "eval/report.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ceres::eval {

TableReport::TableReport(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableReport::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableReport::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TableReport::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatRatio(double value, int decimals) {
  if (std::isnan(value)) return "NA";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string RatioOrNa(bool available, double value, int decimals) {
  return available ? FormatRatio(value, decimals) : "NA";
}

}  // namespace ceres::eval
