#include "dom/dom_utils.h"

#include <algorithm>

namespace ceres {

NodeId LowestCommonAncestor(const DomDocument& doc, NodeId a, NodeId b) {
  int depth_a = doc.Depth(a);
  int depth_b = doc.Depth(b);
  while (depth_a > depth_b) {
    a = doc.node(a).parent;
    --depth_a;
  }
  while (depth_b > depth_a) {
    b = doc.node(b).parent;
    --depth_b;
  }
  while (a != b) {
    a = doc.node(a).parent;
    b = doc.node(b).parent;
  }
  return a;
}

std::vector<NodeId> AncestorChain(const DomDocument& doc, NodeId id) {
  std::vector<NodeId> chain;
  NodeId cur = doc.node(id).parent;
  while (cur != kInvalidNode) {
    chain.push_back(cur);
    cur = doc.node(cur).parent;
  }
  return chain;
}

std::vector<NodeId> SiblingWindow(const DomDocument& doc, NodeId id,
                                  int width) {
  const DomNode& node = doc.node(id);
  if (node.parent == kInvalidNode) return {};
  std::vector<NodeId> out;
  // Up to `width` siblings on each side, in ascending child_position
  // order, via the intrusive sibling links.
  NodeId cur = node.prev_sibling;
  for (int i = 0; i < width && cur != kInvalidNode; ++i) {
    out.push_back(cur);
    cur = doc.node(cur).prev_sibling;
  }
  std::reverse(out.begin(), out.end());
  cur = node.next_sibling;
  for (int i = 0; i < width && cur != kInvalidNode; ++i) {
    out.push_back(cur);
    cur = doc.node(cur).next_sibling;
  }
  return out;
}

NodeId HighestExclusiveAncestor(const DomDocument& doc, NodeId mention,
                                const std::vector<NodeId>& others) {
  NodeId best = mention;
  NodeId cur = doc.node(mention).parent;
  while (cur != kInvalidNode) {
    for (NodeId other : others) {
      if (other != mention && doc.IsAncestorOrSelf(cur, other)) return best;
    }
    best = cur;
    cur = doc.node(cur).parent;
  }
  return best;
}

std::vector<NodeId> Subtree(const DomDocument& doc, NodeId id) {
  std::vector<NodeId> out;
  std::vector<NodeId> pending{id};
  while (!pending.empty()) {
    NodeId cur = pending.back();
    pending.pop_back();
    out.push_back(cur);
    // Children pushed in reverse (via prev_sibling) so preorder pops.
    for (NodeId child = doc.node(cur).last_child; child != kInvalidNode;
         child = doc.node(child).prev_sibling) {
      pending.push_back(child);
    }
  }
  return out;
}

int CountInSubtree(const DomDocument& doc, NodeId root,
                   const std::vector<NodeId>& candidates) {
  int count = 0;
  for (NodeId candidate : candidates) {
    if (doc.IsAncestorOrSelf(root, candidate)) ++count;
  }
  return count;
}

}  // namespace ceres
