// ceres_kb_build — compiles a portable text KB into a frozen binary image.
//
//   ceres_kb_build --in <seed.kb> --out <seed.kbi> [--verify]
//
// The input is the tab-separated text format of kb/kb_io.h (the
// interchange format); the output is the mmap-able image of kb/kb_image.h
// (the serving format): one flat file that ceres_dist workers and any
// KnowledgeBase::OpenImage caller open in O(1) with a single read-only
// mapping. --verify reopens the written file with full checksum and
// string-ref validation before reporting success.

#include <cstdio>
#include <string>

#include "kb/kb_io.h"
#include "kb/knowledge_base.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

struct Options {
  std::string in_path;
  std::string out_path;
  bool verify = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ceres_kb_build --in <seed.kb> --out <seed.kbi> "
               "[--verify]\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--in") {
      if (!next(&options->in_path)) return false;
    } else if (arg == "--out") {
      if (!next(&options->out_path)) return false;
    } else if (arg == "--verify") {
      options->verify = true;
    } else {
      return false;
    }
  }
  return !options->in_path.empty() && !options->out_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  Result<KnowledgeBase> kb = LoadKbFromFile(options.in_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "ceres_kb_build: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  Status saved = kb->SaveImage(options.out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "ceres_kb_build: %s\n", saved.ToString().c_str());
    return 1;
  }

  if (options.verify) {
    KnowledgeBase::OpenOptions open_options;
    open_options.verify_checksum = true;
    Result<KnowledgeBase> reopened =
        KnowledgeBase::OpenImage(options.out_path, open_options);
    if (!reopened.ok()) {
      std::fprintf(stderr, "ceres_kb_build: verification failed: %s\n",
                   reopened.status().ToString().c_str());
      return 1;
    }
    if (reopened->num_entities() != kb->num_entities() ||
        reopened->num_triples() != kb->num_triples()) {
      std::fprintf(stderr,
                   "ceres_kb_build: verification failed: reopened image "
                   "disagrees on entity/triple counts\n");
      return 1;
    }
  }

  std::printf(
      "ceres_kb_build: %s -> %s (%lld entities, %lld triples, %zu bytes%s)\n",
      options.in_path.c_str(), options.out_path.c_str(),
      static_cast<long long>(kb->num_entities()),
      static_cast<long long>(kb->num_triples()), kb->image_bytes().size(),
      options.verify ? ", verified" : "");
  return 0;
}
