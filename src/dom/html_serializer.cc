#include "dom/html_serializer.h"

#include <unordered_set>

namespace ceres {

namespace {

bool IsVoidTag(std::string_view tag) {
  static const auto* kSet = new std::unordered_set<std::string_view>{
      "area", "base",  "br",    "col",  "embed", "hr",  "img", "input",
      "link", "meta",  "param", "source", "track", "wbr"};
  return kSet->count(tag) > 0;
}

void SerializeNode(const DomDocument& doc, NodeId id, std::string* out) {
  const DomNode& node = doc.node(id);
  out->push_back('<');
  out->append(node.tag);
  for (const DomAttribute& attr : doc.attributes(id)) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(EscapeHtml(attr.value));
    out->push_back('"');
  }
  out->push_back('>');
  if (IsVoidTag(node.tag) && node.child_count == 0 && node.text.empty()) {
    return;
  }
  if (!node.text.empty()) out->append(EscapeHtml(node.text));
  for (NodeId child : doc.children(id)) SerializeNode(doc, child, out);
  out->append("</");
  out->append(node.tag);
  out->push_back('>');
}

}  // namespace

std::string EscapeHtml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string SerializeHtml(const DomDocument& doc) {
  std::string out = "<!DOCTYPE html>";
  SerializeNode(doc, doc.root(), &out);
  return out;
}

}  // namespace ceres
