#ifndef CERES_TEXT_NORMALIZE_H_
#define CERES_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace ceres {

/// Canonicalizes a text field for entity matching: lower-cases ASCII, folds
/// common Latin accented characters (UTF-8, Latin-1 supplement + Latin
/// Extended-A) to their ASCII base letter, replaces punctuation with spaces,
/// and collapses runs of whitespace to a single space.
///
/// This is the normalized-string matching used wherever the paper calls for
/// the fuzzy string matching of Gulhane et al. [18]: two strings match when
/// their normalizations are equal.
std::string NormalizeText(std::string_view input);

/// NormalizeText into a caller-owned buffer, reusing its capacity. Hot
/// loops (per-DOM-text-node matching, lexicon mining) call this with a
/// scratch string so normalization stops allocating per call. `out` is
/// cleared first; `input` must not alias `*out`.
void NormalizeTextInto(std::string_view input, std::string* out);

/// True if the normalized form is empty (i.e. the field carries no
/// matchable content).
bool IsBlankAfterNormalize(std::string_view input);

/// True if `text` normalizes to a low-information-content string that must
/// never be considered a topic candidate (§3.1.1): short digit strings,
/// 4-digit years, single characters, or one of a small list of country
/// names / boilerplate words.
bool IsLowInformation(std::string_view text);

}  // namespace ceres

#endif  // CERES_TEXT_NORMALIZE_H_
