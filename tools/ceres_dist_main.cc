// ceres_dist — coordinator/worker distributed extraction driver.
//
// Two modes:
//
//   ceres_dist --worker (--kb <path> | --kb-image <path>)
//     Worker mode: speaks the wire.h frame protocol on stdin/stdout,
//     running shards against the KB loaded from <path>. --kb parses the
//     portable text format; --kb-image mmap's a frozen KB image
//     read-only — O(1) startup regardless of KB size, and all workers on
//     a machine share the image's page-cache pages instead of each
//     holding a parsed heap copy. This is the argv the coordinator's
//     fork+exec spawn mode targets; it is how a distributed run crosses
//     machine or binary boundaries.
//
//   ceres_dist [--workers N] [--shards N] [--crash-rate F] [--hang-rate F]
//              [--checkpoint-dir D] [--exec] [--scale F] [--smoke]
//              [--seed N] [--verbose]
//     Driver mode: generates a synthetic SWDE movie corpus, runs it
//     through the distributed coordinator (optionally with injected
//     worker crashes/hangs), reruns it single-process, and verifies the
//     merged extractions are byte-identical for non-quarantined shards.
//     With --exec, workers are spawned by fork+exec of this same binary
//     in --worker mode instead of plain fork. Exit 0 iff every check
//     holds.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/worker.h"
#include "kb/kb_io.h"
#include "kb/knowledge_base.h"
#include "robustness/fault_injector.h"
#include "synth/corpora.h"
#include "util/string_util.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

struct Options {
  bool worker = false;
  std::string kb_path;
  std::string kb_image_path;
  int workers = 3;
  int shards = 0;
  double crash_rate = 0.0;
  double hang_rate = 0.0;
  std::string checkpoint_dir;
  bool exec_workers = false;
  double scale = 1.0;
  uint64_t seed = 7;
  bool verbose = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ceres_dist --worker (--kb <path> | --kb-image <path>)\n"
               "       ceres_dist [--workers N] [--shards N]\n"
               "  [--crash-rate F] [--hang-rate F] [--checkpoint-dir D]\n"
               "  [--exec] [--scale F] [--smoke] [--seed N] [--verbose]\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--worker") {
      options->worker = true;
    } else if (arg == "--kb") {
      if (!next(&options->kb_path)) return false;
    } else if (arg == "--kb-image") {
      if (!next(&options->kb_image_path)) return false;
    } else if (arg == "--workers") {
      if (!next(&value)) return false;
      options->workers = std::atoi(value.c_str());
    } else if (arg == "--shards") {
      if (!next(&value)) return false;
      options->shards = std::atoi(value.c_str());
    } else if (arg == "--crash-rate") {
      if (!next(&value)) return false;
      options->crash_rate = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--hang-rate") {
      if (!next(&value)) return false;
      options->hang_rate = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--checkpoint-dir") {
      if (!next(&options->checkpoint_dir)) return false;
    } else if (arg == "--exec") {
      options->exec_workers = true;
    } else if (arg == "--scale") {
      if (!next(&value)) return false;
      options->scale = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--smoke") {
      options->scale = 0.2;
    } else if (arg == "--seed") {
      if (!next(&value)) return false;
      options->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--verbose") {
      options->verbose = true;
    } else {
      return false;
    }
  }
  return true;
}

int RunWorkerMode(const Options& options) {
  if (options.kb_path.empty() == options.kb_image_path.empty()) {
    std::fprintf(stderr,
                 "ceres_dist --worker requires exactly one of --kb <path> "
                 "or --kb-image <path>\n");
    return 2;
  }
  Result<KnowledgeBase> kb =
      options.kb_image_path.empty()
          ? LoadKbFromFile(options.kb_path)
          : KnowledgeBase::OpenImage(options.kb_image_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "ceres_dist --worker: %s\n",
                 kb.status().ToString().c_str());
    return 2;
  }
  Status status = dist::RunWorkerLoop(STDIN_FILENO, STDOUT_FILENO, *kb);
  if (!status.ok()) {
    std::fprintf(stderr, "ceres_dist --worker: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

bool SameExtractions(const std::vector<fusion::SiteExtractions>& a,
                     const std::vector<fusion::SiteExtractions>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].site != b[i].site) return false;
    if (a[i].extractions.size() != b[i].extractions.size()) return false;
    for (size_t j = 0; j < a[i].extractions.size(); ++j) {
      const Extraction& x = a[i].extractions[j];
      const Extraction& y = b[i].extractions[j];
      if (x.page != y.page || x.node != y.node ||
          x.predicate != y.predicate || x.subject != y.subject ||
          x.object != y.object || x.confidence != y.confidence) {
        return false;
      }
    }
  }
  return true;
}

int RunDriverMode(const Options& options, const char* self) {
  synth::Corpus corpus =
      synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie, options.scale, 100);
  std::vector<dist::ShardSite> sites;
  for (const synth::SyntheticSite& site : corpus.sites) {
    dist::ShardSite shard_site;
    shard_site.site = site.name;
    for (const synth::GeneratedPage& page : site.pages) {
      shard_site.pages.push_back(RawPage{page.url, page.html});
    }
    sites.push_back(std::move(shard_site));
  }

  dist::DistConfig config;
  config.num_workers = options.workers;
  config.num_shards = options.shards;
  config.checkpoint_dir = options.checkpoint_dir;
  const int num_shards = config.num_shards > 0
                             ? config.num_shards
                             : static_cast<int>(sites.size());
  if (options.crash_rate > 0.0) {
    config.faults = MakeProcessFaultPlan(num_shards, options.crash_rate,
                                         options.seed,
                                         ProcessFaultType::kWorkerCrash);
  }
  if (options.hang_rate > 0.0) {
    ProcessFaultPlan hangs = MakeProcessFaultPlan(
        num_shards, options.hang_rate, options.seed + 1,
        ProcessFaultType::kWorkerHang);
    config.faults.faults.insert(config.faults.faults.end(),
                                hangs.faults.begin(), hangs.faults.end());
  }
  // The watchdog cannot tell "hung" from "computing": its timeout must
  // exceed the slowest single site's pipeline time (progress frames are
  // per-site). The default 2 s clears the synthetic sites comfortably at
  // these scales; each injected hang then costs one timeout to reclaim.

  std::string kb_file;
  if (options.exec_workers) {
    // Exec'd workers get the frozen image, not the text KB: each worker
    // opens it with one mmap (no per-worker parse) and the kernel shares
    // the backing pages across all of them.
    kb_file = StrCat("/tmp/ceres_dist_kb_", ::getpid(), ".kbi");
    Status saved = corpus.seed_kb.SaveImage(kb_file);
    if (!saved.ok()) {
      std::fprintf(stderr, "saving KB image: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    config.worker_command = {self, "--worker", "--kb-image", kb_file};
  }

  Result<dist::DistResult> distributed = dist::RunDistributedExtraction(
      sites, corpus.seed_kb, corpus.seed_kb.ontology(), config);
  if (!kb_file.empty()) (void)::unlink(kb_file.c_str());
  if (!distributed.ok()) {
    std::fprintf(stderr, "distributed run: %s\n",
                 distributed.status().ToString().c_str());
    return 1;
  }

  dist::DistConfig reference_config;
  reference_config.num_shards = config.num_shards;
  reference_config.pipeline = config.pipeline;
  reference_config.fusion = config.fusion;
  Result<dist::DistResult> reference = dist::RunSingleProcess(
      sites, corpus.seed_kb, corpus.seed_kb.ontology(), reference_config);
  if (!reference.ok()) {
    std::fprintf(stderr, "single-process run: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }

  const dist::DistDiagnostics& diag = distributed->diagnostics;
  std::printf(
      "ceres_dist: %zu sites, %d shards, %d workers%s%s\n"
      "  completed=%lld quarantined=%zu retries=%lld restarts=%lld "
      "checkpoint_bytes=%lld fused_triples=%zu\n",
      sites.size(), num_shards, options.workers,
      options.exec_workers ? ", exec workers" : ", forked workers",
      options.crash_rate > 0 || options.hang_rate > 0 ? ", faults injected"
                                                      : "",
      static_cast<long long>(diag.shards_completed),
      diag.quarantined_shards.size(), static_cast<long long>(diag.retries),
      static_cast<long long>(diag.worker_restarts),
      static_cast<long long>(diag.checkpoint_bytes),
      distributed->fused.triples.size());
  if (options.verbose) {
    std::printf("%s", diag.Summary().c_str());
  }

  bool ok = true;
  if (diag.quarantined_shards.empty() && diag.unfinished_shards.empty()) {
    if (!SameExtractions(distributed->site_extractions,
                         reference->site_extractions)) {
      std::fprintf(stderr,
                   "FAIL: distributed merge differs from single-process "
                   "reference\n");
      ok = false;
    }
  }
  // Every planned single-attempt fault must have been retried through.
  if (options.crash_rate > 0.0 && diag.retries == 0) {
    std::fprintf(stderr, "FAIL: crash faults injected but no retries\n");
    ok = false;
  }
  if (ok) std::printf("ceres_dist: OK\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.worker) return RunWorkerMode(options);
  return RunDriverMode(options, argv[0]);
}
