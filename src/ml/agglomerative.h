#ifndef CERES_ML_AGGLOMERATIVE_H_
#define CERES_ML_AGGLOMERATIVE_H_

#include <functional>
#include <vector>

namespace ceres {

/// Pairwise distance callback over item indices.
using DistanceFn = std::function<double(size_t, size_t)>;

/// Linkage criterion for merging clusters.
enum class Linkage {
  /// Distance between clusters = minimum item-pair distance. This is the
  /// paper's §3.2.2 procedure ("find two nodes with the closest distance
  /// and merge the clusters they belong to").
  kSingle,
  /// Distance = maximum item-pair distance.
  kComplete,
  /// Distance = mean item-pair distance.
  kAverage,
};

/// Agglomerative (bottom-up) clustering of `num_items` items.
///
/// Starts from singleton clusters and repeatedly merges the closest pair of
/// clusters until `target_clusters` remain. Returns a cluster id in
/// [0, target_clusters) for each item; ids are ordered by decreasing cluster
/// size (cluster 0 is the largest), which is what the annotator's
/// prefer-the-largest-cluster rule consumes.
///
/// Complexity O(n^2 log n) with an O(n^2) distance matrix; callers cap n
/// (the relation annotator deduplicates XPaths first, keeping n small).
std::vector<int> AgglomerativeCluster(size_t num_items,
                                      const DistanceFn& distance,
                                      size_t target_clusters,
                                      Linkage linkage = Linkage::kSingle);

}  // namespace ceres

#endif  // CERES_ML_AGGLOMERATIVE_H_
