file(REMOVE_RECURSE
  "CMakeFiles/table6_imdb_annotation.dir/table6_imdb_annotation.cc.o"
  "CMakeFiles/table6_imdb_annotation.dir/table6_imdb_annotation.cc.o.d"
  "table6_imdb_annotation"
  "table6_imdb_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_imdb_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
