#ifndef CERES_NET_HTTP_CLIENT_H_
#define CERES_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/http.h"
#include "util/status.h"

namespace ceres::net {

/// A small blocking HTTP/1.1 client for the load driver and the loopback
/// test suite. One instance is one connection: requests sent through the
/// same instance ride the same keep-alive socket until the server closes
/// it (the client transparently reconnects for the *next* request and
/// counts it in `reconnects()`). Close() between requests turns the same
/// call pattern into connection-per-request — exactly the two modes the
/// serving bench compares.
///
/// `SendRaw` + `ReadResponse` expose the wire directly so protocol tests
/// can deliver torn, malformed, or pipelined byte sequences that
/// `Roundtrip` would never produce.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Opens the connection; Roundtrip calls this lazily when needed.
  Status Connect();
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `request` and blocks for the response. Reconnects (once) when
  /// the keep-alive socket turns out to be dead. Honors a server
  /// "Connection: close" by closing after the read.
  Result<HttpResponse> Roundtrip(const HttpRequest& request);

  /// Writes raw bytes to the socket (connects first when closed).
  Status SendRaw(std::string_view bytes);

  /// Blocks until one full response arrives or `timeout_ms` passes.
  Result<HttpResponse> ReadResponse(int timeout_ms = 5000);

  /// Half-closes the write side (FIN) while keeping the read side open —
  /// lets tests hand the server an EOF mid- or post-request and still
  /// collect the response.
  Status ShutdownWrite();

  /// Times the keep-alive socket was found dead and reopened.
  int64_t reconnects() const { return reconnects_; }

 private:
  const std::string host_;
  const uint16_t port_;
  int fd_ = -1;
  int64_t reconnects_ = 0;
};

}  // namespace ceres::net

#endif  // CERES_NET_HTTP_CLIENT_H_
