# Empty dependencies file for clustering_ablation.
# This may be replaced when dependencies are built.
