// Figure 5 — Extraction F1 on the SWDE Movie vertical as a function of the
// number of annotated pages made available to the learner (log-scaled
// sweep), plus the negative-sampling list-exclusion ablation (§4.1).
//
// Paper shape: F1 is already usable at ~5-20 annotated pages and saturates
// quickly (the Movie plot's x axis is log for this reason).

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace ceres;         // NOLINT(build/namespaces)
  using namespace ceres::bench;  // NOLINT(build/namespaces)
  const double scale = synth::EnvScale();
  std::printf(
      "Figure 5: Movie F1 vs #annotated pages used for learning "
      "(scale=%.2f)\n\n",
      scale);

  ParsedCorpus corpus = ParseCorpus(
      synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie, scale));
  std::vector<PredicateId> predicates =
      EvalPredicates(corpus.corpus, /*include_name=*/true);

  eval::TableReport table({"Max annotated pages", "F1 (with list excl.)",
                           "F1 (no list excl.)", "Series"});
  for (size_t cap : {1, 2, 5, 10, 20, 40, 0}) {  // 0 = unlimited.
    std::vector<eval::Prf> site_with(corpus.sites.size());
    std::vector<eval::Prf> site_without(corpus.sites.size());
    ForEachSite(corpus, [&](size_t s) {
      const ParsedSite& site = corpus.sites[s];
      Split split = HalfSplit(site.pages.size());
      for (bool exclude : {true, false}) {
        PipelineConfig config = MakeConfig(System::kCeresFull, split);
        config.training.max_annotated_pages = cap;
        config.training.min_annotated_pages = 1;  // Sweep includes 1 page.
        config.training.exclude_list_negatives = exclude;
        PipelineResult result =
            RunSite(site, corpus.corpus.seed_kb, config);
        eval::ScoreOptions options;
        options.pages = split.eval;
        options.predicates = predicates;
        options.confidence_threshold = 0.5;
        eval::Prf prf = eval::ScoreExtractions(result.extractions,
                                               site.truth, options);
        (exclude ? site_with : site_without)[s] = prf;
      }
    });
    eval::Prf with_exclusion;
    eval::Prf without_exclusion;
    for (size_t s = 0; s < corpus.sites.size(); ++s) {
      with_exclusion += site_with[s];
      without_exclusion += site_without[s];
    }
    int bars = static_cast<int>(with_exclusion.f1() * 30 + 0.5);
    table.AddRow({cap == 0 ? "all" : std::to_string(cap),
                  eval::FormatRatio(with_exclusion.f1()),
                  eval::FormatRatio(without_exclusion.f1()),
                  std::string(bars, '#')});
    std::fprintf(stderr, "[fig5] cap=%zu done\n", cap);
  }
  table.Print();
  std::printf(
      "\nPaper (Figure 5): F1 climbs from ~0.4 at 1-2 annotated pages to "
      ">0.9 by a few tens of pages (log-scale x axis); the paper does not "
      "plot the list-exclusion ablation — lower values in the no-exclusion "
      "column show why the heuristic exists for multi-valued lists.\n");
  return 0;
}
