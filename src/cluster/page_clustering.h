#ifndef CERES_CLUSTER_PAGE_CLUSTERING_H_
#define CERES_CLUSTER_PAGE_CLUSTERING_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dom/dom_tree.h"
#include "util/deadline.h"

namespace ceres {

/// Configuration of the Vertex-style template clusterer (Gulhane et al.
/// [17]), which CERES runs first so that each extractor instance sees pages
/// of (roughly) one template (§2.1, §5.1.3).
struct PageClusteringConfig {
  /// Two pages belong to the same template when the Jaccard similarity of
  /// their structural signatures reaches this value.
  double similarity_threshold = 0.6;
  /// Signature cap per page; very large pages are represented by their
  /// first this-many distinct tag paths.
  size_t max_signature_size = 4096;
  /// Cooperative time budget. When it expires mid-run, every not-yet
  /// clustered page is assigned a fresh singleton cluster (degrading
  /// gracefully: such clusters fall below any min-size filter downstream).
  Deadline deadline;
};

/// Structural signature of a page: hashes of the index-free tag paths
/// (html/body/div/span, no sibling indices) of all element nodes, so that
/// two pages from one template match even when list lengths differ.
std::unordered_set<uint64_t> PageSignature(const DomDocument& page,
                                           size_t max_size);

/// Jaccard similarity of two signatures.
double SignatureSimilarity(const std::unordered_set<uint64_t>& a,
                           const std::unordered_set<uint64_t>& b);

/// Groups pages into template clusters.
///
/// Greedy leader clustering in document order: each page joins the first
/// cluster whose leader signature is similar enough, else founds a new
/// cluster. Returned ids are re-ranked so cluster 0 is the largest.
/// Like the strict Vertex implementation the paper uses, this is imperfect
/// by design: templates that share most of their skeleton (or boilerplate-
/// heavy non-detail pages) can land in one cluster, which §5.5.1 identifies
/// as a real failure mode the extractor must tolerate.
std::vector<int> ClusterPages(const std::vector<DomDocument>& pages,
                              const PageClusteringConfig& config = {});

}  // namespace ceres

#endif  // CERES_CLUSTER_PAGE_CLUSTERING_H_
