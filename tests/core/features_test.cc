#include "core/features.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace ceres {
namespace {

using testing::FilmPageHtml;
using testing::ParseOrDie;

// Names of all features in a vector, resolved through the id -> name trace
// the extractor fills when one is attached.
std::vector<std::string> FeatureNames(const SparseVector& v,
                                      const HashedFeatureMap& map,
                                      const FeatureNameTrace& trace) {
  std::vector<std::string> names;
  for (const auto& [index, value] : v.entries()) {
    names.push_back(trace.NameOf(map.IdAt(index)));
  }
  return names;
}

bool AnyContains(const std::vector<std::string>& names,
                 const std::string& needle) {
  for (const std::string& name : names) {
    if (name.find(needle) != std::string::npos) return true;
  }
  return false;
}

class FeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      docs_.push_back(ParseOrDie(FilmPageHtml(
          "Film " + std::to_string(i), "Director " + std::to_string(i),
          "Writer " + std::to_string(i),
          {"Actor A" + std::to_string(i), "Actor B" + std::to_string(i)},
          {"Comedy"})));
    }
    for (const DomDocument& doc : docs_) ptrs_.push_back(&doc);
  }

  NodeId FindText(const DomDocument& doc, const std::string& text) {
    for (NodeId id = 0; id < doc.size(); ++id) {
      if (doc.node(id).text == text) return id;
    }
    return kInvalidNode;
  }

  std::vector<DomDocument> docs_;
  std::vector<const DomDocument*> ptrs_;
};

TEST_F(FeaturesTest, StructuralFeaturesIncludeSelfAndAncestors) {
  FeatureExtractor extractor(ptrs_, FeatureConfig{});
  HashedFeatureMap map;
  FeatureNameTrace trace;
  NodeId director = FindText(docs_[0], "Director 0");
  SparseVector v = extractor.Extract(docs_[0], director, &map, {}, nullptr, &trace);
  std::vector<std::string> names = FeatureNames(v, map, trace);
  EXPECT_TRUE(AnyContains(names, "S|l=0|s=0|tag=span"));
  EXPECT_TRUE(AnyContains(names, "S|l=0|s=0|class=val"));
  EXPECT_TRUE(AnyContains(names, "S|l=1|s=0|class=row"));   // Parent div.
  EXPECT_TRUE(AnyContains(names, "S|l=0|s=-1|class=lbl"));  // Label sibling.
}

TEST_F(FeaturesTest, FrequentStringsMined) {
  FeatureExtractor extractor(ptrs_, FeatureConfig{});
  // Labels appear on all pages; values never repeat.
  EXPECT_TRUE(extractor.frequent_strings().count("director") > 0);
  EXPECT_TRUE(extractor.frequent_strings().count("cast") > 0);
  EXPECT_FALSE(extractor.frequent_strings().count("director 0") > 0);
}

TEST_F(FeaturesTest, TextFeatureFiresOnNearbyLabel) {
  FeatureExtractor extractor(ptrs_, FeatureConfig{});
  HashedFeatureMap map;
  FeatureNameTrace trace;
  NodeId director = FindText(docs_[0], "Director 0");
  SparseVector v = extractor.Extract(docs_[0], director, &map, {}, nullptr, &trace);
  EXPECT_TRUE(AnyContains(FeatureNames(v, map, trace), "T|l0s-1|director"));
}

TEST_F(FeaturesTest, DirectorAndWriterValuesGetDifferentFeatures) {
  FeatureExtractor extractor(ptrs_, FeatureConfig{});
  HashedFeatureMap map;
  FeatureNameTrace trace;
  NodeId director = FindText(docs_[0], "Director 0");
  NodeId writer = FindText(docs_[0], "Writer 0");
  std::vector<std::string> d =
      FeatureNames(extractor.Extract(docs_[0], director, &map, {}, nullptr, &trace), map, trace);
  std::vector<std::string> w =
      FeatureNames(extractor.Extract(docs_[0], writer, &map, {}, nullptr, &trace), map, trace);
  EXPECT_NE(d, w);  // The label text features distinguish them.
  EXPECT_TRUE(AnyContains(w, "T|l0s-1|writer"));
  EXPECT_FALSE(AnyContains(w, "T|l0s-1|director"));
}

TEST_F(FeaturesTest, StructuralOnlyAblation) {
  FeatureConfig config;
  config.text_features = false;
  FeatureExtractor extractor(ptrs_, config);
  HashedFeatureMap map;
  FeatureNameTrace trace;
  NodeId director = FindText(docs_[0], "Director 0");
  std::vector<std::string> names =
      FeatureNames(extractor.Extract(docs_[0], director, &map, {}, nullptr, &trace), map, trace);
  for (const std::string& name : names) {
    EXPECT_EQ(name.substr(0, 2), "S|");
  }
  EXPECT_TRUE(extractor.frequent_strings().empty());
}

TEST_F(FeaturesTest, TextOnlyAblation) {
  FeatureConfig config;
  config.structural_features = false;
  FeatureExtractor extractor(ptrs_, config);
  HashedFeatureMap map;
  FeatureNameTrace trace;
  NodeId director = FindText(docs_[0], "Director 0");
  std::vector<std::string> names =
      FeatureNames(extractor.Extract(docs_[0], director, &map, {}, nullptr, &trace), map, trace);
  for (const std::string& name : names) {
    EXPECT_EQ(name.substr(0, 2), "T|");
  }
}

TEST_F(FeaturesTest, FrozenMapDropsUnseenFeatures) {
  FeatureExtractor extractor(ptrs_, FeatureConfig{});
  HashedFeatureMap map;
  FeatureNameTrace trace;
  NodeId director = FindText(docs_[0], "Director 0");
  extractor.Extract(docs_[0], director, &map, {}, nullptr, &trace);
  int32_t size_before = map.size();
  map.Freeze();
  // A node from a different page region yields only known features.
  NodeId h1 = FindText(docs_[1], "Film 1");
  SparseVector v = extractor.Extract(docs_[1], h1, &map, {}, nullptr, &trace);
  EXPECT_EQ(map.size(), size_before);
  for (const auto& [index, value] : v.entries()) {
    EXPECT_LT(index, size_before);
  }
}

TEST_F(FeaturesTest, NamePrefixKeepsVectorsDisjoint) {
  FeatureExtractor extractor(ptrs_, FeatureConfig{});
  HashedFeatureMap map;
  FeatureNameTrace trace;
  NodeId director = FindText(docs_[0], "Director 0");
  SparseVector a = extractor.Extract(docs_[0], director, &map, "A|", nullptr, &trace);
  SparseVector b = extractor.Extract(docs_[0], director, &map, "B|", nullptr, &trace);
  for (const auto& [index_a, va] : a.entries()) {
    for (const auto& [index_b, vb] : b.entries()) {
      EXPECT_NE(index_a, index_b);
    }
  }
}

TEST_F(FeaturesTest, SameTemplatePositionSameFeaturesAcrossPages) {
  FeatureExtractor extractor(ptrs_, FeatureConfig{});
  HashedFeatureMap map;
  FeatureNameTrace trace;
  NodeId d0 = FindText(docs_[0], "Director 0");
  NodeId d1 = FindText(docs_[1], "Director 1");
  SparseVector v0 = extractor.Extract(docs_[0], d0, &map, {}, nullptr, &trace);
  SparseVector v1 = extractor.Extract(docs_[1], d1, &map, {}, nullptr, &trace);
  EXPECT_EQ(FeatureNames(v0, map, trace), FeatureNames(v1, map, trace));
}

}  // namespace
}  // namespace ceres
