file(REMOVE_RECURSE
  "CMakeFiles/bootstrap_new_vertical.dir/bootstrap_new_vertical.cpp.o"
  "CMakeFiles/bootstrap_new_vertical.dir/bootstrap_new_vertical.cpp.o.d"
  "bootstrap_new_vertical"
  "bootstrap_new_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_new_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
