#!/usr/bin/env sh
# tier1.sh — the repo's tier-1 verification gate in one command.
#
# Configures and builds the tree, runs the full test suite, then runs the
# serve and chaos labels explicitly (they cover the online service and the
# fault-injection paths and must never be skipped by label filters).
#
#   tools/tier1.sh                 # regular build in ./build
#   CERES_SANITIZE=ON tools/tier1.sh   # address+UB sanitized build in
#                                      # ./build-asan (slower, catches
#                                      # memory errors on corrupt input)
#
# Any extra arguments are passed to every ctest invocation, e.g.
#   tools/tier1.sh -j4
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

if [ "${CERES_SANITIZE:-}" = "ON" ]; then
  build_dir="$repo_root/build-asan"
  sanitize_flags='-DCERES_SANITIZE=address;undefined'
else
  build_dir="$repo_root/build"
  sanitize_flags=''
fi

echo "== tier1: configure ($build_dir)"
# shellcheck disable=SC2086  # sanitize_flags is intentionally word-split
cmake -B "$build_dir" -S "$repo_root" $sanitize_flags

echo "== tier1: build"
cmake --build "$build_dir" -j

echo "== tier1: full test suite"
(cd "$build_dir" && ctest --output-on-failure -j "$@")

echo "== tier1: serve label"
(cd "$build_dir" && ctest --output-on-failure -L serve "$@")

echo "== tier1: chaos label"
(cd "$build_dir" && ctest --output-on-failure -L chaos "$@")

echo "== tier1: all gates passed"
