#include "lint/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ceres::lint {
namespace {

#ifndef CERES_LINT_CORPUS_DIR
#error "CERES_LINT_CORPUS_DIR must point at tools/lint/corpus"
#endif

std::string ReadCorpus(const std::string& name) {
  const std::string path = std::string(CERES_LINT_CORPUS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

/// Lints one corpus snippet under a synthetic path (the path selects the
/// rule scope: serve scope, test exemption, stage-config scope).
std::vector<Diagnostic> LintAs(const std::string& corpus_name,
                               const std::string& synthetic_path) {
  return Lint({SourceFile{synthetic_path, ReadCorpus(corpus_name)}});
}

struct KnownBad {
  const char* corpus;
  const char* path;
  const char* rule;
};

/// Each known-bad snippet must fire its diagnostic exactly once.
TEST(CeresLintTest, EachKnownBadSnippetFiresExactlyOnce) {
  const KnownBad cases[] = {
      {"ignored_status.cc", "src/eval/ignored_status.cc", "ignored-status"},
      {"naked_mutex.cc", "src/serve/naked_mutex.cc", "naked-sync"},
      {"missing_deadline.cc", "src/core/missing_deadline.h",
       "config-deadline"},
      {"detached_thread.cc", "src/dom/detached_thread.cc", "thread-hygiene"},
      {"sleep_poll.cc", "src/robustness/sleep_poll.cc", "thread-hygiene"},
      {"raw_parallelism.cc", "src/core/raw_parallelism.cc",
       "raw-parallelism"},
      {"raw_timing.cc", "src/core/raw_timing.cc", "raw-timing"},
      {"raw_process.cc", "src/serve/raw_process.cc", "raw-process"},
      {"raw_socket.cc", "src/serve/raw_socket.cc", "raw-socket"},
  };
  for (const KnownBad& known : cases) {
    SCOPED_TRACE(known.corpus);
    const std::vector<Diagnostic> diagnostics =
        LintAs(known.corpus, known.path);
    ASSERT_EQ(diagnostics.size(), 1u);
    EXPECT_EQ(diagnostics[0].rule, known.rule);
    EXPECT_EQ(diagnostics[0].file, known.path);
    EXPECT_GT(diagnostics[0].line, 0);
  }
}

TEST(CeresLintTest, CleanSnippetProducesNoDiagnostics) {
  // Even under the strictest scope (src/serve/), the clean corpus file —
  // which uses the checked wrappers, macro-propagated and (void)-discarded
  // Status, and a suppressed deliberate sleep — must lint clean.
  EXPECT_TRUE(LintAs("clean.cc", "src/serve/clean.cc").empty());
}

TEST(CeresLintTest, WholeCorpusTotalsAcrossFiles) {
  // All snippets linted together as one program: the Status-function pass
  // is global, and each bad file still reports exactly its one violation.
  std::vector<SourceFile> files = {
      {"src/eval/ignored_status.cc", ReadCorpus("ignored_status.cc")},
      {"src/serve/naked_mutex.cc", ReadCorpus("naked_mutex.cc")},
      {"src/core/missing_deadline.h", ReadCorpus("missing_deadline.cc")},
      {"src/dom/detached_thread.cc", ReadCorpus("detached_thread.cc")},
      {"src/robustness/sleep_poll.cc", ReadCorpus("sleep_poll.cc")},
      {"src/core/raw_parallelism.cc", ReadCorpus("raw_parallelism.cc")},
      {"src/serve/raw_timing.cc", ReadCorpus("raw_timing.cc")},
      {"src/eval/raw_process.cc", ReadCorpus("raw_process.cc")},
      {"src/eval/raw_socket.cc", ReadCorpus("raw_socket.cc")},
      {"src/serve/clean.cc", ReadCorpus("clean.cc")},
  };
  EXPECT_EQ(Lint(files).size(), 9u);
}

TEST(CeresLintTest, ScopeGatesRules) {
  // The same content outside its rule's scope is silent: naked std::mutex
  // is allowed off the serve path, sleeps are allowed in tests, and a
  // Deadline-less Config struct is fine outside src/core + src/cluster.
  EXPECT_TRUE(LintAs("naked_mutex.cc", "src/kb/naked_mutex.cc").empty());
  EXPECT_TRUE(
      LintAs("sleep_poll.cc", "tests/robustness/sleep_poll_test.cc").empty());
  EXPECT_TRUE(
      LintAs("missing_deadline.cc", "src/serve/missing_deadline.h").empty());
  // A hard-coded thread count is only policed in the batch-pipeline scope.
  EXPECT_TRUE(
      LintAs("raw_parallelism.cc", "src/serve/raw_parallelism.cc").empty());
  // Raw steady_clock is only policed in pipeline/serve code, and src/obs/
  // (the clock wrapper itself) is carved out of that scope.
  EXPECT_TRUE(LintAs("raw_timing.cc", "src/eval/raw_timing.cc").empty());
  EXPECT_TRUE(LintAs("raw_timing.cc", "src/obs/raw_timing.cc").empty());
  // Process-control calls are the dist layer's business — the same content
  // inside src/dist/ or a test file is silent.
  EXPECT_TRUE(LintAs("raw_process.cc", "src/dist/raw_process.cc").empty());
  EXPECT_TRUE(
      LintAs("raw_process.cc", "tests/dist/raw_process_test.cc").empty());
  // Socket/epoll calls are the net layer's business — the same content
  // inside src/net/ or a test file is silent.
  EXPECT_TRUE(LintAs("raw_socket.cc", "src/net/raw_socket.cc").empty());
  EXPECT_TRUE(
      LintAs("raw_socket.cc", "tests/net/raw_socket_test.cc").empty());
}

TEST(CeresLintTest, NakedSyncCoversNetScope) {
  // src/net/ joined the lock-order-checked scope with the HTTP server:
  // the event loop's responder inbox and drain signal must use the
  // sync.h wrappers.
  const std::vector<Diagnostic> diagnostics =
      LintAs("naked_mutex.cc", "src/net/naked_mutex.cc");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "naked-sync");
}

TEST(CeresLintTest, RawSocketBansDescriptorCallsButNotPoll) {
  // socket() and epoll_ctl() are flagged outside src/net/; poll() is not
  // (the dist coordinator waits on worker pipes with it).
  const std::string content =
      "namespace ceres {\n"
      "void Wait(int fd) {\n"
      "  int listener = socket(2, 1, 0);\n"
      "  epoll_ctl(listener, 1, fd, nullptr);\n"
      "  poll(nullptr, 0, 50);\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/dist/wait.cc", content}});
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "raw-socket");
  EXPECT_EQ(diagnostics[0].line, 3);
  EXPECT_EQ(diagnostics[1].rule, "raw-socket");
  EXPECT_EQ(diagnostics[1].line, 4);
}

TEST(CeresLintTest, ConfigDeadlineCoversFusionScope) {
  // FusionConfig carries a Deadline since the dist coordinator threads its
  // run deadline through fusion; the rule now polices src/fusion/ so that
  // stays true.
  const std::string content =
      "namespace ceres::fusion {\n"
      "struct RerankConfig {\n"
      "  int iterations = 3;\n"
      "};\n"
      "}  // namespace ceres::fusion\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/fusion/rerank.h", content}});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "config-deadline");
  EXPECT_TRUE(Lint({SourceFile{"src/eval/rerank.h", content}}).empty());
}

TEST(CeresLintTest, RawProcessDistinguishesCallsFromNames) {
  const std::string content =
      "namespace ceres {\n"
      "void Reap(int pid) {\n"
      "  int status = 0;\n"
      "  waitpid(pid, &status, 0);\n"
      "  (void)::kill(pid, 9);\n"
      "}\n"
      "int fork_count = 0;\n"
      "void HandleKill(int kill) { (void)kill; }\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/robustness/reap.cc", content}});
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "raw-process");
  EXPECT_EQ(diagnostics[0].line, 4);
  EXPECT_EQ(diagnostics[1].line, 5);
}

TEST(CeresLintTest, RawParallelismCatchesEachShape) {
  const std::string content =
      "namespace ceres {\n"
      "void Fan(size_t n, const ParallelConfig& config) {\n"
      "  std::thread worker([] {});\n"
      "  ParallelFor(n, 4, [](size_t) {});\n"
      "  ParallelConfig pool{2};\n"
      "  ParallelFor(n, config, [](size_t) {});\n"
      "  ParallelFor(n, ParallelConfig::Sequential(), [](size_t) {});\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/core/fan.cc", content}});
  ASSERT_EQ(diagnostics.size(), 3u);
  for (const Diagnostic& diagnostic : diagnostics) {
    EXPECT_EQ(diagnostic.rule, "raw-parallelism");
  }
  EXPECT_EQ(diagnostics[0].line, 3);
  EXPECT_EQ(diagnostics[1].line, 4);
  EXPECT_EQ(diagnostics[2].line, 5);
}

TEST(CeresLintTest, SuppressionCommentSilencesOneLine) {
  const std::string content =
      "namespace ceres {\n"
      "Status DoWork();\n"
      "void Caller() {\n"
      "  DoWork();  // ceres-lint: allow(ignored-status)\n"
      "  DoWork();\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/eval/suppressed.cc", content}});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 5);
}

TEST(CeresLintTest, IgnoredStatusSeesCallsThroughReceiverChains) {
  const std::string content =
      "namespace ceres {\n"
      "struct Registry { Status Publish(); };\n"
      "void Caller(Registry* registry, Registry& ref) {\n"
      "  registry->Publish();\n"
      "  ref.Publish();\n"
      "  Status kept = ref.Publish();\n"
      "  if (!kept.ok()) return;\n"
      "}\n"
      "}  // namespace ceres\n";
  const std::vector<Diagnostic> diagnostics =
      Lint({SourceFile{"src/eval/chains.cc", content}});
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].line, 4);
  EXPECT_EQ(diagnostics[1].line, 5);
}

TEST(CeresLintTest, FormatIsFileLineRuleMessage) {
  const Diagnostic diagnostic{"src/a.cc", 12, "naked-sync", "boom"};
  EXPECT_EQ(FormatDiagnostic(diagnostic), "src/a.cc:12: [naked-sync] boom");
}

}  // namespace
}  // namespace ceres::lint
