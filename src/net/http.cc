#include "net/http.h"

#include <algorithm>

#include "util/string_util.h"

namespace ceres::net {

namespace {

char ToLowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string LowerAscii(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), ToLowerAscii);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerAscii(a[i]) != ToLowerAscii(b[i])) return false;
  }
  return true;
}

/// RFC 9110 token characters, the legal alphabet of methods and header
/// names. Anything else in those positions is a 400.
bool IsTokenChar(char c) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

/// Strict non-negative decimal parse for Content-Length. Rejects signs,
/// whitespace, and anything non-digit — a sloppy length parse on the trust
/// boundary becomes request smuggling.
bool ParseContentLength(std::string_view text, size_t limit, size_t* out) {
  if (text.empty() || text.size() > 19) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value > limit) return false;
  *out = static_cast<size_t>(value);
  return true;
}

/// Parses one "Name: value" line into `headers`. Returns false on a
/// malformed line (no colon, illegal name, embedded control bytes).
bool ParseHeaderLine(std::string_view line, std::vector<HttpHeader>* headers) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) return false;  // also rejects whitespace before ':'
  std::string_view value = StripWhitespace(line.substr(colon + 1));
  for (char c : value) {
    if (static_cast<unsigned char>(c) < 0x20 && c != '\t') return false;
  }
  headers->push_back(HttpHeader{LowerAscii(name), std::string(value)});
  return true;
}

const std::string* FindIn(const std::vector<HttpHeader>& headers,
                          std::string_view name) {
  for (const HttpHeader& header : headers) {
    if (EqualsIgnoreCase(header.name, name)) return &header.value;
  }
  return nullptr;
}

/// Shared header-section framing: pulls "line\r\n" (or lenient "line\n")
/// prefixes out of `buffer`. Returns false when no complete line is
/// buffered yet. `line` excludes the terminator; `consumed` includes it.
bool NextLine(const std::string& buffer, size_t start, std::string_view* line,
              size_t* consumed) {
  const size_t eol = buffer.find('\n', start);
  if (eol == std::string::npos) return false;
  size_t end = eol;
  if (end > start && buffer[end - 1] == '\r') --end;
  *line = std::string_view(buffer).substr(start, end - start);
  *consumed = eol + 1 - start;
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && EqualsIgnoreCase(*connection,
                                                     "keep-alive");
  }
  return connection == nullptr || !EqualsIgnoreCase(*connection, "close");
}

std::string_view HttpRequest::Path() const {
  const std::string_view t(target);
  const size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::Query() const {
  const std::string_view t(target);
  const size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view() : t.substr(q + 1);
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default:  return "Status";
  }
}

std::string EncodeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusReason(response.status);
  out += "\r\n";
  for (const HttpHeader& header : response.headers) {
    out += header.name;
    out += ": ";
    out += header.value;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

std::string EncodeRequest(const HttpRequest& request) {
  std::string out;
  out.reserve(128 + request.body.size());
  out += request.method;
  out += ' ';
  out += request.target;
  out += ' ';
  out += request.version.empty() ? "HTTP/1.1" : request.version;
  out += "\r\n";
  for (const HttpHeader& header : request.headers) {
    out += header.name;
    out += ": ";
    out += header.value;
    out += "\r\n";
  }
  if (!request.body.empty() || request.method == "POST") {
    out += "Content-Length: ";
    out += std::to_string(request.body.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::map<std::string, std::string> ParseQuery(std::string_view query) {
  std::map<std::string, std::string> out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      std::string key(pair.substr(0, eq));
      std::string value(eq == std::string_view::npos ? std::string_view()
                                                     : pair.substr(eq + 1));
      std::replace(value.begin(), value.end(), '+', ' ');
      out.emplace(std::move(key), std::move(value));
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// RequestParser
// ---------------------------------------------------------------------------

RequestParser::RequestParser(HttpLimits limits) : limits_(limits) {}

void RequestParser::Reset() {
  state_ = ParseState::kNeedMore;
  phase_ = Phase::kRequestLine;
  buffer_.clear();
  header_bytes_ = 0;
  body_length_ = 0;
  request_ = HttpRequest{};
  error_status_ = 0;
  error_.clear();
}

ParseState RequestParser::Fail(int status, std::string message) {
  state_ = ParseState::kError;
  error_status_ = status;
  error_ = std::move(message);
  return state_;
}

ParseState RequestParser::Consume(std::string_view bytes) {
  if (state_ == ParseState::kError) return state_;
  // In kComplete the bytes are buffered (they belong to the next pipelined
  // request) but not parsed until TakeRequest() re-arms the parser.
  buffer_.append(bytes.data(), bytes.size());
  if (state_ == ParseState::kComplete) return state_;
  return Advance();
}

HttpRequest RequestParser::TakeRequest() {
  HttpRequest taken = std::move(request_);
  request_ = HttpRequest{};
  phase_ = Phase::kRequestLine;
  state_ = ParseState::kNeedMore;
  header_bytes_ = 0;
  body_length_ = 0;
  // Pipelined leftover stays in buffer_; re-parse it immediately so state()
  // already reflects a fully buffered follow-up request.
  if (!buffer_.empty()) (void)Advance();
  return taken;
}

bool RequestParser::ParseRequestLine(std::string_view line) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method) || method.size() > 16) return false;
  if (target.empty() || target.find(' ') != std::string_view::npos) {
    return false;
  }
  for (char c : target) {
    if (static_cast<unsigned char>(c) <= 0x20 ||
        static_cast<unsigned char>(c) == 0x7f) {
      return false;
    }
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  request_.version = std::string(version);
  return true;
}

ParseState RequestParser::FinishHeaders() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    // Refusing beats a half-tested chunked decoder on the trust boundary.
    return Fail(501, "Transfer-Encoding is not supported");
  }
  const std::string* content_length = request_.FindHeader("content-length");
  body_length_ = 0;
  if (content_length != nullptr) {
    size_t parsed = 0;
    if (!ParseContentLength(*content_length, limits_.max_body_bytes,
                            &parsed)) {
      // Distinguish "not a number" (400) from "too large" (413).
      uint64_t value = 0;
      bool numeric = !content_length->empty();
      for (char c : *content_length) {
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        if (value < (1ull << 62)) value = value * 10 + (c - '0');
      }
      if (numeric && value > limits_.max_body_bytes) {
        return Fail(413, "body exceeds limit");
      }
      return Fail(400, "malformed Content-Length");
    }
    body_length_ = parsed;
  }
  phase_ = Phase::kBody;
  return Advance();
}

ParseState RequestParser::Advance() {
  while (true) {
    switch (phase_) {
      case Phase::kRequestLine: {
        std::string_view line;
        size_t consumed = 0;
        if (!NextLine(buffer_, 0, &line, &consumed)) {
          if (buffer_.size() > limits_.max_request_line_bytes) {
            return Fail(414, "request line exceeds limit");
          }
          return state_ = ParseState::kNeedMore;
        }
        // Own the line before the erase below shifts buffer_ under it.
        const std::string owned(line);
        buffer_.erase(0, consumed);
        if (owned.empty()) continue;  // tolerate leading blank line (RFC)
        if (consumed > limits_.max_request_line_bytes) {
          return Fail(414, "request line exceeds limit");
        }
        if (!ParseRequestLine(owned)) {
          return Fail(400, "malformed request line");
        }
        if (request_.version != "HTTP/1.1" &&
            request_.version != "HTTP/1.0") {
          return Fail(505, "unsupported HTTP version");
        }
        phase_ = Phase::kHeaders;
        continue;
      }
      case Phase::kHeaders: {
        std::string_view line;
        size_t consumed = 0;
        if (!NextLine(buffer_, 0, &line, &consumed)) {
          if (header_bytes_ + buffer_.size() >
              limits_.max_header_section_bytes) {
            return Fail(431, "header section exceeds limit");
          }
          return state_ = ParseState::kNeedMore;
        }
        header_bytes_ += consumed;
        if (header_bytes_ > limits_.max_header_section_bytes) {
          return Fail(431, "header section exceeds limit");
        }
        const std::string owned(line);
        buffer_.erase(0, consumed);
        if (owned.empty()) return FinishHeaders();
        if (request_.headers.size() >= limits_.max_headers) {
          return Fail(431, "too many headers");
        }
        if (!ParseHeaderLine(owned, &request_.headers)) {
          return Fail(400, "malformed header line");
        }
        continue;
      }
      case Phase::kBody: {
        if (buffer_.size() < body_length_) {
          return state_ = ParseState::kNeedMore;
        }
        request_.body = buffer_.substr(0, body_length_);
        buffer_.erase(0, body_length_);
        return state_ = ParseState::kComplete;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ResponseParser
// ---------------------------------------------------------------------------

ResponseParser::ResponseParser(HttpLimits limits) : limits_(limits) {}

void ResponseParser::Reset() {
  state_ = ParseState::kNeedMore;
  phase_ = Phase::kStatusLine;
  buffer_.clear();
  header_bytes_ = 0;
  body_length_ = 0;
  response_ = HttpResponse{};
  error_.clear();
}

ParseState ResponseParser::Fail(std::string message) {
  state_ = ParseState::kError;
  error_ = std::move(message);
  return state_;
}

ParseState ResponseParser::Consume(std::string_view bytes) {
  if (state_ == ParseState::kError || state_ == ParseState::kComplete) {
    return state_;
  }
  buffer_.append(bytes.data(), bytes.size());
  return Advance();
}

HttpResponse ResponseParser::TakeResponse() {
  HttpResponse taken = std::move(response_);
  response_ = HttpResponse{};
  phase_ = Phase::kStatusLine;
  state_ = ParseState::kNeedMore;
  header_bytes_ = 0;
  body_length_ = 0;
  if (!buffer_.empty()) (void)Advance();
  return taken;
}

ParseState ResponseParser::Advance() {
  while (true) {
    switch (phase_) {
      case Phase::kStatusLine: {
        std::string_view line;
        size_t consumed = 0;
        if (!NextLine(buffer_, 0, &line, &consumed)) {
          if (buffer_.size() > limits_.max_request_line_bytes) {
            return Fail("status line exceeds limit");
          }
          return state_ = ParseState::kNeedMore;
        }
        const std::string owned(line);
        buffer_.erase(0, consumed);
        if (owned.empty()) continue;
        // "HTTP/1.1 200 OK"
        const std::string_view owned_view(owned);
        const size_t sp1 = owned_view.find(' ');
        if (sp1 == std::string_view::npos ||
            owned_view.substr(0, 5) != "HTTP/") {
          return Fail("malformed status line");
        }
        std::string_view code = owned_view.substr(sp1 + 1);
        const size_t sp2 = code.find(' ');
        if (sp2 != std::string_view::npos) code = code.substr(0, sp2);
        if (code.size() != 3) return Fail("malformed status code");
        int status = 0;
        for (char c : code) {
          if (c < '0' || c > '9') return Fail("malformed status code");
          status = status * 10 + (c - '0');
        }
        response_.status = status;
        phase_ = Phase::kHeaders;
        continue;
      }
      case Phase::kHeaders: {
        std::string_view line;
        size_t consumed = 0;
        if (!NextLine(buffer_, 0, &line, &consumed)) {
          if (header_bytes_ + buffer_.size() >
              limits_.max_header_section_bytes) {
            return Fail("header section exceeds limit");
          }
          return state_ = ParseState::kNeedMore;
        }
        header_bytes_ += consumed;
        if (header_bytes_ > limits_.max_header_section_bytes) {
          return Fail("header section exceeds limit");
        }
        const std::string owned(line);
        buffer_.erase(0, consumed);
        if (!owned.empty()) {
          if (response_.headers.size() >= limits_.max_headers) {
            return Fail("too many headers");
          }
          if (!ParseHeaderLine(owned, &response_.headers)) {
            return Fail("malformed header line");
          }
          continue;
        }
        const std::string* content_length =
            FindIn(response_.headers, "content-length");
        if (content_length == nullptr) {
          if (response_.status == 204) {
            body_length_ = 0;
          } else {
            return Fail("response without Content-Length");
          }
        } else if (!ParseContentLength(*content_length,
                                       limits_.max_body_bytes,
                                       &body_length_)) {
          return Fail("malformed or oversized Content-Length");
        }
        phase_ = Phase::kBody;
        continue;
      }
      case Phase::kBody: {
        if (buffer_.size() < body_length_) {
          return state_ = ParseState::kNeedMore;
        }
        response_.body = buffer_.substr(0, body_length_);
        buffer_.erase(0, body_length_);
        return state_ = ParseState::kComplete;
      }
    }
  }
}

}  // namespace ceres::net
