file(REMOVE_RECURSE
  "CMakeFiles/dom_test.dir/dom/dom_tree_test.cc.o"
  "CMakeFiles/dom_test.dir/dom/dom_tree_test.cc.o.d"
  "CMakeFiles/dom_test.dir/dom/dom_utils_test.cc.o"
  "CMakeFiles/dom_test.dir/dom/dom_utils_test.cc.o.d"
  "CMakeFiles/dom_test.dir/dom/html_parser_adversarial_test.cc.o"
  "CMakeFiles/dom_test.dir/dom/html_parser_adversarial_test.cc.o.d"
  "CMakeFiles/dom_test.dir/dom/html_parser_param_test.cc.o"
  "CMakeFiles/dom_test.dir/dom/html_parser_param_test.cc.o.d"
  "CMakeFiles/dom_test.dir/dom/html_parser_test.cc.o"
  "CMakeFiles/dom_test.dir/dom/html_parser_test.cc.o.d"
  "CMakeFiles/dom_test.dir/dom/html_serializer_test.cc.o"
  "CMakeFiles/dom_test.dir/dom/html_serializer_test.cc.o.d"
  "CMakeFiles/dom_test.dir/dom/roundtrip_test.cc.o"
  "CMakeFiles/dom_test.dir/dom/roundtrip_test.cc.o.d"
  "CMakeFiles/dom_test.dir/dom/xpath_test.cc.o"
  "CMakeFiles/dom_test.dir/dom/xpath_test.cc.o.d"
  "dom_test"
  "dom_test.pdb"
  "dom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
