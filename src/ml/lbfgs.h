#ifndef CERES_ML_LBFGS_H_
#define CERES_ML_LBFGS_H_

#include <functional>
#include <vector>

namespace ceres {

/// Configuration for the L-BFGS minimizer.
struct LbfgsConfig {
  /// Number of curvature pairs kept for the two-loop recursion.
  int history = 10;
  /// Hard cap on iterations.
  int max_iterations = 200;
  /// Convergence: stop when ||g||_inf / max(1, ||x||_inf) falls below this.
  double gradient_tolerance = 1e-5;
  /// Convergence: stop when the relative objective decrease falls below this.
  double objective_tolerance = 1e-9;
  /// Armijo sufficient-decrease constant for the backtracking line search.
  double armijo_c = 1e-4;
  /// Line-search shrink factor.
  double backtrack = 0.5;
  /// Maximum backtracking steps per iteration.
  int max_line_search = 40;
};

/// Outcome of a minimization run.
struct LbfgsResult {
  bool converged = false;
  int iterations = 0;
  double final_objective = 0.0;
};

/// Objective callback: writes the gradient at `x` into `grad` (same length)
/// and returns the objective value.
using LbfgsObjective =
    std::function<double(const std::vector<double>& x,
                         std::vector<double>* grad)>;

/// Minimizes `objective` starting from *x using limited-memory BFGS with an
/// Armijo backtracking line search. On return *x holds the best point
/// found. This powers ml::LogisticRegression, matching the paper's choice
/// of scikit-learn's LBFGS solver (§5.2).
LbfgsResult MinimizeLbfgs(const LbfgsObjective& objective,
                          std::vector<double>* x,
                          const LbfgsConfig& config = {});

}  // namespace ceres

#endif  // CERES_ML_LBFGS_H_
