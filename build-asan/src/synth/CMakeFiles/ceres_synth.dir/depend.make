# Empty dependencies file for ceres_synth.
# This may be replaced when dependencies are built.
