file(REMOVE_RECURSE
  "CMakeFiles/fig5_training_pages.dir/fig5_training_pages.cc.o"
  "CMakeFiles/fig5_training_pages.dir/fig5_training_pages.cc.o.d"
  "fig5_training_pages"
  "fig5_training_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_training_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
