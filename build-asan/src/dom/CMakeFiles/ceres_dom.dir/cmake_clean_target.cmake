file(REMOVE_RECURSE
  "libceres_dom.a"
)
