#include "baselines/vertex.h"

#include <algorithm>
#include <map>
#include <set>

#include "text/normalize.h"
#include "util/string_util.h"

namespace ceres {

namespace {

// Tag signature of a path, used to group examples of identical shape.
std::string ShapeKey(const XPath& path) {
  std::string key;
  for (const XPathStep& step : path.steps()) {
    key += step.tag;
    key += '/';
  }
  return key;
}

// Collects (level, attribute, value) anchor candidates for one node.
std::vector<VertexRule::Anchor> AnchorsOf(const DomDocument& doc, NodeId node,
                                          int max_level) {
  static constexpr const char* kAttrs[] = {"class", "id", "itemprop",
                                           "itemtype", "property"};
  std::vector<VertexRule::Anchor> anchors;
  NodeId cur = node;
  for (int level = 0; level <= max_level && cur != kInvalidNode; ++level) {
    for (const char* attr : kAttrs) {
      std::string_view value = doc.Attribute(cur, attr);
      if (!value.empty()) {
        anchors.push_back(
            VertexRule::Anchor{level, attr, std::string(value)});
      }
    }
    cur = doc.node(cur).parent;
  }
  return anchors;
}

// Normalized text at a context slot of `node` (see VertexRule::text_anchors
// for the slot encoding); empty when the slot does not exist.
std::string SlotText(const DomDocument& doc, NodeId node, int slot) {
  auto prev_sibling = [&](NodeId id) -> NodeId {
    return doc.node(id).prev_sibling;
  };
  NodeId target = kInvalidNode;
  switch (slot) {
    case 0:
      target = prev_sibling(node);
      break;
    case 1:
    case 2: {
      NodeId parent = doc.node(node).parent;
      if (parent == kInvalidNode) return {};
      NodeId uncle = prev_sibling(parent);
      if (uncle == kInvalidNode) return {};
      if (slot == 1) {
        target = uncle;
      } else if (doc.node(uncle).first_child != kInvalidNode) {
        target = doc.node(uncle).first_child;
      }
      break;
    }
    default:
      break;
  }
  if (target == kInvalidNode) return {};
  return NormalizeText(doc.node(target).text);
}

bool AnchorHolds(const DomDocument& doc, NodeId node,
                 const VertexRule::Anchor& anchor) {
  NodeId cur = node;
  for (int level = 0; level < anchor.level; ++level) {
    if (cur == kInvalidNode) return false;
    cur = doc.node(cur).parent;
  }
  if (cur == kInvalidNode) return false;
  return doc.Attribute(cur, anchor.attribute) == anchor.value;
}

// All nodes of `doc` matching the generalized path of `rule`.
std::vector<NodeId> MatchRulePath(const DomDocument& doc,
                                  const VertexRule& rule) {
  std::vector<NodeId> matches;
  if (rule.steps.empty()) return matches;
  const DomNode& root = doc.node(doc.root());
  if (rule.steps[0].tag != root.tag) return matches;
  if (rule.steps[0].index != -1 && rule.steps[0].index != root.sibling_index) {
    return matches;
  }
  std::vector<std::pair<NodeId, size_t>> frontier{{doc.root(), 1}};
  while (!frontier.empty()) {
    auto [node, depth] = frontier.back();
    frontier.pop_back();
    if (depth == rule.steps.size()) {
      matches.push_back(node);
      continue;
    }
    const XPathStep& step = rule.steps[depth];
    for (NodeId child : doc.children(node)) {
      const DomNode& child_node = doc.node(child);
      if (child_node.tag != step.tag) continue;
      if (step.index != -1 && child_node.sibling_index != step.index) {
        continue;
      }
      frontier.emplace_back(child, depth + 1);
    }
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

}  // namespace

Result<VertexWrapper> VertexWrapper::Learn(
    const std::vector<const DomDocument*>& pages,
    const std::vector<Annotation>& manual_annotations,
    const VertexConfig& config) {
  if (manual_annotations.empty()) {
    return Status::InvalidArgument("no manual annotations");
  }
  bool has_name = false;
  // Examples per (predicate, shape).
  std::map<std::pair<PredicateId, std::string>,
           std::vector<std::pair<PageIndex, NodeId>>>
      groups;
  for (const Annotation& annotation : manual_annotations) {
    if (annotation.page < 0 ||
        static_cast<size_t>(annotation.page) >= pages.size()) {
      return Status::InvalidArgument(
          StrCat("annotation page out of range: ", annotation.page));
    }
    if (annotation.predicate == kNamePredicate) has_name = true;
    XPath path = XPath::FromNode(*pages[static_cast<size_t>(annotation.page)],
                                 annotation.node);
    groups[{annotation.predicate, ShapeKey(path)}].emplace_back(
        annotation.page, annotation.node);
  }
  if (!has_name) {
    return Status::FailedPrecondition(
        "manual annotations must include a NAME (topic) example");
  }

  std::vector<VertexRule> rules;
  for (const auto& [key, examples] : groups) {
    VertexRule rule;
    rule.predicate = key.first;
    // Generalize indices across the group's example paths.
    std::vector<XPath> paths;
    paths.reserve(examples.size());
    for (const auto& [page, node] : examples) {
      paths.push_back(
          XPath::FromNode(*pages[static_cast<size_t>(page)], node));
    }
    rule.steps = paths[0].steps();
    for (size_t e = 1; e < paths.size(); ++e) {
      for (size_t s = 0; s < rule.steps.size(); ++s) {
        if (rule.steps[s].index != paths[e].steps()[s].index) {
          rule.steps[s].index = -1;
        }
      }
    }
    // Text anchors: context texts identical across all examples.
    for (int slot : {0, 1, 2}) {
      std::string shared;
      bool first_example = true;
      bool consistent = true;
      for (const auto& [page, node] : examples) {
        std::string text =
            SlotText(*pages[static_cast<size_t>(page)], node, slot);
        if (first_example) {
          shared = std::move(text);
          first_example = false;
        } else if (text != shared) {
          consistent = false;
          break;
        }
      }
      if (consistent && !shared.empty()) {
        rule.text_anchors.emplace_back(slot, shared);
      }
    }
    // Attribute anchors shared by all examples.
    if (config.use_attribute_anchors) {
      bool first = true;
      std::set<std::tuple<int, std::string, std::string>> shared;
      for (const auto& [page, node] : examples) {
        std::set<std::tuple<int, std::string, std::string>> current;
        for (const VertexRule::Anchor& anchor :
             AnchorsOf(*pages[static_cast<size_t>(page)], node,
                       config.max_anchor_level)) {
          current.emplace(anchor.level, anchor.attribute, anchor.value);
        }
        if (first) {
          shared = std::move(current);
          first = false;
        } else {
          std::set<std::tuple<int, std::string, std::string>> kept;
          std::set_intersection(shared.begin(), shared.end(), current.begin(),
                                current.end(),
                                std::inserter(kept, kept.begin()));
          shared = std::move(kept);
        }
      }
      for (const auto& [level, attribute, value] : shared) {
        rule.anchors.push_back(VertexRule::Anchor{level, attribute, value});
      }
    }
    rules.push_back(std::move(rule));
  }
  return VertexWrapper(std::move(rules));
}

std::vector<Extraction> VertexWrapper::Extract(
    const std::vector<const DomDocument*>& pages,
    const std::vector<PageIndex>& page_indices) const {
  std::vector<Extraction> out;
  for (size_t p = 0; p < pages.size(); ++p) {
    const DomDocument& doc = *pages[p];
    const PageIndex page = page_indices[p];

    auto matches_of = [&](const VertexRule& rule) {
      std::vector<NodeId> nodes;
      for (NodeId node : MatchRulePath(doc, rule)) {
        if (!doc.node(node).HasText()) continue;
        bool ok = true;
        for (const VertexRule::Anchor& anchor : rule.anchors) {
          if (!AnchorHolds(doc, node, anchor)) {
            ok = false;
            break;
          }
        }
        for (const auto& [slot, text] : rule.text_anchors) {
          if (!ok) break;
          if (SlotText(doc, node, slot) != text) ok = false;
        }
        if (ok) nodes.push_back(node);
      }
      return nodes;
    };

    // Locate the subject via the NAME rule(s).
    std::string subject;
    NodeId subject_node = kInvalidNode;
    for (const VertexRule& rule : rules_) {
      if (rule.predicate != kNamePredicate) continue;
      std::vector<NodeId> nodes = matches_of(rule);
      if (!nodes.empty()) {
        subject_node = nodes.front();
        subject = std::string(doc.node(subject_node).text);
        break;
      }
    }
    if (subject_node == kInvalidNode) continue;
    out.push_back(Extraction{page, subject_node, kNamePredicate, subject,
                             subject, 1.0});

    std::set<std::pair<PredicateId, NodeId>> seen;
    for (const VertexRule& rule : rules_) {
      if (rule.predicate == kNamePredicate) continue;
      for (NodeId node : matches_of(rule)) {
        if (node == subject_node) continue;
        if (!seen.emplace(rule.predicate, node).second) continue;
        out.push_back(Extraction{page, node, rule.predicate, subject,
                                 std::string(doc.node(node).text), 1.0});
      }
    }
  }
  return out;
}

}  // namespace ceres
