file(REMOVE_RECURSE
  "CMakeFiles/ceres_dom.dir/dom_tree.cc.o"
  "CMakeFiles/ceres_dom.dir/dom_tree.cc.o.d"
  "CMakeFiles/ceres_dom.dir/dom_utils.cc.o"
  "CMakeFiles/ceres_dom.dir/dom_utils.cc.o.d"
  "CMakeFiles/ceres_dom.dir/html_parser.cc.o"
  "CMakeFiles/ceres_dom.dir/html_parser.cc.o.d"
  "CMakeFiles/ceres_dom.dir/html_serializer.cc.o"
  "CMakeFiles/ceres_dom.dir/html_serializer.cc.o.d"
  "CMakeFiles/ceres_dom.dir/xpath.cc.o"
  "CMakeFiles/ceres_dom.dir/xpath.cc.o.d"
  "libceres_dom.a"
  "libceres_dom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_dom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
