file(REMOVE_RECURSE
  "CMakeFiles/table8_longtail_sites.dir/table8_longtail_sites.cc.o"
  "CMakeFiles/table8_longtail_sites.dir/table8_longtail_sites.cc.o.d"
  "table8_longtail_sites"
  "table8_longtail_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_longtail_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
