#ifndef CERES_ML_SPARSE_VECTOR_H_
#define CERES_ML_SPARSE_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace ceres {

/// A sparse feature vector: strictly increasing feature indices paired with
/// values. Built unsorted via Add(), then Finalize() sorts and merges
/// duplicate indices by summation.
class SparseVector {
 public:
  SparseVector() = default;

  /// Pre-sizes the entry array (typical featurizer output is a few dozen
  /// entries; one up-front allocation beats doubling from empty).
  void Reserve(size_t n) { entries_.reserve(n); }

  void Add(int32_t index, double value) {
    CERES_CHECK(!finalized_);
    entries_.emplace_back(index, value);
  }

  /// Sorts by index and sums duplicates. Idempotent entries after this.
  void Finalize() {
    std::sort(entries_.begin(), entries_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t out = 0;
    for (size_t i = 0; i < entries_.size();) {
      int32_t index = entries_[i].first;
      double sum = 0;
      while (i < entries_.size() && entries_[i].first == index) {
        sum += entries_[i].second;
        ++i;
      }
      entries_[out++] = {index, sum};
    }
    entries_.resize(out);
    finalized_ = true;
  }

  bool finalized() const { return finalized_; }
  size_t size() const { return entries_.size(); }
  const std::vector<std::pair<int32_t, double>>& entries() const {
    return entries_;
  }

  /// Dot product against a dense weight slice w[0..dim).
  double Dot(const double* weights, int32_t dim) const {
    double sum = 0;
    for (const auto& [index, value] : entries_) {
      if (index < dim) sum += weights[index] * value;
    }
    return sum;
  }

  /// Adds scale * this to the dense vector out[0..dim).
  void AxpyInto(double scale, double* out, int32_t dim) const {
    for (const auto& [index, value] : entries_) {
      if (index < dim) out[index] += scale * value;
    }
  }

 private:
  std::vector<std::pair<int32_t, double>> entries_;
  bool finalized_ = false;
};

}  // namespace ceres

#endif  // CERES_ML_SPARSE_VECTOR_H_
