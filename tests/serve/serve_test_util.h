#ifndef CERES_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define CERES_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/entity_matcher.h"
#include "core/relation_annotator.h"
#include "core/topic_identification.h"
#include "core/training.h"
#include "testing/fixtures.h"

namespace ceres::testing {

/// Trains the tiny two-page film extractor used across the serve tests —
/// the same distant-supervision path as ModelIoTest, packaged so registry
/// and service tests can mint models (and model files) on demand.
struct TrainedFilmSite {
  TrainedFilmSite() {
    docs.push_back(ParseOrDie(FilmPageHtml(
        "Do the Right Thing", "Spike Lee", "Spike Lee",
        {"Spike Lee", "Danny Aiello", "John Turturro"},
        {"Comedy", "Dramedy"})));
    docs.push_back(ParseOrDie(FilmPageHtml(
        "Crooklyn", "Spike Lee", "Nobody", {"Zelda Harris"}, {"Comedy"})));
    for (const DomDocument& doc : docs) ptrs.push_back(&doc);
    std::vector<PageMentions> mentions;
    for (const DomDocument* doc : ptrs) {
      mentions.push_back(MatchPageMentions(*doc, kb.kb));
    }
    TopicConfig topic_config;
    topic_config.min_annotations_per_page = 2;
    topic_config.common_string_min_count = 100;
    TopicResult topics = IdentifyTopics(ptrs, mentions, kb.kb, topic_config);
    AnnotationResult annotations =
        AnnotateRelations(ptrs, mentions, topics, kb.kb, {});
    featurizer = std::make_unique<FeatureExtractor>(ptrs, FeatureConfig{});
    model = std::make_unique<TrainedModel>(
        std::move(TrainExtractor(ptrs, annotations.annotations, *featurizer,
                                 kb.kb.ontology(), {}))
            .value());
  }

  /// A detail page the model has never seen, in the site's template.
  static std::string UnseenPageHtml(int variant = 0) {
    return FilmPageHtml("Fresh Film " + std::to_string(variant),
                        "New Director", "New Writer",
                        {"Actor A", "Actor B"}, {"Dramedy"});
  }

  TinyMovieKb kb;
  std::vector<DomDocument> docs;
  std::vector<const DomDocument*> ptrs;
  std::unique_ptr<FeatureExtractor> featurizer;
  std::unique_ptr<TrainedModel> model;
};

}  // namespace ceres::testing

#endif  // CERES_TESTS_SERVE_SERVE_TEST_UTIL_H_
