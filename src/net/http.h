#ifndef CERES_NET_HTTP_H_
#define CERES_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ceres::net {

/// HTTP/1.1 message types and an incremental, hard-limited parser.
///
/// The parser is the trust boundary of the serving front-end: every byte
/// arriving on a socket flows through it before anything else looks at the
/// request. It is therefore written defensively — explicit size limits on
/// the request line, header section, header count, and body; no
/// allocation proportional to anything the peer controls beyond those
/// limits; malformed input produces a typed HTTP status (400/413/414/431/
/// 501/505), never a crash or a silent partial parse. Torn input (a
/// request cut anywhere, even mid-token) parks the parser in kNeedMore;
/// bytes may arrive one at a time.
///
/// Supported framing is deliberately minimal for the extraction workload:
/// Content-Length bodies only. Transfer-Encoding (chunked or otherwise)
/// is rejected with 501 — the crawl-replay clients we serve never chunk,
/// and refusing is safer than a half-tested decoder on the trust
/// boundary.

/// Hard input limits; exceeding any of them is a typed parse error.
struct HttpLimits {
  size_t max_request_line_bytes = 8u << 10;
  size_t max_header_section_bytes = 64u << 10;
  size_t max_headers = 100;
  size_t max_body_bytes = 8u << 20;
};

/// One header; `name` is stored lowercased (field names are
/// case-insensitive per RFC 9110), `value` is trimmed but case-preserved.
struct HttpHeader {
  std::string name;
  std::string value;
};

struct HttpRequest {
  std::string method;
  std::string target;   // origin-form, e.g. "/extract?site=imdb"
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::vector<HttpHeader> headers;
  std::string body;

  /// Value of the first header named `name` (any case); nullptr if absent.
  const std::string* FindHeader(std::string_view name) const;
  /// Keep-alive resolution: HTTP/1.1 defaults to keep-alive unless
  /// "Connection: close"; HTTP/1.0 defaults to close unless
  /// "Connection: keep-alive".
  bool KeepAlive() const;
  /// `target` split at '?': path before, raw query after (may be empty).
  std::string_view Path() const;
  std::string_view Query() const;
};

struct HttpResponse {
  int status = 200;
  std::vector<HttpHeader> headers;  // Content-Length/Connection are added
  std::string body;
};

/// Canonical reason phrase for `status` ("OK", "Too Many Requests", ...).
const char* StatusReason(int status);

/// Serializes a response, appending Content-Length and Connection headers
/// derived from `keep_alive`.
std::string EncodeResponse(const HttpResponse& response, bool keep_alive);

/// Serializes a request, appending Content-Length when a body is present.
std::string EncodeRequest(const HttpRequest& request);

/// Parses an application/x-www-form-urlencoded-style query string
/// ("a=1&b=two") into a map. No percent-decoding beyond '+' -> ' ' (the
/// serving API uses plain site names); duplicate keys keep the first.
std::map<std::string, std::string> ParseQuery(std::string_view query);

enum class ParseState {
  kNeedMore = 0,  // incomplete input; feed more bytes
  kComplete,      // one full message parsed; Take*() to consume it
  kError,         // protocol violation; error_status()/error() describe it
};

/// Incremental HTTP/1.1 request parser. Feed arbitrary byte chunks with
/// Consume(); when it returns kComplete, TakeRequest() yields the message
/// and re-arms the parser on any pipelined leftover bytes (the next
/// Consume("") continues from them). After kError the parser stays in
/// kError until Reset(); the connection should send error_status() and
/// close.
class RequestParser {
 public:
  explicit RequestParser(HttpLimits limits = {});

  ParseState Consume(std::string_view bytes);
  ParseState state() const { return state_; }

  /// Valid only in kComplete. Resets to parse the next pipelined request.
  HttpRequest TakeRequest();

  /// HTTP status expressing the parse failure; 0 unless kError.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// True while a message is partially received — any bytes consumed
  /// since the last message boundary, including a request torn exactly at
  /// a line boundary (the buffer is empty but the parser has left the
  /// request-line phase). A connection torn here deserves a 408.
  bool MidMessage() const {
    return state_ == ParseState::kNeedMore &&
           (!buffer_.empty() || phase_ != Phase::kRequestLine);
  }

  void Reset();

 private:
  enum class Phase { kRequestLine, kHeaders, kBody };

  ParseState Advance();
  ParseState Fail(int status, std::string message);
  bool ParseRequestLine(std::string_view line);
  ParseState FinishHeaders();

  const HttpLimits limits_;
  ParseState state_ = ParseState::kNeedMore;
  Phase phase_ = Phase::kRequestLine;
  std::string buffer_;          // unconsumed input
  size_t header_bytes_ = 0;     // header-section bytes seen so far
  size_t body_length_ = 0;      // declared Content-Length
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_;
};

/// Incremental HTTP response parser (client side). Same framing rules as
/// RequestParser: Content-Length bodies only; a response without
/// Content-Length is an error (this client never sends requests that
/// elicit close-delimited bodies).
class ResponseParser {
 public:
  explicit ResponseParser(HttpLimits limits = {});

  ParseState Consume(std::string_view bytes);
  ParseState state() const { return state_; }
  HttpResponse TakeResponse();
  const std::string& error() const { return error_; }
  void Reset();

 private:
  enum class Phase { kStatusLine, kHeaders, kBody };

  ParseState Advance();
  ParseState Fail(std::string message);

  const HttpLimits limits_;
  ParseState state_ = ParseState::kNeedMore;
  Phase phase_ = Phase::kStatusLine;
  std::string buffer_;
  size_t header_bytes_ = 0;
  size_t body_length_ = 0;
  HttpResponse response_;
  std::string error_;
};

}  // namespace ceres::net

#endif  // CERES_NET_HTTP_H_
