// dist_recovery — fault-tolerance overhead of distributed batch extraction.
//
// Builds a multi-site synthetic movie corpus, runs a single-process
// reference extraction, then sweeps the coordinator/worker harness
// (src/dist/) over crash rates 0 / 0.25 / 0.5: workers are crashed on that
// fraction of shards (first attempt only), so every crashed shard costs one
// worker respawn plus one retry. Each sweep point reports wall time,
// recovery overhead vs the crash-free distributed run, and the recovery
// counters as BENCH JSON lines:
//
//   BENCH {"bench":"dist_recovery","crash_rate":0.25,...}
//
// Invariants (exit 1 on violation):
//   * the crash-free distributed run merges byte-identical to the
//     single-process reference (extractions and fused triples);
//   * every crashed run retries exactly the planned shards, quarantines
//     nothing, and still merges byte-identical after recovery;
//   * checkpoints are written whenever a shard completes.
//
// Usage: dist_recovery [--smoke] [--persist [path]]
//   --smoke:   small corpus + 2 workers; wired into tools/tier1.sh (and run
//              under ThreadSanitizer by the tsan tier).
//   --persist: also write the BENCH lines to BENCH_dist_recovery.json (or
//              `path`) for a committed result trail.

#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/checkpoint.h"
#include "dist/coordinator.h"
#include "robustness/fault_injector.h"
#include "synth/corpora.h"

namespace {

using namespace ceres;  // NOLINT(build/namespaces)

int g_violations = 0;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
    ++g_violations;
  }
}

bool SameMerge(const dist::DistResult& a, const dist::DistResult& b) {
  if (a.site_extractions.size() != b.site_extractions.size()) return false;
  for (size_t s = 0; s < a.site_extractions.size(); ++s) {
    const fusion::SiteExtractions& x = a.site_extractions[s];
    const fusion::SiteExtractions& y = b.site_extractions[s];
    if (x.site != y.site || x.extractions.size() != y.extractions.size()) {
      return false;
    }
    for (size_t i = 0; i < x.extractions.size(); ++i) {
      const Extraction& p = x.extractions[i];
      const Extraction& q = y.extractions[i];
      if (p.page != q.page || p.node != q.node ||
          p.predicate != q.predicate || p.subject != q.subject ||
          p.object != q.object || p.confidence != q.confidence) {
        return false;
      }
    }
  }
  if (a.fused.triples.size() != b.fused.triples.size()) return false;
  for (size_t i = 0; i < a.fused.triples.size(); ++i) {
    if (a.fused.triples[i].subject != b.fused.triples[i].subject ||
        a.fused.triples[i].object != b.fused.triples[i].object ||
        a.fused.triples[i].score != b.fused.triples[i].score) {
      return false;
    }
  }
  return true;
}

/// Fresh checkpoint directory per sweep point, so resume never hides work.
std::string MakeCheckpointDir() {
  char tmpl[] = "/tmp/ceres_dist_recovery_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) return "";
  return tmpl;
}

void RemoveCheckpointDir(const std::string& dir) {
  if (dir.empty()) return;
  for (int32_t shard : dist::ListShardCheckpoints(dir)) {
    (void)::unlink(dist::ShardCheckpointPath(dir, shard).c_str());
  }
  (void)::rmdir(dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool persist = false;
  std::string persist_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--persist") == 0) {
      persist = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') persist_path = argv[++i];
    }
  }

  const double scale = smoke ? 0.2 : synth::EnvScale();
  synth::Corpus corpus =
      synth::MakeSwdeCorpus(synth::SwdeVertical::kMovie, scale, /*seed=*/7);
  std::vector<dist::ShardSite> sites;
  size_t num_pages = 0;
  for (const synth::SyntheticSite& site : corpus.sites) {
    dist::ShardSite shard_site;
    shard_site.site = site.name;
    for (const synth::GeneratedPage& page : site.pages) {
      shard_site.pages.push_back(RawPage{page.url, page.html});
    }
    num_pages += shard_site.pages.size();
    sites.push_back(std::move(shard_site));
  }
  const int num_shards = static_cast<int>(sites.size());
  // Hash sharding may leave some of the `num_shards` slots empty (two sites
  // can collide); an empty shard is settled instantly and can never crash,
  // so faults and completion counts are framed in populated shards.
  std::vector<int32_t> populated;
  for (const dist::ShardSite& site : sites) {
    const int32_t shard = dist::ShardOfSite(site.site, num_shards);
    if (std::find(populated.begin(), populated.end(), shard) ==
        populated.end()) {
      populated.push_back(shard);
    }
  }
  std::sort(populated.begin(), populated.end());
  std::printf("dist_recovery: %d sites, %zu populated shard(s), %zu pages "
              "(%s)\n",
              num_shards, populated.size(), num_pages,
              smoke ? "smoke" : "full");

  dist::DistConfig base;
  base.num_workers = smoke ? 2 : 3;
  base.num_shards = 0;  // one shard per site
  // Crash recovery is EOF-detected, not watchdog-detected; a long liveness
  // keeps slow sanitized or oversubscribed runs from spurious kills.
  base.worker_liveness_timeout = std::chrono::seconds(120);

  const auto ref_start = std::chrono::steady_clock::now();
  Result<dist::DistResult> reference = dist::RunSingleProcess(
      sites, corpus.seed_kb, corpus.seed_kb.ontology(), base);
  const double ref_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ref_start)
          .count();
  Require(reference.ok(), "single-process reference failed");
  if (!reference.ok()) {
    std::fprintf(stderr, "  %s\n", reference.status().ToString().c_str());
    return 1;
  }
  std::printf("  reference: %.3fs, %zu fused triples\n", ref_seconds,
              reference->fused.triples.size());

  bench::BenchJson bench_json("dist_recovery");
  double clean_seconds = 0;
  const double sweep[] = {0.0, 0.25, 0.5};
  for (double crash_rate : sweep) {
    dist::DistConfig config = base;
    config.checkpoint_dir = MakeCheckpointDir();
    Require(!config.checkpoint_dir.empty(), "mkdtemp failed");
    // Evenly spaced over the populated shards: deterministic, no
    // duplicates, and every planned crash actually fires.
    const size_t planned =
        static_cast<size_t>(populated.size() * crash_rate + 0.5);
    for (size_t i = 0; i < planned; ++i) {
      config.faults.faults.push_back(
          ProcessFault{populated[i * populated.size() / planned],
                       ProcessFaultType::kWorkerCrash, /*attempts=*/1});
    }

    const auto start = std::chrono::steady_clock::now();
    Result<dist::DistResult> run = dist::RunDistributedExtraction(
        sites, corpus.seed_kb, corpus.seed_kb.ontology(), config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    RemoveCheckpointDir(config.checkpoint_dir);
    Require(run.ok(), "distributed run failed");
    if (!run.ok()) {
      std::fprintf(stderr, "  %s\n", run.status().ToString().c_str());
      return 1;
    }
    const dist::DistDiagnostics& diag = run->diagnostics;

    if (crash_rate == 0.0) clean_seconds = seconds;
    const double overhead =
        clean_seconds > 0 ? seconds / clean_seconds - 1.0 : 0.0;

    Require(diag.retries >= static_cast<int64_t>(planned),
            "fewer retries than planned crashes");
    Require(diag.worker_restarts >= static_cast<int64_t>(planned),
            "fewer worker restarts than planned crashes");
    Require(diag.quarantined_shards.empty(),
            "single-crash shards must not be quarantined");
    Require(diag.shards_completed ==
                static_cast<int64_t>(populated.size()),
            "not all populated shards completed");
    Require(diag.checkpoint_bytes > 0, "no checkpoint bytes written");
    Require(SameMerge(*run, *reference),
            "merge differs from single-process reference");

    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"dist_recovery\",\"mode\":\"%s\",\"crash_rate\":%.2f,"
        "\"workers\":%d,\"shards\":%zu,\"pages\":%zu,\"seconds\":%.3f,"
        "\"overhead_vs_clean\":%.3f,\"planned_crashes\":%zu,"
        "\"retries\":%lld,\"worker_restarts\":%lld,"
        "\"quarantined_shards\":%zu,\"checkpoint_bytes\":%lld,"
        "\"identical_to_reference\":%s}",
        smoke ? "smoke" : "full", crash_rate, base.num_workers,
        populated.size(),
        num_pages, seconds, overhead, planned,
        static_cast<long long>(diag.retries),
        static_cast<long long>(diag.worker_restarts),
        diag.quarantined_shards.size(),
        static_cast<long long>(diag.checkpoint_bytes),
        SameMerge(*run, *reference) ? "true" : "false");
    bench_json.Emit(line);
  }

  if (persist && !bench_json.Persist(persist_path)) ++g_violations;
  if (g_violations > 0) {
    std::fprintf(stderr, "dist_recovery: %d violation(s)\n", g_violations);
    return 1;
  }
  std::printf("dist_recovery: OK\n");
  return 0;
}
