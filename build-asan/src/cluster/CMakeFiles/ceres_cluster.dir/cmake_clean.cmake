file(REMOVE_RECURSE
  "CMakeFiles/ceres_cluster.dir/detail_page_detector.cc.o"
  "CMakeFiles/ceres_cluster.dir/detail_page_detector.cc.o.d"
  "CMakeFiles/ceres_cluster.dir/page_clustering.cc.o"
  "CMakeFiles/ceres_cluster.dir/page_clustering.cc.o.d"
  "libceres_cluster.a"
  "libceres_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ceres_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
